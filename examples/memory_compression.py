"""Mokey as a memory-compression assist for an FP16 accelerator (Fig. 14-15 flow).

Shows both halves of Section IV-D:

1. the off-chip container of Fig. 5 — pack a quantized tensor, verify the
   round trip, and report the footprint reduction, and
2. the system-level effect — run the Tensor-Cores baseline with Mokey
   compressing off-chip only (OC) and off-chip + on-chip (OC+ON) and
   report the speedup and energy gains across buffer sizes.

Run with::

    python examples/memory_compression.py
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.quantizer import MokeyQuantizer
from repro.experiments import expand_grid, run_campaign
from repro.memory.layout import pack_offchip, unpack_offchip

KB = 1024
MB = 1024 * 1024
BUFFERS = (256 * KB, 1 * MB, 4 * MB)


def container_demo() -> None:
    rng = np.random.default_rng(7)
    quantizer = MokeyQuantizer()
    activations = rng.normal(0.5, 2.0, 1 << 18)
    outliers = rng.choice(activations.size, int(0.045 * activations.size), replace=False)
    activations[outliers] = rng.choice([-1, 1], outliers.size) * 40.0

    quantized = quantizer.quantize(activations, name="layer.activations")
    container = pack_offchip(quantized.encoded)
    restored = unpack_offchip(container)

    print("Off-chip container (Fig. 5):")
    print(f"  values: {container.num_values}, outliers: {quantized.outlier_count} "
          f"({100 * quantized.outlier_fraction:.2f}%)")
    print(f"  value stream: {container.value_bits / 8 / 1024:.1f} KB, "
          f"pointer stream: {container.pointer_bits / 8 / 1024:.1f} KB")
    print(f"  compression vs FP16: {container.compression_ratio(16):.2f}x "
          f"(round trip lossless: {bool(np.array_equal(restored.is_outlier, quantized.encoded.is_outlier.ravel()))})")


def system_demo() -> None:
    campaign = run_campaign(
        expand_grid(
            workloads=[("bert-large", "squad", None)],
            designs=(
                "tensor-cores",
                "tensor-cores+mokey-oc",
                "tensor-cores+mokey-oc+on",
            ),
            buffer_bytes=BUFFERS,
        )
    )

    rows = []
    for size in BUFFERS:
        base = campaign.result(design="tensor-cores", buffer_bytes=size)
        r_oc = campaign.result(design="tensor-cores+mokey-oc", buffer_bytes=size)
        r_ocon = campaign.result(design="tensor-cores+mokey-oc+on", buffer_bytes=size)
        rows.append([
            f"{size // KB}KB",
            f"{base.traffic_bytes / 1e9:.2f}GB",
            f"{r_oc.traffic_bytes / 1e9:.2f}GB",
            f"{r_oc.speedup_over(base):.2f}x",
            f"{r_ocon.speedup_over(base):.2f}x",
            f"{r_oc.energy_efficiency_over(base):.2f}x",
            f"{r_ocon.energy_efficiency_over(base):.2f}x",
        ])
    print("\nTensor Cores + Mokey compression on BERT-Large/SQuAD:")
    print(format_table(
        ["buffer", "baseline traffic", "OC traffic",
         "OC speedup", "OC+ON speedup", "OC energy gain", "OC+ON energy gain"],
        rows,
    ))


if __name__ == "__main__":
    container_demo()
    system_demo()
