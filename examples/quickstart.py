"""Quickstart: quantize a tensor with Mokey and compute in the index domain.

Demonstrates the three core ideas of the paper on a single weight/activation
pair, plus the evaluation stack that measures them at scale:

1. the Golden Dictionary and its exponential fit (``a**int + b``),
2. 4-bit encoding of a tensor with Gaussian/outlier dictionaries,
3. computing a dot product directly on the 4-bit indexes (Eq. 3-6) and
   checking it against the dequantized reference, and
4. a declarative campaign: the accelerator comparison as a frozen,
   JSON-round-trippable ``CampaignSpec`` streamed through
   ``iter_campaign``, with every pluggable axis enumerable through the
   unified registry surface.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    AxisGrid,
    CampaignSpec,
    ExecutionPolicy,
    GoldenDictionary,
    MokeyQuantizer,
    generate_golden_dictionary,
    get_registry,
    iter_campaign,
    registry_kinds,
)
from repro.core.index_compute import index_domain_dot


def main() -> None:
    rng = np.random.default_rng(0)

    # Step 1 — the model-independent Golden Dictionary (done once, offline).
    golden: GoldenDictionary = generate_golden_dictionary()
    print("Golden Dictionary (positive half, units of sigma):")
    print(" ", np.round(golden.half, 3))
    print(f"  exponential fit: a = {golden.fit.a:.3f}, b = {golden.fit.b:.3f} "
          f"(paper: a = 1.179, b = -0.977)")

    # Step 2 — quantize a weight vector and an activation vector to 4 bits.
    quantizer = MokeyQuantizer(golden)
    weights = rng.normal(0.0, 0.02, 4096)
    weights[rng.choice(4096, 60, replace=False)] = rng.choice([-1, 1], 60) * 0.25
    activations = rng.normal(0.4, 1.8, 4096)
    activations[rng.choice(4096, 180, replace=False)] = rng.choice([-1, 1], 180) * 30.0

    wq = quantizer.quantize(weights, name="ffn.weight")
    aq = quantizer.quantize(activations, name="ffn.input")
    print("\n4-bit quantization:")
    print(f"  weight outliers:     {100 * wq.outlier_fraction:.2f}%")
    print(f"  activation outliers: {100 * aq.outlier_fraction:.2f}%")
    print(f"  weight compression vs FP32: {wq.compression_ratio(32):.2f}x")
    print(f"  reconstruction error (relative MAE): "
          f"{wq.quantization_error(weights)['relative_mae']:.3f}")

    # Step 3 — compute a dot product without ever expanding the indexes.
    result = index_domain_dot(aq, wq)
    reference = float(
        aq.dictionary.decode(aq.encoded, apply_fixed_point=False)
        @ wq.dictionary.decode(wq.encoded, apply_fixed_point=False)
    )
    fp_value = float(activations @ weights)
    print("\nIndex-domain dot product (Eq. 3-6):")
    for term, value in result.terms().items():
        print(f"  {term:10s} = {value: .6f}")
    print(f"  index-domain total   = {result.value: .6f}")
    print(f"  dequantized reference= {reference: .6f}  (must match exactly)")
    print(f"  original FP value    = {fp_value: .6f}  (quantization error only)")
    print(f"  operation mix: {result.stats.gaussian_pairs} narrow additions, "
          f"{result.stats.outlier_pairs} outlier MACs")

    # Step 4 — a declarative campaign over the pluggable axes.  Every
    # axis value below is a registry name; `repro registry list <kind>`
    # (or get_registry(kind).describe()) enumerates the choices.
    print("\nPluggable axes (the unified registry surface):")
    for kind in registry_kinds():
        print(f"  {kind:8s} {', '.join(get_registry(kind).names())}")

    spec = CampaignSpec(
        name="quickstart",
        axes=AxisGrid(
            models=("bert-base",),
            tasks=("mnli",),
            designs=("tensor-cores", "mokey"),
            buffer_bytes=(512 * 1024,),
        ),
        execution=ExecutionPolicy(executor="serial"),
    )
    print("\nDeclarative campaign (spec is plain JSON — save it, ship it, "
          "resume it):")
    print(f"  {spec.to_json(indent=None)[:96]}...")
    results = {}
    for record, progress in iter_campaign(spec):
        results[record.scenario.design] = record.result
        print(f"  {progress} {record.scenario.label}: "
              f"{record.result.total_cycles / 1e6:.0f}M cycles")
    speedup = results["mokey"].speedup_over(results["tensor-cores"])
    energy = results["mokey"].energy_efficiency_over(results["tensor-cores"])
    print(f"  Mokey vs Tensor Cores: {speedup:.2f}x faster, "
          f"{energy:.2f}x more energy-efficient")


if __name__ == "__main__":
    main()
