"""Quantize a whole transformer model and measure task fidelity (Table I flow).

Builds a scaled BERT-Base functional twin with realistic weight
distributions, labels a synthetic MNLI-like task with the FP model, then
quantizes the model with Mokey in both weight-only and weight+activation
modes and reports fidelity and outlier statistics — the same protocol the
paper's Table I follows.

Run with::

    python examples/quantize_transformer.py
"""

import numpy as np

from repro.core.model_quantizer import MokeyModelQuantizer, QuantizationMode
from repro.transformer.model_zoo import build_simulation_model
from repro.transformer.tasks import evaluate, generate_inputs, label_with_model


def main() -> None:
    # An architecture-preserving scaled twin of BERT-Base (see DESIGN.md §2).
    model = build_simulation_model("bert-base", task="mnli", scale=8, max_layers=4, seed=0)
    print(f"model: {model.config.name} — {model.config.num_layers} layers, "
          f"hidden {model.config.hidden_size}, {model.num_parameters() / 1e6:.1f}M parameters")

    # Self-labelled synthetic MNLI-like task: the FP model defines the labels,
    # so its own score is 100% and any drop measures quantization error.
    pool = label_with_model(
        model, generate_inputs(model.config.vocab_size, 64, 48, "classification", seed=1)
    )
    profiling = pool.subset(np.arange(8))      # the paper's 8-sample profiling batch
    evaluation = pool.subset(np.arange(8, 48))

    print(f"\nFP32 fidelity: {evaluate(model, evaluation):.2f}%")

    quantizer = MokeyModelQuantizer()

    weight_only = quantizer.quantize(model, mode=QuantizationMode.WEIGHTS_ONLY)
    print("\nWeight-only quantization (4-bit dictionaries):")
    print(f"  fidelity: {evaluate(weight_only.model, evaluation):.2f}%")
    print(f"  weight outliers: {100 * weight_only.report.weight_outlier_fraction:.2f}%")
    print(f"  weight compression vs FP32: {weight_only.report.weight_compression_ratio:.2f}x")

    full = quantizer.quantize(
        model,
        mode=QuantizationMode.WEIGHTS_AND_ACTIVATIONS,
        profiling_dataset=profiling,
    )
    hook = full.activation_hook()
    score = evaluate(full.model, evaluation, hook=hook)
    print("\nWeight + activation quantization (4-bit everywhere):")
    print(f"  fidelity: {score:.2f}%")
    print(f"  activation outliers observed at runtime: {100 * hook.outlier_fraction:.2f}%")
    print(f"  activation tensors with dictionaries: {len(full.activation_dictionaries)}")

    worst = sorted(
        full.report.per_tensor_outlier_fraction.items(), key=lambda item: -item[1]
    )[:5]
    print("\nweight tensors with the most outliers:")
    for name, fraction in worst:
        print(f"  {name}: {100 * fraction:.2f}%")


if __name__ == "__main__":
    main()
