"""Simulate the Mokey accelerator against Tensor Cores and GOBO (Fig. 9-13 flow).

Sweeps the on-chip buffer capacity for a chosen model/task workload and
prints cycle counts, speedups, energy breakdowns and chip areas for the
three accelerator designs the paper evaluates.

Run with::

    python examples/accelerator_simulation.py [model] [task]

e.g. ``python examples/accelerator_simulation.py bert-large squad``.
"""

import sys

from repro.accelerator.gobo_accel import gobo_design
from repro.accelerator.mokey_accel import mokey_design
from repro.accelerator.simulator import AcceleratorSimulator
from repro.accelerator.tensor_cores import tensor_cores_design
from repro.accelerator.workloads import model_workload
from repro.analysis.reporting import format_table

KB = 1024
MB = 1024 * 1024
BUFFERS = (256 * KB, 512 * KB, 1 * MB, 2 * MB, 4 * MB)


def main(model_name: str = "bert-large", task: str = "squad") -> None:
    workload = model_workload(model_name, task)
    print(f"workload: {workload.name} — {workload.total_macs / 1e9:.1f} GMACs, "
          f"{workload.num_layers} encoder layers")

    simulators = {
        "tensor-cores": AcceleratorSimulator(tensor_cores_design()),
        "gobo": AcceleratorSimulator(gobo_design()),
        "mokey": AcceleratorSimulator(mokey_design()),
    }

    rows = []
    for size in BUFFERS:
        results = {name: sim.simulate(workload, size) for name, sim in simulators.items()}
        tc, gobo, mokey = results["tensor-cores"], results["gobo"], results["mokey"]
        rows.append([
            f"{size // KB}KB",
            f"{tc.total_cycles / 1e6:.0f}M",
            f"{gobo.total_cycles / 1e6:.0f}M",
            f"{mokey.total_cycles / 1e6:.0f}M",
            f"{mokey.speedup_over(tc):.2f}x",
            f"{mokey.speedup_over(gobo):.2f}x",
            f"{mokey.energy_efficiency_over(tc):.2f}x",
            f"{tc.energy.total:.2f}J",
            f"{mokey.energy.total:.2f}J",
        ])
    print(format_table(
        ["buffer", "TC cycles", "GOBO cycles", "Mokey cycles",
         "speedup vs TC", "vs GOBO", "energy eff vs TC", "TC energy", "Mokey energy"],
        rows,
    ))

    # Area story at the 512KB point (Table II / III flavour).
    results = {name: sim.simulate(workload, 512 * KB) for name, sim in simulators.items()}
    area_rows = [
        [name, f"{r.area.compute:.1f}", f"{r.area.buffer:.1f}", f"{r.area.total:.1f}",
         f"{100 * r.overlap_fraction:.0f}%"]
        for name, r in results.items()
    ]
    print()
    print(format_table(
        ["design", "compute mm^2", "buffer mm^2", "total mm^2", "compute/memory overlap"],
        area_rows,
    ))


if __name__ == "__main__":
    main(*sys.argv[1:3])
