"""Simulate the Mokey accelerator against Tensor Cores and GOBO (Fig. 9-13 flow).

Declares the sweep as a :class:`~repro.experiments.spec.CampaignSpec` —
the on-chip buffer axis for a chosen model/task workload across the three
accelerator designs the paper evaluates — and streams it through
``iter_campaign``, printing progress as scenarios complete, then prints
cycle counts, speedups, energy breakdowns and chip areas.

Run with::

    python examples/accelerator_simulation.py [model] [task] [store_dir]

e.g. ``python examples/accelerator_simulation.py bert-large squad``.  With
a ``store_dir``, every completed scenario is appended to an on-disk
artifact store *as it finishes* — kill the run halfway and a second
invocation resumes from the store, simulating only what is missing (the
same spec can be saved with ``spec.save("sweep.json")`` and driven from
the CLI: ``python -m repro campaign run --spec sweep.json``).
"""

import sys
from typing import Optional

from repro.analysis.reporting import format_table
from repro.experiments import (
    ArtifactStore,
    AxisGrid,
    CampaignResult,
    CampaignSpec,
    ExecutionPolicy,
    ResultCache,
    iter_campaign,
)

KB = 1024
MB = 1024 * 1024
BUFFERS = (256 * KB, 512 * KB, 1 * MB, 2 * MB, 4 * MB)
DESIGNS = ("tensor-cores", "gobo", "mokey")


def main(
    model_name: str = "bert-large", task: str = "squad", store_dir: Optional[str] = None
) -> None:
    spec = CampaignSpec(
        name="accelerator-simulation",
        axes=AxisGrid(
            workloads=((model_name, task, None),),
            designs=DESIGNS,
            buffer_bytes=BUFFERS,
        ),
        execution=ExecutionPolicy(store=store_dir),
    )
    # An explicit cache keeps the hit counters for the summary below; its
    # backing store is the same directory the spec's policy names, so the
    # CLI (`repro campaign run --spec`) and this script share results.
    cache = ResultCache(store=None if store_dir is None else ArtifactStore(store_dir))

    records = []
    for record, progress in iter_campaign(spec, cache=cache):
        records.append(record)
        print(
            f"  {progress} {record.scenario.label}"
            + (" [cached]" if record.cached else ""),
            file=sys.stderr,
        )
    campaign = CampaignResult(records, cache)
    if store_dir is not None:
        print(
            f"store {store_dir}: {campaign.simulated_count} simulated, "
            f"{cache.store_hits} served from disk"
        )

    scenarios = spec.scenarios()
    workload = scenarios[0].build_workload()
    print(f"workload: {workload.name} — {workload.total_macs / 1e9:.1f} GMACs, "
          f"{workload.num_layers} encoder layers")

    rows = []
    for size in BUFFERS:
        results = {
            name: campaign.result(design=name, buffer_bytes=size) for name in DESIGNS
        }
        tc, gobo, mokey = results["tensor-cores"], results["gobo"], results["mokey"]
        rows.append([
            f"{size // KB}KB",
            f"{tc.total_cycles / 1e6:.0f}M",
            f"{gobo.total_cycles / 1e6:.0f}M",
            f"{mokey.total_cycles / 1e6:.0f}M",
            f"{mokey.speedup_over(tc):.2f}x",
            f"{mokey.speedup_over(gobo):.2f}x",
            f"{mokey.energy_efficiency_over(tc):.2f}x",
            f"{tc.energy.total:.2f}J",
            f"{mokey.energy.total:.2f}J",
        ])
    print(format_table(
        ["buffer", "TC cycles", "GOBO cycles", "Mokey cycles",
         "speedup vs TC", "vs GOBO", "energy eff vs TC", "TC energy", "Mokey energy"],
        rows,
    ))

    # Area story at the 512KB point (Table II / III flavour).
    area_rows = [
        [name, f"{r.area.compute:.1f}", f"{r.area.buffer:.1f}", f"{r.area.total:.1f}",
         f"{100 * r.overlap_fraction:.0f}%"]
        for name in DESIGNS
        for r in [campaign.result(design=name, buffer_bytes=512 * KB)]
    ]
    print()
    print(format_table(
        ["design", "compute mm^2", "buffer mm^2", "total mm^2", "compute/memory overlap"],
        area_rows,
    ))


if __name__ == "__main__":
    main(*sys.argv[1:4])
