"""Simulate the Mokey accelerator against Tensor Cores and GOBO (Fig. 9-13 flow).

Sweeps the on-chip buffer capacity for a chosen model/task workload
through the campaign engine (one ``run_campaign`` call covers the full
design x buffer grid) and prints cycle counts, speedups, energy breakdowns
and chip areas for the three accelerator designs the paper evaluates.

Run with::

    python examples/accelerator_simulation.py [model] [task]

e.g. ``python examples/accelerator_simulation.py bert-large squad``.
"""

import sys

from repro.analysis.reporting import format_table
from repro.experiments import expand_grid, run_campaign

KB = 1024
MB = 1024 * 1024
BUFFERS = (256 * KB, 512 * KB, 1 * MB, 2 * MB, 4 * MB)
DESIGNS = ("tensor-cores", "gobo", "mokey")


def main(model_name: str = "bert-large", task: str = "squad") -> None:
    scenarios = expand_grid(
        workloads=[(model_name, task, None)],
        designs=DESIGNS,
        buffer_bytes=BUFFERS,
    )
    campaign = run_campaign(scenarios)

    workload = scenarios[0].build_workload()
    print(f"workload: {workload.name} — {workload.total_macs / 1e9:.1f} GMACs, "
          f"{workload.num_layers} encoder layers")

    rows = []
    for size in BUFFERS:
        results = {
            name: campaign.result(design=name, buffer_bytes=size) for name in DESIGNS
        }
        tc, gobo, mokey = results["tensor-cores"], results["gobo"], results["mokey"]
        rows.append([
            f"{size // KB}KB",
            f"{tc.total_cycles / 1e6:.0f}M",
            f"{gobo.total_cycles / 1e6:.0f}M",
            f"{mokey.total_cycles / 1e6:.0f}M",
            f"{mokey.speedup_over(tc):.2f}x",
            f"{mokey.speedup_over(gobo):.2f}x",
            f"{mokey.energy_efficiency_over(tc):.2f}x",
            f"{tc.energy.total:.2f}J",
            f"{mokey.energy.total:.2f}J",
        ])
    print(format_table(
        ["buffer", "TC cycles", "GOBO cycles", "Mokey cycles",
         "speedup vs TC", "vs GOBO", "energy eff vs TC", "TC energy", "Mokey energy"],
        rows,
    ))

    # Area story at the 512KB point (Table II / III flavour).
    area_rows = [
        [name, f"{r.area.compute:.1f}", f"{r.area.buffer:.1f}", f"{r.area.total:.1f}",
         f"{100 * r.overlap_fraction:.0f}%"]
        for name in DESIGNS
        for r in [campaign.result(design=name, buffer_bytes=512 * KB)]
    ]
    print()
    print(format_table(
        ["design", "compute mm^2", "buffer mm^2", "total mm^2", "compute/memory overlap"],
        area_rows,
    ))


if __name__ == "__main__":
    main(*sys.argv[1:3])
