"""Figure 14: Tensor-Cores speedup with Mokey used as memory compression only.

Two deployments: off-chip compression only (OC) and off-chip + on-chip
(OC+ON).  Paper claim: OC averages ~3.9x (256KB) to ~4.3x (4MB); OC+ON
adds the most on top of OC when buffers are small.
"""

from conftest import BUFFER_SWEEP, KB, geomean

from repro.accelerator.compression_modes import COMPRESSION_MODE_DESIGNS as MODE_DESIGNS
from repro.accelerator.compression_modes import CompressionMode
from repro.analysis.reporting import format_table

MODES = (CompressionMode.OFF_CHIP, CompressionMode.OFF_CHIP_AND_ON_CHIP)


def _compute(campaign, workloads):
    results = {mode: {} for mode in MODES}
    for name in workloads:
        for size in BUFFER_SWEEP:
            base = campaign.result(design="tensor-cores", workload=name, buffer_bytes=size)
            for mode in MODES:
                compressed = campaign.result(
                    design=MODE_DESIGNS[mode], workload=name, buffer_bytes=size
                )
                results[mode].setdefault(name, {})[size] = compressed.speedup_over(base)
    return results


def test_fig14_memory_compression_speedup(benchmark, compression_campaign, workloads):
    results = benchmark.pedantic(
        lambda: _compute(compression_campaign, workloads), rounds=1, iterations=1
    )

    for mode in MODES:
        headers = ["workload"] + [f"{size // KB}KB" for size in BUFFER_SWEEP]
        rows = [
            [name] + [f"{per[s]:.2f}x" for s in BUFFER_SWEEP]
            for name, per in results[mode].items()
        ]
        means = {s: geomean(per[s] for per in results[mode].values()) for s in BUFFER_SWEEP}
        rows.append(["GEOMEAN"] + [f"{means[s]:.2f}x" for s in BUFFER_SWEEP])
        print(f"\nFigure 14 ({mode.value.upper()}) — Tensor Cores speedup with Mokey compression")
        print(format_table(headers, rows))

    oc = results[CompressionMode.OFF_CHIP]
    ocon = results[CompressionMode.OFF_CHIP_AND_ON_CHIP]
    # Compression never hurts and gives a clear average gain.
    for per in oc.values():
        assert all(v > 1.0 for v in per.values())
    assert geomean(per[256 * KB] for per in oc.values()) > 1.5
    # On-chip compression adds the most on top of OC at the smallest buffers.
    small_gain = geomean(ocon[n][256 * KB] / oc[n][256 * KB] for n in oc)
    large_gain = geomean(ocon[n][BUFFER_SWEEP[-1]] / oc[n][BUFFER_SWEEP[-1]] for n in oc)
    assert small_gain >= large_gain
    assert small_gain > 1.05
