"""Figure 10: Mokey accelerator speedup over the Tensor-Cores baseline.

Paper claim: ~11x average with small buffers, ~4.1x with 4MB buffers.
Our analytical baseline is more reuse-friendly than the paper's simulated
one, so the measured factors are smaller; the shape (Mokey always faster,
advantage shrinking as buffers grow) is asserted.
"""

from conftest import BUFFER_SWEEP, KB, geomean

from repro.analysis.reporting import format_table

PAPER_SMALL_BUFFER_SPEEDUP = 11.0
PAPER_LARGE_BUFFER_SPEEDUP = 4.1


def _compute(campaign, workloads):
    speedups = {}
    for name in workloads:
        speedups[name] = {}
        for size in BUFFER_SWEEP:
            base = campaign.result(design="tensor-cores", workload=name, buffer_bytes=size)
            mokey = campaign.result(design="mokey", workload=name, buffer_bytes=size)
            speedups[name][size] = mokey.speedup_over(base)
    return speedups


def test_fig10_mokey_speedup_over_tensor_cores(benchmark, paper_campaign, workloads):
    speedups = benchmark.pedantic(
        lambda: _compute(paper_campaign, workloads), rounds=1, iterations=1
    )

    headers = ["workload"] + [f"{size // KB}KB" for size in BUFFER_SWEEP]
    rows = [
        [name] + [f"{per_buffer[s]:.2f}x" for s in BUFFER_SWEEP]
        for name, per_buffer in speedups.items()
    ]
    means = {s: geomean(per[s] for per in speedups.values()) for s in BUFFER_SWEEP}
    rows.append(["GEOMEAN"] + [f"{means[s]:.2f}x" for s in BUFFER_SWEEP])
    print("\nFigure 10 — Mokey speedup over Tensor Cores")
    print(format_table(headers, rows))
    print(
        f"paper averages: {PAPER_SMALL_BUFFER_SPEEDUP}x (small buffers) ... "
        f"{PAPER_LARGE_BUFFER_SPEEDUP}x (4MB); measured geomeans: "
        f"{means[BUFFER_SWEEP[0]]:.2f}x ... {means[BUFFER_SWEEP[-1]]:.2f}x"
    )

    # Mokey wins everywhere.
    for name, per_buffer in speedups.items():
        for size, speedup in per_buffer.items():
            assert speedup > 1.0, (name, size)
    # The advantage is largest with the smallest buffers and shrinks with size.
    assert means[BUFFER_SWEEP[0]] > means[BUFFER_SWEEP[-1]]
    assert means[BUFFER_SWEEP[0]] > 3.0
