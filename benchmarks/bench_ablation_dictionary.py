"""Ablations on Mokey's design choices (Section II discussion).

Two ablations the paper's design rests on:

1. **Dictionary size** — 16 entries (4-bit) is the paper's sweet spot: an
   8-entry dictionary loses noticeably more fidelity, a 32-entry dictionary
   buys little while costing an extra index bit everywhere.
2. **Outlier handling** — dropping the separate outlier dictionary (clamping
   outliers into the Gaussian range) hurts reconstruction badly, which is
   why the paper pays for the second dictionary and pointer stream.
"""

import numpy as np

from conftest import TINY_MODE

from repro.analysis.reporting import format_table
from repro.core.golden_dictionary import generate_golden_dictionary
from repro.core.quantizer import MokeyQuantizer
from repro.core.tensor_dictionary import TensorDictionary

TENSOR_SIZE = 20_000 if TINY_MODE else 100_000
SWEEP_SAMPLES = 5_000 if TINY_MODE else 20_000
SWEEP_REPEATS = 1 if TINY_MODE else 2


def _weight_like(n=TENSOR_SIZE, seed=5):
    rng = np.random.default_rng(seed)
    values = rng.normal(0, 0.02, n)
    outliers = int(0.015 * n)
    values[rng.choice(n, outliers, replace=False)] = rng.choice([-1, 1], outliers) * 0.25
    return values


def _relative_error(values, reconstruction):
    return float(np.abs(reconstruction - values).mean() / np.abs(values).mean())


def _dictionary_size_sweep():
    values = _weight_like()
    results = {}
    for entries in (8, 16, 32):
        golden = generate_golden_dictionary(
            num_entries=entries, num_samples=SWEEP_SAMPLES, num_repeats=SWEEP_REPEATS
        )
        quantizer = MokeyQuantizer(golden)
        quantized = quantizer.quantize(values, "w")
        results[entries] = {
            "bits": golden.bits_per_value,
            "error": _relative_error(values, quantized.dequantize()),
            "compression": quantized.compression_ratio(32),
        }
    return results


def test_ablation_dictionary_size(benchmark):
    results = benchmark.pedantic(_dictionary_size_sweep, rounds=1, iterations=1)

    rows = [
        [entries, data["bits"], f"{data['error']:.4f}", f"{data['compression']:.2f}x"]
        for entries, data in results.items()
    ]
    print("\nAblation — dictionary size (weight-like tensor)")
    print(format_table(["entries", "bits/value", "relative error", "compression vs FP32"], rows))

    # More entries -> lower error, but with diminishing returns beyond 16.
    assert results[8]["error"] > results[16]["error"] > results[32]["error"]
    gain_8_to_16 = results[8]["error"] - results[16]["error"]
    gain_16_to_32 = results[16]["error"] - results[32]["error"]
    assert gain_8_to_16 > gain_16_to_32
    # The 16-entry point keeps the ~8x compression the paper reports.
    assert results[16]["compression"] > results[32]["compression"]


def test_ablation_outlier_dictionary(benchmark, golden):
    values = _weight_like(seed=11)

    def _run():
        with_outliers = TensorDictionary.fit("w", golden, values=values)
        without_outliers = TensorDictionary.fit(
            "w-clamped", golden, values=values, max_outlier_entries=0
        )
        return (
            _relative_error(values, with_outliers.quantize_dequantize(values)),
            _relative_error(values, without_outliers.quantize_dequantize(values)),
        )

    error_with, error_without = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\nAblation — outlier dictionary")
    print(format_table(
        ["configuration", "relative error"],
        [["Gaussian + outlier dictionaries", f"{error_with:.4f}"],
         ["Gaussian only (outliers clamped)", f"{error_without:.4f}"]],
    ))

    # Dropping outlier handling increases the reconstruction error.
    assert error_without > error_with
