"""Figure 12: Mokey accelerator speedup over the GOBO accelerator.

Paper claim: Mokey is faster than GOBO everywhere; the gap is widest for
long-sequence (activation-heavy) workloads and small buffers, because GOBO
keeps activations in FP16.
"""

from conftest import BUFFER_SWEEP, KB, geomean

from repro.analysis.reporting import format_table


def _compute(campaign, workloads):
    speedups = {}
    for name in workloads:
        speedups[name] = {}
        for size in BUFFER_SWEEP:
            gobo = campaign.result(design="gobo", workload=name, buffer_bytes=size)
            mokey = campaign.result(design="mokey", workload=name, buffer_bytes=size)
            speedups[name][size] = mokey.speedup_over(gobo)
    return speedups


def test_fig12_mokey_speedup_over_gobo(benchmark, paper_campaign, workloads):
    speedups = benchmark.pedantic(
        lambda: _compute(paper_campaign, workloads), rounds=1, iterations=1
    )

    headers = ["workload"] + [f"{size // KB}KB" for size in BUFFER_SWEEP]
    rows = [
        [name] + [f"{per_buffer[s]:.2f}x" for s in BUFFER_SWEEP]
        for name, per_buffer in speedups.items()
    ]
    means = {s: geomean(per[s] for per in speedups.values()) for s in BUFFER_SWEEP}
    rows.append(["GEOMEAN"] + [f"{means[s]:.2f}x" for s in BUFFER_SWEEP])
    print("\nFigure 12 — Mokey speedup over the GOBO accelerator")
    print(format_table(headers, rows))

    # Mokey is at least as fast as GOBO for every configuration.
    for name, per_buffer in speedups.items():
        for size, value in per_buffer.items():
            assert value >= 0.95, (name, size)
    # On average Mokey is clearly ahead, most at small buffers.
    assert means[BUFFER_SWEEP[0]] > 1.3
    assert means[BUFFER_SWEEP[0]] >= means[BUFFER_SWEEP[-1]]
    # SQuAD (long sequences) benefits at least as much as MNLI.
    squad = speedups["bert-large/squad/seq384"][256 * KB]
    mnli = speedups["bert-large/mnli/seq128"][256 * KB]
    assert squad >= 0.9 * mnli
