"""Figure 1: BERT-Large weight vs activation footprint over sequence length.

Paper claim: for sequences beyond ~512 tokens, activations dominate the
total memory footprint (motivating activation quantization).
"""

from repro.analysis.footprint import footprint_vs_sequence_length
from repro.analysis.reporting import format_table

SEQUENCE_LENGTHS = (128, 256, 512, 1024, 2048)


def _compute():
    return footprint_vs_sequence_length("bert-large", SEQUENCE_LENGTHS, bits_per_value=16)


def test_fig01_activation_footprint_dominates_long_sequences(benchmark):
    series = benchmark.pedantic(_compute, rounds=1, iterations=1)

    rows = [
        [point.label, f"{point.weight_mb:.0f}", f"{point.activation_mb:.0f}",
         f"{100 * point.activation_share:.0f}%"]
        for point in series
    ]
    print("\nFigure 1 — BERT-Large footprint (FP16), weights vs activations")
    print(format_table(["config", "weights (MB)", "activations (MB)", "activation share"], rows))

    by_seq = dict(zip(SEQUENCE_LENGTHS, series))
    # Weights are constant; activations grow super-linearly with sequence length.
    assert by_seq[2048].activation_mb > 10 * by_seq[256].activation_mb
    # Paper shape: activations are the minority at 128 tokens and the clear
    # majority beyond 512 tokens.
    assert by_seq[128].activation_share < 0.5
    assert by_seq[1024].activation_share > 0.5
    assert by_seq[2048].activation_share > 0.6
