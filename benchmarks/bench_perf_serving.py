"""Perf benchmark of the serving-trace replay loop (requests per second).

Writes the ``serving`` section of ``BENCH_PERF.json``: how fast the
deterministic event loop in :func:`repro.serving.replay.replay_trace`
replays a Poisson arrival trace once every batch-shape cost is memoised.
The replay is the per-request hot path of ``repro serve-sim`` — the whole
design bet is that a million-request trace costs only ``max_batch`` real
simulations plus a cheap pure loop, so the loop's throughput floor *is*
the feature.  A second measurement replays the same trace through a
fresh :class:`~repro.serving.spec.ServingSpec` run to pin down the
end-to-end invariant: real simulator invocations never exceed the number
of distinct formed batch sizes.
"""

import time

from conftest import TINY_MODE, record_perf

from repro.experiments import ResultCache
from repro.serving import (
    BatchCostModel,
    PolicySpec,
    ServingSpec,
    TraceSpec,
    generate_trace,
    replay_trace,
    run_serving,
)

if TINY_MODE:
    NUM_REQUESTS = 20_000
    REPLAY_FLOOR_RPS = 5_000.0
else:
    NUM_REQUESTS = 200_000
    REPLAY_FLOOR_RPS = 20_000.0

TRACE = TraceSpec(kind="poisson", rate_rps=150.0, num_requests=NUM_REQUESTS, seed=11)
POLICY = PolicySpec(kind="timeout", max_batch=8, timeout_ms=10.0)


def test_perf_serving_replay_throughput():
    spec = ServingSpec(
        name="perf-serving",
        schemes=("mokey-oc",),
        trace=TRACE,
        policy=POLICY,
    )
    arrivals = generate_trace(TRACE)
    (base,) = spec.combos()

    # Pre-warm: every formable batch size (1..max_batch) simulates once,
    # so the measured loop is pure replay — no simulator on the clock.
    model = BatchCostModel(base, cache=ResultCache())
    for size in range(1, POLICY.max_batch + 1):
        model.cost(size)
    warm_sims = model.simulated

    started = time.perf_counter()
    replay = replay_trace(arrivals, POLICY, model.cost)
    replay_seconds = time.perf_counter() - started
    metrics = replay.metrics
    rate = metrics.requests / replay_seconds
    assert metrics.requests == NUM_REQUESTS
    # Warm model: the replay itself must not touch the simulator.
    assert model.simulated == warm_sims

    # End-to-end invariant through the spec layer (fresh cache): the
    # real simulator runs at most once per distinct formed batch size.
    result = run_serving(spec.with_execution(executor="serial", store=None))
    (record,) = result.records
    assert record.simulated <= record.metrics.distinct_batch_sizes
    assert record.metrics.to_dict() == metrics.to_dict()

    print(
        f"\nserving replay: {metrics.requests} requests in "
        f"{replay_seconds * 1e3:.1f} ms ({rate:.0f}/s), "
        f"{metrics.batches} batches, {metrics.distinct_batch_sizes} distinct "
        f"shapes, {record.simulated} sims, p50 {metrics.p50_ms:.1f} ms, "
        f"p99 {metrics.p99_ms:.1f} ms"
    )
    record_perf(
        "serving",
        {
            "requests": metrics.requests,
            "replay_seconds": replay_seconds,
            "requests_per_second": rate,
            "batches": metrics.batches,
            "distinct_batch_sizes": metrics.distinct_batch_sizes,
            "sim_invocations": record.simulated,
            "p50_ms": metrics.p50_ms,
            "p99_ms": metrics.p99_ms,
        },
    )
    # The replay loop is numpy-sliced per batch, not per request; anything
    # below this floor means per-request Python work crept into the loop.
    assert rate > REPLAY_FLOOR_RPS
