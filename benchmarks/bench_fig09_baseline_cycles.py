"""Figure 9: baseline Tensor-Cores accelerator inference cycle counts.

Reports the baseline's cycle counts for every model/task across the
on-chip buffer sweep and checks the figure's qualitative content: larger
buffers reduce execution time, and the long-sequence (SQuAD) and deeper
(DeBERTa-XL) workloads are the most expensive.
"""

from conftest import BUFFER_SWEEP, KB

from repro.analysis.reporting import format_table


def _compute(campaign, workloads):
    return {
        name: {
            size: campaign.result(design="tensor-cores", workload=name, buffer_bytes=size)
            for size in BUFFER_SWEEP
        }
        for name in workloads
    }


def test_fig09_baseline_cycle_counts(benchmark, paper_campaign, workloads):
    results = benchmark.pedantic(
        lambda: _compute(paper_campaign, workloads), rounds=1, iterations=1
    )

    headers = ["workload"] + [f"{size // KB}KB" for size in BUFFER_SWEEP]
    rows = []
    for name, per_buffer in results.items():
        rows.append([name] + [f"{per_buffer[s].total_cycles / 1e6:.0f}M" for s in BUFFER_SWEEP])
    print("\nFigure 9 — Tensor-Cores baseline inference cycles")
    print(format_table(headers, rows))

    for name, per_buffer in results.items():
        cycles = [per_buffer[size].total_cycles for size in BUFFER_SWEEP]
        # Larger buffers never hurt, and help substantially overall.
        assert all(a >= b - 1e-6 for a, b in zip(cycles, cycles[1:])), name
        assert cycles[0] > 1.2 * cycles[-1], name

    # SQuAD (seq 384) costs more than MNLI (seq 128) for the same model.
    assert (
        results["bert-large/squad/seq384"][256 * KB].total_cycles
        > results["bert-large/mnli/seq128"][256 * KB].total_cycles
    )
    # DeBERTa-XL (48 layers) is the most expensive MNLI workload.
    assert (
        results["deberta-xl/mnli/seq128"][256 * KB].total_cycles
        > results["roberta-large/mnli/seq128"][256 * KB].total_cycles
    )
