"""Table IV: comparing quantization methods for BERT-Base on MNLI.

For every method (FP32 baseline, Q8BERT, I-BERT, Q-BERT, GOBO,
TernaryBERT, Mokey): bit widths, measured fidelity, whether computation is
fixed-point, whether the method is post-training, and the total footprint
compression ratio for the BERT-Base/MNLI workload.

Paper ordering that must hold: Mokey achieves the best accuracy among the
sub-8-bit methods while compressing ~7.9x and using integer-only compute
without fine-tuning.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.baselines import (
    GoboQuantizer,
    IBertQuantizer,
    Q8BertQuantizer,
    QBertQuantizer,
    TernaryBertQuantizer,
)
from repro.core.model_quantizer import QuantizationMode
from repro.memory.compression import method_footprint
from repro.transformer.model_zoo import bert_base, build_simulation_model
from repro.transformer.tasks import evaluate, generate_inputs, label_with_model

# Paper Table IV: accuracy error vs FP32 and compression ratio.
PAPER = {
    "FP32": (0.0, 1.0),
    "Q8BERT": (0.69, 4.0),
    "I-BERT": (0.32, 4.0),
    "Q-BERT": (0.55, 6.9),
    "GOBO": (0.68, 4.1),
    "TernaryBERT": (1.14, 10.8),
    "Mokey": (0.22, 7.9),
}


def _compute(model_quantizer):
    model = build_simulation_model("bert-base", task="mnli", scale=16, max_layers=2, seed=1)
    pool = label_with_model(
        model, generate_inputs(model.config.vocab_size, 24, 56, "classification", seed=2)
    )
    calibration = pool.subset(np.arange(8))
    evaluation = pool.subset(np.arange(8, 56))
    full_config = bert_base()
    fp32 = method_footprint(full_config, 128, 32, 32, "FP32")

    rows = {}
    rows["FP32"] = {
        "w_bits": 32, "a_bits": 32, "score": evaluate(model, evaluation),
        "int": False, "post": True, "ratio": 1.0,
    }

    baselines = [
        Q8BertQuantizer(), IBertQuantizer(), QBertQuantizer(),
        GoboQuantizer(), TernaryBertQuantizer(),
    ]
    for baseline in baselines:
        result = baseline.quantize(model, calibration=calibration)
        hook = result.activation_hook_factory() if result.activation_hook_factory else None
        props = result.properties
        footprint = method_footprint(full_config, 128, props.weight_bits, props.activation_bits)
        rows[props.name] = {
            "w_bits": props.weight_bits,
            "a_bits": props.activation_bits,
            "score": evaluate(result.model, evaluation, hook=hook),
            "int": props.integer_compute,
            "post": props.post_training,
            "ratio": fp32.total_bits / footprint.total_bits,
        }

    mokey = model_quantizer.quantize(
        model, mode=QuantizationMode.WEIGHTS_AND_ACTIVATIONS, profiling_dataset=calibration
    )
    mokey_footprint = method_footprint(full_config, 128, 4.4, 4.4)
    rows["Mokey"] = {
        "w_bits": 4, "a_bits": 4,
        "score": evaluate(mokey.model, evaluation, hook=mokey.activation_hook()),
        "int": True, "post": True,
        "ratio": fp32.total_bits / mokey_footprint.total_bits,
    }
    return rows


def test_table4_method_comparison(benchmark, model_quantizer):
    rows = benchmark.pedantic(lambda: _compute(model_quantizer), rounds=1, iterations=1)

    headers = ["method", "W bits", "A bits", "fidelity", "INT", "post-training",
               "compression (paper)"]
    table = []
    for name, data in rows.items():
        table.append([
            name, data["w_bits"], data["a_bits"], f"{data['score']:.1f}",
            "yes" if data["int"] else "no", "yes" if data["post"] else "no",
            f"{data['ratio']:.1f}x ({PAPER[name][1]}x)",
        ])
    print("\nTable IV — quantization method comparison, BERT-Base / MNLI")
    print(format_table(headers, table))

    # Compression ratios follow the paper's ordering:
    # TernaryBERT > Mokey > Q-BERT > Q8BERT/I-BERT/GOBO > FP32.
    assert rows["TernaryBERT"]["ratio"] > rows["Mokey"]["ratio"]
    assert rows["Mokey"]["ratio"] > rows["Q-BERT"]["ratio"] * 0.95
    assert rows["Mokey"]["ratio"] > rows["Q8BERT"]["ratio"]
    assert 6.5 < rows["Mokey"]["ratio"] < 8.5
    assert abs(rows["Q8BERT"]["ratio"] - 4.0) < 0.3

    # Mokey and GOBO are the only post-training methods; Mokey and I-BERT the
    # only integer-compute ones — and only Mokey is both.
    assert rows["Mokey"]["post"] and rows["Mokey"]["int"]
    assert rows["GOBO"]["post"] and not rows["GOBO"]["int"]
    assert rows["I-BERT"]["int"] and not rows["I-BERT"]["post"]

    # Fidelity ordering: Mokey stays close to the 8-bit methods and beats the
    # aggressive TernaryBERT post-training ternarisation clearly.
    assert rows["Mokey"]["score"] >= rows["TernaryBERT"]["score"]
    assert rows["Mokey"]["score"] >= rows["Q-BERT"]["score"] - 10.0
    assert rows["FP32"]["score"] >= 99.0
