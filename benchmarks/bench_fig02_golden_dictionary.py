"""Figure 2: Golden Dictionary generation from a random Gaussian distribution.

Regenerates the Golden Dictionary with agglomerative clustering over a
50,000-sample N(0, 1) distribution and reports the histogram mass captured
by each centroid.
"""

import numpy as np

from conftest import TINY_MODE

from repro.analysis.reporting import format_table
from repro.core.agglomerative import agglomerative_cluster_1d
from repro.core.golden_dictionary import generate_golden_dictionary

NUM_SAMPLES = 5_000 if TINY_MODE else 50_000
NUM_REPEATS = 1 if TINY_MODE else 4


def _compute():
    golden = generate_golden_dictionary(num_samples=NUM_SAMPLES, num_repeats=NUM_REPEATS, seed=0)
    rng = np.random.default_rng(0)
    samples = np.abs(rng.normal(0.0, 1.0, NUM_SAMPLES))
    clustering = agglomerative_cluster_1d(samples, 8)
    return golden, clustering


def test_fig02_golden_dictionary_generation(benchmark):
    golden, clustering = benchmark.pedantic(_compute, rounds=1, iterations=1)

    rows = [
        [index, f"{centroid:.3f}", int(size)]
        for index, (centroid, size) in enumerate(zip(clustering.centroids, clustering.sizes))
    ]
    print("\nFigure 2 — Golden Dictionary centroids (positive half, N(0,1) magnitudes)")
    print(format_table(["index", "centroid (sigma)", "samples in cluster"], rows))
    print(f"Averaged Golden Dictionary half: {np.round(golden.half, 3).tolist()}")

    # Shape assertions: 8 symmetric magnitudes, dense near zero, sparse tail.
    assert golden.num_half_entries == 8
    assert golden.half[0] < 0.3
    assert 1.8 < golden.half[-1] < 3.5
    assert clustering.sizes[0] > clustering.sizes[-1]
    # The full 16-entry dictionary is symmetric around zero (paper property 7).
    assert np.allclose(golden.full(), -golden.full()[::-1])
