"""Table II: area, cycle count and energy for BERT-Base with 512KB buffers.

Compares the three accelerators on BERT-Base/MNLI at the 512KB buffer
point.  Paper values: Tensor Cores 16.1mm^2 / 167M / 0.36J, GOBO
15.9mm^2 / 52M / 0.17J, Mokey 14.8mm^2 / 29M / 0.09J.
"""

from conftest import KB

from repro.accelerator.workloads import model_workload
from repro.analysis.reporting import format_table

PAPER = {
    "tensor-cores": (16.1, 167e6, 0.36),
    "gobo": (15.9, 52e6, 0.17),
    "mokey": (14.8, 29e6, 0.09),
}
BUFFER = 512 * KB


def _compute(simulators):
    workload = model_workload("bert-base", "mnli")
    return {name: sim.simulate(workload, BUFFER) for name, sim in simulators.items()}


def test_table2_bert_base_summary(benchmark, simulators):
    results = benchmark.pedantic(lambda: _compute(simulators), rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        paper_area, paper_cycles, paper_energy = PAPER[name]
        rows.append([
            name,
            f"{result.area.compute:.1f} ({paper_area})",
            f"{result.total_cycles / 1e6:.1f}M ({paper_cycles / 1e6:.0f}M)",
            f"{result.energy.total:.3f}J ({paper_energy}J)",
        ])
    print("\nTable II — BERT-Base @ 512KB: measured (paper)")
    print(format_table(["architecture", "compute area mm^2", "cycles", "energy"], rows))

    tc, gobo, mokey = results["tensor-cores"], results["gobo"], results["mokey"]
    # Compute areas are calibrated to the paper's values.
    for name, result in results.items():
        assert abs(result.area.compute - PAPER[name][0]) < 0.3, name
    # Orderings of Table II hold: TC slowest and most energy hungry, Mokey best.
    assert tc.total_cycles > gobo.total_cycles > mokey.total_cycles
    assert tc.energy.total > gobo.energy.total > mokey.energy.total
    # Rough factors: Mokey several times faster and >2.5x more efficient than TC.
    assert tc.total_cycles / mokey.total_cycles > 3.0
    assert tc.energy.total / mokey.energy.total > 2.5
