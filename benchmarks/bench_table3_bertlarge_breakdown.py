"""Table III: area / performance / energy breakdown, BERT-Large on SQuAD.

Compares Tensor Cores and Mokey at 256KB, 512KB and 1MB buffers, breaking
each result into the rows the paper reports: buffer/compute/total area,
memory/compute/total cycles, compute-memory overlap, and the
DRAM/SRAM/compute energy split.
"""

from conftest import KB, MB

from repro.accelerator.workloads import model_workload
from repro.analysis.reporting import format_table

BUFFERS = (256 * KB, 512 * KB, 1 * MB)


def _compute(simulators):
    workload = model_workload("bert-large", "squad")
    out = {}
    for name in ("tensor-cores", "mokey"):
        out[name] = {size: simulators[name].simulate(workload, size) for size in BUFFERS}
    return out


def test_table3_bert_large_squad_breakdown(benchmark, simulators):
    results = benchmark.pedantic(lambda: _compute(simulators), rounds=1, iterations=1)

    headers = ["quantity"] + [
        f"{name}@{size // KB}KB" for size in BUFFERS for name in ("tensor-cores", "mokey")
    ]
    quantities = [
        ("buffer area (mm^2)", lambda r: f"{r.area.buffer:.1f}"),
        ("compute area (mm^2)", lambda r: f"{r.area.compute:.1f}"),
        ("total area (mm^2)", lambda r: f"{r.area.total:.1f}"),
        ("memory cycles (M)", lambda r: f"{r.memory_cycles / 1e6:.0f}"),
        ("compute cycles (M)", lambda r: f"{r.compute_cycles / 1e6:.0f}"),
        ("total cycles (M)", lambda r: f"{r.total_cycles / 1e6:.0f}"),
        ("overlap (%)", lambda r: f"{100 * r.overlap_fraction:.0f}"),
        ("DRAM energy (J)", lambda r: f"{r.energy.dram:.2f}"),
        ("SRAM energy (J)", lambda r: f"{r.energy.sram:.3f}"),
        ("compute energy (J)", lambda r: f"{r.energy.compute:.2f}"),
        ("total energy (J)", lambda r: f"{r.energy.total:.2f}"),
    ]
    rows = []
    for label, getter in quantities:
        row = [label]
        for size in BUFFERS:
            for name in ("tensor-cores", "mokey"):
                row.append(getter(results[name][size]))
        rows.append(row)
    print("\nTable III — BERT-Large / SQuAD breakdown")
    print(format_table(headers, rows))

    for size in BUFFERS:
        tc, mokey = results["tensor-cores"][size], results["mokey"][size]
        # Mokey's chip is smaller at equal buffer capacity (narrower buffers,
        # smaller PEs) and its total area advantage shrinks as buffers grow.
        assert mokey.area.total < tc.area.total
        assert mokey.area.buffer < tc.area.buffer
        # Memory cycles drop by more than the 16b->4.4b ratio would alone,
        # because the effective buffer capacity also grows.
        assert mokey.memory_cycles < tc.memory_cycles / 2.5
        # Mokey is faster and uses less energy in every component.
        assert mokey.total_cycles < tc.total_cycles
        assert mokey.energy.dram < tc.energy.dram
        assert mokey.energy.compute < tc.energy.compute
        assert mokey.energy.total < tc.energy.total

    # The baseline's memory-boundedness eases with larger buffers.
    tc_ratio_small = results["tensor-cores"][256 * KB].memory_cycles / max(
        results["tensor-cores"][256 * KB].compute_cycles, 1.0
    )
    tc_ratio_large = results["tensor-cores"][1 * MB].memory_cycles / max(
        results["tensor-cores"][1 * MB].compute_cycles, 1.0
    )
    assert tc_ratio_small > tc_ratio_large
