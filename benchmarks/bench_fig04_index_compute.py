"""Figure 4 / Eq. 3-6: index-domain MAC decomposition.

Measures the index-domain dot product against the decoded (centroid-domain)
dot product and reports the breakdown into the SoI / SoA / SoW / PoM terms,
plus the operation mix (narrow additions vs outlier MACs) that motivates
the hardware design.
"""

import numpy as np
import pytest

from conftest import TINY_MODE

from repro.analysis.reporting import format_table
from repro.core.index_compute import index_domain_dot

VECTOR_LENGTH = 1024 if TINY_MODE else 4096


def _build_operands(mokey_quantizer, n=VECTOR_LENGTH):
    rng = np.random.default_rng(42)
    weights = rng.normal(0, 0.02, n)
    weights[rng.choice(n, int(0.015 * n), replace=False)] = (
        rng.choice([-1, 1], int(0.015 * n)) * 0.25
    )
    activations = rng.normal(0.3, 1.8, n)
    activations[rng.choice(n, int(0.045 * n), replace=False)] = (
        rng.choice([-1, 1], int(0.045 * n)) * 40.0
    )
    return (
        mokey_quantizer.quantize(activations, "activation"),
        mokey_quantizer.quantize(weights, "weight"),
    )


def test_fig04_index_domain_decomposition(benchmark, mokey_quantizer):
    aq, wq = _build_operands(mokey_quantizer)
    result = benchmark(lambda: index_domain_dot(aq, wq))

    reference = float(
        aq.dictionary.decode(aq.encoded, apply_fixed_point=False)
        @ wq.dictionary.decode(wq.encoded, apply_fixed_point=False)
    )
    rows = [[name, f"{value:.6f}"] for name, value in result.terms().items()]
    rows.append(["total (index domain)", f"{result.value:.6f}"])
    rows.append(["reference (centroid domain)", f"{reference:.6f}"])
    print("\nFigure 4 — index-domain decomposition of one output activation")
    print(format_table(["term", "value"], rows))
    print(
        f"operation mix: {result.stats.gaussian_pairs} narrow index additions, "
        f"{result.stats.outlier_pairs} outlier MACs, "
        f"{result.stats.post_processing_macs} post-processing MACs"
    )

    # Exactness of the decomposition (the paper's core arithmetic claim).
    assert result.value == pytest.approx(reference, rel=1e-9)
    # The bulk of the work is narrow additions; outlier MACs are <6% of pairs
    # and post-processing is a constant handful per output.
    assert result.stats.outlier_pairs < 0.08 * result.stats.total_pairs
    fixed_post_processing = result.stats.post_processing_macs - result.stats.outlier_pairs
    assert fixed_post_processing < 0.05 * result.stats.gaussian_pairs
