"""Figure 4 / Eq. 3-6: index-domain MAC decomposition.

Measures the index-domain dot product against the decoded (centroid-domain)
dot product and reports the breakdown into the SoI / SoA / SoW / PoM terms,
plus the operation mix (narrow additions vs outlier MACs) that motivates
the hardware design.  The layer-scale tests exercise the same arithmetic
through the vectorized engine (scalar vs vectorized on a whole GEMM) and
show the measured operation mix flowing into the accelerator simulator
next to the scheme's analytic counts.
"""

import numpy as np
import pytest

from conftest import TINY_MODE

from repro.accelerator.mokey_accel import mokey_design
from repro.accelerator.simulator import AcceleratorSimulator
from repro.accelerator.workloads import model_workload
from repro.analysis.reporting import format_table
from repro.core.index_compute import (
    IndexDomainEngine,
    VectorizedIndexDomainEngine,
    index_domain_dot,
)
from repro.transformer.index_execution import execute_encoder_layer

VECTOR_LENGTH = 1024 if TINY_MODE else 4096
# Layer-scale GEMM for the scalar-vs-vectorized comparison; the scalar
# reference is O(M*N) Python dots, so tiny mode shrinks the output plane.
GEMM_SHAPE = (16, 128, 24) if TINY_MODE else (64, 768, 96)
MEASURED_SEQ = 16 if TINY_MODE else 32


def _build_operands(mokey_quantizer, n=VECTOR_LENGTH):
    rng = np.random.default_rng(42)
    weights = rng.normal(0, 0.02, n)
    weights[rng.choice(n, int(0.015 * n), replace=False)] = (
        rng.choice([-1, 1], int(0.015 * n)) * 0.25
    )
    activations = rng.normal(0.3, 1.8, n)
    activations[rng.choice(n, int(0.045 * n), replace=False)] = (
        rng.choice([-1, 1], int(0.045 * n)) * 40.0
    )
    return (
        mokey_quantizer.quantize(activations, "activation"),
        mokey_quantizer.quantize(weights, "weight"),
    )


def test_fig04_index_domain_decomposition(benchmark, mokey_quantizer):
    aq, wq = _build_operands(mokey_quantizer)
    result = benchmark(lambda: index_domain_dot(aq, wq))

    reference = float(
        aq.dictionary.decode(aq.encoded, apply_fixed_point=False)
        @ wq.dictionary.decode(wq.encoded, apply_fixed_point=False)
    )
    rows = [[name, f"{value:.6f}"] for name, value in result.terms().items()]
    rows.append(["total (index domain)", f"{result.value:.6f}"])
    rows.append(["reference (centroid domain)", f"{reference:.6f}"])
    print("\nFigure 4 — index-domain decomposition of one output activation")
    print(format_table(["term", "value"], rows))
    print(
        f"operation mix: {result.stats.gaussian_pairs} narrow index additions, "
        f"{result.stats.outlier_pairs} outlier MACs, "
        f"{result.stats.post_processing_macs} post-processing MACs"
    )

    # Exactness of the decomposition (the paper's core arithmetic claim).
    assert result.value == pytest.approx(reference, rel=1e-9)
    # The bulk of the work is narrow additions; outlier MACs are <6% of pairs
    # and post-processing is a constant handful per output.
    assert result.stats.outlier_pairs < 0.08 * result.stats.total_pairs
    fixed_post_processing = result.stats.post_processing_macs - result.stats.outlier_pairs
    assert fixed_post_processing < 0.05 * result.stats.gaussian_pairs


def test_fig04_vectorized_engine_matches_scalar_at_gemm_scale(mokey_quantizer):
    """The vectorized engine reproduces the scalar engine on a whole GEMM:
    equal values to fp round-off and bit-identical operation statistics."""
    import time

    m, k, n = GEMM_SHAPE
    rng = np.random.default_rng(11)
    activations = rng.normal(0.3, 1.8, (m, k))
    flat = activations.ravel()
    picks = rng.choice(flat.size, max(1, int(0.045 * flat.size)), replace=False)
    flat[picks] = rng.choice([-1, 1], picks.size) * 40.0
    weights = rng.normal(0, 0.02, (k, n))
    aq = mokey_quantizer.quantize(activations, "activation")
    wq = mokey_quantizer.quantize(weights, "weight")

    started = time.perf_counter()
    scalar_values, scalar_stats = IndexDomainEngine(aq.dictionary, wq.dictionary).matmul(aq, wq)
    scalar_seconds = time.perf_counter() - started
    started = time.perf_counter()
    result = VectorizedIndexDomainEngine(aq.dictionary, wq.dictionary).matmul(aq, wq)
    vector_seconds = time.perf_counter() - started

    print(
        f"\nFigure 4 (layer scale) — {m}x{k} @ {k}x{n}: scalar {scalar_seconds:.2f}s, "
        f"vectorized {vector_seconds * 1e3:.1f} ms "
        f"({scalar_seconds / vector_seconds:.0f}x)"
    )
    assert np.allclose(scalar_values, result.values, rtol=1e-9, atol=1e-8)
    assert result.stats == scalar_stats
    assert scalar_seconds / vector_seconds > 5.0  # loose; bench_perf asserts the real floor


def test_fig04_measured_operation_mix_flows_into_simulator(mokey_quantizer):
    """Measured layer stats land in the simulation detail next to the
    analytic (assumed-outlier-rate) counts the Mokey scheme reports."""
    measurement = execute_encoder_layer(
        "bert-base", sequence_length=MEASURED_SEQ, quantizer=mokey_quantizer
    )
    workload = model_workload("bert-base", sequence_length=MEASURED_SEQ)
    result = AcceleratorSimulator(mokey_design()).simulate(
        workload, 512 * 1024, measured_stats=measurement.stats
    )

    analytic_pairs = result.detail["gaussian_pairs"] + result.detail["outlier_pairs"]
    measured_pairs = result.detail["measured_gaussian_pairs"] + result.detail[
        "measured_outlier_pairs"
    ]
    analytic_fraction = result.detail["outlier_pairs"] / analytic_pairs
    measured_fraction = result.detail["measured_outlier_pair_fraction"]
    rows = [
        ["layer pairs", f"{analytic_pairs:.0f}", f"{measured_pairs:.0f}"],
        ["outlier pair fraction", f"{analytic_fraction:.4f}", f"{measured_fraction:.4f}"],
    ]
    print("\nFigure 4 — analytic vs measured operation mix (one encoder layer)")
    print(format_table(["quantity", "analytic", "measured"], rows))

    # Both models count the same pair population...
    assert measured_pairs == pytest.approx(analytic_pairs)
    # ... and the measured outlier rate lands in the regime the analytic
    # model assumes (same order of magnitude, small minority of pairs).
    assert 0.0 < measured_fraction < 0.2
    assert measurement.stats.total_pairs == workload.total_macs // workload.num_layers
