"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section: it computes the measured series/rows with this reproduction's
models, prints them next to the paper's reported values where applicable,
and asserts the qualitative shape (orderings, trends, crossovers) that the
paper's conclusion rests on.  Run with::

    pytest benchmarks/ --benchmark-only

Absolute cycle counts, energies and task scores are not expected to match
the paper (synthetic models and analytical hardware models — see DESIGN.md
and EXPERIMENTS.md); the shapes are.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.accelerator.gobo_accel import gobo_design
from repro.accelerator.mokey_accel import mokey_design
from repro.accelerator.simulator import AcceleratorSimulator
from repro.accelerator.tensor_cores import tensor_cores_design
from repro.accelerator.workloads import paper_workloads
from repro.core.golden_dictionary import generate_golden_dictionary
from repro.core.model_quantizer import MokeyModelQuantizer
from repro.core.quantizer import MokeyQuantizer
from repro.experiments import ResultCache, expand_grid, run_campaign
from repro.transformer.model_zoo import PAPER_MODELS

KB = 1024
MB = 1024 * 1024
# The buffer-capacity sweep of Figures 9-15.
BUFFER_SWEEP = (256 * KB, 512 * KB, 1 * MB, 2 * MB, 4 * MB)

# Tiny mode (REPRO_BENCH_TINY=1) shrinks the sample-heavy functional
# experiments so the whole suite smoke-runs in a few seconds; the
# campaign grids and every qualitative assertion are unchanged.  Used by
# tests/test_bench_smoke.py and the CI benchmark-smoke job.
TINY_MODE = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")

# The paper's Table I (model, task, sequence length) pairs as campaign
# workload specs.
PAPER_WORKLOAD_SPECS = tuple((m, t, s) for (m, t, s, _head) in PAPER_MODELS)

# Where the perf trajectory lands.  The ``bench_perf_*.py`` benchmarks
# merge their measurements into this JSON so simulator/engine throughput
# is visible (and comparable) PR-over-PR; override with REPRO_BENCH_PERF.
# Tiny-mode runs land in a sibling file so a smoke run never overwrites
# the committed full-shape measurements.
REPO_ROOT = Path(__file__).resolve().parent.parent
_DEFAULT_PERF_NAME = "BENCH_PERF.tiny.json" if TINY_MODE else "BENCH_PERF.json"
BENCH_PERF_PATH = Path(os.environ.get("REPRO_BENCH_PERF", REPO_ROOT / _DEFAULT_PERF_NAME))


def _blas_environment() -> dict:
    """The BLAS/threading context GEMM-heavy measurements depend on.

    Engine throughput is a function of the library NumPy's ``@`` lowers
    to and of how many threads that library may use, so both are stamped
    next to the numbers: a BENCH_PERF diff across machines (or across an
    ``OMP_NUM_THREADS`` change) should show *why* the floors moved.
    """
    env: dict = {
        "cpu_count": os.cpu_count(),
        "thread_env": {
            name: os.environ.get(name)
            for name in (
                "OMP_NUM_THREADS",
                "MKL_NUM_THREADS",
                "OPENBLAS_NUM_THREADS",
                "NUMEXPR_NUM_THREADS",
            )
        },
    }
    try:
        config = np.show_config(mode="dicts")
    except Exception:  # pragma: no cover - numpy < 1.25 or exotic builds
        config = None
    if isinstance(config, dict):
        blas = {}
        for library, info in (config.get("Build Dependencies") or {}).items():
            if library in ("blas", "lapack") and isinstance(info, dict):
                blas[library] = {
                    key: info[key]
                    for key in ("name", "version", "openblas configuration")
                    if info.get(key)
                }
        if blas:
            env["numpy_blas"] = blas
    return env


def _torch_environment() -> dict:
    """Torch version + device, stamped only when a bench imported torch.

    Checking ``sys.modules`` (rather than importing) keeps the stamp
    truthful: torch appears in the environment exactly when the torch
    backend actually produced a section in this run, and NumPy-only runs
    never pay the import.
    """
    torch = sys.modules.get("torch")
    if torch is None:
        return {}
    try:
        cuda = bool(torch.cuda.is_available())
        env = {
            "torch": {
                "version": str(torch.__version__),
                "device": "cuda" if cuda else "cpu",
            }
        }
        if cuda:
            env["torch"]["cuda_device"] = str(torch.cuda.get_device_name(0))
        return env
    except Exception:  # pragma: no cover - exotic torch builds
        return {"torch": {"version": str(getattr(torch, "__version__", "unknown"))}}


def record_perf(section: str, payload: dict) -> None:
    """Merge one benchmark section into ``BENCH_PERF.json``.

    Each ``bench_perf_*`` test owns one section; the file accumulates the
    sections of a run plus an environment stamp, so successive runs (and
    successive PRs) can be diffed for regressions.  Tiny-mode runs are
    stamped as such and should not overwrite a committed full run.
    """
    data: dict = {}
    if BENCH_PERF_PATH.exists():
        try:
            data = json.loads(BENCH_PERF_PATH.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            data = {}
    data["environment"] = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "tiny_mode": TINY_MODE,
        **_blas_environment(),
        **_torch_environment(),
    }
    data[section] = payload
    BENCH_PERF_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


@pytest.fixture(scope="session")
def golden():
    """The Golden Dictionary (full 50,000-sample build; smaller in tiny mode)."""
    if TINY_MODE:
        return generate_golden_dictionary(num_samples=5_000, num_repeats=1)
    return generate_golden_dictionary()


@pytest.fixture(scope="session")
def mokey_quantizer(golden):
    return MokeyQuantizer(golden)


@pytest.fixture(scope="session")
def model_quantizer(golden):
    return MokeyModelQuantizer(golden)


@pytest.fixture(scope="session")
def simulators():
    """Simulators for the three accelerator designs."""
    return {
        "tensor-cores": AcceleratorSimulator(tensor_cores_design()),
        "gobo": AcceleratorSimulator(gobo_design()),
        "mokey": AcceleratorSimulator(mokey_design()),
    }


@pytest.fixture(scope="session")
def workloads():
    """The eight model/task workloads of the paper's evaluation."""
    return {wl.name: wl for wl in paper_workloads()}


@pytest.fixture(scope="session")
def campaign_cache():
    """One result cache shared by every campaign-driven benchmark."""
    return ResultCache()


@pytest.fixture(scope="session")
def paper_campaign(campaign_cache):
    """Paper workloads x (Tensor Cores, GOBO, Mokey) x buffer sweep."""
    scenarios = expand_grid(
        workloads=PAPER_WORKLOAD_SPECS,
        designs=("tensor-cores", "gobo", "mokey"),
        buffer_bytes=BUFFER_SWEEP,
    )
    return run_campaign(scenarios, cache=campaign_cache)


@pytest.fixture(scope="session")
def compression_campaign(campaign_cache):
    """Paper workloads x Tensor Cores +/- Mokey compression x buffer sweep."""
    scenarios = expand_grid(
        workloads=PAPER_WORKLOAD_SPECS,
        designs=(
            "tensor-cores",
            "tensor-cores+mokey-oc",
            "tensor-cores+mokey-oc+on",
        ),
        buffer_bytes=BUFFER_SWEEP,
    )
    return run_campaign(scenarios, cache=campaign_cache)


def geomean(values) -> float:
    values = np.asarray(list(values), dtype=np.float64)
    return float(np.exp(np.log(values).mean()))
