"""Perf benchmark of the campaign service (submit → complete wall time).

Writes the ``service`` section of ``BENCH_PERF.json``: how long one fixed
campaign grid takes from HTTP submission to terminal state when executed
by 1 vs 4 worker processes, through the full service path — daemon on an
ephemeral port, coordinator sharding, spawned workers, shared SQLite
store.  The scaling ratio (1-worker time / 4-worker time) is the number
the fan-out design is accountable to; both runs also re-prove the
bit-identity contract (every record digest equals the single-process
oracle's).

The ratio floor is asserted only in full mode **and** on machines with at
least 4 CPUs: with fewer cores the workers time-slice one core and the
ratio is legitimately ~1x (spawn/import overhead included), which is a
property of the host, not a regression.  The measured ratio and the CPU
count are always recorded, so the trajectory stays honest either way.
"""

import os
import threading
import time

from conftest import TINY_MODE, record_perf

from repro.experiments import CampaignSpec, open_store, run_spec, store_digest
from repro.service import Coordinator, ServiceClient, make_server

if TINY_MODE:
    SCHEMES = ("fp16", "mokey")
    BATCH_SIZES = (1, 2)
    SEQUENCE_LENGTHS = (16, 32)
else:
    SCHEMES = ("fp16", "mokey", "gobo", "q8bert")
    BATCH_SIZES = (1, 2, 4, 8)
    SEQUENCE_LENGTHS = (16, 32, 64, 128)

SCALING_FLOOR = 1.5  # asserted full-mode on >=4-CPU hosts only
WAIT = 1200.0


def _spec_dict(name):
    return {
        "name": name,
        "axes": {
            "models": ["bert-base"],
            "tasks": ["mnli"],
            "schemes": list(SCHEMES),
            "designs": ["mokey"],
            "batch_sizes": list(BATCH_SIZES),
            "buffer_bytes": [262144],
            "sequence_lengths": list(SEQUENCE_LENGTHS),
        },
    }


def _timed_service_run(tmp_path, name, workers):
    """One submit→complete round through a fresh daemon + store."""
    coordinator = Coordinator(tmp_path / name, store_backend="sqlite")
    server = make_server("127.0.0.1", 0, coordinator)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
        started = time.perf_counter()
        job_id = client.submit(_spec_dict(name), workers=workers)
        final = client.wait(job_id, timeout=WAIT, poll=0.05)
        elapsed = time.perf_counter() - started
        assert final["state"] == "completed", final["error"]
        digest = store_digest(open_store(tmp_path / name, backend="sqlite"))
        return elapsed, final, digest
    finally:
        server.shutdown()
        thread.join(5.0)
        coordinator.drain()
        server.server_close()


def test_perf_service_scaling(tmp_path):
    spec = CampaignSpec.from_dict(_spec_dict("oracle"))
    grid_size = len(spec.scenarios())
    oracle_root = tmp_path / "oracle"
    run_spec(
        spec.with_execution(store=str(oracle_root), store_backend="sqlite", resume=True)
    )
    oracle = store_digest(open_store(oracle_root, backend="sqlite"))

    one_seconds, one_final, one_digest = _timed_service_run(tmp_path, "svc-w1", 1)
    four_seconds, four_final, four_digest = _timed_service_run(tmp_path, "svc-w4", 4)

    # The perf claim rides on the correctness claim: both worker counts
    # must land the oracle's exact keys + digests.
    assert one_digest == oracle
    assert four_digest == oracle
    assert one_final["progress"]["completed"] == grid_size
    assert four_final["progress"]["completed"] == grid_size

    cpu_count = os.cpu_count() or 1
    ratio = one_seconds / four_seconds if four_seconds > 0 else float("inf")
    record_perf(
        "service",
        {
            "grid_size": grid_size,
            "workers_1_seconds": round(one_seconds, 3),
            "workers_4_seconds": round(four_seconds, 3),
            "scaling_ratio": round(ratio, 3),
            "scaling_floor": SCALING_FLOOR,
            "cpu_count": cpu_count,
            "floor_asserted": (not TINY_MODE) and cpu_count >= 4,
            "store_backend": "sqlite",
            "bit_identical_to_oracle": True,
        },
    )
    print(
        f"\nservice scaling: {grid_size}-scenario grid — 1 worker "
        f"{one_seconds:.2f}s, 4 workers {four_seconds:.2f}s "
        f"(ratio {ratio:.2f}x, {cpu_count} CPUs, floor {SCALING_FLOOR}x "
        f"{'asserted' if (not TINY_MODE) and cpu_count >= 4 else 'recorded only'})"
    )
    if not TINY_MODE and cpu_count >= 4:
        assert ratio >= SCALING_FLOOR, (
            f"4-worker service run only {ratio:.2f}x faster than 1-worker "
            f"on {cpu_count} CPUs (floor {SCALING_FLOOR}x)"
        )
