"""Perf benchmarks of the quantization and index-domain compute hot paths.

Unlike the figure/table benchmarks (which regenerate the paper's
*results*), the ``bench_perf_*`` files measure this reproduction's own
*throughput* and write it to ``BENCH_PERF.json`` so the perf trajectory
is visible PR-over-PR:

* ``quantization`` — tensor fit+encode throughput (values/s);
* ``index_matmul`` — the scalar reference engine vs the vectorized
  engine on a layer-scale GEMM, with the speedup **asserted** against a
  conservative floor so vectorization can never silently regress back to
  the Python loop (>=100x at the full 128x768 @ 768x768 shape, >=20x on
  the tiny CI grid);
* ``encoder_layer`` — an end-to-end index-domain encoder-layer forward
  at realistic shape (BERT-Base, seq 128), which the scalar engine could
  only finish in hours.

Tiny mode (``REPRO_BENCH_TINY=1``) shrinks the shapes; the assertions
stay.
"""

import time

import numpy as np
import pytest

from conftest import TINY_MODE, record_perf

from repro.core.index_compute import (
    IndexDomainEngine,
    VectorizedIndexDomainEngine,
)
from repro.transformer.config import TransformerConfig
from repro.transformer.index_execution import execute_encoder_layer

# Layer-scale GEMM: the acceptance shape in full mode, a CI-sized grid in
# tiny mode.  The speedup floor is deliberately conservative (measured
# speedups are several times higher) so the assertion only fires when the
# vectorized path has actually degenerated.
if TINY_MODE:
    GEMM_M, GEMM_K, GEMM_N = 32, 128, 64
    SPEEDUP_FLOOR = 20.0
else:
    GEMM_M, GEMM_K, GEMM_N = 128, 768, 768
    SPEEDUP_FLOOR = 100.0


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _gemm_operands(mokey_quantizer, m, k, n, seed=0):
    rng = np.random.default_rng(seed)
    activations = rng.normal(0.3, 1.8, (m, k))
    flat = activations.ravel()
    picks = rng.choice(flat.size, max(1, int(0.045 * flat.size)), replace=False)
    flat[picks] = rng.choice([-1, 1], picks.size) * 40.0
    weights = rng.normal(0, 0.02, (k, n))
    flat = weights.ravel()
    picks = rng.choice(flat.size, max(1, int(0.015 * flat.size)), replace=False)
    flat[picks] = rng.choice([-1, 1], picks.size) * 0.25
    return (
        mokey_quantizer.quantize(activations, "activation"),
        mokey_quantizer.quantize(weights, "weight"),
    )


def test_perf_quantization(mokey_quantizer):
    """Tensor fit+encode throughput (the operand-side cost of every GEMM)."""
    rng = np.random.default_rng(7)
    values = rng.normal(0, 0.02, (GEMM_K, GEMM_N))
    seconds = _best_of(lambda: mokey_quantizer.quantize(values, "weight"))
    throughput = values.size / seconds
    print(
        f"\nquantization: {values.size} values in {seconds * 1e3:.1f} ms "
        f"({throughput / 1e6:.1f} Mvalues/s)"
    )
    record_perf(
        "quantization",
        {
            "values": int(values.size),
            "seconds": seconds,
            "values_per_second": throughput,
        },
    )
    assert throughput > 1e5  # fit+encode must stay far from pathological


def test_perf_index_matmul_scalar_vs_vectorized(mokey_quantizer):
    """The tentpole guarantee: vectorized >= {100x, 20x tiny} over scalar."""
    aq, wq = _gemm_operands(mokey_quantizer, GEMM_M, GEMM_K, GEMM_N)
    scalar_engine = IndexDomainEngine(aq.dictionary, wq.dictionary)
    vector_engine = VectorizedIndexDomainEngine(aq.dictionary, wq.dictionary)

    started = time.perf_counter()
    scalar_values, scalar_stats = scalar_engine.matmul(aq, wq)
    scalar_seconds = time.perf_counter() - started
    vector_seconds = _best_of(lambda: vector_engine.matmul(aq, wq))
    result = vector_engine.matmul(aq, wq)

    speedup = scalar_seconds / vector_seconds
    macs = GEMM_M * GEMM_K * GEMM_N
    print(
        f"\nindex matmul {GEMM_M}x{GEMM_K} @ {GEMM_K}x{GEMM_N}: "
        f"scalar {scalar_seconds:.2f}s, vectorized {vector_seconds * 1e3:.1f} ms "
        f"({speedup:.0f}x, {macs / vector_seconds / 1e9:.2f} Gpairs/s vectorized)"
    )
    record_perf(
        "index_matmul",
        {
            "shape": [GEMM_M, GEMM_K, GEMM_N],
            "scalar_seconds": scalar_seconds,
            "vectorized_seconds": vector_seconds,
            "speedup": speedup,
            "speedup_floor": SPEEDUP_FLOOR,
            "vectorized_pairs_per_second": macs / vector_seconds,
        },
    )
    # Equivalence: same values (fp tolerance), identical statistics.
    assert np.allclose(scalar_values, result.values, rtol=1e-9, atol=1e-8)
    assert result.stats == scalar_stats
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized engine only {speedup:.1f}x over scalar "
        f"(floor {SPEEDUP_FLOOR}x) — did a code path fall back to Python loops?"
    )


def test_perf_encoder_layer_index_domain(mokey_quantizer):
    """End-to-end index-domain encoder layer at realistic shape."""
    if TINY_MODE:
        model = TransformerConfig(
            name="bert-base-tiny",
            num_layers=1,
            hidden_size=96,
            num_heads=4,
            intermediate_size=384,
            vocab_size=512,
        )
        sequence_length = 32
    else:
        model = "bert-base"
        sequence_length = 128
    measurement = execute_encoder_layer(
        model, sequence_length=sequence_length, quantizer=mokey_quantizer
    )
    pairs = measurement.stats.total_pairs
    print(
        f"\nencoder layer ({measurement.model}, seq {sequence_length}): "
        f"{measurement.total_seconds:.2f}s total "
        f"(quantize {measurement.quantize_seconds:.2f}s, "
        f"engine {measurement.engine_seconds:.2f}s), "
        f"{pairs / 1e6:.0f} Mpairs, outlier {100 * measurement.outlier_pair_fraction:.2f}%, "
        f"output RMS err {measurement.output_rms_error:.4f}"
    )
    record_perf(
        "encoder_layer",
        {
            "model": measurement.model,
            "sequence_length": sequence_length,
            "total_seconds": measurement.total_seconds,
            "quantize_seconds": measurement.quantize_seconds,
            "engine_seconds": measurement.engine_seconds,
            "pairs": pairs,
            "pairs_per_second": pairs / max(measurement.engine_seconds, 1e-9),
            "outlier_pair_fraction": measurement.outlier_pair_fraction,
            "output_rms_error": measurement.output_rms_error,
        },
    )
    # "Completes in seconds": a full BERT-Base layer at seq 128 must stay
    # far below a minute (the scalar engine would need hours).
    assert measurement.total_seconds < 60.0
    assert measurement.output_rms_error < 0.5
    assert 0.0 < measurement.outlier_pair_fraction < 0.2
