"""Perf benchmarks of the quantization and index-domain compute hot paths.

Unlike the figure/table benchmarks (which regenerate the paper's
*results*), the ``bench_perf_*`` files measure this reproduction's own
*throughput* and write it to ``BENCH_PERF.json`` so the perf trajectory
is visible PR-over-PR:

* ``quantization`` — tensor fit+encode throughput (values/s);
* ``index_matmul`` — the scalar reference engine vs the vectorized
  engine on a layer-scale GEMM, with the speedup **asserted** against a
  conservative floor so vectorization can never silently regress back to
  the Python loop (>=100x at the full 128x768 @ 768x768 shape, >=20x on
  the tiny CI grid);
* ``encoder_layer`` — an end-to-end index-domain encoder-layer forward
  at realistic shape (BERT-Base, seq 128), which the scalar engine could
  only finish in hours;
* ``full_model`` — the whole encoder stack (BERT-Base, all 12 layers,
  seq 128) end to end in the index domain, per-GEMM versus
  batched+weight-cached execution, with the speedup **asserted** so GEMM
  batching and the weight cache can never silently stop paying off;
* ``decoder_kv_cache`` — a GPT-style decoder (prefill + autoregressive
  steps) attending against the encoded index-domain KV cache, with the
  incremental plane cache on (and a plane-rebuild ablation next to it),
  its tokens/s **asserted** against a floor 5x the seed measurement;
* ``decoder_multi_stream`` — several concurrent serving streams decoded
  in lockstep through ``replay_decode_streams``, their independent
  GEMMs batched across streams.

Cold-vs-warm pairs (quantization, encoder layer, full model) measure the
fit memo and the plane cache directly: the warm leg reruns the identical
workload so every content digest hits.  Tiny mode
(``REPRO_BENCH_TINY=1``) shrinks the shapes; the assertions stay.
"""

import gc
import time

import numpy as np
import pytest

from conftest import TINY_MODE, record_perf

from repro.core.index_compute import (
    IndexDomainEngine,
    VectorizedIndexDomainEngine,
    get_plane_cache,
    use_plane_cache,
)
from repro.core.quantizer import MokeyQuantizer
from repro.serving import replay_decode_streams
from repro.transformer.config import TransformerConfig
from repro.transformer.index_execution import execute_encoder_layer
from repro.transformer.index_model import (
    GPT_DECODER_CONFIG,
    IndexDomainModelExecutor,
    execute_decoder,
    execute_model,
)

# Layer-scale GEMM: the acceptance shape in full mode, a CI-sized grid in
# tiny mode.  The speedup floor is deliberately conservative (measured
# speedups are several times higher) so the assertion only fires when the
# vectorized path has actually degenerated.
if TINY_MODE:
    GEMM_M, GEMM_K, GEMM_N = 32, 128, 64
    SPEEDUP_FLOOR = 20.0
else:
    GEMM_M, GEMM_K, GEMM_N = 128, 768, 768
    SPEEDUP_FLOOR = 100.0


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _gemm_operands(mokey_quantizer, m, k, n, seed=0):
    rng = np.random.default_rng(seed)
    activations = rng.normal(0.3, 1.8, (m, k))
    flat = activations.ravel()
    picks = rng.choice(flat.size, max(1, int(0.045 * flat.size)), replace=False)
    flat[picks] = rng.choice([-1, 1], picks.size) * 40.0
    weights = rng.normal(0, 0.02, (k, n))
    flat = weights.ravel()
    picks = rng.choice(flat.size, max(1, int(0.015 * flat.size)), replace=False)
    flat[picks] = rng.choice([-1, 1], picks.size) * 0.25
    return (
        mokey_quantizer.quantize(activations, "activation"),
        mokey_quantizer.quantize(weights, "weight"),
    )


def test_perf_quantization(mokey_quantizer):
    """Tensor fit+encode throughput, cold (fresh fit) vs fit-memo warm."""
    rng = np.random.default_rng(7)
    values = rng.normal(0, 0.02, (GEMM_K, GEMM_N))
    cold_quantizer = MokeyQuantizer(mokey_quantizer.golden, fit_memo=False)
    cold_seconds = _best_of(lambda: cold_quantizer.quantize(values, "weight"))
    hits_before = mokey_quantizer.fit_memo_hits
    mokey_quantizer.quantize(values, "weight")  # prime the memo
    warm_seconds = _best_of(lambda: mokey_quantizer.quantize(values, "weight"))
    cold_throughput = values.size / cold_seconds
    warm_throughput = values.size / warm_seconds
    print(
        f"\nquantization: {values.size} values, cold {cold_seconds * 1e3:.1f} ms "
        f"({cold_throughput / 1e6:.1f} Mvalues/s), fit-memo warm "
        f"{warm_seconds * 1e3:.1f} ms ({warm_throughput / 1e6:.1f} Mvalues/s, "
        f"{cold_seconds / warm_seconds:.1f}x)"
    )
    record_perf(
        "quantization",
        {
            "values": int(values.size),
            "seconds": cold_seconds,
            "values_per_second": cold_throughput,
            "warm_seconds": warm_seconds,
            "warm_values_per_second": warm_throughput,
            "fit_memo_speedup": cold_seconds / warm_seconds,
        },
    )
    assert cold_throughput > 1e5  # fit+encode must stay far from pathological
    # The memo actually hit, and re-quantizing a seen tensor skips the fit.
    assert mokey_quantizer.fit_memo_hits > hits_before
    assert warm_seconds < cold_seconds


def test_perf_index_matmul_scalar_vs_vectorized(mokey_quantizer):
    """The tentpole guarantee: vectorized >= {100x, 20x tiny} over scalar."""
    aq, wq = _gemm_operands(mokey_quantizer, GEMM_M, GEMM_K, GEMM_N)
    scalar_engine = IndexDomainEngine(aq.dictionary, wq.dictionary)
    vector_engine = VectorizedIndexDomainEngine(aq.dictionary, wq.dictionary)

    started = time.perf_counter()
    scalar_values, scalar_stats = scalar_engine.matmul(aq, wq)
    scalar_seconds = time.perf_counter() - started
    vector_seconds = _best_of(lambda: vector_engine.matmul(aq, wq))
    result = vector_engine.matmul(aq, wq)

    speedup = scalar_seconds / vector_seconds
    macs = GEMM_M * GEMM_K * GEMM_N
    print(
        f"\nindex matmul {GEMM_M}x{GEMM_K} @ {GEMM_K}x{GEMM_N}: "
        f"scalar {scalar_seconds:.2f}s, vectorized {vector_seconds * 1e3:.1f} ms "
        f"({speedup:.0f}x, {macs / vector_seconds / 1e9:.2f} Gpairs/s vectorized)"
    )
    record_perf(
        "index_matmul",
        {
            "shape": [GEMM_M, GEMM_K, GEMM_N],
            "scalar_seconds": scalar_seconds,
            "vectorized_seconds": vector_seconds,
            "speedup": speedup,
            "speedup_floor": SPEEDUP_FLOOR,
            "vectorized_pairs_per_second": macs / vector_seconds,
        },
    )
    # Equivalence: same values (fp tolerance), identical statistics.
    assert np.allclose(scalar_values, result.values, rtol=1e-9, atol=1e-8)
    assert result.stats == scalar_stats
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized engine only {speedup:.1f}x over scalar "
        f"(floor {SPEEDUP_FLOOR}x) — did a code path fall back to Python loops?"
    )


def test_perf_encoder_layer_index_domain(mokey_quantizer):
    """End-to-end index-domain encoder layer at realistic shape."""
    if TINY_MODE:
        model = TransformerConfig(
            name="bert-base-tiny",
            num_layers=1,
            hidden_size=96,
            num_heads=4,
            intermediate_size=384,
            vocab_size=512,
        )
        sequence_length = 32
    else:
        model = "bert-base"
        sequence_length = 128
    measurement = execute_encoder_layer(
        model, sequence_length=sequence_length, quantizer=mokey_quantizer
    )
    # Warm forward: identical inputs, so every fit digest and every plane
    # digest hits — this is the "warm model forward" the plane cache and
    # fit memo exist for.
    warm = execute_encoder_layer(
        model, sequence_length=sequence_length, quantizer=mokey_quantizer
    )
    pairs = measurement.stats.total_pairs
    warm_cache = warm.plane_cache.to_dict() if warm.plane_cache else {}
    print(
        f"\nencoder layer ({measurement.model}, seq {sequence_length}): "
        f"{measurement.total_seconds:.2f}s total "
        f"(quantize {measurement.quantize_seconds:.2f}s, "
        f"engine {measurement.engine_seconds:.2f}s), warm "
        f"{warm.total_seconds:.2f}s (quantize {warm.quantize_seconds:.2f}s, "
        f"plane hit rate {warm_cache.get('hit_rate', 0.0):.2f}), "
        f"{pairs / 1e6:.0f} Mpairs, outlier {100 * measurement.outlier_pair_fraction:.2f}%, "
        f"output RMS err {measurement.output_rms_error:.4f}"
    )
    record_perf(
        "encoder_layer",
        {
            "model": measurement.model,
            "sequence_length": sequence_length,
            "total_seconds": measurement.total_seconds,
            "quantize_seconds": measurement.quantize_seconds,
            "engine_seconds": measurement.engine_seconds,
            "warm_total_seconds": warm.total_seconds,
            "warm_quantize_seconds": warm.quantize_seconds,
            "warm_plane_cache": warm_cache,
            "pairs": pairs,
            "pairs_per_second": pairs / max(measurement.engine_seconds, 1e-9),
            "outlier_pair_fraction": measurement.outlier_pair_fraction,
            "output_rms_error": measurement.output_rms_error,
        },
    )
    # "Completes in seconds": a full BERT-Base layer at seq 128 must stay
    # far below a minute (the scalar engine would need hours).
    assert measurement.total_seconds < 60.0
    assert measurement.output_rms_error < 0.5
    assert 0.0 < measurement.outlier_pair_fraction < 0.2
    # Caching is a pure execution strategy: the warm forward replays the
    # identical arithmetic (bit-identical op counts) while the fit memo
    # removes the dominant quantization cost.
    assert warm.stats == measurement.stats
    assert warm.quantize_seconds < measurement.quantize_seconds


# Full-model shapes: all of BERT-Base in full mode, a two-layer nano
# stack in tiny mode.  The speedup floor compares a warmed batched+cached
# executor against cold per-GEMM execution; it is deliberately
# conservative (the weight cache alone removes the majority of quantize
# time) so the assertion only fires when batching or caching has actually
# stopped working.
if TINY_MODE:
    MODEL_SPEC = TransformerConfig(
        name="bert-nano",
        num_layers=2,
        hidden_size=96,
        num_heads=4,
        intermediate_size=384,
        vocab_size=512,
    )
    MODEL_SEQ = 32
    MODEL_SPEEDUP_FLOOR = 1.1
    DECODER_SPEC = TransformerConfig(
        name="gpt-nano",
        num_layers=2,
        hidden_size=96,
        num_heads=4,
        intermediate_size=384,
        vocab_size=512,
    )
    PROMPT_LENGTH, DECODE_TOKENS = 16, 4
    # Plane-cached decode floor: conservative (measured is several times
    # higher) so CI only fires when the incremental cache stops working.
    DECODER_TPS_FLOOR = 2.0
    STREAMS, STREAM_PROMPT, STREAM_DECODE = 2, 8, 4
else:
    MODEL_SPEC = "bert-base"
    MODEL_SEQ = 128
    MODEL_SPEEDUP_FLOOR = 1.5
    DECODER_SPEC = GPT_DECODER_CONFIG
    PROMPT_LENGTH, DECODE_TOKENS = 32, 8
    # The ISSUE 9 acceptance floor: >= 5x the seed BENCH_PERF measurement
    # of 0.325 tokens/s (measured with the plane cache: ~2x the floor).
    DECODER_TPS_FLOOR = 1.6
    STREAMS, STREAM_PROMPT, STREAM_DECODE = 4, 16, 8


def test_perf_full_model_index_domain(mokey_quantizer):
    """End-to-end encoder stack: per-GEMM baseline vs batched+cached."""
    # The baseline must measure the truly uncached cost: a fresh quantizer
    # with the fit memo off, and the module-global plane cache disabled —
    # otherwise the session fixture's caches would speed up the "per-GEMM"
    # leg and understate the real speedup.
    baseline_quantizer = MokeyQuantizer(mokey_quantizer.golden, fit_memo=False)
    with use_plane_cache(None):
        baseline = execute_model(
            MODEL_SPEC,
            sequence_length=MODEL_SEQ,
            quantizer=baseline_quantizer,
            cache_weights=False,
            gemm_batching=False,
        )
    executor = IndexDomainModelExecutor(
        MODEL_SPEC, quantizer=mokey_quantizer, cache_weights=True, gemm_batching=True
    )
    cold = execute_model(MODEL_SPEC, sequence_length=MODEL_SEQ, executor=executor)
    warm = execute_model(MODEL_SPEC, sequence_length=MODEL_SEQ, executor=executor)

    speedup = baseline.total_seconds / warm.total_seconds
    pairs = warm.stats.total_pairs
    warm_cache = warm.plane_cache.to_dict() if warm.plane_cache else {}
    print(
        f"\nfull model ({baseline.model}, {baseline.num_layers} layers, "
        f"seq {MODEL_SEQ}): per-GEMM {baseline.total_seconds:.2f}s, "
        f"batched+cached cold {cold.total_seconds:.2f}s / warm "
        f"{warm.total_seconds:.2f}s ({speedup:.2f}x, "
        f"{pairs / warm.engine_seconds / 1e9:.2f} Gpairs/s engine), "
        f"{warm.weight_cache_hits} cache hits, plane hit rate "
        f"{warm_cache.get('hit_rate', 0.0):.2f}, "
        f"output RMS err {warm.output_rms_error:.4f}"
    )
    record_perf(
        "full_model",
        {
            "model": baseline.model,
            "num_layers": baseline.num_layers,
            "sequence_length": MODEL_SEQ,
            "per_gemm_seconds": baseline.total_seconds,
            "batched_cold_seconds": cold.total_seconds,
            "batched_warm_seconds": warm.total_seconds,
            "batched_vs_per_gemm_speedup": speedup,
            "speedup_floor": MODEL_SPEEDUP_FLOOR,
            "pairs": pairs,
            "pairs_per_second": pairs / max(warm.engine_seconds, 1e-9),
            "quantize_seconds_warm": warm.quantize_seconds,
            "engine_seconds_warm": warm.engine_seconds,
            "weight_cache_hits_warm": warm.weight_cache_hits,
            "warm_plane_cache": warm_cache,
            "outlier_pair_fraction": warm.outlier_pair_fraction,
            "output_rms_error": warm.output_rms_error,
        },
    )
    # Equivalence: batching + caching are pure execution strategies — the
    # operation counts and the numerical trajectory must not move.
    assert warm.stats == baseline.stats
    assert np.isclose(warm.output_rms_error, baseline.output_rms_error)
    # One hit per weight GEMM per layer on the warm forward.
    assert warm.weight_cache_hits == 6 * warm.num_layers
    assert cold.weight_cache_hits == 0
    # A full BERT-Base forward must stay interactive (the scalar engine
    # would need days), and the optimisations must keep paying off.
    assert warm.total_seconds < 120.0
    assert speedup >= MODEL_SPEEDUP_FLOOR, (
        f"batched+cached full-model forward only {speedup:.2f}x over per-GEMM "
        f"(floor {MODEL_SPEEDUP_FLOOR}x) — did GEMM batching or the weight "
        f"cache stop being used?"
    )


def test_perf_decoder_kv_cache(mokey_quantizer):
    """GPT-style decode throughput against the encoded KV cache.

    The cached leg runs first (cold fit memo, cold planes) so its
    tokens/s is an honest cold-process number for the floor.  The
    uncached leg then replays the identical workload with plane caching
    off; since its fits all hit the now-warm memo, the comparison
    isolates exactly the plane rebuild cost the incremental cache
    removes — and its outputs/stats double as the bit-identity oracle.

    Earlier bench tests leave gigabytes of encoder planes resident in
    the process-wide cache; releasing them first keeps this a
    reproducible cold-cache measurement instead of one coloured by
    suite order and allocator pressure.
    """
    resident = get_plane_cache()
    if resident is not None:
        resident.clear()
    gc.collect()
    measurement = execute_decoder(
        DECODER_SPEC,
        prompt_length=PROMPT_LENGTH,
        decode_tokens=DECODE_TOKENS,
        quantizer=mokey_quantizer,
    )
    uncached = execute_decoder(
        DECODER_SPEC,
        prompt_length=PROMPT_LENGTH,
        decode_tokens=DECODE_TOKENS,
        quantizer=mokey_quantizer,
        plane_caching=False,
    )
    cache = measurement.plane_cache.to_dict() if measurement.plane_cache else {}
    print(
        f"\ndecoder ({measurement.model}, {measurement.num_layers} layers, "
        f"prompt {PROMPT_LENGTH} + {DECODE_TOKENS} steps): "
        f"prefill {measurement.prefill_seconds:.2f}s, decode "
        f"{measurement.decode_seconds:.2f}s "
        f"({measurement.tokens_per_second:.2f} tokens/s, floor "
        f"{DECODER_TPS_FLOOR}), plane-rebuild ablation "
        f"{uncached.tokens_per_second:.2f} tokens/s, plane hit rate "
        f"{cache.get('hit_rate', 0.0):.2f}, "
        f"{measurement.stats.total_pairs / 1e6:.1f} Mpairs, "
        f"output RMS err {measurement.output_rms_error:.4f}"
    )
    record_perf(
        "decoder_kv_cache",
        {
            "model": measurement.model,
            "num_layers": measurement.num_layers,
            "prompt_length": PROMPT_LENGTH,
            "decode_tokens": DECODE_TOKENS,
            "prefill_seconds": measurement.prefill_seconds,
            "decode_seconds": measurement.decode_seconds,
            "tokens_per_second": measurement.tokens_per_second,
            "tokens_per_second_floor": DECODER_TPS_FLOOR,
            "tokens_per_second_plane_rebuild": uncached.tokens_per_second,
            "plane_cache": cache,
            "pairs": measurement.stats.total_pairs,
            "cached_tokens": measurement.cached_tokens,
            "outlier_pair_fraction": measurement.outlier_pair_fraction,
            "output_rms_error": measurement.output_rms_error,
        },
    )
    # The cache must hold exactly one K/V row per processed token, and
    # decoding against encoded K/V must stay interactive and accurate.
    assert measurement.cached_tokens == PROMPT_LENGTH + DECODE_TOKENS
    assert measurement.output_rms_error < 0.5
    # Bit-identity: the incremental plane cache is a pure execution
    # strategy — outputs and op counts match the uncached oracle exactly.
    assert np.array_equal(measurement.outputs, uncached.outputs)
    assert measurement.stats == uncached.stats
    # The ISSUE 9 floor: plane-cached decode must stay >= 5x the seed.
    assert measurement.tokens_per_second >= DECODER_TPS_FLOOR, (
        f"plane-cached decode only {measurement.tokens_per_second:.2f} "
        f"tokens/s (floor {DECODER_TPS_FLOOR}) — did the incremental "
        f"plane cache stop being used?"
    )


def test_perf_decoder_multi_stream(mokey_quantizer):
    """Lockstep multi-stream decode through the serving entry point."""
    result = replay_decode_streams(
        model=DECODER_SPEC,
        num_streams=STREAMS,
        prompt_length=STREAM_PROMPT,
        decode_tokens=STREAM_DECODE,
    )
    print(
        f"\nmulti-stream decode ({STREAMS} streams, prompt {STREAM_PROMPT} "
        f"+ {STREAM_DECODE} steps): prefill {result.prefill_seconds:.2f}s, "
        f"decode {result.decode_seconds:.2f}s "
        f"({result.tokens_per_second:.2f} aggregate tokens/s, "
        f"{result.per_stream_tokens_per_second:.2f} per stream), "
        f"worst RMS err {result.output_rms_error:.4f}"
    )
    record_perf("decoder_multi_stream", result.to_dict())
    assert result.output_rms_error < 0.5
    # Batching S streams into shared GEMMs must beat S serial decodes:
    # aggregate throughput clears the solo floor with streams to spare.
    assert result.tokens_per_second >= DECODER_TPS_FLOOR
