"""Figure 11: Mokey energy efficiency over the Tensor-Cores baseline.

Paper claim: 78x at 256KB buffers down to 13x at 4MB.  Our baseline's
dataflow moves far less DRAM data than the paper's (see EXPERIMENTS.md),
so the measured factors are smaller; the shape — Mokey always more
efficient, the advantage decreasing with buffer size — is asserted.
"""

from conftest import BUFFER_SWEEP, KB, geomean

from repro.analysis.reporting import format_table


def _compute(campaign, workloads):
    efficiency = {}
    for name in workloads:
        efficiency[name] = {}
        for size in BUFFER_SWEEP:
            base = campaign.result(design="tensor-cores", workload=name, buffer_bytes=size)
            mokey = campaign.result(design="mokey", workload=name, buffer_bytes=size)
            efficiency[name][size] = mokey.energy_efficiency_over(base)
    return efficiency


def test_fig11_mokey_energy_efficiency_over_tensor_cores(benchmark, paper_campaign, workloads):
    efficiency = benchmark.pedantic(
        lambda: _compute(paper_campaign, workloads), rounds=1, iterations=1
    )

    headers = ["workload"] + [f"{size // KB}KB" for size in BUFFER_SWEEP]
    rows = [
        [name] + [f"{per_buffer[s]:.2f}x" for s in BUFFER_SWEEP]
        for name, per_buffer in efficiency.items()
    ]
    means = {s: geomean(per[s] for per in efficiency.values()) for s in BUFFER_SWEEP}
    rows.append(["GEOMEAN"] + [f"{means[s]:.2f}x" for s in BUFFER_SWEEP])
    print("\nFigure 11 — Mokey energy efficiency over Tensor Cores (paper: 78x .. 13x)")
    print(format_table(headers, rows))

    for name, per_buffer in efficiency.items():
        for size, value in per_buffer.items():
            assert value > 1.5, (name, size)
    assert means[BUFFER_SWEEP[0]] >= means[BUFFER_SWEEP[-1]]
    assert means[BUFFER_SWEEP[0]] > 2.5
