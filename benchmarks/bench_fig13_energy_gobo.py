"""Figure 13: Mokey energy efficiency over the GOBO accelerator.

Paper claim: ~9x with small buffers, ~2x even with 4MB buffers, because
Mokey's fixed-point PEs replace GOBO's FP16 PEs and activations shrink 4x.
"""

from conftest import BUFFER_SWEEP, KB, geomean

from repro.analysis.reporting import format_table


def _compute(campaign, workloads):
    efficiency = {}
    for name in workloads:
        efficiency[name] = {}
        for size in BUFFER_SWEEP:
            gobo = campaign.result(design="gobo", workload=name, buffer_bytes=size)
            mokey = campaign.result(design="mokey", workload=name, buffer_bytes=size)
            efficiency[name][size] = mokey.energy_efficiency_over(gobo)
    return efficiency


def test_fig13_mokey_energy_efficiency_over_gobo(benchmark, paper_campaign, workloads):
    efficiency = benchmark.pedantic(
        lambda: _compute(paper_campaign, workloads), rounds=1, iterations=1
    )

    headers = ["workload"] + [f"{size // KB}KB" for size in BUFFER_SWEEP]
    rows = [
        [name] + [f"{per_buffer[s]:.2f}x" for s in BUFFER_SWEEP]
        for name, per_buffer in efficiency.items()
    ]
    means = {s: geomean(per[s] for per in efficiency.values()) for s in BUFFER_SWEEP}
    rows.append(["GEOMEAN"] + [f"{means[s]:.2f}x" for s in BUFFER_SWEEP])
    print("\nFigure 13 — Mokey energy efficiency over GOBO (paper: ~9x .. ~2x)")
    print(format_table(headers, rows))

    # Mokey is more energy efficient than GOBO everywhere, and stays at or
    # above ~2x even with the largest buffers (the paper's floor).
    for name, per_buffer in efficiency.items():
        for size, value in per_buffer.items():
            assert value > 1.2, (name, size)
    assert means[BUFFER_SWEEP[-1]] > 1.8
    assert means[BUFFER_SWEEP[0]] >= means[BUFFER_SWEEP[-1]] * 0.9
