"""Figure 8: effect of the profiling sample on accuracy.

The paper profiles BERT-Base/MNLI 17 times with different random training
samples and shows the post-quantization accuracy is essentially identical
each time.  This benchmark repeats that experiment on the scaled
BERT-Base functional twin: quantize with a different random profiling
batch each trial and measure fidelity on a fixed held-out set.
"""

import numpy as np

from conftest import TINY_MODE

from repro.analysis.reporting import format_series
from repro.core.model_quantizer import QuantizationMode
from repro.transformer.model_zoo import build_simulation_model
from repro.transformer.tasks import evaluate, generate_inputs, label_with_model

NUM_TRIALS = 4 if TINY_MODE else 17


def _run_trials(model_quantizer):
    model = build_simulation_model("bert-base", task="mnli", scale=12, max_layers=3, seed=0)
    pool = label_with_model(
        model,
        generate_inputs(model.config.vocab_size, 32, 80, "classification", seed=100),
    )
    evaluation = pool.subset(np.arange(40, 80))

    scores = []
    for trial in range(NUM_TRIALS):
        profiling = pool.subset(np.arange(trial * 2, trial * 2 + 8))
        bundle = model_quantizer.quantize(
            model,
            mode=QuantizationMode.WEIGHTS_AND_ACTIVATIONS,
            profiling_dataset=profiling,
        )
        scores.append(evaluate(bundle.model, evaluation, hook=bundle.activation_hook()))
    return scores


def test_fig08_profiling_has_negligible_effect_on_accuracy(benchmark, model_quantizer):
    scores = benchmark.pedantic(lambda: _run_trials(model_quantizer), rounds=1, iterations=1)

    print("\nFigure 8 — accuracy across profiling trials (BERT-Base-sim / MNLI-like)")
    print(format_series("accuracy per trial", {i + 1: s for i, s in enumerate(scores)}, unit="%"))
    print(f"spread: min={min(scores):.2f}%, max={max(scores):.2f}%, std={np.std(scores):.2f}%")

    # Paper shape: the profiling sample barely matters.
    assert max(scores) - min(scores) < 8.0
    assert np.std(scores) < 3.0
    assert min(scores) > 60.0
