"""Figure 15: relative energy with Mokey used as memory compression only.

Paper claim: off-chip compression cuts DRAM traffic ~4x and improves total
energy by ~11x at 256KB / ~7.8x at 4MB; adding on-chip compression raises
the small-buffer gain to ~54x.  Our baseline is less DRAM-dominated (see
EXPERIMENTS.md) so the absolute factors are smaller; the trends are
asserted: energy always improves, more with smaller buffers, and OC+ON
at least matches OC.
"""

from conftest import BUFFER_SWEEP, KB, geomean

from repro.accelerator.compression_modes import COMPRESSION_MODE_DESIGNS as MODE_DESIGNS
from repro.accelerator.compression_modes import CompressionMode
from repro.analysis.reporting import format_table

MODES = (CompressionMode.OFF_CHIP, CompressionMode.OFF_CHIP_AND_ON_CHIP)


def _compute(campaign, workloads):
    gains = {mode: {} for mode in MODES}
    traffic_ratio = {}
    for name in workloads:
        for size in BUFFER_SWEEP:
            base = campaign.result(design="tensor-cores", workload=name, buffer_bytes=size)
            for mode in MODES:
                result = campaign.result(
                    design=MODE_DESIGNS[mode], workload=name, buffer_bytes=size
                )
                gains[mode].setdefault(name, {})[size] = result.energy_efficiency_over(base)
                if mode is CompressionMode.OFF_CHIP and size == 256 * KB:
                    traffic_ratio[name] = base.traffic_bytes / result.traffic_bytes
    return gains, traffic_ratio


def test_fig15_memory_compression_energy(benchmark, compression_campaign, workloads):
    gains, traffic_ratio = benchmark.pedantic(
        lambda: _compute(compression_campaign, workloads), rounds=1, iterations=1
    )

    for mode in MODES:
        headers = ["workload"] + [f"{size // KB}KB" for size in BUFFER_SWEEP]
        rows = [
            [name] + [f"{per[s]:.2f}x" for s in BUFFER_SWEEP]
            for name, per in gains[mode].items()
        ]
        means = {s: geomean(per[s] for per in gains[mode].values()) for s in BUFFER_SWEEP}
        rows.append(["GEOMEAN"] + [f"{means[s]:.2f}x" for s in BUFFER_SWEEP])
        print(f"\nFigure 15 ({mode.value.upper()}) — energy improvement with Mokey compression")
        print(format_table(headers, rows))
    print("DRAM traffic reduction at 256KB (OC):",
          {k: f"{v:.1f}x" for k, v in traffic_ratio.items()})

    # Off-chip compression reduces DRAM traffic by roughly 3-4x (paper: ~4x).
    assert all(2.0 < ratio < 5.0 for ratio in traffic_ratio.values())
    # Energy always improves; the gain is at least as large at small buffers.
    oc_means = {s: geomean(per[s] for per in gains[CompressionMode.OFF_CHIP].values())
                for s in BUFFER_SWEEP}
    ocon_means = {s: geomean(per[s] for per in gains[CompressionMode.OFF_CHIP_AND_ON_CHIP].values())
                  for s in BUFFER_SWEEP}
    assert all(v > 1.0 for v in oc_means.values())
    assert oc_means[BUFFER_SWEEP[0]] >= oc_means[BUFFER_SWEEP[-1]]
    assert ocon_means[BUFFER_SWEEP[0]] >= oc_means[BUFFER_SWEEP[0]]
