"""Figure 5: the DRAM container (4-bit value stream + outlier pointer stream).

Packs a realistic quantized tensor into the off-chip container, verifies
losslessness, and reports the resulting footprint against FP16/FP32.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.memory.layout import pack_offchip, unpack_offchip


def _build_encoded(mokey_quantizer, n=262_144):
    rng = np.random.default_rng(3)
    values = rng.normal(0, 0.02, n)
    outliers = int(0.015 * n)
    values[rng.choice(n, outliers, replace=False)] = rng.choice([-1, 1], outliers) * 0.3
    return mokey_quantizer.quantize(values, "weights").encoded


def test_fig05_offchip_container(benchmark, mokey_quantizer):
    encoded = _build_encoded(mokey_quantizer)
    container = benchmark.pedantic(lambda: pack_offchip(encoded), rounds=1, iterations=1)

    restored = unpack_offchip(container)
    num_values = container.num_values
    rows = [
        ["values", num_values],
        ["value stream (KB)", f"{container.value_bits / 8 / 1024:.1f}"],
        ["OT pointer stream (KB)", f"{container.pointer_bits / 8 / 1024:.1f}"],
        ["total (KB)", f"{container.total_bits / 8 / 1024:.1f}"],
        ["FP16 baseline (KB)", f"{num_values * 2 / 1024:.1f}"],
        ["compression vs FP16", f"{container.compression_ratio(16):.2f}x"],
        ["compression vs FP32", f"{container.compression_ratio(32):.2f}x"],
    ]
    print("\nFigure 5 — Mokey off-chip memory container")
    print(format_table(["quantity", "value"], rows))

    # Losslessness of the container.
    assert np.array_equal(restored.is_outlier, encoded.is_outlier.ravel())
    # ~4x compression against FP16 (4-bit values + small pointer stream).
    assert 3.3 < container.compression_ratio(16) < 4.0
    # Pointer stream is a small fraction of the value stream at ~1.5% outliers.
    assert container.pointer_bits < 0.1 * container.value_bits
