"""Figure 3: fitting the exponential curve a**int + b to the Golden Dictionary.

Paper values: a = 1.179, b = -0.977 with fitting weights 2^7 .. 2^0.
"""

from repro.analysis.reporting import format_table
from repro.core.exponential_fit import fit_exponential

PAPER_A = 1.179
PAPER_B = -0.977


def test_fig03_exponential_fit(benchmark, golden):
    fit = benchmark.pedantic(lambda: fit_exponential(golden.half), rounds=3, iterations=1)

    rows = [
        [i, f"{golden.half[i]:.3f}", f"{fit.value(i):.3f}", f"{abs(golden.half[i] - fit.value(i)):.3f}"]
        for i in range(golden.num_half_entries)
    ]
    print("\nFigure 3 — Exponential fit to the Golden Dictionary")
    print(format_table(["int", "GD centroid", "a^int + b", "abs error"], rows))
    print(f"measured: a = {fit.a:.3f}, b = {fit.b:.3f}   (paper: a = {PAPER_A}, b = {PAPER_B})")

    # Paper ballpark (clustering backend differences move it slightly).
    assert 1.10 < fit.a < 1.35
    assert -1.25 < fit.b < -0.60
    # The heavily weighted inner bins are fit tightly.
    assert abs(fit.value(0) - golden.half[0]) < 0.1
    assert fit.fit_error(golden.half) < 0.5
