"""Table I: effect of Mokey quantization on task performance.

Driven by the campaign engine: the paper's eight (model, task) rows run as
an accuracy campaign (``run_campaign(..., with_accuracy=True)``), whose
:class:`~repro.experiments.accuracy.FidelityResult` per row carries the FP
score, the weight-only and weight+activation scores, and the outlier
fractions.  The functional models are the architecture-preserving scaled
twins (see DESIGN.md §2); the scores are fidelity to each model's own FP
behaviour, so the FP column is 100 by construction and the quantized
columns show the degradation — the paper's "Err" quantity.
"""

from conftest import PAPER_WORKLOAD_SPECS, TINY_MODE

from repro.analysis.fidelity import table1_rows
from repro.analysis.reporting import format_table
from repro.experiments import AxisGrid, CampaignSpec, Enrichments, ExecutionPolicy, run_spec

# Tiny mode keeps one row per task family (classification, qa) instead of
# all eight Table I rows.
BENCH_WORKLOADS = (
    (PAPER_WORKLOAD_SPECS[0], PAPER_WORKLOAD_SPECS[3]) if TINY_MODE else PAPER_WORKLOAD_SPECS
)

SPEC = CampaignSpec(
    name="table1",
    axes=AxisGrid(workloads=tuple(BENCH_WORKLOADS), designs=("mokey",)),
    enrichments=Enrichments(accuracy=True),
    execution=ExecutionPolicy(executor="serial"),
)


def _compute():
    return run_spec(SPEC)


def test_table1_task_performance(benchmark):
    campaign = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = table1_rows(campaign, scheme="mokey")
    assert len(rows) == len(BENCH_WORKLOADS)

    headers = [
        "model/task", "metric", "FP", "W-only err", "W+A err",
        "W OT% (paper)", "A OT% (paper)",
    ]
    printed = []
    for row in rows:
        printed.append([
            f"{row['model']}/{row['task']}",
            row["metric"],
            f"{row['fp_score']:.1f}",
            f"{row['weight_only_err']:.2f} ({row['paper_weight_only_err']})",
            f"{row['weight_activation_err']:.2f} ({row['paper_weight_activation_err']})",
            f"{row['weight_outlier_pct']:.1f} ({row['paper_weight_outlier_pct']})",
            f"{row['activation_outlier_pct']:.1f} ({row['paper_activation_outlier_pct']})",
        ])
    print("\nTable I — task performance under Mokey quantization (fidelity to FP model)")
    print(format_table(headers, printed))

    for record in campaign:
        fidelity = record.fidelity
        label = (record.scenario.model, record.scenario.task)
        # FP fidelity is perfect by construction.
        assert fidelity.fp_score >= 99.0, label
        # Weight-only quantization degrades fidelity only mildly.
        assert fidelity.weight_only_score >= 70.0, label
        # Adding activation quantization costs a little more but stays close.
        assert fidelity.weight_activation_score >= 55.0, label
        assert fidelity.weight_activation_score <= fidelity.fp_score + 1e-9
        # Outlier fractions in the paper's ballpark: ~1-3% weights, <10% acts.
        assert 0.2 < 100 * fidelity.weight_outlier_fraction < 6.0, label
        assert 100 * fidelity.activation_outlier_fraction < 15.0, label
        # 4-bit dictionary quantization compresses FP32 weights by >6x.
        assert fidelity.compression_ratio > 6.0, label
