"""Table I: effect of Mokey quantization on task performance.

For each of the paper's eight model/task rows: the FP score, the score
after weight-only quantization, the score after weight+activation
quantization, and the outlier fractions.  The functional models are the
architecture-preserving scaled twins (see DESIGN.md §2); the scores are
fidelity to each model's own FP behaviour, so the FP column is 100 by
construction and the quantized columns show the degradation — the paper's
"Err" quantity.
"""

import numpy as np

from conftest import TINY_MODE

from repro.analysis.reporting import format_table
from repro.core.model_quantizer import QuantizationMode
from repro.transformer.model_zoo import PAPER_MODELS, build_simulation_model
from repro.transformer.tasks import TASK_METRICS, evaluate, generate_inputs, label_with_model

# Tiny mode keeps one row per task family (classification, qa) instead of
# all eight Table I rows.
BENCH_MODELS = (PAPER_MODELS[0], PAPER_MODELS[3]) if TINY_MODE else PAPER_MODELS

# Paper Table I reference values (FP score, W-only err, W+A err, W OT%, A OT%).
PAPER_ROWS = {
    ("bert-base", "mnli"): (84.44, -0.36, 0.22, 1.6, 4.5),
    ("bert-large", "mnli"): (86.65, 0.26, 0.96, 1.51, 4.0),
    ("bert-large", "stsb"): (90.25, 0.13, 0.74, 1.51, 2.5),
    ("bert-large", "squad"): (93.15, -0.02, 0.93, 1.54, 1.7),
    ("roberta-large", "mnli"): (90.58, 0.20, 0.77, 1.48, 4.1),
    ("roberta-large", "stsb"): (92.41, 0.16, 0.89, 1.48, 4.4),
    ("roberta-large", "squad"): (93.56, 0.31, 0.98, 1.48, 2.9),
    ("deberta-xl", "mnli"): (91.75, -0.03, 0.57, 1.2, 4.3),
}

_TASK_TO_FAMILY = {"mnli": "classification", "stsb": "regression", "squad": "qa"}


def _evaluate_row(model_quantizer, model_name, task, seed):
    family = _TASK_TO_FAMILY[task]
    model = build_simulation_model(model_name, task=task, scale=16, max_layers=2, seed=seed)
    seq = 48 if task == "squad" else 24
    pool = label_with_model(
        model, generate_inputs(model.config.vocab_size, seq, 48, family, seed=seed + 1)
    )
    profiling = pool.subset(np.arange(8))
    evaluation = pool.subset(np.arange(8, 48))

    fp_score = evaluate(model, evaluation)
    weight_only = model_quantizer.quantize(model, mode=QuantizationMode.WEIGHTS_ONLY)
    weight_only_score = evaluate(weight_only.model, evaluation)
    full = model_quantizer.quantize(
        model, mode=QuantizationMode.WEIGHTS_AND_ACTIVATIONS, profiling_dataset=profiling
    )
    hook = full.activation_hook()
    full_score = evaluate(full.model, evaluation, hook=hook)
    return {
        "fp": fp_score,
        "w_only": weight_only_score,
        "w_act": full_score,
        "w_ot": 100 * full.report.weight_outlier_fraction,
        "a_ot": 100 * hook.outlier_fraction,
    }


def _compute(model_quantizer):
    rows = {}
    for seed, (model_name, task, _seq, _head) in enumerate(BENCH_MODELS):
        rows[(model_name, task)] = _evaluate_row(model_quantizer, model_name, task, seed=seed)
    return rows


def test_table1_task_performance(benchmark, model_quantizer):
    measured = benchmark.pedantic(lambda: _compute(model_quantizer), rounds=1, iterations=1)

    headers = [
        "model/task", "metric", "FP", "W-only", "W+A",
        "W OT% (paper)", "A OT% (paper)",
    ]
    rows = []
    for (model_name, task), values in measured.items():
        paper = PAPER_ROWS[(model_name, task)]
        rows.append([
            f"{model_name}/{task}",
            TASK_METRICS[_TASK_TO_FAMILY[task]],
            f"{values['fp']:.1f}",
            f"{values['w_only']:.1f}",
            f"{values['w_act']:.1f}",
            f"{values['w_ot']:.1f} ({paper[3]})",
            f"{values['a_ot']:.1f} ({paper[4]})",
        ])
    print("\nTable I — task performance under Mokey quantization (fidelity to FP model)")
    print(format_table(headers, rows))

    for (model_name, task), values in measured.items():
        # FP fidelity is perfect by construction.
        assert values["fp"] >= 99.0, (model_name, task)
        # Weight-only quantization degrades fidelity only mildly.
        assert values["w_only"] >= 70.0, (model_name, task)
        # Adding activation quantization costs a little more but stays close.
        assert values["w_act"] >= 55.0, (model_name, task)
        assert values["w_act"] <= values["fp"] + 1e-9
        # Outlier fractions in the paper's ballpark: ~1-3% weights, <10% acts.
        assert 0.2 < values["w_ot"] < 6.0, (model_name, task)
        assert values["a_ot"] < 15.0, (model_name, task)
