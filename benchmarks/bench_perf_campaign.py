"""Perf benchmark of campaign throughput (scenarios simulated per second).

Writes the ``campaign_throughput`` section of ``BENCH_PERF.json``: how
fast ``run_campaign`` chews through a fresh (uncached) scenario grid with
the serial executor, and how fast a fully-cached re-run resolves.  The
analytic simulator is the hot path of every figure benchmark and of the
``repro`` CLI, so a regression here shows up everywhere.
"""

import time

from conftest import PAPER_WORKLOAD_SPECS, TINY_MODE, record_perf

from repro.experiments import ResultCache, expand_grid, run_campaign

KB = 1024

if TINY_MODE:
    GRID_KWARGS = dict(
        workloads=PAPER_WORKLOAD_SPECS[:2],
        designs=("mokey", "tensor-cores"),
        buffer_bytes=(256 * KB, 512 * KB),
    )
else:
    GRID_KWARGS = dict(
        workloads=PAPER_WORKLOAD_SPECS,
        designs=("mokey", "gobo", "tensor-cores"),
        buffer_bytes=(256 * KB, 512 * KB, 1024 * KB, 2048 * KB),
    )


def test_perf_campaign_throughput():
    scenarios = expand_grid(**GRID_KWARGS)
    cache = ResultCache()

    started = time.perf_counter()
    campaign = run_campaign(scenarios, cache=cache, executor="serial")
    fresh_seconds = time.perf_counter() - started
    assert campaign.simulated_count == len(scenarios)

    started = time.perf_counter()
    cached = run_campaign(scenarios, cache=cache, executor="serial")
    cached_seconds = time.perf_counter() - started
    assert cached.simulated_count == 0

    fresh_rate = len(scenarios) / fresh_seconds
    cached_rate = len(scenarios) / max(cached_seconds, 1e-9)
    print(
        f"\ncampaign throughput: {len(scenarios)} scenarios, "
        f"fresh {fresh_seconds:.2f}s ({fresh_rate:.0f}/s), "
        f"cached {cached_seconds * 1e3:.1f} ms ({cached_rate:.0f}/s)"
    )
    record_perf(
        "campaign_throughput",
        {
            "scenarios": len(scenarios),
            "fresh_seconds": fresh_seconds,
            "fresh_scenarios_per_second": fresh_rate,
            "cached_seconds": cached_seconds,
            "cached_scenarios_per_second": cached_rate,
        },
    )
    # Coarse sanity floors: the analytic simulator is ~ms per scenario and
    # cache hits are micro-seconds; anything slower than these is a real
    # structural regression, not machine noise.
    assert fresh_rate > 5.0
    assert cached_rate > 100.0
