"""Perf benchmark of campaign throughput (scenarios simulated per second).

Writes the ``campaign_throughput`` and ``campaign_streaming_overhead``
sections of ``BENCH_PERF.json``: how fast the campaign engine chews
through a fresh (uncached) scenario grid with the serial executor, how
fast a fully-cached re-run resolves, and how much the streaming path
(``iter_campaign`` drained event by event) costs relative to the batch
path (``run_spec``).  The analytic simulator is the hot path of every
figure benchmark and of the ``repro`` CLI, so a regression here shows up
everywhere — and because ``run_campaign``/``run_spec`` are thin wrappers
that drain the same streaming engine, streaming must stay within noise of
batch (the guard allows 5%).
"""

import time

from conftest import PAPER_WORKLOAD_SPECS, TINY_MODE, record_perf

from repro.experiments import (
    AxisGrid,
    CampaignSpec,
    ExecutionPolicy,
    ResultCache,
    iter_campaign,
    run_spec,
)

KB = 1024

if TINY_MODE:
    GRID_KWARGS = dict(
        workloads=tuple(PAPER_WORKLOAD_SPECS[:2]),
        designs=("mokey", "tensor-cores"),
        buffer_bytes=(256 * KB, 512 * KB),
    )
else:
    GRID_KWARGS = dict(
        workloads=tuple(PAPER_WORKLOAD_SPECS),
        designs=("mokey", "gobo", "tensor-cores"),
        buffer_bytes=(256 * KB, 512 * KB, 1024 * KB, 2048 * KB),
    )

SPEC = CampaignSpec(
    name="perf-campaign",
    axes=AxisGrid(**GRID_KWARGS),
    execution=ExecutionPolicy(executor="serial"),
)


def test_perf_campaign_throughput():
    scenarios = SPEC.scenarios()
    cache = ResultCache()

    started = time.perf_counter()
    campaign = run_spec(SPEC, cache=cache)
    fresh_seconds = time.perf_counter() - started
    assert campaign.simulated_count == len(scenarios)

    started = time.perf_counter()
    cached = run_spec(SPEC, cache=cache)
    cached_seconds = time.perf_counter() - started
    assert cached.simulated_count == 0

    fresh_rate = len(scenarios) / fresh_seconds
    cached_rate = len(scenarios) / max(cached_seconds, 1e-9)
    print(
        f"\ncampaign throughput: {len(scenarios)} scenarios, "
        f"fresh {fresh_seconds:.2f}s ({fresh_rate:.0f}/s), "
        f"cached {cached_seconds * 1e3:.1f} ms ({cached_rate:.0f}/s)"
    )
    record_perf(
        "campaign_throughput",
        {
            "scenarios": len(scenarios),
            "fresh_seconds": fresh_seconds,
            "fresh_scenarios_per_second": fresh_rate,
            "cached_seconds": cached_seconds,
            "cached_scenarios_per_second": cached_rate,
        },
    )
    # Coarse sanity floors: the analytic simulator is ~ms per scenario and
    # cache hits are micro-seconds; anything slower than these is a real
    # structural regression, not machine noise.
    assert fresh_rate > 5.0
    assert cached_rate > 100.0


def test_perf_streaming_overhead_under_5_percent():
    """Draining ``iter_campaign`` must cost within 5% of the batch path.

    Both paths run the same streaming engine underneath, so any real gap
    is structural (e.g. per-event work leaking into the generator).
    Three rounds of best-of-3 per side, alternating A/B inside each round
    to decorrelate thermal/scheduler noise; the guard compares the
    *median* of the per-round best ratios, so one lucky (or unlucky)
    round cannot swing the verdict.  The recorded fraction is clamped at
    0 — streaming measuring faster than batch is timer noise, and a
    negative "overhead" in BENCH_PERF.json would read as if streaming
    were structurally cheaper than the engine it wraps.
    """
    rounds, reps = 3, 3
    ratios = []
    batch_best = float("inf")
    stream_best = float("inf")
    record_count = None
    for _ in range(rounds):
        round_batch = float("inf")
        round_stream = float("inf")
        for _ in range(reps):
            started = time.perf_counter()
            campaign = run_spec(SPEC)
            round_batch = min(round_batch, time.perf_counter() - started)
            assert campaign.simulated_count == len(campaign)

            started = time.perf_counter()
            records = [record for record, _progress in iter_campaign(SPEC)]
            round_stream = min(round_stream, time.perf_counter() - started)
            record_count = len(records)
        ratios.append(round_stream / round_batch)
        batch_best = min(batch_best, round_batch)
        stream_best = min(stream_best, round_stream)

    median_ratio = sorted(ratios)[len(ratios) // 2]
    overhead = max(0.0, median_ratio - 1.0)
    print(
        f"\nstreaming overhead: batch {batch_best * 1e3:.1f} ms, "
        f"streamed {stream_best * 1e3:.1f} ms over {record_count} records "
        f"(median ratio {median_ratio:.3f}, reported overhead {overhead * 100:.1f}%)"
    )
    record_perf(
        "campaign_streaming_overhead",
        {
            "records": record_count,
            "batch_best_seconds": batch_best,
            "streaming_best_seconds": stream_best,
            "median_ratio": median_ratio,
            "overhead_fraction": overhead,
        },
    )
    assert median_ratio - 1.0 < 0.05, (
        f"streaming path {(median_ratio - 1.0) * 100:.1f}% slower than batch "
        f"(median of {rounds} best-of-{reps} rounds; allowed: 5%)"
    )
