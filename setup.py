"""Setup shim.

The project is configured through ``pyproject.toml``; this file exists so
that legacy editable installs (``pip install -e . --no-use-pep517``) work
in offline environments where the ``wheel`` package is unavailable.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21", "scipy>=1.7"],
)
