"""Campaign service: coordinator fan-out, fault tolerance, HTTP API.

The service's headline claim — an HTTP-submitted campaign executed by
several worker processes produces a store **bit-identical** (keys +
record digests, :func:`~repro.experiments.store.store_digest`) to a
single-process ``run_spec`` of the same spec, including after killing
and replacing a worker mid-campaign — is locked here end to end:

* coordinator-level: multi-worker == serial oracle; kill a worker
  mid-shard and the replacement resumes to the same digests;
* HTTP-level: submit/status/records/cancel through a live
  ``ThreadingHTTPServer`` on an ephemeral port, driven by the stdlib
  :class:`~repro.service.client.ServiceClient`;
* edge cases: invalid specs answer 400 (job never starts), unknown ids
  404, a taken port raises the one-line actionable error, and serving
  specs run as single-worker jobs.

Workers are real spawned processes, so these tests are the slowest in
the suite — grids stay tiny and the store is SQLite (the concurrent
writer backend the service defaults to).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.experiments import CampaignSpec, open_store, run_spec, scenario_key, store_digest
from repro.service import (
    JOB_STATES,
    TERMINAL_STATES,
    Coordinator,
    ServiceClient,
    ServiceError,
    make_server,
)

WAIT = 180.0  # spawned workers import the package (~1s each); be generous


def _spec_dict(name="svc-test", schemes=("fp16", "mokey"), batch_sizes=(1, 2)):
    return {
        "name": name,
        "axes": {
            "workloads": [["bert-base", "mnli", None]],
            "schemes": list(schemes),
            "designs": ["mokey"],
            "batch_sizes": list(batch_sizes),
            "buffer_bytes": [262144],
            "sequence_lengths": [32],
        },
    }


def _oracle_digest(tmp_path, spec_dict):
    """Single-process run of the same spec: the bit-identity reference."""
    root = tmp_path / "oracle"
    spec = CampaignSpec.from_dict(spec_dict).with_execution(
        store=str(root), store_backend="sqlite", resume=True
    )
    run_spec(spec)
    return store_digest(open_store(root, backend="sqlite"))


@pytest.fixture
def coordinator(tmp_path):
    co = Coordinator(tmp_path / "svc-store", store_backend="sqlite")
    yield co
    co.drain()


@pytest.fixture
def service(tmp_path):
    """A live daemon on an ephemeral port + a client bound to it."""
    co = Coordinator(tmp_path / "svc-store", store_backend="sqlite")
    server = make_server("127.0.0.1", 0, co)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    yield co, server, client
    server.shutdown()
    thread.join(5.0)
    co.drain()
    server.server_close()


class TestCoordinator:
    def test_multi_worker_equals_serial_oracle(self, tmp_path, coordinator):
        spec_dict = _spec_dict()
        oracle = _oracle_digest(tmp_path, spec_dict)
        job_id = coordinator.submit(spec_dict, workers=2)
        status = coordinator.wait(job_id, timeout=WAIT)
        assert status["state"] == "completed"
        assert status["error"] is None
        assert status["progress"]["completed"] == status["progress"]["total"] == 4
        service_digest = store_digest(
            open_store(coordinator.store_root, backend="sqlite")
        )
        assert service_digest == oracle

    def test_records_stream_in_grid_order_with_digests(self, tmp_path, coordinator):
        spec_dict = _spec_dict()
        job_id = coordinator.submit(spec_dict, workers=2)
        coordinator.wait(job_id, timeout=WAIT)
        rows = list(coordinator.records(job_id))
        spec = CampaignSpec.from_dict(spec_dict)
        assert [row["key"] for row in rows] == [
            scenario_key(s) for s in spec.scenarios()
        ]
        stored = store_digest(open_store(coordinator.store_root, backend="sqlite"))
        assert {row["key"]: row["digest"] for row in rows} == stored
        for row in rows:
            assert set(row) >= {"key", "digest", "scenario", "result"}

    def test_kill_one_worker_resumes_bit_identically(self, tmp_path, coordinator):
        # A grid big enough that workers are still mid-shard when the kill
        # lands (64 scenarios across 2 workers).
        spec_dict = _spec_dict(
            name="svc-kill",
            schemes=("fp16", "mokey", "gobo", "q8bert"),
            batch_sizes=(1, 2, 3, 4),
        )
        spec_dict["axes"]["buffer_bytes"] = [131072, 262144]
        spec_dict["axes"]["sequence_lengths"] = [16, 32]
        oracle = _oracle_digest(tmp_path, spec_dict)
        job_id = coordinator.submit(spec_dict, workers=2)
        # Kill shard 0's worker as soon as it has made some progress (so
        # the shard is provably mid-flight, not pending or done).
        deadline = time.monotonic() + WAIT
        killed = False
        while not killed and time.monotonic() < deadline:
            status = coordinator.status(job_id)
            if status["state"] in TERMINAL_STATES:
                break
            shard0 = status["shards"][0]
            if shard0["state"] == "running" and 0 < shard0["completed"] < shard0["total"]:
                killed = coordinator.kill_worker(job_id, 0)
            time.sleep(0.02)
        status = coordinator.wait(job_id, timeout=WAIT)
        assert status["state"] == "completed", status["error"]
        service_digest = store_digest(
            open_store(coordinator.store_root, backend="sqlite")
        )
        assert service_digest == oracle
        if killed:  # the kill can race with shard completion; when it
            # landed, a replacement worker must have finished the shard
            assert status["restarts"] >= 1
            assert status["shards"][0]["state"] == "done"

    def test_cancel_stops_workers_and_keeps_persisted_records(
        self, tmp_path, coordinator
    ):
        spec_dict = _spec_dict(
            name="svc-cancel",
            schemes=("fp16", "mokey", "gobo", "q8bert"),
            batch_sizes=(1, 2, 3, 4),
        )
        spec_dict["axes"]["sequence_lengths"] = [16, 32]
        job_id = coordinator.submit(spec_dict, workers=2)
        deadline = time.monotonic() + WAIT
        while time.monotonic() < deadline:
            status = coordinator.status(job_id)
            if status["state"] in TERMINAL_STATES or status["progress"]["completed"] > 0:
                break
            time.sleep(0.02)
        coordinator.cancel(job_id)
        status = coordinator.wait(job_id, timeout=WAIT)
        # Cancellation can race with completion on a fast grid; either
        # terminal state is legitimate, but nothing may be lost.
        assert status["state"] in ("cancelled", "completed")
        persisted = store_digest(open_store(coordinator.store_root, backend="sqlite"))
        assert len(persisted) >= status["progress"]["completed"] > 0
        rows = list(coordinator.records(job_id))
        assert {row["key"] for row in rows} <= set(persisted)

    def test_submit_rejects_bad_specs_before_starting_anything(self, coordinator):
        with pytest.raises(ValueError, match="schemes"):
            coordinator.submit(
                {"name": "bad", "axes": {"schemes": ["no-such-scheme"]}}
            )
        with pytest.raises(ServiceError, match="workers"):
            coordinator.submit(_spec_dict(), workers=0)
        with pytest.raises(ServiceError, match="kind"):
            coordinator.submit(_spec_dict(), kind="nonsense")
        assert coordinator.jobs() == []

    def test_unknown_job_id_raises_service_error(self, coordinator):
        with pytest.raises(ServiceError, match="unknown campaign id"):
            coordinator.status("campaign-9999")

    def test_more_workers_than_scenarios_completes_with_empty_shards(
        self, tmp_path, coordinator
    ):
        spec_dict = _spec_dict(schemes=("fp16",), batch_sizes=(1,))
        oracle = _oracle_digest(tmp_path, spec_dict)
        job_id = coordinator.submit(spec_dict, workers=3)
        status = coordinator.wait(job_id, timeout=WAIT)
        assert status["state"] == "completed"
        assert [shard["total"] for shard in status["shards"]] == [1, 0, 0]
        assert store_digest(open_store(coordinator.store_root, backend="sqlite")) == oracle

    def test_job_states_vocabulary_is_registered(self):
        from repro.registry import get_registry

        registry = get_registry("job-states")
        assert set(registry.names()) == set(JOB_STATES)
        assert set(TERMINAL_STATES) <= set(JOB_STATES)
        assert registry.describe("running") == JOB_STATES["running"]


class TestHTTPService:
    def test_submit_poll_stream_over_http(self, tmp_path, service):
        co, _server, client = service
        spec_dict = _spec_dict()
        oracle = _oracle_digest(tmp_path, spec_dict)
        health = client.health()
        assert health["status"] == "ok"
        assert health["store_backend"] == "sqlite"
        job_id = client.submit(spec_dict, workers=2)
        status = client.wait(job_id, timeout=WAIT)
        assert status["state"] == "completed"
        assert status["workers"] == 2
        assert len(status["shards"]) == 2
        rows = list(client.results(job_id))
        assert {row["key"]: row["digest"] for row in rows} == oracle
        listed = client.jobs()
        assert [job["id"] for job in listed] == [job_id]
        assert listed[0]["state"] == "completed"

    def test_kill_worker_over_http_preserves_bit_identity(self, tmp_path, service):
        co, _server, client = service
        spec_dict = _spec_dict(
            name="svc-http-kill",
            schemes=("fp16", "mokey", "gobo", "q8bert"),
            batch_sizes=(1, 2, 3, 4),
        )
        spec_dict["axes"]["sequence_lengths"] = [16, 32]
        oracle = _oracle_digest(tmp_path, spec_dict)
        job_id = client.submit(spec_dict, workers=2)
        deadline = time.monotonic() + WAIT
        while time.monotonic() < deadline:
            status = client.status(job_id)
            if status["state"] in TERMINAL_STATES:
                break
            shard0 = status["shards"][0]
            if shard0["state"] == "running" and shard0["completed"] > 0:
                if client.kill_worker(job_id, shard=0):
                    break
            time.sleep(0.02)
        final = client.wait(job_id, timeout=WAIT)
        assert final["state"] == "completed", final["error"]
        rows = list(client.results(job_id))
        assert {row["key"]: row["digest"] for row in rows} == oracle

    def test_serving_spec_runs_as_single_worker_job(self, service):
        co, _server, client = service
        serving_dict = {
            "name": "svc-serving",
            "model": "bert-base",
            "task": "mnli",
            "schemes": ["fp16"],
            "designs": ["mokey"],
            "buffer_bytes": 262144,
            "trace": {"kind": "poisson", "rate_rps": 200.0, "num_requests": 50, "seed": 0},
            "policy": {"kind": "timeout", "max_batch": 4, "timeout_ms": 5.0},
        }
        job_id = client.submit(serving_dict)  # kind auto-detected
        assert job_id.startswith("serving-")
        status = client.wait(job_id, timeout=WAIT)
        assert status["state"] == "completed"
        assert status["workers"] == 1
        rows = list(client.results(job_id))
        assert len(rows) == 1  # one scheme x design combo
        assert rows[0]["scheme"] == "fp16"

    def test_bad_spec_answers_400_and_unknown_id_404(self, service):
        _co, _server, client = service
        with pytest.raises(ServiceError, match="400"):
            client.submit({"name": "bad", "axes": {"designs": ["no-such-design"]}})
        with pytest.raises(ServiceError, match="404"):
            client.status("campaign-4242")
        with pytest.raises(ServiceError, match="404"):
            list(client.results("campaign-4242"))
        with pytest.raises(ServiceError, match="404"):
            client.cancel("campaign-4242")

    def test_cancel_over_http(self, service):
        _co, _server, client = service
        spec_dict = _spec_dict(
            name="svc-http-cancel",
            schemes=("fp16", "mokey", "gobo", "q8bert"),
            batch_sizes=(1, 2, 3, 4),
        )
        job_id = client.submit(spec_dict, workers=2)
        client.cancel(job_id)
        final = client.wait(job_id, timeout=WAIT)
        assert final["state"] in ("cancelled", "completed")

    def test_taken_port_raises_one_line_actionable_error(self, service, tmp_path):
        co, server, _client = service
        port = server.server_address[1]
        with pytest.raises(ServiceError) as caught:
            make_server("127.0.0.1", port, co)
        message = str(caught.value)
        assert "\n" not in message
        assert f"cannot bind 127.0.0.1:{port}" in message
        assert "--port" in message

    def test_client_reports_unreachable_daemon_plainly(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=2.0)
        with pytest.raises(ServiceError, match="is 'repro serve' running"):
            client.health()
