"""Tests for the quantization-scheme registry and the staged simulator.

The parity constants below were captured from the pre-refactor simulator
(string-datapath dispatch) on fixed workloads; the scheme-dispatching
simulator must reproduce them bit-for-bit.
"""

import numpy as np
import pytest

from repro.accelerator.compression_modes import CompressionMode, tensor_cores_with_mokey_compression
from repro.accelerator.designs import AcceleratorDesign, DEFAULT_REGISTER_REUSE
from repro.accelerator.gobo_accel import gobo_design
from repro.accelerator.mokey_accel import mokey_design
from repro.accelerator.simulator import (
    AcceleratorSimulator,
    MemoryModel,
    OverlapModel,
    OverlapParameters,
)
from repro.accelerator.tensor_cores import tensor_cores_design
from repro.accelerator.workloads import model_workload
from repro.baselines import ALL_BASELINES
from repro.schemes import (
    ComputePhase,
    QuantizationScheme,
    available_schemes,
    get_scheme,
    register_scheme,
)

KB = 1024


def _designs():
    return {
        "tensor-cores": tensor_cores_design(),
        "gobo": gobo_design(),
        "mokey": mokey_design(),
        "oc": tensor_cores_with_mokey_compression(CompressionMode.OFF_CHIP),
        "oc+on": tensor_cores_with_mokey_compression(CompressionMode.OFF_CHIP_AND_ON_CHIP),
    }


# (compute_cycles, memory_cycles, total_cycles, traffic_bytes,
#  energy.dram, energy.sram, energy.compute) at a 512KB buffer, captured
# from the pre-refactor simulator.
PARITY_GOLDENS = {
    ("bert-base/mnli/seq128", "tensor-cores"): (
        5455872.0, 16672581.818181815, 19473262.778181814, 469499904.0,
        0.05633998848, 0.00084915781632, 0.07262856806399999,
    ),
    ("bert-base/mnli/seq128", "gobo"): (
        4364697.6, 4679236.363636363, 6919781.1316363625, 131766681.60000001,
        0.01581207552, 0.0005009870684160001, 0.0726667886592,
    ),
    ("bert-base/mnli/seq128", "mokey"): (
        3592541.6755200005, 2833936.3636363633, 3883492.475520001, 79803187.19999999,
        0.009576437759999999, 0.00026536181760000005, 0.028822715938897916,
    ),
    ("bert-base/mnli/seq128", "oc"): (
        5455872.0, 4584981.818181817, 7809496.0, 129112473.60000001,
        0.01549357056, 0.00084915781632, 0.0726986391552,
    ),
    ("bert-base/mnli/seq128", "oc+on"): (
        5455872.0, 2833936.3636363633, 5746822.800000001, 79803187.19999999,
        0.009576437759999999, 0.00026536181760000005, 0.0726986391552,
    ),
    ("bert-large/squad/seq384", "tensor-cores"): (
        60162048.0, 166893381.8181818, 207001413.8181818, 4699717632.0,
        0.56396611584, 0.00899778871296, 0.800877182976,
    ),
    ("bert-large/squad/seq384", "gobo"): (
        48129638.400000006, 50000999.99999999, 82087425.6, 1408027852.8000002,
        0.16896337919999999, 0.005440574324736, 0.8010130784256,
    ),
    ("bert-large/squad/seq384", "mokey"): (
        39615054.15168001, 21934090.909090906, 52629281.42440727, 617663692.8000001,
        0.07411968, 0.0028118089728, 0.3173687411657933,
    ),
    ("bert-large/squad/seq384", "oc"): (
        60162048.0, 45895690.90909091, 90759175.27272727, 1292422348.8000002,
        0.15509071872, 0.00899778871296, 0.8013528170495999,
    ),
    ("bert-large/squad/seq384", "oc+on"): (
        60162048.0, 21934090.909090906, 73176275.27272728, 617663692.8000001,
        0.07411968, 0.0028118089728, 0.8013528170495999,
    ),
}


class TestRegistry:
    def test_builtin_schemes_registered(self):
        names = available_schemes()
        for expected in ("fp16", "gobo", "mokey", "mokey-oc", "mokey-oc+on",
                         "q8bert", "ibert", "qbert", "ternarybert"):
            assert expected in names

    def test_get_scheme_returns_singleton(self):
        assert get_scheme("mokey") is get_scheme("mokey")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            get_scheme("tpu")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_scheme(get_scheme("fp16"))

    def test_invalid_design_datapath_still_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorDesign(name="x", datapath="tpu", num_units=8, unit_area_mm2=0.01)

    def test_design_resolves_its_scheme(self):
        assert mokey_design().scheme() is get_scheme("mokey")
        assert tensor_cores_design().scheme() is get_scheme("fp16")


class TestParity:
    @pytest.mark.parametrize("workload_name,design_key", sorted(PARITY_GOLDENS))
    def test_scheme_dispatch_matches_prerefactor_outputs(self, workload_name, design_key):
        model, task, _ = workload_name.split("/")
        workload = model_workload(model, task)
        result = AcceleratorSimulator(_designs()[design_key]).simulate(workload, 512 * KB)
        golden = PARITY_GOLDENS[(workload_name, design_key)]
        got = (
            result.compute_cycles,
            result.memory_cycles,
            result.total_cycles,
            result.traffic_bytes,
            result.energy.dram,
            result.energy.sram,
            result.energy.compute,
        )
        for value, expected in zip(got, golden):
            assert value == pytest.approx(expected, rel=1e-12)


class TestSchemeNumerics:
    def test_fp16_identity(self):
        values = np.linspace(-1, 1, 32)
        assert np.array_equal(get_scheme("fp16").quantize_dequantize(values), values)

    def test_gobo_reduces_unique_values(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0, 1, 4096)
        recon = get_scheme("gobo").quantize_dequantize(values)
        assert recon.shape == values.shape
        # 8 centroids + a handful of FP32 outliers.
        assert np.unique(recon).size < 64

    def test_ternary_three_levels(self):
        rng = np.random.default_rng(1)
        values = rng.normal(0, 1, 1024)
        recon = get_scheme("ternarybert").quantize_dequantize(values)
        assert np.unique(recon).size <= 3

    def test_q8bert_reduces_error_vs_ternary(self):
        rng = np.random.default_rng(2)
        values = rng.normal(0, 1, 1024)
        err8 = np.abs(get_scheme("q8bert").quantize_dequantize(values) - values).mean()
        err2 = np.abs(get_scheme("ternarybert").quantize_dequantize(values) - values).mean()
        assert err8 < err2

    def test_baseline_classes_declare_registered_schemes(self):
        for cls in ALL_BASELINES:
            instance = cls()
            scheme = instance.as_scheme()
            assert scheme is get_scheme(cls.scheme_name)


class TestExtension:
    def test_new_scheme_needs_only_registration(self):
        class Int8TestScheme(QuantizationScheme):
            name = "test-int8"
            weight_bits = 8.0
            activation_bits = 8.0

            def layer_compute(self, workload, design):
                macs = float(sum(g.macs for g in workload.layer_gemms))
                return ComputePhase(
                    cycles=macs / design.peak_macs_per_cycle,
                    energy_joules=macs * design.energies.int16_mac * 0.5 * 1e-12,
                )

        if "test-int8" not in available_schemes():
            register_scheme(Int8TestScheme())

        design = AcceleratorDesign(
            name="test-int8",
            datapath="test-int8",
            num_units=2048,
            unit_area_mm2=0.005,
            weight_bits_offchip=8.0,
            activation_bits_offchip=8.0,
            weight_bits_onchip=8.0,
            activation_bits_onchip=8.0,
            buffer_interface_bits=8,
        )
        result = AcceleratorSimulator(design).simulate(model_workload("bert-base", "mnli"), 512 * KB)
        assert result.compute_cycles > 0
        assert result.energy.total > 0

    def test_with_scheme_adopts_storage_defaults(self):
        variant = tensor_cores_design().with_scheme("mokey")
        assert variant.datapath == "mokey"
        assert variant.weight_bits_offchip == pytest.approx(4.4)
        assert variant.buffer_interface_bits == 5
        assert variant.num_units == tensor_cores_design().num_units
        # Scheme-coupled outlier rates come along too (the Tensor-Cores base
        # has 0/0, which would silently disable Mokey's OPP path).
        assert variant.weight_outlier_fraction == pytest.approx(0.015)
        assert variant.activation_outlier_fraction == pytest.approx(0.045)

    def test_compression_designs_match_scheme_storage(self):
        from repro.schemes import get_scheme

        for mode, scheme_name in (
            (CompressionMode.OFF_CHIP, "mokey-oc"),
            (CompressionMode.OFF_CHIP_AND_ON_CHIP, "mokey-oc+on"),
        ):
            design = tensor_cores_with_mokey_compression(mode)
            storage = get_scheme(scheme_name).storage()
            assert design.datapath == scheme_name
            assert design.weight_bits_offchip == storage.weight_bits_offchip
            assert design.weight_bits_onchip == storage.weight_bits_onchip
            assert design.buffer_interface_bits == storage.buffer_interface_bits
            assert design.decompression_lut == storage.decompression_lut


class TestEngineParameters:
    def test_register_reuse_default_and_effect(self):
        from dataclasses import replace

        design = tensor_cores_design()
        assert design.register_reuse == DEFAULT_REGISTER_REUSE
        workload = model_workload("bert-base", "mnli")
        low_reuse = AcceleratorSimulator(
            replace(design, register_reuse=4.0)
        ).simulate(workload, 512 * KB)
        base = AcceleratorSimulator(design).simulate(workload, 512 * KB)
        # Less register reuse means more buffer reads, hence more SRAM energy.
        assert low_reuse.energy.sram > base.energy.sram

    def test_invalid_register_reuse_rejected(self):
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(tensor_cores_design(), register_reuse=0.0)

    def test_overlap_parameters_defaults_match_legacy_constants(self):
        params = OverlapParameters()
        assert params.max_efficiency == 0.98
        assert params.min_efficiency == 0.25
        assert params.base_efficiency == 0.3
        assert params.residency_slope == 0.7

    def test_custom_overlap_model_changes_totals(self):
        workload = model_workload("bert-large", "squad")
        design = tensor_cores_design()
        base = AcceleratorSimulator(design).simulate(workload, 256 * KB)
        no_overlap = AcceleratorSimulator(
            design,
            overlap=OverlapModel(OverlapParameters(
                max_efficiency=0.0, min_efficiency=0.0,
                base_efficiency=0.0, residency_slope=0.0,
            )),
        ).simulate(workload, 256 * KB)
        assert no_overlap.total_cycles == pytest.approx(
            no_overlap.compute_cycles + no_overlap.memory_cycles
        )
        assert no_overlap.total_cycles > base.total_cycles

    def test_memory_model_dram_accessor(self):
        sim = AcceleratorSimulator(tensor_cores_design())
        assert sim.dram is sim.memory.dram
        assert isinstance(sim.memory, MemoryModel)
