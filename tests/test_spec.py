"""Tests for the declarative campaign API (:mod:`repro.experiments.spec`).

Four guarantees the spec layer must give:

1. **Round-trip** — ``CampaignSpec.from_dict(spec.to_dict()) == spec``
   (property-tested over registry-sampled axes), through JSON text and
   files too.
2. **Validation** — unknown model/task/scheme/design names raise a
   :class:`~repro.registry.RegistryError` naming the registry and its
   nearest match, before anything simulates.
3. **Streaming** — ``iter_campaign`` yields records in grid order with
   monotone progress, appends to the store *before* yielding, and a
   consumer that stops early (the kill case) simulates nothing past the
   last consumed scenario under the serial executor.
4. **Resume ≡ fresh** — an interrupted store, resumed, ends bit-identical
   (same keys, same record digests) to an uninterrupted run, with the
   persisted scenarios never re-simulated.

Plus the back-compat contract: ``run_campaign`` legacy kwargs keep
working verbatim but emit a one-time :class:`DeprecationWarning` carrying
the spec-equivalent snippet.
"""

import hashlib
import json
import warnings

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.experiments import (
    ArtifactStore,
    AxisGrid,
    CampaignSpec,
    Enrichments,
    ExecutionPolicy,
    ResultCache,
    Scenario,
    iter_campaign,
    run_campaign,
    run_spec,
    scenario_key,
)
from repro.experiments.accuracy import AccuracySettings
from repro.experiments.campaign import _reset_legacy_kwarg_warning
from repro.experiments.measured import MeasurementSettings
from repro.registry import DESIGNS, MODELS, SCHEMES, TASKS, RegistryError

KB = 1024

TINY_ACCURACY = AccuracySettings(
    pool_samples=16,
    profile_samples=4,
    classification_sequence_length=12,
    qa_sequence_length=16,
    golden_samples=3000,
    golden_repeats=1,
)


def tiny_spec(**execution) -> CampaignSpec:
    """A 4-scenario serial spec (2 designs x 2 buffers) used across tests."""
    return CampaignSpec(
        name="tiny",
        axes=AxisGrid(
            designs=("mokey", "tensor-cores"),
            buffer_bytes=(256 * KB, 512 * KB),
        ),
        execution=ExecutionPolicy(executor="serial", **execution),
    )


def store_state(root) -> dict:
    """Store key → sha256 digest of the canonical record payload.

    The bit-identity currency of the resume tests: two stores are
    equivalent iff these mappings are equal (line order and upgrade
    history are allowed to differ; the loaded record per key is not).
    """
    state = {}
    for entry in ArtifactStore(root).records():
        payload = {
            "scenario": entry.scenario.to_dict(),
            "result": entry.result.to_dict(),
            "fidelity": None if entry.fidelity is None else entry.fidelity.to_dict(),
            "measured": None if entry.measured is None else entry.measured.to_dict(),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        state[scenario_key(entry.scenario)] = hashlib.sha256(blob.encode()).hexdigest()
    return state


# --------------------------------------------------------------------------- #
# Round-trip
# --------------------------------------------------------------------------- #
_axis_grids = st.builds(
    AxisGrid,
    models=st.lists(st.sampled_from(MODELS.names()), min_size=1, max_size=2).map(tuple),
    tasks=st.lists(st.sampled_from(TASKS.names()), min_size=1, max_size=2).map(tuple),
    sequence_lengths=st.lists(
        st.one_of(st.none(), st.integers(min_value=8, max_value=512)),
        min_size=1,
        max_size=2,
    ).map(tuple),
    batch_sizes=st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=2).map(
        tuple
    ),
    schemes=st.lists(
        st.one_of(st.none(), st.sampled_from(SCHEMES.names())), min_size=1, max_size=2
    ).map(tuple),
    designs=st.lists(st.sampled_from(DESIGNS.names()), min_size=1, max_size=2).map(tuple),
    buffer_bytes=st.lists(
        st.integers(min_value=1, max_value=64).map(lambda kb: kb * 64 * KB),
        min_size=1,
        max_size=2,
    ).map(tuple),
    workloads=st.one_of(
        st.none(),
        st.lists(
            st.tuples(
                st.sampled_from(MODELS.names()),
                st.sampled_from(TASKS.names()),
                st.one_of(st.none(), st.integers(min_value=8, max_value=512)),
            ),
            min_size=1,
            max_size=3,
        ).map(tuple),
    ),
)

_specs = st.builds(
    CampaignSpec,
    name=st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="-_"),
        min_size=1,
        max_size=16,
    ),
    axes=_axis_grids,
    enrichments=st.builds(
        Enrichments,
        accuracy=st.booleans(),
        measured=st.booleans(),
        accuracy_settings=st.one_of(
            st.none(), st.builds(AccuracySettings, scale=st.integers(8, 32))
        ),
        measurement_settings=st.one_of(
            st.none(), st.builds(MeasurementSettings, golden_seed=st.integers(0, 99))
        ),
    ),
    execution=st.builds(
        ExecutionPolicy,
        executor=st.sampled_from(("serial", "thread", "process")),
        max_workers=st.one_of(st.none(), st.integers(1, 8)),
        chunksize=st.one_of(st.none(), st.integers(1, 8)),
        store=st.one_of(st.none(), st.just("./store-dir")),
        store_backend=st.sampled_from((None, "jsonl", "sqlite")),
        resume=st.booleans(),
    ),
)


class TestRoundTrip:
    @hyp_settings(max_examples=60, deadline=None)
    @given(spec=_specs)
    def test_dict_and_json_round_trip_to_equality(self, spec):
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        assert CampaignSpec.from_json(spec.to_json()) == spec
        # And through a real JSON encode/decode cycle (tuples become lists).
        assert CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    @hyp_settings(max_examples=25, deadline=None)
    @given(spec=_specs)
    def test_round_trip_expands_the_same_scenarios(self, spec):
        assert CampaignSpec.from_json(spec.to_json()).scenarios() == spec.scenarios()

    def test_file_round_trip(self, tmp_path):
        spec = tiny_spec(store="some/dir")
        path = tmp_path / "spec.json"
        spec.save(path)
        assert CampaignSpec.load(path) == spec

    def test_unknown_fields_are_tolerated(self):
        data = tiny_spec().to_dict()
        data["future_field"] = {"x": 1}
        data["axes"]["future_axis"] = [1, 2]
        data["execution"]["future_knob"] = True
        assert CampaignSpec.from_dict(data) == tiny_spec()

    def test_lists_normalise_to_tuples(self):
        spec = CampaignSpec(axes=AxisGrid(models=["bert-base"], workloads=[["bert-base", "mnli", None]]))
        assert spec.axes.models == ("bert-base",)
        assert spec.axes.workloads == (("bert-base", "mnli", None),)
        assert hash(spec)  # frozen + tuples => hashable


# --------------------------------------------------------------------------- #
# Validation
# --------------------------------------------------------------------------- #
class TestValidation:
    def test_validate_returns_self_on_a_good_spec(self):
        spec = tiny_spec()
        assert spec.validate() is spec

    @pytest.mark.parametrize(
        "axes, registry_kind, suggestion",
        [
            (dict(models=("bert-basee",)), "models", "bert-base"),
            (dict(tasks=("mnli2",)), "tasks", "mnli"),
            (dict(schemes=("mokeyy",)), "schemes", "mokey"),
            (dict(designs=("tensor-core",)), "designs", "tensor-cores"),
        ],
    )
    def test_unknown_names_name_registry_and_nearest_match(
        self, axes, registry_kind, suggestion
    ):
        spec = CampaignSpec(axes=AxisGrid(**axes))
        with pytest.raises(RegistryError) as excinfo:
            spec.validate()
        assert f"'{registry_kind}' registry" in str(excinfo.value)
        assert f"did you mean {suggestion!r}?" in str(excinfo.value)

    def test_workload_names_are_validated_too(self):
        spec = CampaignSpec(axes=AxisGrid(workloads=(("bert-base", "sqaud", 128),)))
        with pytest.raises(RegistryError, match="'tasks' registry"):
            spec.validate()

    def test_iter_campaign_validates_before_simulating(self, tmp_path):
        spec = CampaignSpec(
            axes=AxisGrid(designs=("mokeyy",)),
            execution=ExecutionPolicy(executor="serial", store=str(tmp_path / "s")),
        )
        with pytest.raises(RegistryError):
            iter_campaign(spec)
        assert not (tmp_path / "s").exists()

    @pytest.mark.parametrize(
        "axes",
        [
            dict(batch_sizes=(0,)),
            dict(buffer_bytes=(-1,)),
            dict(sequence_lengths=(0,)),
            dict(workloads=(("bert-base", "mnli"),)),
        ],
    )
    def test_malformed_numeric_axes_are_rejected(self, axes):
        with pytest.raises(ValueError):
            CampaignSpec(axes=AxisGrid(**axes)).validate()

    def test_unknown_executor_is_rejected(self):
        spec = CampaignSpec(execution=ExecutionPolicy(executor="rayon"))
        with pytest.raises(ValueError, match="unknown executor"):
            spec.validate()


# --------------------------------------------------------------------------- #
# Streaming
# --------------------------------------------------------------------------- #
class TestStreaming:
    def test_events_follow_grid_order_with_monotone_progress(self):
        spec = tiny_spec()
        scenarios = spec.scenarios()
        events = list(iter_campaign(spec))
        assert [record.scenario for record, _ in events] == scenarios
        for index, (record, progress) in enumerate(events):
            assert progress.completed == index + 1
            assert progress.total == len(scenarios)
            assert progress.store_key == scenario_key(record.scenario)
        assert events[-1][1].simulated == len(scenarios)
        assert events[-1][1].fraction == 1.0

    def test_streamed_records_equal_the_batch_path(self):
        streamed = [record for record, _ in iter_campaign(tiny_spec())]
        batch = run_spec(tiny_spec()).records
        assert [r.result for r in streamed] == [r.result for r in batch]
        assert [r.scenario for r in streamed] == [r.scenario for r in batch]

    def test_store_append_happens_before_yield(self, tmp_path):
        spec = tiny_spec(store=str(tmp_path / "s"))
        for record, progress in iter_campaign(spec):
            fresh = ArtifactStore(tmp_path / "s")
            assert fresh.get(record.scenario) is not None, (
                "record yielded before its store append"
            )

    def test_early_exit_simulates_nothing_further_serial(self, tmp_path):
        spec = tiny_spec(store=str(tmp_path / "s"))
        events = iter_campaign(spec)
        record, progress = next(events)
        events.close()
        assert progress.completed == 1
        assert len(ArtifactStore(tmp_path / "s")) == 1

    def test_duplicates_in_grid_count_as_cache_reuse(self):
        from repro.experiments import stream_campaign

        scenario = Scenario(design="mokey")
        records = [r for r, _ in stream_campaign([scenario, scenario], executor="serial")]
        assert records[0].cached is False
        assert records[1].cached is True
        assert records[1].result == records[0].result


# --------------------------------------------------------------------------- #
# Resume
# --------------------------------------------------------------------------- #
class TestResume:
    def test_resume_equals_fresh_bit_identical(self, tmp_path):
        fresh_spec = tiny_spec(store=str(tmp_path / "fresh"))
        fresh = run_spec(fresh_spec)
        assert fresh.simulated_count == 4

        # Interrupt a second campaign after one record (the kill case) ...
        killed_spec = tiny_spec(store=str(tmp_path / "killed"))
        events = iter_campaign(killed_spec)
        next(events)
        events.close()
        assert store_state(tmp_path / "killed") != store_state(tmp_path / "fresh")

        # ... and resume it: only the missing scenarios simulate, and the
        # final store is bit-identical to the uninterrupted one.
        resumed = run_spec(killed_spec)
        assert resumed.simulated_count == 3
        assert sum(1 for r in resumed if r.cached) == 1
        assert store_state(tmp_path / "killed") == store_state(tmp_path / "fresh")

        # The record sets agree too, in order.
        assert [r.result for r in resumed] == [r.result for r in fresh]

    def test_resume_with_enrichments_is_bit_identical(self, tmp_path):
        spec = CampaignSpec(
            name="tiny-accuracy",
            axes=AxisGrid(designs=("mokey",), buffer_bytes=(256 * KB, 512 * KB)),
            enrichments=Enrichments(accuracy=True, accuracy_settings=TINY_ACCURACY),
            execution=ExecutionPolicy(executor="serial", store=str(tmp_path / "fresh")),
        )
        fresh = run_spec(spec)
        assert fresh.fidelity_evaluated == 1

        killed_spec = spec.with_execution(store=str(tmp_path / "killed"))
        events = iter_campaign(killed_spec)
        next(events)
        events.close()
        resumed = run_spec(killed_spec)
        assert resumed.simulated_count == 1
        assert store_state(tmp_path / "killed") == store_state(tmp_path / "fresh")

    def test_resume_false_resimulates_but_still_persists(self, tmp_path):
        store_dir = str(tmp_path / "s")
        first = run_spec(tiny_spec(store=store_dir))
        assert first.simulated_count == 4
        before = store_state(tmp_path / "s")

        refresh = run_spec(tiny_spec(store=store_dir, resume=False))
        assert refresh.simulated_count == 4  # store kept out of the lookup path
        assert store_state(tmp_path / "s") == before  # deterministic => unchanged
        assert len(ArtifactStore(store_dir)) == 4

    def test_resume_false_on_an_empty_dir_still_persists(self, tmp_path):
        store_dir = str(tmp_path / "s")
        run_spec(tiny_spec(store=store_dir, resume=False))
        assert len(ArtifactStore(store_dir)) == 4


# --------------------------------------------------------------------------- #
# Back-compat
# --------------------------------------------------------------------------- #
class TestLegacyShim:
    def test_legacy_kwargs_warn_once_with_spec_snippet(self):
        _reset_legacy_kwarg_warning()
        scenarios = tiny_spec().scenarios()
        with pytest.warns(DeprecationWarning) as captured:
            run_campaign(scenarios, executor="serial", with_measured=False)
        message = str(captured[0].message)
        assert "CampaignSpec" in message
        assert "ExecutionPolicy(executor='serial')" in message
        assert "Enrichments(measured=False)" in message
        # Second call: silent (once per process).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_campaign(scenarios, executor="serial")

    def test_spec_free_calls_do_not_warn(self):
        _reset_legacy_kwarg_warning()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_campaign(tiny_spec().scenarios())
            run_campaign(tiny_spec().scenarios(), max_workers=2, cache=ResultCache())

    def test_legacy_kwargs_behave_verbatim(self, tmp_path):
        """The shim path and the spec path produce identical records/stores."""
        _reset_legacy_kwarg_warning()
        spec = tiny_spec(store=str(tmp_path / "spec"))
        via_spec = run_spec(spec)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_legacy = run_campaign(
                spec.scenarios(),
                cache=ResultCache(store=ArtifactStore(tmp_path / "legacy")),
                executor="serial",
            )
        assert [r.result for r in via_legacy] == [r.result for r in via_spec]
        assert store_state(tmp_path / "legacy") == store_state(tmp_path / "spec")


class TestSpecDerivation:
    def test_with_execution_and_with_enrichments(self):
        spec = tiny_spec()
        faster = spec.with_execution(executor="process", max_workers=2)
        assert faster.execution.executor == "process"
        assert faster.axes == spec.axes
        enriched = spec.with_enrichments(accuracy=True)
        assert enriched.enrichments.accuracy is True
        assert spec.enrichments.accuracy is False  # original untouched

    def test_custom_simulator_factory_rejects_persistence(self, tmp_path):
        def factory(scenario):  # pragma: no cover - never called
            raise AssertionError

        with pytest.raises(ValueError, match="simulator_factory"):
            iter_campaign(tiny_spec(store=str(tmp_path)), simulator_factory=factory)
        with pytest.raises(ValueError, match="simulator_factory"):
            iter_campaign(tiny_spec(), cache=ResultCache(), simulator_factory=factory)

    def test_run_campaign_accepts_factory_with_its_own_fresh_cache(self):
        """The pre-spec contract: only a *caller-provided* cache clashes
        with a custom simulator; cache-less calls keep working."""
        from repro.accelerator.simulator import AcceleratorSimulator

        def factory(scenario):
            return AcceleratorSimulator(scenario.build_design())

        campaign = run_campaign([Scenario()], simulator_factory=factory)
        assert len(campaign) == 1 and campaign.simulated_count == 1
        with pytest.raises(ValueError, match="shared cache"):
            run_campaign([Scenario()], cache=ResultCache(), simulator_factory=factory)
