"""Tests for whole-model Mokey quantization (paper Table I behaviour)."""

import numpy as np
import pytest

from repro.core.model_quantizer import (
    ActivationQuantizationHook,
    MokeyModelQuantizer,
    QuantizationMode,
)
from repro.transformer.tasks import evaluate


@pytest.fixture(scope="module")
def model_quantizer(golden):
    return MokeyModelQuantizer(golden)


@pytest.fixture(scope="module")
def quantized_bundle(model_quantizer, tiny_model, tiny_dataset):
    return model_quantizer.quantize(
        tiny_model,
        mode=QuantizationMode.WEIGHTS_AND_ACTIVATIONS,
        profiling_dataset=tiny_dataset,
        profiling_samples=8,
    )


class TestWeightQuantization:
    def test_all_weight_matrices_quantized(self, model_quantizer, tiny_model):
        _, weights, _ = model_quantizer.quantize_weights(tiny_model)
        assert set(weights.keys()) == set(tiny_model.weight_matrices().keys())

    def test_original_model_untouched(self, model_quantizer, tiny_model):
        before = {n: v.copy() for n, v in tiny_model.named_parameters()}
        model_quantizer.quantize_weights(tiny_model)
        for name, value in tiny_model.named_parameters():
            assert np.array_equal(before[name], value)

    def test_quantized_weights_differ_but_are_close(self, model_quantizer, tiny_model):
        quantized_model, _, _ = model_quantizer.quantize_weights(tiny_model)
        originals = tiny_model.weight_matrices()
        changed = 0
        for name, quantized in quantized_model.weight_matrices().items():
            original = originals[name]
            if not np.array_equal(quantized, original):
                changed += 1
            rel = np.abs(quantized - original).mean() / (np.abs(original).mean() + 1e-12)
            assert rel < 0.4
        assert changed > 0

    def test_weight_outlier_fraction_in_paper_range(self, quantized_bundle):
        # Table I reports 1.2-1.6% outliers for weights; synthetic models are
        # built with a similar tail so the measured fraction lands nearby.
        assert 0.002 < quantized_bundle.report.weight_outlier_fraction < 0.06

    def test_weight_compression_ratio_near_8x(self, quantized_bundle):
        assert 5.0 < quantized_bundle.report.weight_compression_ratio < 8.2

    def test_per_tensor_outlier_fractions_recorded(self, quantized_bundle):
        report = quantized_bundle.report
        assert len(report.per_tensor_outlier_fraction) > 0
        for fraction in report.per_tensor_outlier_fraction.values():
            assert 0.0 <= fraction <= 0.2


class TestActivationCalibration:
    def test_dictionaries_cover_all_hooked_activations(self, quantized_bundle):
        names = set(quantized_bundle.activation_dictionaries)
        assert any("attention.query" in n for n in names)
        assert any("ffn.intermediate" in n for n in names)
        assert "head.output" not in names

    def test_weights_only_mode_needs_no_dataset(self, model_quantizer, tiny_model):
        bundle = model_quantizer.quantize(tiny_model, mode=QuantizationMode.WEIGHTS_ONLY)
        assert bundle.activation_dictionaries == {}
        assert bundle.activation_hook() is None

    def test_activation_mode_requires_dataset(self, model_quantizer, tiny_model):
        with pytest.raises(ValueError):
            model_quantizer.quantize(tiny_model, mode=QuantizationMode.WEIGHTS_AND_ACTIVATIONS)

    def test_hook_reports_outlier_fraction(self, quantized_bundle, tiny_dataset):
        hook = quantized_bundle.activation_hook()
        evaluate(quantized_bundle.model, tiny_dataset, hook=hook)
        assert 0.0 <= hook.outlier_fraction < 0.25
        assert hook.total_values > 0

    def test_hook_reset(self, quantized_bundle):
        hook = quantized_bundle.activation_hook()
        hook("encoder.0.attention.query", np.zeros((2, 4, 8), dtype=np.float32))
        assert hook.total_values > 0
        hook.reset_statistics()
        assert hook.total_values == 0

    def test_hook_passes_unknown_tensors_through(self, quantized_bundle, rng):
        hook = quantized_bundle.activation_hook()
        array = rng.normal(0, 1, (2, 3)).astype(np.float32)
        assert np.array_equal(hook("no.such.tensor", array), array)


class TestTaskFidelity:
    def test_fp_model_scores_perfectly_on_self_labelled_task(self, tiny_model, tiny_dataset):
        assert evaluate(tiny_model, tiny_dataset) == pytest.approx(100.0)

    def test_weight_only_quantization_preserves_fidelity(
        self, model_quantizer, tiny_model, tiny_dataset
    ):
        bundle = model_quantizer.quantize(tiny_model, mode=QuantizationMode.WEIGHTS_ONLY)
        score = evaluate(bundle.model, tiny_dataset)
        assert score >= 75.0

    def test_weight_and_activation_quantization_close_to_fp(
        self, quantized_bundle, tiny_dataset
    ):
        score = evaluate(quantized_bundle.model, tiny_dataset, hook=quantized_bundle.activation_hook())
        assert score >= 70.0

    def test_mokey_beats_naive_2bit_quantization(
        self, model_quantizer, tiny_model, tiny_dataset
    ):
        """Sanity: a crude low-bit scheme should do no better than Mokey."""
        from repro.baselines.ternarybert import TernaryBertQuantizer

        mokey_bundle = model_quantizer.quantize(tiny_model, mode=QuantizationMode.WEIGHTS_ONLY)
        ternary = TernaryBertQuantizer().quantize(tiny_model)
        mokey_score = evaluate(mokey_bundle.model, tiny_dataset)
        ternary_score = evaluate(ternary.model, tiny_dataset)
        assert mokey_score >= ternary_score - 5.0


class TestModes:
    def test_memory_compression_mode_quantizes_activations_too(
        self, model_quantizer, tiny_model, tiny_dataset
    ):
        bundle = model_quantizer.quantize(
            tiny_model,
            mode=QuantizationMode.MEMORY_COMPRESSION,
            profiling_dataset=tiny_dataset,
        )
        assert bundle.mode is QuantizationMode.MEMORY_COMPRESSION
        assert len(bundle.activation_dictionaries) > 0
        assert bundle.activation_hook() is not None
