"""Tests for the on-disk artifact store and the campaign executors.

Three property families the persistence layer must guarantee:

1. **Round-trip identity** — ``Scenario → hash → JSONL → record`` is
   lossless: a result read back from disk (by a fresh store instance,
   as another process would) equals the simulated one bit-for-bit.
2. **Cache-hit monotonicity** — across any sequence of campaigns sharing
   one store, each distinct scenario is simulated exactly once, ever.
3. **Executor equivalence** — the thread and process executors produce
   records equal to the serial executor on the same grid, in the same
   order (checked on the fig10 grid per the paper's evaluation).
"""

import itertools
import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.accelerator.metrics import AreaBreakdown, EnergyBreakdown, SimulationResult
from repro.experiments import (
    ArtifactStore,
    ResultCache,
    Scenario,
    ScenarioRecord,
    available_designs,
    expand_grid,
    run_campaign,
    run_scenario,
    scenario_key,
)
from repro.experiments.store import SCHEMA_VERSION
from repro.schemes import available_schemes
from repro.transformer.model_zoo import PAPER_MODELS

KB = 1024
MB = 1024 * 1024

_CASES = itertools.count()

scenarios_st = st.builds(
    Scenario,
    model=st.sampled_from(["bert-base", "bert-large", "roberta-large", "deberta-xl"]),
    task=st.sampled_from(["mnli", "stsb", "squad"]),
    sequence_length=st.sampled_from([None, 64, 128, 384]),
    batch_size=st.integers(min_value=1, max_value=4),
    scheme=st.sampled_from((None,) + available_schemes()),
    design=st.sampled_from(available_designs()),
    buffer_bytes=st.sampled_from([256 * KB, 512 * KB, 1 * MB, 4 * MB]),
)


class TestScenarioKey:
    def test_stable_and_distinct(self):
        a = Scenario(model="bert-base")
        b = Scenario(model="bert-base")
        c = Scenario(model="bert-large")
        assert scenario_key(a) == scenario_key(b)
        assert scenario_key(a) != scenario_key(c)

    def test_schema_version_changes_key(self):
        scenario = Scenario()
        assert scenario_key(scenario) != scenario_key(scenario, schema_version=SCHEMA_VERSION + 1)

    @given(scenario=scenarios_st)
    @settings(max_examples=50, deadline=None)
    def test_key_is_deterministic_function_of_fields(self, scenario):
        assert scenario_key(scenario) == scenario_key(Scenario.from_dict(scenario.to_dict()))


class TestSerializationRoundTrip:
    @given(scenario=scenarios_st)
    @settings(max_examples=50, deadline=None)
    def test_scenario_round_trips(self, scenario):
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_scenario_from_dict_ignores_unknown_fields(self):
        data = Scenario(model="bert-large").to_dict()
        data["added_in_schema_9"] = "whatever"
        assert Scenario.from_dict(data) == Scenario(model="bert-large")

    def test_simulation_result_round_trips(self):
        result = run_scenario(Scenario())
        rebuilt = SimulationResult.from_dict(result.to_dict())
        assert rebuilt == result
        # JSON canonical forms agree too (what the store actually writes).
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == json.dumps(
            result.to_dict(), sort_keys=True
        )

    def test_simulation_result_tolerates_unknown_fields(self):
        data = run_scenario(Scenario()).to_dict()
        data["new_top_level_metric"] = 1.0
        data["energy"]["new_component"] = 2.0
        data["area"]["new_component"] = 3.0
        rebuilt = SimulationResult.from_dict(data)
        assert rebuilt.energy == EnergyBreakdown.from_dict(data["energy"])
        assert rebuilt.area == AreaBreakdown.from_dict(data["area"])

    def test_scenario_record_round_trips(self):
        scenario = Scenario(design="gobo")
        record = ScenarioRecord(scenario=scenario, result=run_scenario(scenario), cached=True)
        rebuilt = ScenarioRecord.from_dict(record.to_dict())
        assert rebuilt.scenario == record.scenario
        assert rebuilt.result == record.result
        assert rebuilt.cached is True

    def test_scenario_record_from_dict_ignores_unknown_fields(self):
        scenario = Scenario()
        record = ScenarioRecord(scenario=scenario, result=run_scenario(scenario))
        data = record.to_dict()
        data["annotations"] = {"reviewer": "future schema"}
        rebuilt = ScenarioRecord.from_dict(data)
        assert rebuilt.scenario == scenario


class TestArtifactStore:
    def test_put_get_round_trip_across_instances(self, tmp_path):
        scenario = Scenario(design="mokey", buffer_bytes=256 * KB)
        result = run_scenario(scenario)
        store = ArtifactStore(tmp_path / "store")
        assert store.get(scenario) is None
        assert store.put(scenario, result) is True
        assert store.put(scenario, result) is False  # content-addressed: no dup
        # A fresh instance (≈ another process) reads the identical result.
        reloaded = ArtifactStore(tmp_path / "store").get(scenario)
        assert reloaded == result
        assert scenario in ArtifactStore(tmp_path / "store")

    @given(scenario=scenarios_st)
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_any_scenario_round_trips_through_disk(self, tmp_path, scenario):
        result = run_scenario(scenario)
        root = tmp_path / scenario_key(scenario)
        ArtifactStore(root).put(scenario, result)
        assert ArtifactStore(root).get(scenario) == result

    def test_unreadable_lines_are_skipped_not_fatal(self, tmp_path):
        scenario = Scenario()
        store = ArtifactStore(tmp_path)
        store.put(scenario, run_scenario(scenario))
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"schema_version": SCHEMA_VERSION + 7, "key": "x"}) + "\n")
            handle.write(json.dumps({"schema_version": SCHEMA_VERSION, "key": "y"}) + "\n")
        reopened = ArtifactStore(tmp_path)
        assert len(reopened) == 1
        assert reopened.skipped == 3
        assert reopened.get(scenario) is not None

    def test_records_with_extra_fields_still_load(self, tmp_path):
        scenario = Scenario()
        store = ArtifactStore(tmp_path)
        store.put(scenario, run_scenario(scenario))
        raw = store.path.read_text(encoding="utf-8").strip()
        record = json.loads(raw)
        record["scenario"]["future_axis"] = 42
        record["result"]["future_metric"] = 1.5
        store.path.write_text(json.dumps(record) + "\n", encoding="utf-8")
        assert ArtifactStore(tmp_path).get(scenario) is not None

    def test_clear_removes_everything(self, tmp_path):
        store = ArtifactStore(tmp_path)
        scenario = Scenario()
        store.put(scenario, run_scenario(scenario))
        assert store.clear() == 1
        assert len(store) == 0
        assert not store.path.exists()
        assert store.get(scenario) is None

    def test_clear_then_external_writes_report_fresh_state(self, tmp_path):
        """Bug lock: clear() must invalidate the index, not pin an empty one.

        Historically clear() left an empty in-memory index behind, so
        records appended to the file afterwards (by another process) and
        their skipped count stayed invisible to this instance forever.
        """
        store = ArtifactStore(tmp_path)
        scenario = Scenario()
        store.put(scenario, run_scenario(scenario))
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write("corrupt line\n")
        store.clear()
        # Another process writes a record (and a bad line) after the clear.
        ArtifactStore(tmp_path).put(scenario, run_scenario(scenario))
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write("another corrupt line\n")
        assert len(store) == 1
        assert store.skipped == 1
        assert store.get(scenario) is not None

    def test_records_streams_lazily(self, tmp_path):
        """records() must be a generator over the index, not a full copy."""
        import types

        store = ArtifactStore(tmp_path)
        scenarios = [Scenario(buffer_bytes=(i + 1) * 64 * KB) for i in range(4)]
        for scenario in scenarios:
            store.put(scenario, run_scenario(scenario))
        stream = store.records()
        assert isinstance(stream, types.GeneratorType)
        first = next(stream)
        assert first.scenario == scenarios[0]
        # Interleaved writes while a consumer holds the generator are safe
        # (the key snapshot was taken up front; later puts don't appear).
        late = Scenario(buffer_bytes=9 * 64 * KB)
        store.put(late, run_scenario(late))
        rest = [entry.scenario for entry in stream]
        assert rest == scenarios[1:]

    def test_records_generator_survives_concurrent_clear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        scenarios = [Scenario(buffer_bytes=(i + 1) * 64 * KB) for i in range(3)]
        for scenario in scenarios:
            store.put(scenario, run_scenario(scenario))
        stream = store.records()
        next(stream)
        store.clear()
        assert list(stream) == []  # ends cleanly instead of yielding stale entries


class TestStoreBackedCache:
    def test_store_hits_resolve_without_simulation(self, tmp_path):
        grid = expand_grid(designs=("mokey", "tensor-cores"), buffer_bytes=(256 * KB, 1 * MB))
        first = run_campaign(grid, cache=ResultCache(store=ArtifactStore(tmp_path)))
        assert first.simulated_count == len(grid)

        # Fresh cache + fresh store instance: everything comes from disk.
        cache = ResultCache(store=ArtifactStore(tmp_path))
        second = run_campaign(grid, cache=cache)
        assert second.simulated_count == 0
        assert cache.store_hits == len(grid)
        assert all(record.cached for record in second)
        for a, b in zip(first, second):
            assert a.result == b.result

    def test_clear_keeps_backing_store(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cache = ResultCache(store=store)
        run_campaign([Scenario()], cache=cache)
        cache.clear()
        assert len(cache) == 0
        assert len(store) == 1  # disk state is managed separately

    @given(subsets=st.lists(st.lists(st.integers(min_value=0, max_value=7), max_size=12), max_size=6))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_cache_hit_monotonicity(self, tmp_path, subsets):
        """Across any campaign sequence, each scenario simulates at most once."""
        pool = expand_grid(
            models=("bert-base", "bert-large"),
            designs=("mokey", "tensor-cores"),
            buffer_bytes=(256 * KB, 1 * MB),
        )
        assert len(pool) == 8
        # tmp_path is shared across hypothesis examples; each example needs
        # a virgin store or earlier examples' records leak in as hits.
        cache = ResultCache(store=ArtifactStore(tmp_path / f"case-{next(_CASES)}"))
        ever_seen = set()
        total_simulated = 0
        previous_hits = 0
        for subset in subsets:
            scenarios = [pool[i] for i in subset]
            campaign = run_campaign(scenarios, cache=cache)
            total_simulated += campaign.simulated_count
            newly_seen = {s for s in scenarios if s not in ever_seen}
            assert campaign.simulated_count == len(newly_seen)
            ever_seen |= newly_seen
            assert cache.hits >= previous_hits  # hits only ever accumulate
            previous_hits = cache.hits
        assert total_simulated == len(ever_seen)


def fig10_grid():
    """The fig10 evaluation grid: Table I workloads × (TC, Mokey) × buffer sweep."""
    return expand_grid(
        workloads=[(m, t, s) for (m, t, s, _head) in PAPER_MODELS],
        designs=("tensor-cores", "mokey"),
        buffer_bytes=(256 * KB, 512 * KB, 1 * MB, 2 * MB, 4 * MB),
    )


class TestExecutorEquivalence:
    @pytest.fixture(scope="class")
    def serial_records(self):
        return list(run_campaign(fig10_grid(), executor="serial"))

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_matches_serial_bit_for_bit(self, serial_records, executor):
        parallel = list(run_campaign(fig10_grid(), executor=executor, max_workers=4))
        assert len(parallel) == len(serial_records) == 80
        for expected, measured in zip(serial_records, parallel):
            assert measured.scenario == expected.scenario  # same deterministic order
            assert measured.result == expected.result
            assert json.dumps(measured.result.to_dict(), sort_keys=True) == json.dumps(
                expected.result.to_dict(), sort_keys=True
            )

    def test_process_executor_chunked_dispatch(self):
        grid = fig10_grid()[:10]
        chunked = run_campaign(grid, executor="process", max_workers=2, chunksize=3)
        serial = run_campaign(grid, executor="serial")
        for a, b in zip(chunked, serial):
            assert a.result == b.result

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            run_campaign([Scenario()], executor="rayon")
