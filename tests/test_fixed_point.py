"""Tests for the fixed-point conversion (paper Eq. 7-8)."""

import numpy as np
import pytest

from repro.core.fixed_point import FixedPointFormat, quantization_step, to_fixed_point


class TestFormatDerivation:
    def test_equation_seven(self):
        # frac = b - ceil(log2(max - min)); range 6.0 -> ceil(log2 6) = 3.
        fmt = FixedPointFormat.for_range(-3.0, 3.0, total_bits=16)
        assert fmt.frac_bits == 13

    def test_one_sided_range_still_representable(self):
        # [0, 1] needs one integer bit in a signed format.
        fmt = FixedPointFormat.for_range(0.0, 1.0, total_bits=16)
        assert fmt.frac_bits == 15
        assert fmt.max_magnitude >= 0.999

    def test_degenerate_zero_range_keeps_all_fraction_bits(self):
        fmt = FixedPointFormat.for_range(0.0, 0.0, total_bits=16)
        assert fmt.frac_bits == 16

    def test_degenerate_nonzero_range_representable(self):
        fmt = FixedPointFormat.for_range(2.0, 2.0, total_bits=16)
        assert fmt.quantize(np.array([2.0]))[0] == pytest.approx(2.0, abs=fmt.scale)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFormat.for_range(1.0, 0.0)

    def test_scale_is_two_to_minus_frac(self):
        fmt = FixedPointFormat(total_bits=16, frac_bits=13)
        assert fmt.scale == pytest.approx(2 ** -13)


class TestQuantize:
    def test_round_trip_error_bounded_by_half_step(self, rng):
        values = rng.uniform(-3, 3, 1000)
        fmt = FixedPointFormat.for_range(-3, 3, 16)
        quantized = fmt.quantize(values)
        assert np.max(np.abs(quantized - values)) <= fmt.scale / 2 + 1e-12

    def test_equation_eight_matches_definition(self):
        fmt = FixedPointFormat(total_bits=16, frac_bits=8)
        values = np.array([0.1234, -1.762, 3.0])
        expected = np.round(values * 2 ** 8) / 2 ** 8
        assert np.allclose(fmt.quantize(values), expected)

    def test_idempotent(self, rng):
        fmt = FixedPointFormat.for_range(-2, 2, 16)
        values = rng.normal(0, 1, 100)
        once = fmt.quantize(values)
        twice = fmt.quantize(once)
        assert np.array_equal(once, twice)

    def test_int_round_trip(self, rng):
        fmt = FixedPointFormat.for_range(-4, 4, 16)
        values = fmt.quantize(rng.normal(0, 1, 100))
        ints = fmt.to_int(values)
        assert np.allclose(fmt.from_int(ints), values)

    def test_to_int_clips_to_width(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=4)
        ints = fmt.to_int(np.array([100.0, -100.0]))
        assert ints.max() <= 127
        assert ints.min() >= -128

    def test_quantization_error_helper(self, rng):
        fmt = FixedPointFormat.for_range(-1, 1, 12)
        values = rng.uniform(-1, 1, 50)
        assert fmt.quantization_error(values) <= fmt.scale / 2 + 1e-12


class TestHelpers:
    def test_quantization_step(self):
        assert quantization_step(-3, 3, 16) == pytest.approx(2 ** -13)

    def test_to_fixed_point_one_shot(self, rng):
        values = rng.normal(0, 1, 64)
        direct = to_fixed_point(values, -4, 4, 16)
        fmt = FixedPointFormat.for_range(-4, 4, 16)
        assert np.allclose(direct, fmt.quantize(values))

    def test_16bit_step_is_small_relative_to_transformer_ranges(self):
        # Transformer tensors span a few units; 16-bit fixed point resolves
        # them to ~1e-4, far finer than the 4-bit dictionary spacing.
        assert quantization_step(-8, 8, 16) < 1e-3
