"""Tests for attention, encoder blocks, embeddings and the full model."""

import numpy as np
import pytest

from repro.transformer.config import TransformerConfig
from repro.transformer.model_zoo import build_model
from repro.transformer.tasks import generate_inputs


class TestAttention:
    def test_output_shape(self, tiny_model, tiny_config, rng):
        attention = tiny_model.encoder.blocks[0].attention
        x = rng.normal(0, 1, (2, 10, tiny_config.hidden_size)).astype(np.float32)
        out = attention(x)
        assert out.shape == x.shape

    def test_padding_mask_blocks_attention_to_padded_positions(self, tiny_model, tiny_config, rng):
        attention = tiny_model.encoder.blocks[0].attention
        x = rng.normal(0, 1, (1, 8, tiny_config.hidden_size)).astype(np.float32)
        mask = np.ones((1, 8))
        mask[0, 4:] = 0
        captured = {}

        def hook(name, array):
            if name.endswith("probs"):
                captured["probs"] = array
            return array

        attention(x, attention_mask=mask, hook=hook, prefix="a")
        probs = captured["probs"]
        # Attention probability mass on padded keys must be ~0 for all queries.
        assert probs[..., 4:].max() < 1e-6

    def test_probs_are_a_distribution(self, tiny_model, tiny_config, rng):
        attention = tiny_model.encoder.blocks[0].attention
        x = rng.normal(0, 1, (1, 6, tiny_config.hidden_size)).astype(np.float32)
        captured = {}

        def hook(name, array):
            if name.endswith("probs"):
                captured["probs"] = array
            return array

        attention(x, hook=hook, prefix="a")
        assert np.allclose(captured["probs"].sum(axis=-1), 1.0, atol=1e-5)

    def test_disentangled_attention_runs(self, rng):
        config = TransformerConfig(
            name="tiny-deberta", num_layers=1, hidden_size=16, num_heads=2,
            intermediate_size=32, vocab_size=64, max_position_embeddings=32,
            disentangled_attention=True,
        )
        model = build_model(config, seed=0)
        attention = model.encoder.blocks[0].attention
        assert attention.disentangled
        x = rng.normal(0, 1, (1, 5, 16)).astype(np.float32)
        assert attention(x).shape == (1, 5, 16)


class TestModelForward:
    def test_classification_output_shape(self, tiny_model, tiny_config):
        inputs = generate_inputs(tiny_config.vocab_size, 12, 4, "classification", seed=0)
        logits = tiny_model(inputs.token_ids, inputs.segment_ids, inputs.attention_mask)
        assert logits.shape == (4, 3)

    def test_regression_output_shape(self, tiny_config):
        model = build_model(tiny_config, task="regression", seed=1)
        inputs = generate_inputs(tiny_config.vocab_size, 12, 4, "regression", seed=0)
        out = model(inputs.token_ids, inputs.segment_ids, inputs.attention_mask)
        assert out.shape == (4,)

    def test_qa_output_shape(self, tiny_config):
        model = build_model(tiny_config, task="qa", seed=2)
        inputs = generate_inputs(tiny_config.vocab_size, 12, 4, "qa", seed=0)
        out = model(inputs.token_ids, inputs.segment_ids, inputs.attention_mask)
        assert out.shape == (4, 12, 2)

    def test_forward_is_deterministic(self, tiny_model, tiny_config):
        inputs = generate_inputs(tiny_config.vocab_size, 12, 2, seed=5)
        a = tiny_model(inputs.token_ids, inputs.segment_ids, inputs.attention_mask)
        b = tiny_model(inputs.token_ids, inputs.segment_ids, inputs.attention_mask)
        assert np.array_equal(a, b)

    def test_outputs_finite(self, tiny_model, tiny_config):
        inputs = generate_inputs(tiny_config.vocab_size, 16, 4, seed=6)
        out = tiny_model(inputs.token_ids, inputs.segment_ids, inputs.attention_mask)
        assert np.isfinite(out).all()

    def test_sequence_longer_than_positions_rejected(self, tiny_model, tiny_config):
        inputs = generate_inputs(tiny_config.vocab_size, tiny_config.max_position_embeddings + 1, 1)
        with pytest.raises(ValueError):
            tiny_model(inputs.token_ids)

    def test_invalid_task_rejected(self, tiny_model):
        from repro.transformer.model import TransformerModel

        with pytest.raises(ValueError):
            TransformerModel(
                config=tiny_model.config,
                embeddings=tiny_model.embeddings,
                encoder=tiny_model.encoder,
                pooler=tiny_model.pooler,
                head=tiny_model.head,
                task="translation",
            )


class TestParameterAccess:
    def test_named_parameters_cover_all_modules(self, tiny_model):
        names = [n for n, _ in tiny_model.named_parameters()]
        assert any(n.startswith("embeddings.token") for n in names)
        assert any("encoder.0.attention.query" in n for n in names)
        assert any("encoder.1.ffn.output" in n for n in names)
        assert any(n.startswith("pooler.") for n in names)
        assert any(n.startswith("head.") for n in names)

    def test_set_parameter_round_trip(self, tiny_model):
        name = "encoder.0.attention.query.weight"
        params = dict(tiny_model.named_parameters())
        original = params[name].copy()
        tiny_model.set_parameter(name, original * 2.0)
        assert np.allclose(dict(tiny_model.named_parameters())[name], original * 2.0)
        tiny_model.set_parameter(name, original)

    def test_set_unknown_parameter_rejected(self, tiny_model):
        with pytest.raises(KeyError):
            tiny_model.set_parameter("decoder.0.weight", np.zeros(1))

    def test_weight_matrices_exclude_biases_and_norms(self, tiny_model):
        matrices = tiny_model.weight_matrices()
        assert all(v.ndim >= 2 for v in matrices.values())
        assert not any(name.endswith((".bias", ".gamma", ".beta")) for name in matrices)

    def test_copy_is_independent(self, tiny_model):
        twin = tiny_model.copy()
        name = "pooler.weight"
        twin.set_parameter(name, np.zeros_like(dict(twin.named_parameters())[name]))
        assert not np.allclose(
            dict(tiny_model.named_parameters())[name],
            dict(twin.named_parameters())[name],
        )

    def test_num_parameters_positive(self, tiny_model):
        assert tiny_model.num_parameters() > 10_000


class TestHooks:
    def test_hook_names_cover_all_activation_sites(self, tiny_model, tiny_config):
        inputs = generate_inputs(tiny_config.vocab_size, 8, 2, seed=9)
        seen = []

        def hook(name, array):
            seen.append(name)
            return array

        tiny_model(inputs.token_ids, inputs.segment_ids, inputs.attention_mask, hook=hook)
        assert "embeddings.output" in seen
        assert "encoder.0.attention.query" in seen
        assert "encoder.1.ffn.output" in seen
        assert "pooler.output" in seen
        assert "head.output" in seen

    def test_hook_can_modify_activations(self, tiny_model, tiny_config):
        inputs = generate_inputs(tiny_config.vocab_size, 8, 2, seed=9)
        plain = tiny_model(inputs.token_ids, inputs.segment_ids, inputs.attention_mask)

        def zero_ffn(name, array):
            if name.endswith("ffn.output"):
                return np.zeros_like(array)
            return array

        modified = tiny_model(
            inputs.token_ids, inputs.segment_ids, inputs.attention_mask, hook=zero_ffn
        )
        assert not np.allclose(plain, modified)
