"""Shard algebra: ``AxisGrid.shard`` slicing and ``shard_spec`` derivation.

The campaign service's fan-out correctness reduces to three properties of
the shard algebra, locked here with hypothesis over random grids and
shard counts:

1. **partition** — the shards' scenario lists are pairwise disjoint (as
   index positions) and their union is exactly the full grid;
2. **order stability** — concatenating the shards round-robin re-reads
   the full grid in its original order, and each shard preserves the
   grid's relative order;
3. **serialization** — a sharded spec JSON-round-trips to equality, so a
   shard can cross the process boundary (spawn pickling, HTTP) intact.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments import AxisGrid, CampaignSpec, scenario_key, shard_spec

MODELS = ("bert-base", "bert-large")
TASKS = ("mnli", "squad")
DESIGNS = ("mokey", "tensor-cores")
SCHEMES = (None, "fp16", "mokey")


def _spec(models, tasks, designs, schemes, batch_sizes, num_buffers):
    return CampaignSpec(
        name="shard-prop",
        axes=AxisGrid(
            models=tuple(models),
            tasks=tuple(tasks),
            designs=tuple(designs),
            schemes=tuple(schemes),
            batch_sizes=tuple(batch_sizes),
            buffer_bytes=tuple(256 * 1024 * (i + 1) for i in range(num_buffers)),
            sequence_lengths=(32,),
        ),
    )


grids = st.builds(
    _spec,
    st.lists(st.sampled_from(MODELS), min_size=1, max_size=2, unique=True),
    st.lists(st.sampled_from(TASKS), min_size=1, max_size=2, unique=True),
    st.lists(st.sampled_from(DESIGNS), min_size=1, max_size=2, unique=True),
    st.lists(st.sampled_from(SCHEMES), min_size=1, max_size=2, unique=True),
    st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=2, unique=True),
    st.integers(min_value=1, max_value=2),
)

shard_counts = st.integers(min_value=1, max_value=7)


class TestShardAlgebra:
    @given(spec=grids, num_shards=shard_counts)
    @settings(max_examples=40, deadline=None)
    def test_shards_partition_the_grid(self, spec, num_shards):
        full = spec.scenarios()
        shards = shard_spec(spec, num_shards)
        assert len(shards) == num_shards
        pieces = [shard.scenarios() for shard in shards]
        # Union == full grid, with multiplicity (duplicates in the grid
        # stay duplicated across the union, never collapsed or doubled).
        assert sum(len(piece) for piece in pieces) == len(full)
        interleaved = []
        for rank, piece in enumerate(pieces):
            for offset, scenario in enumerate(piece):
                interleaved.append((offset * num_shards + rank, scenario))
        reassembled = [scenario for _pos, scenario in sorted(interleaved, key=lambda p: p[0])]
        assert reassembled == full

    @given(spec=grids, num_shards=shard_counts)
    @settings(max_examples=40, deadline=None)
    def test_shards_are_disjoint_index_slices(self, spec, num_shards):
        full = spec.scenarios()
        positions = {index: [] for index in range(num_shards)}
        for shard in shard_spec(spec, num_shards):
            index, count = shard.axes.shard
            assert count == num_shards
            positions[index] = list(range(index, len(full), count))
        claimed = [pos for piece in positions.values() for pos in piece]
        assert sorted(claimed) == list(range(len(full)))
        assert len(set(claimed)) == len(claimed)

    @given(spec=grids, num_shards=shard_counts)
    @settings(max_examples=40, deadline=None)
    def test_each_shard_preserves_grid_order(self, spec, num_shards):
        full = spec.scenarios()
        for shard in shard_spec(spec, num_shards):
            index, count = shard.axes.shard
            assert shard.scenarios() == full[index::count]

    @given(spec=grids, num_shards=shard_counts)
    @settings(max_examples=25, deadline=None)
    def test_sharded_spec_json_round_trips(self, spec, num_shards):
        for shard in shard_spec(spec, num_shards):
            clone = CampaignSpec.from_dict(json.loads(json.dumps(shard.to_dict())))
            assert clone == shard
            assert clone.axes.shard == shard.axes.shard
            assert [scenario_key(s) for s in clone.scenarios()] == [
                scenario_key(s) for s in shard.scenarios()
            ]

    @given(spec=grids, num_shards=shard_counts)
    @settings(max_examples=25, deadline=None)
    def test_shard_keys_union_equals_full_grid_keys(self, spec, num_shards):
        full_keys = sorted(scenario_key(s) for s in spec.scenarios())
        shard_keys = sorted(
            scenario_key(s)
            for shard in shard_spec(spec, num_shards)
            for s in shard.scenarios()
        )
        assert shard_keys == full_keys


class TestShardValidation:
    def _tiny(self):
        return _spec(["bert-base"], ["mnli"], ["mokey"], [None], [1], 1)

    def test_unsharded_spec_has_no_shard_field(self):
        spec = self._tiny()
        assert spec.axes.shard is None
        assert "shard" in spec.axes.to_dict()

    def test_num_shards_below_one_is_rejected(self):
        with pytest.raises(ValueError, match="num_shards"):
            shard_spec(self._tiny(), 0)

    def test_resharding_a_shard_is_rejected(self):
        shard = shard_spec(self._tiny(), 2)[1]
        with pytest.raises(ValueError, match="already shard 1 of 2"):
            shard_spec(shard, 3)

    @pytest.mark.parametrize(
        "shard",
        [(0,), (1, 2, 3), ("0", 2), (0, 0), (-1, 2), (2, 2), (True, 2)],
    )
    def test_malformed_shard_fields_fail_validation(self, shard):
        spec = self._tiny()
        bad = CampaignSpec.from_dict(
            {**spec.to_dict(), "axes": {**spec.axes.to_dict(), "shard": list(shard)}}
        )
        with pytest.raises(ValueError, match="shard"):
            bad.validate()

    def test_more_shards_than_scenarios_yields_empty_shards(self):
        spec = self._tiny()
        assert len(spec.scenarios()) == 1
        shards = shard_spec(spec, 3)
        sizes = [len(shard.scenarios()) for shard in shards]
        assert sizes == [1, 0, 0]
