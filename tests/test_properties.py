"""Property-based tests (hypothesis) on the core invariants.

The invariants exercised here are the ones the paper's correctness rests
on: the index-domain decomposition always equals the decoded dot product,
encode/decode round-trips never increase the error beyond the dictionary
resolution, the memory container is lossless for arbitrary outlier
patterns, and the fixed-point conversion respects Eq. 7-8 for any range.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.fixed_point import FixedPointFormat
from repro.core.golden_dictionary import generate_golden_dictionary
from repro.core.index_compute import index_domain_dot
from repro.core.quantizer import MokeyQuantizer
from repro.memory.layout import pack_offchip, pack_onchip_5bit, unpack_offchip, unpack_onchip_5bit
from repro.transformer.tasks import spearman_correlation

# A module-level quantizer keeps hypothesis examples fast; the golden
# dictionary structure is identical to the full-size one.
_GOLDEN = generate_golden_dictionary(num_samples=4000, num_repeats=1, seed=21)
_QUANTIZER = MokeyQuantizer(_GOLDEN)

finite_floats = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False, width=32
)


@st.composite
def value_arrays(draw, min_size=16, max_size=200):
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    values = draw(
        hnp.arrays(dtype=np.float64, shape=size, elements=finite_floats)
    )
    # Reject degenerate all-equal arrays (std = 0 has no meaningful dictionary).
    if np.std(values) < 1e-6:
        values = values + np.linspace(0, 1, size)
    return values


class TestQuantizationProperties:
    @given(values=value_arrays())
    @settings(max_examples=30, deadline=None)
    def test_round_trip_error_bounded_by_dictionary_resolution(self, values):
        q = _QUANTIZER.quantize(values, "t")
        recon = q.dequantize().astype(np.float64)
        dictionary = q.dictionary
        # Gaussian values are off by at most half the largest inter-centroid
        # gap (in tensor units) plus the fixed-point step; outliers by the
        # outlier dictionary resolution which is bounded by the value range.
        half = dictionary.gaussian_half * dictionary.std
        max_gap = np.max(np.diff(np.concatenate([[0.0], half])))
        gaussian_bound = max_gap + dictionary.fixed_point.scale + 1e-9
        errors = np.abs(recon - values)
        gaussian_mask = ~q.encoded.is_outlier.ravel()
        inside = np.abs(values - dictionary.mean) <= dictionary.threshold
        check = gaussian_mask & inside
        assert np.all(errors[check] <= gaussian_bound)

    @given(values=value_arrays())
    @settings(max_examples=30, deadline=None)
    def test_quantize_dequantize_idempotent(self, values):
        dictionary = _QUANTIZER.fit_dictionary("t", values)
        once = dictionary.quantize_dequantize(values)
        twice = dictionary.quantize_dequantize(once)
        assert np.allclose(once, twice, atol=2 * dictionary.fixed_point.scale)

    @given(values=value_arrays())
    @settings(max_examples=30, deadline=None)
    def test_outlier_fraction_between_zero_and_one(self, values):
        q = _QUANTIZER.quantize(values, "t")
        assert 0.0 <= q.outlier_fraction <= 1.0
        assert q.memory_bits() >= q.size * 4


class TestIndexComputeProperties:
    @given(
        values=st.tuples(value_arrays(min_size=8, max_size=64), st.integers(0, 2 ** 31 - 1))
    )
    @settings(max_examples=25, deadline=None)
    def test_index_domain_equals_decoded_dot(self, values):
        activations, seed = values
        rng = np.random.default_rng(seed)
        weights = rng.normal(0, 0.05, activations.size)
        aq = _QUANTIZER.quantize(activations, "a")
        wq = _QUANTIZER.quantize(weights, "w")
        result = index_domain_dot(aq, wq)
        a_dec = aq.dictionary.decode(aq.encoded, apply_fixed_point=False)
        w_dec = wq.dictionary.decode(wq.encoded, apply_fixed_point=False)
        reference = float(a_dec @ w_dec)
        assert result.value == pytest.approx(reference, rel=1e-8, abs=1e-8)


class TestMemoryLayoutProperties:
    @given(values=value_arrays(min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_offchip_container_lossless(self, values):
        encoded = _QUANTIZER.quantize(values, "t").encoded
        restored = unpack_offchip(pack_offchip(encoded))
        assert np.array_equal(restored.is_outlier, encoded.is_outlier.ravel())
        gaussian = ~encoded.is_outlier.ravel()
        assert np.array_equal(restored.sign[gaussian], encoded.sign.ravel()[gaussian])
        assert np.array_equal(
            restored.gaussian_index[gaussian], encoded.gaussian_index.ravel()[gaussian]
        )

    @given(values=value_arrays(min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_onchip_5bit_lossless(self, values):
        encoded = _QUANTIZER.quantize(values, "t").encoded
        restored = unpack_onchip_5bit(pack_onchip_5bit(encoded))
        assert np.array_equal(restored.is_outlier, encoded.is_outlier.ravel())


class TestFixedPointProperties:
    @given(
        minimum=st.floats(-1000, 999, allow_nan=False),
        span=st.floats(1e-3, 2000, allow_nan=False),
        bits=st.integers(4, 24),
    )
    @settings(max_examples=50, deadline=None)
    def test_format_always_valid(self, minimum, span, bits):
        fmt = FixedPointFormat.for_range(minimum, minimum + span, total_bits=bits)
        assert fmt.total_bits == bits
        assert fmt.scale > 0

    @given(
        values=hnp.arrays(
            dtype=np.float64, shape=50, elements=st.floats(-3.99, 3.99, allow_nan=False)
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_quantize_error_within_half_lsb(self, values):
        # Values strictly inside the representable range (the positive end of
        # the range itself is clipped by one LSB in two's-complement formats).
        fmt = FixedPointFormat.for_range(-4, 4, 16)
        assert np.max(np.abs(fmt.quantize(values) - values)) <= fmt.scale / 2 + 1e-12


class TestMetricProperties:
    @given(
        x=hnp.arrays(dtype=np.float64, shape=20, elements=st.floats(-100, 100, allow_nan=False)),
    )
    @settings(max_examples=50, deadline=None)
    def test_spearman_bounded(self, x):
        y = np.linspace(0, 1, x.size)
        value = spearman_correlation(x, y)
        assert -100.0 - 1e-9 <= value <= 100.0 + 1e-9

    @given(
        x=hnp.arrays(dtype=np.float64, shape=20, elements=st.floats(-100, 100, allow_nan=False)),
    )
    @settings(max_examples=30, deadline=None)
    def test_spearman_symmetric(self, x):
        y = np.sin(x)
        assert spearman_correlation(x, y) == pytest.approx(spearman_correlation(y, x), abs=1e-9)
