"""Tests for full-model index-domain execution and the KV-cache decoder.

Covers the layers ISSUE 6 spans:

1. :func:`repro.core.index_compute.index_domain_matmul_many` — the
   batched GEMM API every full-model path routes through — must be a
   pure execution strategy: identical stats and fp-close values to
   per-pair :func:`index_domain_matmul` on any mix of shapes;
2. engine dispatch through the ``engines`` registry — unknown names get
   a did-you-mean :class:`RegistryError`, a missing optional torch
   dependency fails fast with an actionable message;
3. :mod:`repro.transformer.index_model` — whole encoder stacks (counts
   equal depth x analytic layer MACs; batching and the weight cache
   change wall time, never numbers) and the GPT-style decoder with an
   encoded KV cache (growth, determinism, accuracy bound);
4. the measured-stats join at model scope (``MeasurementSettings(scope=
   "model")``) through ``evaluate_measured`` and the CLI flag.

Everything runs at nano scale; the realistic full-width path (all of
BERT-Base at seq 128) lives in ``benchmarks/bench_perf_index_engine.py``.
"""

import json

import numpy as np
import pytest

from repro.accelerator.workloads import encoder_gemms
from repro.core.index_compute import (
    IndexDomainEngine,
    VectorizedIndexDomainEngine,
    index_domain_matmul,
    index_domain_matmul_many,
    make_engine,
    resolve_engine,
)
from repro.experiments import MeasurementSettings, evaluate_measured
from repro.registry import RegistryError
from repro.transformer.config import TransformerConfig
from repro.transformer.index_execution import execute_encoder_layer
from repro.transformer.index_model import (
    GPT_DECODER_CONFIG,
    IndexDomainModelExecutor,
    IndexKVCache,
    _concat_quantized,
    _slice_quantized,
    execute_decoder,
    execute_model,
)

TINY_SETTINGS = MeasurementSettings(golden_samples=3000, golden_repeats=1)

NANO_MODEL = "bert-nano-model-test"
NANO_CONFIG = TransformerConfig(
    name=NANO_MODEL,
    num_layers=3,
    hidden_size=32,
    num_heads=4,
    intermediate_size=64,
    vocab_size=128,
    max_position_embeddings=64,
)
NANO_DECODER = TransformerConfig(
    name="gpt-nano-test",
    num_layers=2,
    hidden_size=32,
    num_heads=4,
    intermediate_size=64,
    vocab_size=128,
    max_position_embeddings=64,
)


@pytest.fixture()
def nano_model(monkeypatch):
    from repro.transformer.model_zoo import MODEL_CONFIGS

    monkeypatch.setitem(MODEL_CONFIGS, NANO_MODEL, NANO_CONFIG)
    return NANO_MODEL


def _operands(quantizer, rng, m, k, n, tag):
    activations = rng.normal(0.4, 1.5, (m, k))
    activations.ravel()[rng.choice(m * k, max(1, (m * k) // 40), replace=False)] = 25.0
    weights = rng.normal(0.0, 0.03, (k, n))
    return (
        quantizer.quantize(activations, f"{tag}.act"),
        quantizer.quantize(weights, f"{tag}.w"),
    )


class TestMatmulMany:
    def test_matches_per_pair_across_mixed_shapes(self, quantizer, rng):
        # Two shape groups (batched) plus a singleton group.
        pairs = [
            _operands(quantizer, rng, 6, 16, 8, "a0"),
            _operands(quantizer, rng, 6, 16, 8, "a1"),
            _operands(quantizer, rng, 6, 16, 8, "a2"),
            _operands(quantizer, rng, 4, 12, 5, "b0"),
            _operands(quantizer, rng, 4, 12, 5, "b1"),
            _operands(quantizer, rng, 9, 7, 3, "c0"),
        ]
        many = index_domain_matmul_many(pairs)
        assert len(many) == len(pairs)
        for (aq, wq), result in zip(pairs, many):
            values, stats = index_domain_matmul(aq, wq)
            assert result.stats == stats
            np.testing.assert_allclose(result.values, values, rtol=1e-9, atol=1e-9)

    def test_order_preserved_within_group(self, quantizer, rng):
        pairs = [_operands(quantizer, rng, 5, 10, 4, f"p{i}") for i in range(4)]
        many = index_domain_matmul_many(pairs)
        for (aq, wq), result in zip(pairs, many):
            solo, _ = index_domain_matmul(aq, wq)
            np.testing.assert_allclose(result.values, solo, rtol=1e-9, atol=1e-9)

    def test_scalar_engine_falls_back_per_pair(self, quantizer, rng):
        pairs = [_operands(quantizer, rng, 3, 6, 4, f"s{i}") for i in range(2)]
        scalar = index_domain_matmul_many(pairs, engine="scalar")
        vectorized = index_domain_matmul_many(pairs)
        for s, v in zip(scalar, vectorized):
            assert s.stats == v.stats
            np.testing.assert_allclose(s.values, v.values, rtol=1e-9, atol=1e-8)

    def test_empty_input(self):
        assert index_domain_matmul_many([]) == []

    def test_mismatched_golden_fits_rejected(self, quantizer, rng):
        from repro.core.golden_dictionary import generate_golden_dictionary
        from repro.core.quantizer import MokeyQuantizer

        other = MokeyQuantizer(
            generate_golden_dictionary(num_samples=2000, num_repeats=1, seed=99)
        )
        pairs = [
            _operands(quantizer, rng, 3, 6, 4, "m0"),
            _operands(other, rng, 3, 6, 4, "m1"),
        ]
        with pytest.raises(ValueError, match="Golden Dictionary"):
            index_domain_matmul_many(pairs)

    @pytest.mark.parametrize("seed", range(5))
    def test_property_batched_equals_per_pair(self, quantizer, seed):
        rng = np.random.default_rng(1000 + seed)
        shapes = [tuple(rng.integers(2, 9, size=3)) for _ in range(rng.integers(2, 5))]
        if seed % 2:  # force at least one shape collision (a batched group)
            shapes.append(shapes[0])
        pairs = [
            _operands(quantizer, rng, m, k, n, f"prop{seed}.{i}")
            for i, (m, k, n) in enumerate(shapes)
        ]
        for (aq, wq), result in zip(pairs, index_domain_matmul_many(pairs)):
            values, stats = index_domain_matmul(aq, wq)
            assert result.stats == stats
            np.testing.assert_allclose(result.values, values, rtol=1e-9, atol=1e-9)


class TestEngineDispatch:
    def test_resolve_known_engines(self):
        assert resolve_engine("scalar") is IndexDomainEngine
        assert resolve_engine("vectorized") is VectorizedIndexDomainEngine

    def test_unknown_engine_suggests_nearest(self):
        with pytest.raises(RegistryError, match="did you mean 'vectorized'"):
            resolve_engine("vectorised")

    def test_unknown_engine_is_value_error(self):
        # Pre-registry callers caught ValueError; that contract holds.
        with pytest.raises(ValueError):
            resolve_engine("gpu")

    def test_make_engine_accepts_name_or_class(self, quantizer, rng):
        aq, wq = _operands(quantizer, rng, 3, 6, 4, "mk")
        by_name = make_engine("vectorized", aq.dictionary, wq.dictionary)
        by_class = make_engine(
            VectorizedIndexDomainEngine, aq.dictionary, wq.dictionary
        )
        assert type(by_name) is type(by_class)

    def test_executor_rejects_unknown_engine(self):
        from repro.transformer.index_execution import IndexDomainEncoderExecutor

        with pytest.raises(ValueError):
            IndexDomainEncoderExecutor(engine="gpu")


def _has_torch() -> bool:
    try:
        import torch  # noqa: F401
    except ImportError:
        return False
    return True


@pytest.mark.skipif(
    _has_torch(), reason="torch is installed; the missing-dependency path is unreachable"
)
class TestTorchAbsent:
    def test_torch_engine_import_error_is_actionable(self):
        from repro.core.index_compute import TorchIndexDomainEngine

        with pytest.raises(ImportError, match="vectorized"):
            TorchIndexDomainEngine.ensure_available()

    def test_executor_fails_fast_without_torch(self):
        from repro.transformer.index_execution import IndexDomainEncoderExecutor

        with pytest.raises(ImportError, match="torch"):
            IndexDomainEncoderExecutor(engine="torch")


class TestExecuteModel:
    def test_pairs_equal_depth_times_analytic_layer_macs(self, quantizer):
        measurement = execute_model(
            NANO_CONFIG, sequence_length=10, batch_size=2, quantizer=quantizer, seed=5
        )
        layer_macs = sum(g.macs for g in encoder_gemms(NANO_CONFIG, 10, 2))
        assert measurement.num_layers == NANO_CONFIG.num_layers
        assert measurement.stats.total_pairs == NANO_CONFIG.num_layers * layer_macs
        assert len(measurement.layers) == NANO_CONFIG.num_layers
        for layer in measurement.layers:
            assert layer.stats.total_pairs == layer_macs

    def test_batching_and_caching_change_nothing_but_time(self, quantizer):
        baseline = execute_model(
            NANO_CONFIG,
            sequence_length=8,
            quantizer=quantizer,
            cache_weights=False,
            gemm_batching=False,
        )
        optimised = execute_model(NANO_CONFIG, sequence_length=8, quantizer=quantizer)
        assert optimised.stats == baseline.stats
        for a, b in zip(baseline.layers, optimised.layers):
            assert a.output_rms_error == pytest.approx(b.output_rms_error, rel=1e-9)
            assert [g.name for g in a.gemms] == [g.name for g in b.gemms]
        assert optimised.output_rms_error == pytest.approx(
            baseline.output_rms_error, rel=1e-9
        )

    def test_weight_cache_hits_on_warm_forward(self, quantizer):
        executor = IndexDomainModelExecutor(
            NANO_CONFIG, quantizer=quantizer, seed=5
        )
        cold = execute_model(NANO_CONFIG, sequence_length=8, executor=executor)
        warm = execute_model(NANO_CONFIG, sequence_length=8, executor=executor)
        assert cold.weight_cache_hits == 0
        # Six weight GEMMs per layer (Q, K, V, attention output, two FFN).
        assert warm.weight_cache_hits == 6 * NANO_CONFIG.num_layers
        assert warm.stats == cold.stats
        assert warm.output_rms_error == pytest.approx(cold.output_rms_error, rel=1e-9)

    def test_error_accumulates_monotonically_visible(self, quantizer):
        measurement = execute_model(NANO_CONFIG, sequence_length=8, quantizer=quantizer)
        errors = [layer.output_rms_error for layer in measurement.layers]
        assert all(e > 0 for e in errors)
        assert measurement.output_rms_error == errors[-1]
        assert measurement.output_rms_error < 0.5

    def test_depth_cap_and_validation(self, quantizer):
        capped = execute_model(
            NANO_CONFIG, sequence_length=8, num_layers=1, quantizer=quantizer
        )
        assert capped.num_layers == 1
        with pytest.raises(ValueError):
            execute_model(NANO_CONFIG, sequence_length=0, quantizer=quantizer)
        with pytest.raises(ValueError):
            execute_model(NANO_CONFIG, sequence_length=8, batch_size=0, quantizer=quantizer)
        with pytest.raises(ValueError):
            IndexDomainModelExecutor(NANO_CONFIG, num_layers=0, quantizer=quantizer)

    def test_model_zoo_name_resolution(self, nano_model, quantizer):
        measurement = execute_model(nano_model, sequence_length=8, quantizer=quantizer)
        assert measurement.model == NANO_MODEL
        with pytest.raises(KeyError):
            execute_model("bert-nonexistent", quantizer=quantizer)


class TestKVCache:
    def test_slice_round_trips_decoded_values(self, quantizer, rng):
        values = rng.normal(0, 1, (6, 8))
        tensor = quantizer.quantize(values, "kv.slice")
        window = _slice_quantized(tensor, slice(2, 6))
        assert window.shape == (6, 4)
        np.testing.assert_allclose(window.dequantize(), tensor.dequantize()[:, 2:6])
        transposed = _slice_quantized(tensor, slice(2, 6), transpose=True)
        assert transposed.shape == (4, 6)
        assert transposed.dictionary is tensor.dictionary

    def test_concat_appends_rows_under_one_dictionary(self, quantizer, rng):
        first = quantizer.quantize(rng.normal(0, 1, (3, 5)), "kv.concat")
        more = quantizer.quantize(
            rng.normal(0, 1, (2, 5)), "kv.concat", dictionary=first.dictionary
        )
        joined = _concat_quantized(first, more)
        assert joined.shape == (5, 5)
        assert joined.dictionary is first.dictionary
        np.testing.assert_allclose(joined.dequantize()[:3], first.dequantize())

    def test_concat_rejects_foreign_dictionary(self, quantizer, rng):
        first = quantizer.quantize(rng.normal(0, 1, (3, 5)), "kv.a")
        foreign = quantizer.quantize(rng.normal(0, 1, (2, 5)), "kv.b")
        with pytest.raises(ValueError, match="dictionary"):
            _concat_quantized(first, foreign)

    def test_prefill_then_append_grows_rows(self, quantizer, rng):
        cache = IndexKVCache(quantizer)
        assert 0 not in cache
        assert cache.cached_tokens(0) == 0
        cache.prefill(0, rng.normal(0, 1, (4, 8)), rng.normal(0, 1, (4, 8)))
        assert 0 in cache
        assert cache.cached_tokens(0) == 4
        cache.append(0, rng.normal(0, 1, (1, 8)), rng.normal(0, 1, (1, 8)))
        assert cache.cached_tokens(0) == 5
        keys, values = cache.tensors(0)
        assert keys.shape == (5, 8) and values.shape == (5, 8)

    def test_lifecycle_errors(self, quantizer, rng):
        cache = IndexKVCache(quantizer)
        with pytest.raises(ValueError, match="prefilled"):
            cache.append(0, rng.normal(0, 1, (1, 8)), rng.normal(0, 1, (1, 8)))
        cache.prefill(0, rng.normal(0, 1, (2, 8)), rng.normal(0, 1, (2, 8)))
        with pytest.raises(ValueError, match="already"):
            cache.prefill(0, rng.normal(0, 1, (2, 8)), rng.normal(0, 1, (2, 8)))


class TestExecuteDecoder:
    def test_cache_grows_to_prompt_plus_steps(self, quantizer):
        measurement = execute_decoder(
            NANO_DECODER, prompt_length=6, decode_tokens=3, quantizer=quantizer
        )
        assert measurement.cached_tokens == 9
        assert measurement.num_layers == NANO_DECODER.num_layers
        assert measurement.stats.total_pairs > 0
        assert measurement.output_rms_error < 0.5

    def test_deterministic_in_seed(self, quantizer):
        first = execute_decoder(
            NANO_DECODER, prompt_length=5, decode_tokens=2, quantizer=quantizer, seed=3
        )
        second = execute_decoder(
            NANO_DECODER, prompt_length=5, decode_tokens=2, quantizer=quantizer, seed=3
        )
        assert first.stats == second.stats
        assert first.output_rms_error == second.output_rms_error

    def test_batched_attention_matches_unbatched(self, quantizer):
        batched = execute_decoder(
            NANO_DECODER, prompt_length=5, decode_tokens=2, quantizer=quantizer
        )
        unbatched = execute_decoder(
            NANO_DECODER,
            prompt_length=5,
            decode_tokens=2,
            quantizer=quantizer,
            gemm_batching=False,
        )
        assert batched.stats == unbatched.stats
        assert batched.output_rms_error == pytest.approx(
            unbatched.output_rms_error, rel=1e-9
        )

    def test_prefill_only(self, quantizer):
        measurement = execute_decoder(
            NANO_DECODER, prompt_length=4, decode_tokens=0, quantizer=quantizer
        )
        assert measurement.cached_tokens == 4
        assert measurement.decode_seconds == 0.0 or measurement.tokens_per_second == 0.0

    def test_validation(self, quantizer):
        with pytest.raises(ValueError):
            execute_decoder(NANO_DECODER, prompt_length=0, quantizer=quantizer)
        with pytest.raises(ValueError):
            execute_decoder(NANO_DECODER, decode_tokens=-1, quantizer=quantizer)
        with pytest.raises(ValueError):
            execute_decoder(NANO_DECODER, num_layers=0, quantizer=quantizer)

    def test_default_config_is_gpt2_shaped_and_unregistered(self):
        from repro.transformer.model_zoo import MODEL_CONFIGS

        assert GPT_DECODER_CONFIG.name == "gpt2-small"
        assert GPT_DECODER_CONFIG.num_layers == 12
        assert "gpt2-small" not in MODEL_CONFIGS


class TestMeasuredModelScope:
    def test_model_scope_sums_full_depth(self, nano_model):
        layer_scope = evaluate_measured(nano_model, 8, 1, settings=TINY_SETTINGS)
        model_settings = MeasurementSettings(
            golden_samples=3000, golden_repeats=1, scope="model"
        )
        model_scope = evaluate_measured(nano_model, 8, 1, settings=model_settings)
        assert layer_scope.scope == "layer" and layer_scope.layers_measured == 1
        assert model_scope.scope == "model"
        assert model_scope.layers_measured == NANO_CONFIG.num_layers
        depth = NANO_CONFIG.num_layers
        assert model_scope.total_pairs == depth * layer_scope.total_pairs
        assert model_scope.gemm_instances == depth * layer_scope.gemm_instances
        # Different scopes never share a memo slot.
        assert model_scope.settings_digest != layer_scope.settings_digest

    def test_scope_round_trips(self, nano_model):
        from repro.experiments import MeasuredStats

        settings = MeasurementSettings(
            golden_samples=3000, golden_repeats=1, scope="model"
        )
        measured = evaluate_measured(nano_model, 8, 1, settings=settings)
        data = json.loads(json.dumps(measured.to_dict()))
        assert MeasuredStats.from_dict(data) == measured
        assert MeasurementSettings.from_dict(settings.to_dict()) == settings

    def test_unknown_scope_rejected(self, nano_model):
        with pytest.raises(ValueError, match="scope"):
            evaluate_measured(
                nano_model, 8, 1, settings=MeasurementSettings(scope="stack")
            )

    def test_cli_measured_scope_flag(self, nano_model, tmp_path, capsys):
        from repro.cli import main
        from repro.experiments import ArtifactStore, Scenario

        args = [
            "campaign", "run",
            "--models", nano_model,
            "--sequence-lengths", "8",
            "--designs", "mokey",
            "--measured-scope", "model",
            "--store", str(tmp_path / "store"),
            "--format", "json",
        ]
        assert main(args) == 0
        captured = capsys.readouterr()
        # The flag implies --with-measured-stats; the summary counts models.
        assert "1 models measured" in captured.err
        rows = json.loads(captured.out)
        assert rows[0]["measured_gaussian_pairs"] > 0
        stored = ArtifactStore(tmp_path / "store").get_measured(
            Scenario(model=nano_model, sequence_length=8, design="mokey")
        )
        assert stored is not None
        assert stored.scope == "model"
        assert stored.layers_measured == NANO_CONFIG.num_layers
