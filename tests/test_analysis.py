"""Tests for the analysis helpers (footprint study, report formatting)."""

import csv
import io
import json

import pytest

from repro.analysis.footprint import footprint_vs_sequence_length
from repro.analysis.reporting import (
    format_csv,
    format_json,
    format_records,
    format_series,
    format_table,
)


class TestFootprintStudy:
    def test_figure_one_shape(self):
        """Fig. 1: activations overtake weights as sequences grow."""
        series = footprint_vs_sequence_length("bert-large", (128, 256, 512, 1024, 2048))
        assert len(series) == 5
        weights = [point.weight_mb for point in series]
        activations = [point.activation_mb for point in series]
        # Weights are constant across sequence lengths...
        assert max(weights) == pytest.approx(min(weights))
        # ... activations grow monotonically ...
        assert all(a < b for a, b in zip(activations, activations[1:]))
        # ... and dominate at 1024+ tokens while weights dominate at 128.
        assert series[0].activation_share < 0.5
        assert series[-1].activation_share > 0.6

    def test_total_footprint_magnitude(self):
        """BERT-Large FP16 weights are roughly 600-700 MB."""
        series = footprint_vs_sequence_length("bert-large", (128,))
        assert 500 < series[0].weight_mb < 800

    def test_custom_config(self, tiny_config):
        series = footprint_vs_sequence_length(config=tiny_config, sequence_lengths=(16, 32))
        assert len(series) == 2
        assert series[0].total_mb > 0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "bb" in lines[3]

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_series(self):
        text = format_series("speedup", {256: 5.0, 512: 4.0}, unit="x")
        assert "speedup:" in text
        assert "256: 5 x" in text

    def test_float_formatting(self):
        text = format_table(["v"], [[0.000123], [12345.0], [1.5]])
        assert "1.230e-04" in text
        assert "1.234e+04" in text or "12345" in text
        assert "1.5" in text


class TestMachineReadableFormats:
    ROWS = [
        {"model": "bert-base", "total_cycles": 3625719.4937018184},
        {"model": "bert-large", "total_cycles": 123.0},
    ]

    def test_format_csv_full_precision_round_trip(self):
        text = format_csv(["model", "total_cycles"], [[r["model"], r["total_cycles"]] for r in self.ROWS])
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 2
        # CSV keeps full float precision (no table-style display rounding).
        assert float(parsed[0]["total_cycles"]) == self.ROWS[0]["total_cycles"]

    def test_format_csv_quotes_embedded_commas(self):
        text = format_csv(["a"], [["x,y"]])
        assert '"x,y"' in text

    def test_format_csv_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_csv(["a", "b"], [["only-one"]])

    def test_format_json_round_trip(self):
        assert json.loads(format_json(self.ROWS)) == self.ROWS

    def test_format_records_dispatch(self):
        assert "bert-base" in format_records(self.ROWS, "table")
        assert format_records(self.ROWS, "csv").startswith("model,total_cycles")
        assert json.loads(format_records(self.ROWS, "json"))[0]["model"] == "bert-base"
        with pytest.raises(ValueError):
            format_records(self.ROWS, "yaml")

    def test_format_records_union_of_columns(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_records(rows, "csv")
        assert text.splitlines()[0] == "a,b"
        assert text.splitlines()[1] == "1,"
