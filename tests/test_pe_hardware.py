"""Tests for the behavioural hardware models (CRFs, GPE, OPP, tile)."""

import numpy as np
import pytest

from repro.accelerator.crf import CounterRegisterFile, GpeCounterSet
from repro.accelerator.pe import MokeyTile
from repro.core.index_compute import index_domain_dot
from repro.core.tensor_dictionary import EncodedValues


class TestCounterRegisterFile:
    def test_increment_and_decrement(self):
        crf = CounterRegisterFile(4)
        crf.update(1, up=True)
        crf.update(1, up=True)
        crf.update(1, up=False)
        assert crf.counters[1] == 1

    def test_out_of_range_address(self):
        crf = CounterRegisterFile(4)
        with pytest.raises(IndexError):
            crf.update(4, up=True)

    def test_saturation_at_width(self):
        crf = CounterRegisterFile(1, width_bits=4)
        for _ in range(20):
            crf.update(0, up=True)
        assert crf.counters[0] == 7
        assert crf.saturations > 0

    def test_drain_resets(self):
        crf = CounterRegisterFile(2)
        crf.update(0, up=True)
        values = crf.drain()
        assert values[0] == 1
        assert crf.counters[0] == 0

    def test_8bit_counters_suffice_for_typical_tile_sizes(self):
        """The paper drains per output activation; with reduction lengths of
        a few hundred the signed counts stay within 8 bits in expectation.
        A worst-case all-same-sign, all-same-index stream of 128 pairs fits."""
        counters = GpeCounterSet()
        for _ in range(127):
            counters.process_pair(3, 1, 4, 1)
        assert counters.total_saturations == 0

    def test_gpe_counter_set_shapes(self):
        counters = GpeCounterSet(num_half_entries=8)
        assert counters.soi.num_entries == 15
        assert counters.soa1.num_entries == 8
        assert counters.sow1.num_entries == 8
        assert counters.pom1.num_entries == 1


class TestMokeyTile:
    def _encode_vectors(self, quantizer, rng, n=96):
        w = rng.normal(0, 0.02, n)
        w[rng.choice(n, 2, replace=False)] = 0.3
        a_rows = []
        for _ in range(3):
            a = rng.normal(0.3, 1.5, n)
            a[rng.choice(n, 3, replace=False)] = -18.0
            a_rows.append(a)
        wq = quantizer.quantize(w, "w")
        act_dict = quantizer.fit_dictionary("a", np.concatenate(a_rows))
        aq_rows = [quantizer.quantize(a, dictionary=act_dict) for a in a_rows]
        return aq_rows, wq, act_dict

    def test_tile_matches_index_domain_engine(self, quantizer, rng):
        aq_rows, wq, act_dict = self._encode_vectors(quantizer, rng)
        tile = MokeyTile(num_gpes=8)
        outputs, cycles = tile.compute_outputs(
            [a.encoded for a in aq_rows], wq.encoded, act_dict, wq.dictionary
        )
        for output, aq in zip(outputs, aq_rows):
            reference = index_domain_dot(aq, wq)
            assert output == pytest.approx(reference.value, rel=1e-9, abs=1e-9)
        assert cycles > 0

    def test_tile_matches_decoded_dot_product(self, quantizer, rng):
        aq_rows, wq, act_dict = self._encode_vectors(quantizer, rng, n=64)
        tile = MokeyTile()
        outputs, _ = tile.compute_outputs(
            [a.encoded for a in aq_rows], wq.encoded, act_dict, wq.dictionary
        )
        w_dec = wq.dictionary.decode(wq.encoded, apply_fixed_point=False)
        for output, aq in zip(outputs, aq_rows):
            a_dec = act_dict.decode(aq.encoded, apply_fixed_point=False)
            assert output == pytest.approx(float(a_dec @ w_dec), rel=1e-9, abs=1e-9)

    def test_outliers_add_serialisation_cycles(self, quantizer, rng):
        """With several GPEs active, every outlier serialises through the
        shared OPP and adds a cycle on top of the lock-step Gaussian stream."""
        n = 64
        rows_clean = [np.clip(rng.normal(0, 1, n), -2, 2) for _ in range(3)]
        rows_dirty = [row.copy() for row in rows_clean]
        for row in rows_dirty:
            row[:6] = 30.0
        act_dict = quantizer.fit_dictionary("a", np.concatenate(rows_dirty))
        w = rng.normal(0, 0.02, n)
        wq = quantizer.quantize(w, "w")
        _, cycles_clean = MokeyTile().compute_outputs(
            [act_dict.encode(row) for row in rows_clean], wq.encoded, act_dict, wq.dictionary
        )
        _, cycles_dirty = MokeyTile().compute_outputs(
            [act_dict.encode(row) for row in rows_dirty], wq.encoded, act_dict, wq.dictionary
        )
        assert cycles_dirty > cycles_clean

    def test_too_many_rows_rejected(self, quantizer, rng):
        aq_rows, wq, act_dict = self._encode_vectors(quantizer, rng, n=32)
        tile = MokeyTile(num_gpes=2)
        with pytest.raises(ValueError):
            tile.compute_outputs(
                [a.encoded for a in aq_rows], wq.encoded, act_dict, wq.dictionary
            )

    def test_length_mismatch_rejected(self, quantizer, rng):
        wq = quantizer.quantize(rng.normal(0, 1, 16), "w")
        aq = quantizer.quantize(rng.normal(0, 1, 8), "a")
        with pytest.raises(ValueError):
            MokeyTile().compute_outputs([aq.encoded], wq.encoded, aq.dictionary, wq.dictionary)
