"""Tests for the tensor-level MokeyQuantizer and QuantizedTensor."""

import numpy as np
import pytest

from repro.core.quantizer import MokeyQuantizer, QuantizedTensor


class TestQuantizeTensor:
    def test_quantize_returns_quantized_tensor(self, quantizer, rng):
        values = rng.normal(0, 0.02, (64, 32))
        q = quantizer.quantize(values, name="w")
        assert isinstance(q, QuantizedTensor)
        assert q.shape == (64, 32)
        assert q.size == 64 * 32
        assert q.name == "w"

    def test_dequantize_shape_and_dtype(self, quantizer, rng):
        values = rng.normal(0, 1, (8, 8))
        q = quantizer.quantize(values)
        recon = q.dequantize()
        assert recon.shape == values.shape
        assert recon.dtype == np.float32

    def test_reconstruction_close_for_weight_like_tensor(self, quantizer, rng):
        values = rng.normal(0, 0.02, 4096)
        q = quantizer.quantize(values)
        err = q.quantization_error(values)
        assert err["relative_mae"] < 0.3
        assert err["mae"] < 0.01

    def test_reuse_of_prefit_dictionary(self, quantizer, rng):
        values = rng.normal(0, 1, 1000)
        dictionary = quantizer.fit_dictionary("act", values)
        q1 = quantizer.quantize(values, dictionary=dictionary)
        q2 = quantizer.quantize(values, name="act")
        assert np.allclose(q1.dequantize(), q2.dequantize())

    def test_quantize_dequantize_convenience(self, quantizer, rng):
        values = rng.normal(0, 1, 256)
        direct = quantizer.quantize_dequantize(values)
        via_object = quantizer.quantize(values).dequantize()
        assert np.allclose(direct, via_object)

    def test_fit_dictionary_from_stats(self, quantizer, rng):
        samples = rng.normal(3.0, 2.0, 5000)
        dictionary = quantizer.fit_dictionary_from_stats(
            "act", mean=3.0, std=2.0, minimum=float(samples.min()),
            maximum=float(samples.max()), samples=samples,
        )
        recon = dictionary.quantize_dequantize(samples)
        assert np.abs(recon - samples).mean() / np.abs(samples).mean() < 0.35


class TestFootprintAccounting:
    def test_value_bits_is_four_per_value(self, quantizer, rng):
        q = quantizer.quantize(rng.normal(0, 1, 128))
        assert q.value_bits() == 128 * 4

    def test_memory_bits_includes_pointers_and_metadata(self, quantizer, rng):
        q = quantizer.quantize(rng.normal(0, 1, 128))
        assert q.memory_bits() > q.value_bits()
        # Metadata is bounded: dictionaries + constants + group pointers.
        assert q.memory_bits() < q.value_bits() + 2000

    def test_compression_ratio_against_fp32(self, quantizer, rng):
        # Large tensors amortise the dictionary metadata: ratio approaches 8x
        # against FP32 (32b -> ~4.1b effective).
        q = quantizer.quantize(rng.normal(0, 0.02, 100_000))
        assert 6.0 < q.compression_ratio(32) < 8.1

    def test_compression_ratio_against_fp16(self, quantizer, rng):
        q = quantizer.quantize(rng.normal(0, 0.02, 100_000))
        assert 3.0 < q.compression_ratio(16) < 4.1

    def test_outlier_fraction_matches_encoding(self, quantizer, rng):
        values = rng.normal(0, 1, 10_000)
        values[:200] = 40.0  # forced outliers
        q = quantizer.quantize(values)
        assert q.outlier_count >= 200
        assert q.outlier_fraction == pytest.approx(q.outlier_count / 10_000)


class TestConfiguration:
    def test_default_golden_generated_lazily(self):
        # Constructing without a golden dictionary must still work (slow path
        # exercised once here with reduced parameters via explicit argument).
        from repro.core.golden_dictionary import generate_golden_dictionary

        golden = generate_golden_dictionary(num_samples=2000, num_repeats=1)
        q = MokeyQuantizer(golden)
        assert q.golden is golden

    def test_non_exponential_mode(self, golden, rng):
        q = MokeyQuantizer(golden, use_exponential=False)
        values = rng.normal(0, 1, 1000)
        recon = q.quantize_dequantize(values)
        assert np.abs(recon - values).mean() / np.abs(values).mean() < 0.35


class TestFitMemoAndDigest:
    """The fit memo (ISSUE 9) and the content digest the plane cache keys on."""

    def test_identical_values_hit_the_memo_with_identical_fit(self, golden, rng):
        q = MokeyQuantizer(golden)
        values = rng.normal(0, 0.5, 512)
        first = q.fit_dictionary("w", values)
        second = q.fit_dictionary("w", values)
        assert second is first  # the exact same fit object, not a refit
        assert (q.fit_memo_hits, q.fit_memo_misses) == (1, 1)

    def test_memo_hit_renames_without_refitting(self, golden, rng):
        q = MokeyQuantizer(golden)
        values = rng.normal(0, 0.5, 256)
        first = q.fit_dictionary("first", values)
        renamed = q.fit_dictionary("second", values)
        assert renamed.name == "second"
        assert renamed.mean == first.mean and renamed.std == first.std
        assert np.array_equal(renamed.gaussian_half, first.gaussian_half)
        assert q.fit_memo_hits == 1

    def test_memoised_fit_equals_fresh_fit_bitwise(self, golden, rng):
        values = rng.normal(0, 0.5, 512)
        memo_q = MokeyQuantizer(golden)
        fresh_q = MokeyQuantizer(golden, fit_memo=False)
        memo_q.fit_dictionary("w", values)  # prime
        via_memo = memo_q.quantize(values, "w")
        fresh = fresh_q.quantize(values, "w")
        assert fresh_q.fit_memo_hits == 0
        for field in ("is_outlier", "sign", "gaussian_index", "outlier_index"):
            assert np.array_equal(
                getattr(via_memo.encoded, field), getattr(fresh.encoded, field)
            )
        assert via_memo.content_digest() == fresh.content_digest()

    def test_memo_is_lru_bounded(self, golden, rng):
        q = MokeyQuantizer(golden, fit_memo_entries=2)
        tensors = [rng.normal(0, 0.5, 128) for _ in range(3)]
        for values in tensors:
            q.fit_dictionary("w", values)
        assert len(q._fit_memo) == 2
        q.fit_dictionary("w", tensors[0])  # evicted: must refit
        assert q.fit_memo_misses == 4 and q.fit_memo_hits == 0

    def test_quantizer_pickles_without_the_memo(self, golden, rng):
        import pickle

        q = MokeyQuantizer(golden)
        values = rng.normal(0, 0.5, 128)
        q.fit_dictionary("w", values)
        clone = pickle.loads(pickle.dumps(q))
        assert len(clone._fit_memo) == 0
        # And the clone still works (lock was recreated).
        clone.fit_dictionary("w", values)

    def test_content_digest_distinguishes_values_and_shape(self, quantizer, rng):
        values = rng.normal(0, 0.5, (8, 8))
        base = quantizer.quantize(values, "w")
        same = quantizer.quantize(values.copy(), "w")
        other = quantizer.quantize(values + 1e-3, "w")
        reshaped = quantizer.quantize(values.reshape(4, 16), "w")
        assert base.content_digest() == same.content_digest()
        assert base.content_digest() != other.content_digest()
        assert base.content_digest() != reshaped.content_digest()
