"""Tests for the index-domain execution mode and the measured-stats join.

Covers the three layers the measured pipeline spans:

1. :mod:`repro.transformer.index_execution` — an encoder-block forward
   whose every GEMM runs through the index-domain engine, with measured
   operation counts matching the analytic workload GEMM set exactly;
2. :mod:`repro.experiments.measured` — the deterministic, serializable
   :class:`MeasuredStats` and its memo key;
3. the campaign/store/CLI join — ``run_campaign(..., with_measured=True)``,
   record upgrades, and ``repro campaign run --with-measured-stats``.

Campaign-level tests register a scaled-down ``nano`` model in the zoo so
a measured layer execution costs milliseconds; the realistic full-width
path (BERT-Base at seq 128 in seconds) is exercised by
``benchmarks/bench_perf_index_engine.py``.
"""

import json

import numpy as np
import pytest

from repro.accelerator.mokey_accel import mokey_design
from repro.accelerator.simulator import AcceleratorSimulator
from repro.accelerator.workloads import encoder_gemms, model_workload
from repro.experiments import (
    ArtifactStore,
    MeasuredStats,
    MeasurementSettings,
    ResultCache,
    Scenario,
    ScenarioRecord,
    evaluate_measured,
    expand_grid,
    measured_digest,
    measured_key,
    run_campaign,
)
from repro.transformer.config import TransformerConfig
from repro.transformer.index_execution import (
    IndexDomainEncoderExecutor,
    execute_encoder_layer,
)

KB = 1024

# Fast Golden-Dictionary build for tests (structurally identical).
TINY_SETTINGS = MeasurementSettings(golden_samples=3000, golden_repeats=1)

NANO_MODEL = "bert-nano-test"
NANO_CONFIG = TransformerConfig(
    name=NANO_MODEL,
    num_layers=2,
    hidden_size=32,
    num_heads=4,
    intermediate_size=64,
    vocab_size=128,
    max_position_embeddings=64,
)


@pytest.fixture()
def nano_model(monkeypatch):
    """Temporarily register a scaled-down model in the zoo."""
    from repro.transformer.model_zoo import MODEL_CONFIGS

    monkeypatch.setitem(MODEL_CONFIGS, NANO_MODEL, NANO_CONFIG)
    return NANO_MODEL


class TestExecuteEncoderLayer:
    def test_measured_pairs_equal_analytic_layer_macs(self, quantizer):
        measurement = execute_encoder_layer(
            NANO_CONFIG, sequence_length=12, batch_size=2, quantizer=quantizer, seed=3
        )
        gemms = encoder_gemms(NANO_CONFIG, 12, 2)
        assert measurement.stats.total_pairs == sum(g.macs for g in gemms)
        assert [g.name for g in measurement.gemms] == [g.name for g in gemms]
        # Instance counts: heads x batch for the activation-activation GEMMs.
        by_name = {g.name: g for g in measurement.gemms}
        assert by_name["attention.scores"].count == NANO_CONFIG.num_heads * 2
        assert by_name["attention.query"].count == 1

    def test_scalar_and_vectorized_executors_agree(self, quantizer):
        vectorized = execute_encoder_layer(
            NANO_CONFIG, sequence_length=8, quantizer=quantizer, seed=5
        )
        scalar = execute_encoder_layer(
            NANO_CONFIG, sequence_length=8, quantizer=quantizer, seed=5, engine="scalar"
        )
        assert scalar.stats == vectorized.stats
        assert scalar.output_rms_error == pytest.approx(
            vectorized.output_rms_error, rel=1e-6, abs=1e-9
        )

    def test_deterministic_in_seed(self, quantizer):
        first = execute_encoder_layer(
            NANO_CONFIG, sequence_length=10, quantizer=quantizer, seed=11
        )
        second = execute_encoder_layer(
            NANO_CONFIG, sequence_length=10, quantizer=quantizer, seed=11
        )
        assert first.stats == second.stats
        assert first.output_rms_error == second.output_rms_error
        different = execute_encoder_layer(
            NANO_CONFIG, sequence_length=10, quantizer=quantizer, seed=12
        )
        assert different.stats != first.stats

    def test_output_tracks_fp_forward(self, quantizer):
        measurement = execute_encoder_layer(
            NANO_CONFIG, sequence_length=16, quantizer=quantizer, seed=7
        )
        assert 0.0 < measurement.output_rms_error < 0.5
        assert measurement.outlier_pair_fraction < 0.2
        assert measurement.engine_seconds > 0.0
        assert measurement.quantize_seconds > 0.0

    def test_disentangled_config_adds_relative_gemms(self, quantizer):
        config = TransformerConfig(
            name="deberta-nano",
            num_layers=1,
            hidden_size=32,
            num_heads=4,
            intermediate_size=64,
            vocab_size=128,
            disentangled_attention=True,
        )
        measurement = execute_encoder_layer(
            config, sequence_length=8, quantizer=quantizer, seed=1
        )
        names = [g.name for g in measurement.gemms]
        assert "attention.relative_query" in names
        assert "attention.relative_key" in names
        assert measurement.stats.total_pairs == sum(
            g.macs for g in encoder_gemms(config, 8, 1)
        )

    def test_rejects_bad_arguments(self, quantizer):
        with pytest.raises(ValueError):
            IndexDomainEncoderExecutor(quantizer=quantizer, engine="gpu")
        with pytest.raises(ValueError):
            execute_encoder_layer(NANO_CONFIG, sequence_length=0, quantizer=quantizer)
        with pytest.raises(ValueError):
            execute_encoder_layer(
                NANO_CONFIG, sequence_length=8, batch_size=0, quantizer=quantizer
            )
        with pytest.raises(KeyError):
            execute_encoder_layer("bert-nonexistent", quantizer=quantizer)


class TestMeasuredStats:
    def test_evaluate_measured_is_deterministic(self, nano_model):
        first = evaluate_measured(nano_model, 8, 1, settings=TINY_SETTINGS)
        second = evaluate_measured(nano_model, 8, 1, settings=TINY_SETTINGS)
        assert first == second
        assert measured_digest(first) == measured_digest(second)
        assert first.settings_digest == TINY_SETTINGS.digest()
        assert first.total_pairs == sum(g.macs for g in encoder_gemms(NANO_CONFIG, 8, 1))

    def test_round_trips_and_ignores_unknown_fields(self, nano_model):
        measured = evaluate_measured(nano_model, 8, 1, settings=TINY_SETTINGS)
        data = json.loads(json.dumps(measured.to_dict()))
        assert MeasuredStats.from_dict(data) == measured
        data["future_field"] = [1, 2, 3]
        assert MeasuredStats.from_dict(data) == measured

    def test_measured_key_ignores_hardware_axes(self):
        base = Scenario(model="bert-base", task="mnli", design="mokey")
        assert measured_key(base) == ("bert-base", 128, 1)
        for variant in (
            Scenario(model="bert-base", task="mnli", design="tensor-cores"),
            Scenario(model="bert-base", task="mnli", scheme="q8bert", design="mokey"),
            Scenario(model="bert-base", task="mnli", buffer_bytes=256 * KB),
        ):
            assert measured_key(variant) == measured_key(base)
        # ... but not the workload shape axes.
        assert measured_key(Scenario(model="bert-base", sequence_length=64)) != measured_key(base)
        assert measured_key(Scenario(model="bert-base", batch_size=4)) != measured_key(base)

    def test_different_settings_have_different_digests(self):
        assert TINY_SETTINGS.digest() != MeasurementSettings().digest()


def nano_grid(model):
    return expand_grid(
        models=(model,),
        sequence_lengths=(8,),
        designs=("mokey", "tensor-cores"),
        buffer_bytes=(256 * KB, 512 * KB),
    )


class TestMeasuredCampaign:
    def test_one_measurement_serves_many_points(self, nano_model):
        campaign = run_campaign(
            nano_grid(nano_model), with_measured=True, measurement_settings=TINY_SETTINGS
        )
        assert len(campaign) == 4
        assert campaign.measured_evaluated == 1
        digests = {measured_digest(record.measured) for record in campaign}
        assert len(digests) == 1

    def test_rows_gain_measured_columns(self, nano_model):
        campaign = run_campaign(
            nano_grid(nano_model)[:1], with_measured=True, measurement_settings=TINY_SETTINGS
        )
        row = campaign.to_dicts()[0]
        assert row["measured_gaussian_pairs"] > 0
        assert row["measured_outlier_pairs"] >= 0
        assert 0.0 <= row["measured_outlier_pct"] < 20.0
        # Hardware-only campaigns keep their column set.
        bare = run_campaign(nano_grid(nano_model)[:1])
        assert "measured_gaussian_pairs" not in bare.to_dicts()[0]
        assert bare.records[0].measured is None

    def test_record_round_trips_with_measured(self, nano_model):
        campaign = run_campaign(
            nano_grid(nano_model)[:1], with_measured=True, measurement_settings=TINY_SETTINGS
        )
        record = campaign.records[0]
        rebuilt = ScenarioRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert rebuilt.measured == record.measured
        assert rebuilt.scenario == record.scenario

    def test_store_round_trip_and_no_reevaluation(self, nano_model, tmp_path):
        grid = nano_grid(nano_model)
        first = run_campaign(
            grid,
            cache=ResultCache(store=ArtifactStore(tmp_path / "store")),
            with_measured=True,
            measurement_settings=TINY_SETTINGS,
        )
        again = run_campaign(
            grid,
            cache=ResultCache(store=ArtifactStore(tmp_path / "store")),
            with_measured=True,
            measurement_settings=TINY_SETTINGS,
        )
        assert again.simulated_count == 0
        assert again.measured_evaluated == 0
        for expected, rerun in zip(first, again):
            assert rerun.measured == expected.measured

    def test_hardware_only_records_upgrade_in_place(self, nano_model, tmp_path):
        grid = nano_grid(nano_model)[:2]
        store_root = tmp_path / "store"
        bare = run_campaign(grid, cache=ResultCache(store=ArtifactStore(store_root)))
        assert all(record.measured is None for record in bare)
        upgraded = run_campaign(
            grid,
            cache=ResultCache(store=ArtifactStore(store_root)),
            with_measured=True,
            measurement_settings=TINY_SETTINGS,
        )
        assert upgraded.simulated_count == 0
        assert upgraded.measured_evaluated == 1
        fresh = ArtifactStore(store_root)
        for scenario in grid:
            assert fresh.get_measured(scenario) is not None
            # The hardware result is untouched by the upgrade.
            assert fresh.get(scenario) == bare.result(
                design=scenario.design, buffer_bytes=scenario.buffer_bytes
            )

    def test_upgrade_preserves_fidelity(self, nano_model, tmp_path):
        """A measured upgrade must not drop a previously joined part."""
        from repro.experiments import AccuracySettings

        accuracy_tiny = AccuracySettings(
            pool_samples=16,
            profile_samples=4,
            classification_sequence_length=12,
            qa_sequence_length=16,
            golden_samples=3000,
            golden_repeats=1,
        )
        scenario = nano_grid(nano_model)[0]
        store_root = tmp_path / "store"
        run_campaign(
            [scenario],
            cache=ResultCache(store=ArtifactStore(store_root)),
            with_accuracy=True,
            accuracy_settings=accuracy_tiny,
        )
        run_campaign(
            [scenario],
            cache=ResultCache(store=ArtifactStore(store_root)),
            with_measured=True,
            measurement_settings=TINY_SETTINGS,
        )
        entry = list(ArtifactStore(store_root).records())[0]
        assert entry.fidelity is not None
        assert entry.measured is not None

    def test_executor_equivalence(self, nano_model):
        serial = run_campaign(
            nano_grid(nano_model),
            with_measured=True,
            measurement_settings=TINY_SETTINGS,
            executor="serial",
        )
        threaded = run_campaign(
            nano_grid(nano_model),
            with_measured=True,
            measurement_settings=TINY_SETTINGS,
            executor="thread",
            max_workers=2,
        )
        for expected, measured in zip(serial, threaded):
            assert measured.measured == expected.measured

    def test_process_executor_matches_serial(self, nano_model):
        # Two measured keys so the process pool actually fans out; pool
        # workers bypass the in-process memo, so this locks cross-process
        # determinism of the measurement itself.
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("nano model registration does not survive spawn-based pools")
        grid = expand_grid(
            models=(nano_model,),
            sequence_lengths=(8, 12),
            designs=("mokey",),
            buffer_bytes=(256 * KB,),
        )
        serial = run_campaign(
            grid, with_measured=True, measurement_settings=TINY_SETTINGS, executor="serial"
        )
        pooled = run_campaign(
            grid,
            with_measured=True,
            measurement_settings=TINY_SETTINGS,
            executor="process",
            max_workers=2,
        )
        assert pooled.measured_evaluated == 2
        for expected, measured in zip(serial, pooled):
            assert measured.measured == expected.measured


class TestSimulatorMeasuredDetail:
    def test_measured_stats_land_in_detail(self, quantizer):
        measurement = execute_encoder_layer(
            NANO_CONFIG, sequence_length=8, quantizer=quantizer, seed=2
        )
        workload = model_workload("bert-base", sequence_length=8)
        result = AcceleratorSimulator(mokey_design()).simulate(
            workload, 512 * KB, measured_stats=measurement.stats
        )
        assert result.detail["measured_gaussian_pairs"] == measurement.stats.gaussian_pairs
        assert result.detail["measured_outlier_pairs"] == measurement.stats.outlier_pairs
        assert result.detail["measured_outlier_pair_fraction"] == pytest.approx(
            measurement.stats.outlier_pair_fraction
        )

    def test_detail_unchanged_without_measured(self):
        workload = model_workload("bert-base", sequence_length=8)
        result = AcceleratorSimulator(mokey_design()).simulate(workload, 512 * KB)
        assert "measured_gaussian_pairs" not in result.detail


class TestMeasuredCli:
    def test_with_measured_stats_flag(self, nano_model, tmp_path, capsys):
        from repro.cli import main

        args = [
            "campaign", "run",
            "--models", nano_model,
            "--sequence-lengths", "8",
            "--designs", "mokey",
            "--with-measured-stats",
            "--store", str(tmp_path / "store"),
            "--format", "json",
        ]
        code = main(args)
        captured = capsys.readouterr()
        assert code == 0
        assert "1 layers measured" in captured.err
        rows = json.loads(captured.out)
        assert rows[0]["measured_gaussian_pairs"] > 0
        # A second identical run measures nothing (store hit).
        code = main(args)
        captured = capsys.readouterr()
        assert code == 0
        assert "0 layers measured" in captured.err

    def test_report_and_list_surface_measured(self, nano_model, tmp_path, capsys):
        from repro.cli import main

        store = str(tmp_path / "store")
        grid = nano_grid(nano_model)[:1]
        run_campaign(
            grid,
            cache=ResultCache(store=ArtifactStore(store)),
            with_measured=True,
            measurement_settings=TINY_SETTINGS,
        )
        code = main(["campaign", "report", "--store", store, "--format", "json"])
        captured = capsys.readouterr()
        assert code == 0
        rows = json.loads(captured.out)
        assert rows[0]["measured_gaussian_pairs"] > 0
        code = main(["campaign", "list", "--store", store])
        captured = capsys.readouterr()
        assert code == 0
        assert "1 records carry measured index-domain stats" in captured.out
