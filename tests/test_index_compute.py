"""Tests for the index-domain MAC decomposition (paper Eq. 3-6, Fig. 4).

The central claim of the paper is that the dot product of two
Mokey-quantized tensors can be computed exactly from exponent-sum
histograms plus a handful of constants.  These tests verify that claim by
comparing the index-domain result against the dot product of the decoded
(dequantized) operands, and lock the vectorized engine's guarantee —
values equal to the scalar reference within fp tolerance, operation
statistics *identical* — with hypothesis property tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index_compute import (
    IndexComputeStats,
    IndexDomainEngine,
    IndexMatmulResult,
    VectorizedIndexDomainEngine,
    index_domain_dot,
    index_domain_matmul,
    vectorized_index_domain_matmul,
)
from repro.core.quantizer import MokeyQuantizer


def _quantized_pair(quantizer, rng, n=512, act_outliers=0.04, w_outliers=0.01):
    w = rng.normal(0, 0.02, n)
    if w_outliers > 0:
        w[rng.choice(n, max(1, int(n * w_outliers)), replace=False)] = rng.choice([-1, 1]) * 0.3
    else:
        w = np.clip(w, -0.05, 0.05)
    a = rng.normal(0.5, 2.0, n)
    if act_outliers > 0:
        a[rng.choice(n, max(1, int(n * act_outliers)), replace=False)] = rng.choice([-1, 1]) * 60.0
    else:
        a = np.clip(a, -4.5, 5.5)
    return quantizer.quantize(a, "a"), quantizer.quantize(w, "w")


def _reference_dot(aq, wq):
    a = aq.dictionary.decode(aq.encoded, apply_fixed_point=False)
    w = wq.dictionary.decode(wq.encoded, apply_fixed_point=False)
    return float(a @ w)


class TestDotProduct:
    def test_matches_decoded_dot_product(self, quantizer, rng):
        aq, wq = _quantized_pair(quantizer, rng)
        result = index_domain_dot(aq, wq)
        assert result.value == pytest.approx(_reference_dot(aq, wq), rel=1e-9, abs=1e-9)

    def test_matches_without_outliers(self, quantizer, rng):
        aq, wq = _quantized_pair(quantizer, rng, act_outliers=0.0, w_outliers=0.0)
        result = index_domain_dot(aq, wq)
        assert result.value == pytest.approx(_reference_dot(aq, wq), rel=1e-9, abs=1e-9)
        assert result.outlier_contribution == 0.0

    def test_matches_with_many_outliers(self, quantizer, rng):
        """Force a large outlier population by fitting the activation
        dictionary on a profiling sample and then feeding a vector whose
        tail extends well beyond the profiled range."""
        n = 512
        profile = rng.normal(0.5, 2.0, 4000)
        profile[:40] = 80.0  # make sure an outlier dictionary exists
        act_dict = quantizer.fit_dictionary("a", profile)
        a = rng.normal(0.5, 2.0, n)
        a[rng.choice(n, 60, replace=False)] = rng.choice([-1, 1], 60) * 70.0
        w = rng.normal(0, 0.02, n)
        aq = quantizer.quantize(a, dictionary=act_dict)
        wq = quantizer.quantize(w, "w")
        result = index_domain_dot(aq, wq)
        assert result.value == pytest.approx(_reference_dot(aq, wq), rel=1e-9, abs=1e-9)
        assert result.stats.outlier_pairs >= 60

    def test_terms_sum_to_value(self, quantizer, rng):
        aq, wq = _quantized_pair(quantizer, rng)
        result = index_domain_dot(aq, wq)
        assert result.value == pytest.approx(sum(result.terms().values()), rel=1e-12)

    def test_close_to_original_fp_dot_product(self, quantizer, rng):
        """The quantized dot product approximates the FP one (model fidelity)."""
        n = 2048
        w = rng.normal(0, 0.02, n)
        a = rng.normal(0.0, 1.5, n)
        aq, wq = quantizer.quantize(a, "a"), quantizer.quantize(w, "w")
        result = index_domain_dot(aq, wq)
        exact = float(a @ w)
        scale = np.abs(a).mean() * np.abs(w).mean() * np.sqrt(n)
        assert abs(result.value - exact) < 0.5 * scale

    def test_length_mismatch_rejected(self, quantizer, rng):
        aq = quantizer.quantize(rng.normal(0, 1, 16), "a")
        wq = quantizer.quantize(rng.normal(0, 1, 8), "w")
        with pytest.raises(ValueError):
            index_domain_dot(aq, wq)

    def test_mismatched_golden_dictionaries_rejected(self, quantizer, rng):
        from repro.core.golden_dictionary import generate_golden_dictionary
        from repro.core.quantizer import MokeyQuantizer

        other = MokeyQuantizer(generate_golden_dictionary(num_samples=2000, num_repeats=1, seed=99))
        aq = quantizer.quantize(rng.normal(0, 1, 16), "a")
        wq = other.quantize(rng.normal(0, 1, 16), "w")
        if np.isclose(aq.dictionary.golden.fit.a, wq.dictionary.golden.fit.a):
            pytest.skip("randomly identical fits")
        with pytest.raises(ValueError):
            IndexDomainEngine(aq.dictionary, wq.dictionary)


class TestStatistics:
    def test_pair_counts(self, quantizer, rng):
        aq, wq = _quantized_pair(quantizer, rng, n=256)
        result = index_domain_dot(aq, wq)
        assert result.stats.total_pairs == 256
        assert result.stats.gaussian_pairs + result.stats.outlier_pairs == 256

    def test_counter_updates_four_per_gaussian_pair(self, quantizer, rng):
        aq, wq = _quantized_pair(quantizer, rng, n=128)
        result = index_domain_dot(aq, wq)
        assert result.stats.counter_updates == 4 * result.stats.gaussian_pairs

    def test_merge_accumulates(self):
        a = IndexComputeStats(gaussian_pairs=10, outlier_pairs=1, index_additions=10,
                              counter_updates=40, post_processing_macs=30)
        b = IndexComputeStats(gaussian_pairs=5, outlier_pairs=2, index_additions=5,
                              counter_updates=20, post_processing_macs=32)
        a.merge(b)
        assert a.gaussian_pairs == 15
        assert a.outlier_pairs == 3
        assert a.outlier_pair_fraction == pytest.approx(3 / 18)


class TestMatmul:
    def test_matmul_matches_decoded_matmul(self, quantizer, rng):
        a = rng.normal(0.2, 1.0, (4, 24))
        w = rng.normal(0, 0.05, (24, 3))
        aq = quantizer.quantize(a, "a")
        wq = quantizer.quantize(w, "w")
        result, stats = index_domain_matmul(aq, wq)
        a_dec = aq.dictionary.decode(aq.encoded, apply_fixed_point=False).reshape(a.shape)
        w_dec = wq.dictionary.decode(wq.encoded, apply_fixed_point=False).reshape(w.shape)
        assert np.allclose(result, a_dec @ w_dec, rtol=1e-9, atol=1e-9)
        assert stats.total_pairs == 4 * 24 * 3

    def test_matmul_requires_2d(self, quantizer, rng):
        aq = quantizer.quantize(rng.normal(0, 1, 8), "a")
        wq = quantizer.quantize(rng.normal(0, 1, (8, 2)), "w")
        with pytest.raises(ValueError):
            index_domain_matmul(aq, wq)

    def test_matmul_inner_dim_mismatch(self, quantizer, rng):
        aq = quantizer.quantize(rng.normal(0, 1, (2, 8)), "a")
        wq = quantizer.quantize(rng.normal(0, 1, (4, 2)), "w")
        with pytest.raises(ValueError):
            index_domain_matmul(aq, wq)


def _decoded_matmul(aq, wq):
    a = aq.dictionary.decode(aq.encoded, apply_fixed_point=False).reshape(aq.shape)
    w = wq.dictionary.decode(wq.encoded, apply_fixed_point=False).reshape(wq.shape)
    return a @ w


def _quantized_matrices(quantizer, rng, m, k, n, act_outliers=0.05, w_outliers=0.02):
    a = rng.normal(0.2, 1.5, (m, k))
    if act_outliers > 0 and a.size:
        count = max(1, int(a.size * act_outliers))
        a.ravel()[rng.choice(a.size, count, replace=False)] = (
            rng.choice([-1, 1], count) * 50.0
        )
    w = rng.normal(0, 0.03, (k, n))
    if w_outliers > 0 and w.size:
        count = max(1, int(w.size * w_outliers))
        w.ravel()[rng.choice(w.size, count, replace=False)] = (
            rng.choice([-1, 1], count) * 0.4
        )
    return quantizer.quantize(a, "a"), quantizer.quantize(w, "w")


class TestVectorizedEngine:
    """Vectorized == scalar: values to fp tolerance, statistics identical."""

    def test_matches_scalar_values_and_stats(self, quantizer, rng):
        aq, wq = _quantized_matrices(quantizer, rng, 9, 64, 7)
        scalar_values, scalar_stats = index_domain_matmul(aq, wq, engine="scalar")
        result = vectorized_index_domain_matmul(aq, wq)
        assert isinstance(result, IndexMatmulResult)
        assert np.allclose(result.values, scalar_values, rtol=1e-9, atol=1e-9)
        assert result.stats == scalar_stats

    def test_matches_decoded_matmul(self, quantizer, rng):
        aq, wq = _quantized_matrices(quantizer, rng, 6, 48, 5)
        result = vectorized_index_domain_matmul(aq, wq)
        assert np.allclose(result.values, _decoded_matmul(aq, wq), rtol=1e-9, atol=1e-9)

    def test_default_matmul_engine_is_vectorized_and_equivalent(self, quantizer, rng):
        aq, wq = _quantized_matrices(quantizer, rng, 4, 32, 3)
        default_values, default_stats = index_domain_matmul(aq, wq)
        scalar_values, scalar_stats = index_domain_matmul(aq, wq, engine="scalar")
        assert np.allclose(default_values, scalar_values, rtol=1e-9, atol=1e-9)
        assert default_stats == scalar_stats

    def test_unknown_engine_rejected(self, quantizer, rng):
        aq, wq = _quantized_matrices(quantizer, rng, 2, 8, 2)
        with pytest.raises(ValueError):
            index_domain_matmul(aq, wq, engine="simd")

    def test_per_row_stats_merge_to_aggregate(self, quantizer, rng):
        aq, wq = _quantized_matrices(quantizer, rng, 5, 40, 6)
        result = vectorized_index_domain_matmul(aq, wq, per_row_stats=True)
        assert len(result.row_stats) == 5
        merged = IndexComputeStats()
        for row in result.row_stats:
            merged.merge(row)
        assert merged == result.stats

    def test_per_row_stats_match_scalar_rows(self, quantizer, rng):
        from repro.core.index_compute import _slice_encoded

        aq, wq = _quantized_matrices(quantizer, rng, 3, 24, 4)
        result = vectorized_index_domain_matmul(aq, wq, per_row_stats=True)
        engine = IndexDomainEngine(aq.dictionary, wq.dictionary)
        for row in range(3):
            row_enc = _slice_encoded(aq.encoded, aq.shape, row, axis=0)
            merged = IndexComputeStats()
            for col in range(4):
                col_enc = _slice_encoded(wq.encoded, wq.shape, col, axis=1)
                merged.merge(engine.dot(row_enc, col_enc).stats)
            assert result.row_stats[row] == merged

    def test_shape_validation_matches_scalar(self, quantizer, rng):
        aq = quantizer.quantize(rng.normal(0, 1, 8), "a")
        wq = quantizer.quantize(rng.normal(0, 1, (8, 2)), "w")
        with pytest.raises(ValueError):
            vectorized_index_domain_matmul(aq, wq)
        aq2 = quantizer.quantize(rng.normal(0, 1, (2, 8)), "a")
        wq2 = quantizer.quantize(rng.normal(0, 1, (4, 2)), "w")
        with pytest.raises(ValueError):
            vectorized_index_domain_matmul(aq2, wq2)

    def test_mismatched_golden_dictionaries_rejected(self, quantizer, rng):
        from repro.core.golden_dictionary import generate_golden_dictionary

        other = MokeyQuantizer(
            generate_golden_dictionary(num_samples=2000, num_repeats=1, seed=99)
        )
        aq = quantizer.quantize(rng.normal(0, 1, (2, 8)), "a")
        wq = other.quantize(rng.normal(0, 1, (8, 2)), "w")
        if np.isclose(aq.dictionary.golden.fit.a, wq.dictionary.golden.fit.a):
            pytest.skip("randomly identical fits")
        with pytest.raises(ValueError):
            VectorizedIndexDomainEngine(aq.dictionary, wq.dictionary)

    @settings(max_examples=20, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=4),
        k=st.integers(min_value=1, max_value=12),
        n=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        act_outliers=st.sampled_from([0.0, 0.1]),
    )
    def test_property_vectorized_equals_scalar(
        self, quantizer, m, k, n, seed, act_outliers
    ):
        rng = np.random.default_rng(seed)
        aq, wq = _quantized_matrices(
            quantizer, rng, m, k, n, act_outliers=act_outliers, w_outliers=0.05
        )
        scalar_values, scalar_stats = index_domain_matmul(aq, wq, engine="scalar")
        result = vectorized_index_domain_matmul(aq, wq, per_row_stats=True)
        scale = max(1.0, float(np.abs(scalar_values).max()))
        assert np.allclose(result.values, scalar_values, rtol=1e-9, atol=1e-9 * scale)
        assert result.stats == scalar_stats
        merged = IndexComputeStats()
        for row in result.row_stats:
            merged.merge(row)
        assert merged == result.stats


class TestEdgeCases:
    """Empty, length-1, and all-outlier operands; error paths; identities."""

    def _empty_pair(self, quantizer, rng, shape_a, shape_w):
        # An empty tensor cannot fit its own dictionary; borrow one fitted
        # on a real sample (the runtime path for streamed activations).
        act_dict = quantizer.fit_dictionary("a", rng.normal(0, 1.5, 256))
        w_dict = quantizer.fit_dictionary("w", rng.normal(0, 0.02, 256))
        return (
            quantizer.quantize(np.empty(shape_a), dictionary=act_dict),
            quantizer.quantize(np.empty(shape_w), dictionary=w_dict),
        )

    def test_empty_dot_is_zero(self, quantizer, rng):
        aq, wq = self._empty_pair(quantizer, rng, (0,), (0,))
        result = index_domain_dot(aq, wq)
        assert result.value == 0.0
        assert result.stats.total_pairs == 0
        assert result.stats.counter_updates == 0
        # The fixed post-processing drain happens even for an empty output.
        assert result.stats.post_processing_macs > 0

    def test_empty_inner_dimension_matmul(self, quantizer, rng):
        aq, wq = self._empty_pair(quantizer, rng, (3, 0), (0, 2))
        scalar_values, scalar_stats = index_domain_matmul(aq, wq, engine="scalar")
        result = vectorized_index_domain_matmul(aq, wq)
        assert result.values.shape == (3, 2)
        assert np.all(result.values == 0.0)
        assert np.all(scalar_values == 0.0)
        assert result.stats == scalar_stats
        assert result.stats.total_pairs == 0

    def test_empty_output_plane_matmul(self, quantizer, rng):
        aq, wq = self._empty_pair(quantizer, rng, (0, 4), (4, 0))
        aq = quantizer.quantize(np.empty((0, 4)), dictionary=aq.dictionary)
        result = vectorized_index_domain_matmul(aq, wq, per_row_stats=True)
        assert result.values.shape == (0, 0)
        assert result.stats.total_pairs == 0
        assert result.row_stats == []

    def test_length_one_vectors(self, quantizer, rng):
        aq = quantizer.quantize(np.array([1.7]), "a")
        wq = quantizer.quantize(np.array([-0.02]), "w")
        result = index_domain_dot(aq, wq)
        reference = _reference_dot(aq, wq)
        assert result.value == pytest.approx(reference, rel=1e-9, abs=1e-12)
        assert result.stats.total_pairs == 1

    def test_length_one_matmul(self, quantizer, rng):
        aq, wq = _quantized_matrices(quantizer, rng, 1, 1, 1, act_outliers=0, w_outliers=0)
        scalar_values, scalar_stats = index_domain_matmul(aq, wq, engine="scalar")
        result = vectorized_index_domain_matmul(aq, wq)
        assert result.values.shape == (1, 1)
        assert np.allclose(result.values, scalar_values, rtol=1e-9, atol=1e-12)
        assert result.stats == scalar_stats

    def test_all_outlier_vectors(self, quantizer, rng):
        # Fit on a sample with a heavy tail so an outlier dictionary
        # exists, then feed vectors living entirely in that tail.
        profile = rng.normal(0, 1.0, 2048)
        profile[:64] = rng.choice([-1, 1], 64) * 90.0
        act_dict = quantizer.fit_dictionary("a", profile)
        a = rng.choice([-1, 1], (4, 6)) * rng.uniform(80.0, 100.0, (4, 6))
        aq = quantizer.quantize(a, dictionary=act_dict)
        assert bool(aq.encoded.is_outlier.all())
        wq = quantizer.quantize(rng.normal(0, 0.02, (6, 3)), "w")
        scalar_values, scalar_stats = index_domain_matmul(aq, wq, engine="scalar")
        result = vectorized_index_domain_matmul(aq, wq)
        assert scalar_stats.gaussian_pairs == 0
        assert scalar_stats.outlier_pairs == 4 * 6 * 3
        assert result.stats == scalar_stats
        assert np.allclose(result.values, scalar_values, rtol=1e-9, atol=1e-9)
        assert np.allclose(result.values, _decoded_matmul(aq, wq), rtol=1e-9, atol=1e-9)

    def test_merge_identities(self):
        zero = IndexComputeStats()
        some = IndexComputeStats(
            gaussian_pairs=7, outlier_pairs=2, index_additions=7,
            counter_updates=28, post_processing_macs=35,
        )
        # Zero is the identity on both sides.
        assert IndexComputeStats().merge(some) == some
        assert some.copy().merge(zero) == some
        # Merge order does not matter (component-wise addition).
        other = IndexComputeStats(
            gaussian_pairs=1, outlier_pairs=5, index_additions=1,
            counter_updates=4, post_processing_macs=38,
        )
        assert some.copy().merge(other) == other.copy().merge(some)
        # merge(x) n times == scaled(n) starting from x.
        tripled = some.copy().merge(some).merge(some)
        assert tripled == some.scaled(3)
        assert some.scaled(1) == some
        assert some.scaled(0) == zero

    def test_merge_returns_self_for_chaining(self):
        stats = IndexComputeStats(gaussian_pairs=1)
        assert stats.merge(IndexComputeStats(gaussian_pairs=2)) is stats
        assert stats.gaussian_pairs == 3
