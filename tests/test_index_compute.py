"""Tests for the index-domain MAC decomposition (paper Eq. 3-6, Fig. 4).

The central claim of the paper is that the dot product of two
Mokey-quantized tensors can be computed exactly from exponent-sum
histograms plus a handful of constants.  These tests verify that claim by
comparing the index-domain result against the dot product of the decoded
(dequantized) operands.
"""

import numpy as np
import pytest

from repro.core.index_compute import (
    IndexComputeStats,
    IndexDomainEngine,
    index_domain_dot,
    index_domain_matmul,
)
from repro.core.quantizer import MokeyQuantizer


def _quantized_pair(quantizer, rng, n=512, act_outliers=0.04, w_outliers=0.01):
    w = rng.normal(0, 0.02, n)
    if w_outliers > 0:
        w[rng.choice(n, max(1, int(n * w_outliers)), replace=False)] = rng.choice([-1, 1]) * 0.3
    else:
        w = np.clip(w, -0.05, 0.05)
    a = rng.normal(0.5, 2.0, n)
    if act_outliers > 0:
        a[rng.choice(n, max(1, int(n * act_outliers)), replace=False)] = rng.choice([-1, 1]) * 60.0
    else:
        a = np.clip(a, -4.5, 5.5)
    return quantizer.quantize(a, "a"), quantizer.quantize(w, "w")


def _reference_dot(aq, wq):
    a = aq.dictionary.decode(aq.encoded, apply_fixed_point=False)
    w = wq.dictionary.decode(wq.encoded, apply_fixed_point=False)
    return float(a @ w)


class TestDotProduct:
    def test_matches_decoded_dot_product(self, quantizer, rng):
        aq, wq = _quantized_pair(quantizer, rng)
        result = index_domain_dot(aq, wq)
        assert result.value == pytest.approx(_reference_dot(aq, wq), rel=1e-9, abs=1e-9)

    def test_matches_without_outliers(self, quantizer, rng):
        aq, wq = _quantized_pair(quantizer, rng, act_outliers=0.0, w_outliers=0.0)
        result = index_domain_dot(aq, wq)
        assert result.value == pytest.approx(_reference_dot(aq, wq), rel=1e-9, abs=1e-9)
        assert result.outlier_contribution == 0.0

    def test_matches_with_many_outliers(self, quantizer, rng):
        """Force a large outlier population by fitting the activation
        dictionary on a profiling sample and then feeding a vector whose
        tail extends well beyond the profiled range."""
        n = 512
        profile = rng.normal(0.5, 2.0, 4000)
        profile[:40] = 80.0  # make sure an outlier dictionary exists
        act_dict = quantizer.fit_dictionary("a", profile)
        a = rng.normal(0.5, 2.0, n)
        a[rng.choice(n, 60, replace=False)] = rng.choice([-1, 1], 60) * 70.0
        w = rng.normal(0, 0.02, n)
        aq = quantizer.quantize(a, dictionary=act_dict)
        wq = quantizer.quantize(w, "w")
        result = index_domain_dot(aq, wq)
        assert result.value == pytest.approx(_reference_dot(aq, wq), rel=1e-9, abs=1e-9)
        assert result.stats.outlier_pairs >= 60

    def test_terms_sum_to_value(self, quantizer, rng):
        aq, wq = _quantized_pair(quantizer, rng)
        result = index_domain_dot(aq, wq)
        assert result.value == pytest.approx(sum(result.terms().values()), rel=1e-12)

    def test_close_to_original_fp_dot_product(self, quantizer, rng):
        """The quantized dot product approximates the FP one (model fidelity)."""
        n = 2048
        w = rng.normal(0, 0.02, n)
        a = rng.normal(0.0, 1.5, n)
        aq, wq = quantizer.quantize(a, "a"), quantizer.quantize(w, "w")
        result = index_domain_dot(aq, wq)
        exact = float(a @ w)
        scale = np.abs(a).mean() * np.abs(w).mean() * np.sqrt(n)
        assert abs(result.value - exact) < 0.5 * scale

    def test_length_mismatch_rejected(self, quantizer, rng):
        aq = quantizer.quantize(rng.normal(0, 1, 16), "a")
        wq = quantizer.quantize(rng.normal(0, 1, 8), "w")
        with pytest.raises(ValueError):
            index_domain_dot(aq, wq)

    def test_mismatched_golden_dictionaries_rejected(self, quantizer, rng):
        from repro.core.golden_dictionary import generate_golden_dictionary
        from repro.core.quantizer import MokeyQuantizer

        other = MokeyQuantizer(generate_golden_dictionary(num_samples=2000, num_repeats=1, seed=99))
        aq = quantizer.quantize(rng.normal(0, 1, 16), "a")
        wq = other.quantize(rng.normal(0, 1, 16), "w")
        if np.isclose(aq.dictionary.golden.fit.a, wq.dictionary.golden.fit.a):
            pytest.skip("randomly identical fits")
        with pytest.raises(ValueError):
            IndexDomainEngine(aq.dictionary, wq.dictionary)


class TestStatistics:
    def test_pair_counts(self, quantizer, rng):
        aq, wq = _quantized_pair(quantizer, rng, n=256)
        result = index_domain_dot(aq, wq)
        assert result.stats.total_pairs == 256
        assert result.stats.gaussian_pairs + result.stats.outlier_pairs == 256

    def test_counter_updates_four_per_gaussian_pair(self, quantizer, rng):
        aq, wq = _quantized_pair(quantizer, rng, n=128)
        result = index_domain_dot(aq, wq)
        assert result.stats.counter_updates == 4 * result.stats.gaussian_pairs

    def test_merge_accumulates(self):
        a = IndexComputeStats(gaussian_pairs=10, outlier_pairs=1, index_additions=10,
                              counter_updates=40, post_processing_macs=30)
        b = IndexComputeStats(gaussian_pairs=5, outlier_pairs=2, index_additions=5,
                              counter_updates=20, post_processing_macs=32)
        a.merge(b)
        assert a.gaussian_pairs == 15
        assert a.outlier_pairs == 3
        assert a.outlier_pair_fraction == pytest.approx(3 / 18)


class TestMatmul:
    def test_matmul_matches_decoded_matmul(self, quantizer, rng):
        a = rng.normal(0.2, 1.0, (4, 24))
        w = rng.normal(0, 0.05, (24, 3))
        aq = quantizer.quantize(a, "a")
        wq = quantizer.quantize(w, "w")
        result, stats = index_domain_matmul(aq, wq)
        a_dec = aq.dictionary.decode(aq.encoded, apply_fixed_point=False).reshape(a.shape)
        w_dec = wq.dictionary.decode(wq.encoded, apply_fixed_point=False).reshape(w.shape)
        assert np.allclose(result, a_dec @ w_dec, rtol=1e-9, atol=1e-9)
        assert stats.total_pairs == 4 * 24 * 3

    def test_matmul_requires_2d(self, quantizer, rng):
        aq = quantizer.quantize(rng.normal(0, 1, 8), "a")
        wq = quantizer.quantize(rng.normal(0, 1, (8, 2)), "w")
        with pytest.raises(ValueError):
            index_domain_matmul(aq, wq)

    def test_matmul_inner_dim_mismatch(self, quantizer, rng):
        aq = quantizer.quantize(rng.normal(0, 1, (2, 8)), "a")
        wq = quantizer.quantize(rng.normal(0, 1, (4, 2)), "w")
        with pytest.raises(ValueError):
            index_domain_matmul(aq, wq)
