"""Backend-conformance, equivalence, migration and concurrency battery.

The :class:`~repro.experiments.store.StoreBackend` contract is what makes
backends interchangeable, so this module tests it three ways:

1. **Conformance** — one parametrized suite runs the full contract
   (round-trip, upgrade/last-write-wins, corrupt-input skip counting,
   ``clear``, insertion order, query semantics) against *every*
   registered backend.
2. **Equivalence** — hypothesis drives identical put sequences into the
   JSONL and SQLite backends and asserts bit-identical observable state
   (put return values, key order, record digests), and a fixed corpus
   asserts identical ``query()`` answers for a battery of filter /
   order / group shapes.
3. **Scale & concurrency** — threads and a ``ProcessPoolExecutor``
   hammer one SQLite store with interleaved puts/upgrades (final state
   must equal the serial oracle); a killed spec campaign over SQLite
   resumes bit-identically; and a 10k-record grid answers filtered /
   grouped / top-k queries via pushdown without deserializing the
   record set (asserted by counting rebuilds).
"""

import hashlib
import itertools
import json
import random
import sqlite3
import threading
import types
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.accelerator.metrics import AreaBreakdown, EnergyBreakdown, SimulationResult
from repro.experiments import (
    AxisGrid,
    CampaignSpec,
    ExecutionPolicy,
    FidelityResult,
    MeasuredStats,
    Scenario,
    SqliteStoreBackend,
    StoreBackend,
    available_store_backends,
    detect_store_backend,
    iter_campaign,
    migrate_store,
    open_store,
    run_spec,
    scenario_key,
)
from repro.experiments import store_sqlite as store_sqlite_module
from repro.experiments.store import SCHEMA_VERSION, ArtifactStore, parse_filter
from repro.registry import RegistryError

KB = 1024
BACKENDS = ("jsonl", "sqlite")

_CASES = itertools.count()


# --------------------------------------------------------------------------- #
# Deterministic fabrication: entries derived purely from the scenario, so
# every process/thread/backend agrees on the payload without simulating.
# --------------------------------------------------------------------------- #


def fake_result(scenario: Scenario, variant: int = 0) -> SimulationResult:
    base = float(
        scenario.buffer_bytes % 977
        + scenario.batch_size * 13
        + len(scenario.model) * 7
        + variant * 1000
    )
    compute = base + 100.0
    memory = base * 2.0 + 50.0
    return SimulationResult(
        design_name=scenario.design,
        workload_name=f"{scenario.model}/{scenario.task}",
        buffer_bytes=scenario.buffer_bytes,
        compute_cycles=compute,
        memory_cycles=memory,
        total_cycles=max(compute, memory) + 10.0,
        traffic_bytes=base * 3.0,
        energy=EnergyBreakdown(dram=base * 0.1, sram=base * 0.01, compute=base * 0.001),
        area=AreaBreakdown(compute=12.5, buffer=base * 0.002),
    )


def fake_fidelity(scenario: Scenario) -> FidelityResult:
    return FidelityResult(
        scheme=scenario.scheme or scenario.design,
        metric="accuracy",
        fp_score=0.9,
        weight_only_score=0.89,
        weight_activation_score=0.88,
        settings_digest="fake",
    )


def fake_measured(scenario: Scenario) -> MeasuredStats:
    return MeasuredStats(
        model=scenario.model,
        sequence_length=scenario.sequence_length or 128,
        batch_size=scenario.batch_size,
        gaussian_pairs=1000 + scenario.batch_size,
        outlier_pairs=10,
        settings_digest="fake",
    )


def entry_digest(entry) -> str:
    payload = {
        "scenario": entry.scenario.to_dict(),
        "result": entry.result.to_dict(),
        "fidelity": None if entry.fidelity is None else entry.fidelity.to_dict(),
        "measured": None if entry.measured is None else entry.measured.to_dict(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def store_digests(store: StoreBackend) -> dict:
    """key → record digest, the bit-identity currency of these tests."""
    return {
        scenario_key(entry.scenario): entry_digest(entry) for entry in store.records()
    }


def corpus_scenarios():
    """A small mixed corpus: several axes vary, scheme includes None."""
    scenarios = []
    for model in ("m-alpha", "m-beta"):
        for design in ("d-one", "d-two"):
            for scheme in (None, "s-x"):
                for buffer_bytes in (256 * KB, 512 * KB, 1024 * KB):
                    scenarios.append(
                        Scenario(
                            model=model,
                            task="t",
                            batch_size=len(model) % 3 + 1,
                            scheme=scheme,
                            design=design,
                            buffer_bytes=buffer_bytes,
                        )
                    )
    return scenarios


def inject_corrupt(store: StoreBackend, n_bad_payload: int, n_wrong_version: int) -> None:
    """Backend-specific corruption: unreadable payloads + future-schema records."""
    if store.backend_name == "jsonl":
        with store.path.open("a", encoding="utf-8") as handle:
            for i in range(n_bad_payload):
                handle.write(f"corrupt line {i}\n")
            for i in range(n_wrong_version):
                scenario = Scenario(model=f"future-{i}")
                handle.write(
                    json.dumps(
                        {
                            "schema_version": SCHEMA_VERSION + 1,
                            "key": scenario_key(scenario, SCHEMA_VERSION + 1),
                            "scenario": scenario.to_dict(),
                            "result": fake_result(scenario).to_dict(),
                        }
                    )
                    + "\n"
                )
        store.refresh()
    else:
        conn = sqlite3.connect(str(store.path))
        with conn:
            for i in range(n_bad_payload):
                conn.execute(
                    "INSERT INTO records (key, schema_version, scenario, result) "
                    "VALUES (?, ?, ?, ?)",
                    (f"bad-payload-{i}", SCHEMA_VERSION, "not json", "not json"),
                )
            for i in range(n_wrong_version):
                scenario = Scenario(model=f"future-{i}")
                conn.execute(
                    "INSERT INTO records (key, schema_version, scenario, result) "
                    "VALUES (?, ?, ?, ?)",
                    (
                        scenario_key(scenario, SCHEMA_VERSION + 1),
                        SCHEMA_VERSION + 1,
                        json.dumps(scenario.to_dict()),
                        json.dumps(fake_result(scenario).to_dict()),
                    ),
                )
        conn.close()
        store.refresh()


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def make_store(backend, tmp_path):
    def factory(name="store"):
        return open_store(tmp_path / name, backend=backend)

    return factory


# --------------------------------------------------------------------------- #
# Conformance: the same suite must pass for every registered backend.
# --------------------------------------------------------------------------- #
class TestBackendConformance:
    def test_both_backends_are_registered_and_satisfy_the_protocol(self, make_store):
        assert set(BACKENDS) <= set(available_store_backends())
        assert isinstance(make_store(), StoreBackend)

    def test_round_trip_across_instances(self, make_store):
        scenario = Scenario(design="mokey", buffer_bytes=256 * KB)
        result = fake_result(scenario)
        store = make_store()
        assert store.get(scenario) is None
        assert store.put(scenario, result) is True
        assert store.put(scenario, result) is False  # content-addressed: no dup
        reloaded = make_store()  # a fresh instance, as another process would
        assert reloaded.get(scenario) == result
        assert scenario in reloaded
        assert len(reloaded) == 1
        assert detect_store_backend(store.root) == store.backend_name

    def test_empty_store_reads_do_not_create_files(self, make_store):
        store = make_store("fresh")
        assert store.get(Scenario()) is None
        assert len(store) == 0
        assert store.keys() == []
        assert list(store.records()) == []
        assert list(store.query()) == []
        assert store.query(group_by="model") == []
        assert store.skipped == 0
        assert not store.path.exists()

    def test_upgrade_adds_parts_and_replaces_result(self, make_store):
        scenario = Scenario(design="mokey")
        store = make_store()
        assert store.put(scenario, fake_result(scenario, variant=0)) is True
        assert store.get_fidelity(scenario) is None

        # Offering a missing part upgrades; the new result payload wins.
        fidelity = fake_fidelity(scenario)
        assert store.put(scenario, fake_result(scenario, variant=1), fidelity=fidelity) is True
        assert store.get(scenario) == fake_result(scenario, variant=1)
        assert store.get_fidelity(scenario) == fidelity
        # Re-offering a known part stores nothing (and keeps the result).
        assert store.put(scenario, fake_result(scenario, variant=2), fidelity=fidelity) is False
        assert store.get(scenario) == fake_result(scenario, variant=1)

        measured = fake_measured(scenario)
        assert store.put(scenario, fake_result(scenario, variant=3), measured=measured) is True
        entry = next(iter(store.records()))
        assert entry.fidelity == fidelity  # carried through the second upgrade
        assert entry.measured == measured
        assert entry.result == fake_result(scenario, variant=3)
        assert len(store) == 1

    def test_insertion_order_is_stable_across_upgrades_and_reopens(self, make_store):
        scenarios = [Scenario(buffer_bytes=(i + 1) * 64 * KB) for i in range(5)]
        store = make_store()
        for scenario in scenarios:
            store.put(scenario, fake_result(scenario))
        # Upgrading the first record must not move it to the end.
        store.put(scenarios[0], fake_result(scenarios[0]), fidelity=fake_fidelity(scenarios[0]))
        expected = [scenario_key(s) for s in scenarios]
        assert store.keys() == expected
        assert [scenario_key(e.scenario) for e in store.records()] == expected
        reopened = make_store()
        assert reopened.keys() == expected

    def test_corrupt_and_future_schema_records_are_skipped_not_fatal(self, make_store):
        scenario = Scenario()
        store = make_store()
        store.put(scenario, fake_result(scenario))
        inject_corrupt(store, n_bad_payload=2, n_wrong_version=1)
        reopened = make_store()
        entries = list(reopened.records())  # surfaces lazily-discovered corruption
        assert len(entries) == 1
        assert len(reopened) == 1
        assert reopened.skipped == 3
        assert reopened.get(scenario) == fake_result(scenario)

    def test_store_written_under_bumped_schema_degrades_to_misses(self, make_store):
        # Simulate a store produced entirely by a future code version.
        store = make_store()
        seed = Scenario(model="seed")
        store.put(seed, fake_result(seed))
        store.clear()
        inject_corrupt(store, n_bad_payload=0, n_wrong_version=3)
        reopened = make_store()
        assert list(reopened.records()) == []
        assert len(reopened) == 0
        assert reopened.skipped == 3
        assert reopened.get(Scenario(model="future-0")) is None

    def test_clear_empties_and_store_remains_usable(self, make_store):
        store = make_store()
        scenarios = [Scenario(buffer_bytes=(i + 1) * 64 * KB) for i in range(3)]
        for scenario in scenarios:
            store.put(scenario, fake_result(scenario))
        assert store.clear() == 3
        assert len(store) == 0
        assert store.skipped == 0
        assert store.get(scenarios[0]) is None
        assert store.put(scenarios[0], fake_result(scenarios[0])) is True
        assert len(make_store()) == 1

    def test_put_many_counts_only_new_records(self, make_store):
        scenarios = [Scenario(buffer_bytes=(i + 1) * 64 * KB) for i in range(4)]
        source = make_store("src")
        for scenario in scenarios[:3]:
            source.put(scenario, fake_result(scenario))
        dest = make_store("dst")
        dest.put(scenarios[0], fake_result(scenarios[0]))
        assert dest.put_many(source.records()) == 2  # first one already known
        assert dest.keys() == [scenario_key(s) for s in scenarios[:3]]

    def test_records_is_a_lazy_iterator(self, make_store):
        store = make_store()
        scenarios = [Scenario(buffer_bytes=(i + 1) * 64 * KB) for i in range(4)]
        for scenario in scenarios:
            store.put(scenario, fake_result(scenario))
        stream = store.records()
        assert isinstance(stream, types.GeneratorType)
        assert next(stream).scenario == scenarios[0]
        assert [e.scenario for e in stream] == scenarios[1:]

    def test_query_filters_order_and_limit(self, make_store):
        store = make_store()
        for scenario in corpus_scenarios():
            store.put(scenario, fake_result(scenario))
        only = list(store.query([("model", "==", "m-alpha"), ("buffer_bytes", "<=", 512 * KB)]))
        assert only
        assert all(
            e.scenario.model == "m-alpha" and e.scenario.buffer_bytes <= 512 * KB for e in only
        )
        ordered = list(store.query(order_by="-total_cycles", limit=5))
        assert len(ordered) == 5
        values = [e.result.total_cycles for e in ordered]
        assert values == sorted(values, reverse=True)
        # String filters (the CLI form) behave identically to triples.
        assert [entry_digest(e) for e in store.query(["model=m-alpha"])] == [
            entry_digest(e) for e in store.query([("model", "==", "m-alpha")])
        ]

    def test_query_null_scheme_semantics(self, make_store):
        store = make_store()
        scenarios = corpus_scenarios()
        for scenario in scenarios:
            store.put(scenario, fake_result(scenario))
        with_scheme = list(store.query(["scheme!=none"]))
        without_scheme = list(store.query(["scheme=none"]))
        assert all(e.scenario.scheme is not None for e in with_scheme)
        assert all(e.scenario.scheme is None for e in without_scheme)
        assert len(with_scheme) + len(without_scheme) == len(scenarios)
        # A concrete comparison never matches NULL (SQL three-valued logic).
        assert all(
            e.scenario.scheme is not None for e in store.query([("scheme", "!=", "s-x")])
        ) or not list(store.query([("scheme", "!=", "s-x")]))

    def test_query_group_by_aggregates(self, make_store):
        store = make_store()
        scenarios = corpus_scenarios()
        for i, scenario in enumerate(scenarios):
            store.put(
                scenario,
                fake_result(scenario),
                fidelity=fake_fidelity(scenario) if i % 2 == 0 else None,
            )
        rows = store.query(group_by=("model", "design"))
        assert sum(row["count"] for row in rows) == len(scenarios)
        assert sum(row["with_fidelity"] for row in rows) == (len(scenarios) + 1) // 2
        for row in rows:
            members = [
                e
                for e in scenarios
                if e.model == row["model"] and e.design == row["design"]
            ]
            expected_min = min(fake_result(e).total_cycles for e in members)
            assert row["min_total_cycles"] == pytest.approx(expected_min, rel=1e-12)
        top = store.query(group_by="model", order_by="-count", limit=1)
        assert len(top) == 1

    def test_query_rejects_unknown_fields_with_suggestions(self, make_store):
        store = make_store()
        with pytest.raises(ValueError, match="did you mean 'model'"):
            list(store.query([("modle", "==", "x")]))
        with pytest.raises(ValueError, match="must be a scenario axis"):
            store.query(group_by="total_cycles")
        with pytest.raises(ValueError, match="unknown order_by"):
            list(store.query(order_by="total_cycels"))
        with pytest.raises(ValueError, match="no comparison operator"):
            parse_filter("model")

    def test_refresh_makes_external_writes_visible(self, make_store):
        store = make_store()
        scenario = Scenario()
        store.put(scenario, fake_result(scenario))
        assert len(store) == 1
        other = make_store()  # ≈ another process appending to the same root
        late = Scenario(model="late-arrival")
        other.put(late, fake_result(late))
        store.refresh()
        assert len(store) == 2
        assert store.get(late) == fake_result(late)


# --------------------------------------------------------------------------- #
# Cross-backend equivalence.
# --------------------------------------------------------------------------- #

_OP_POOL = [Scenario(model=f"m{i % 3}", buffer_bytes=(i + 1) * 64 * KB) for i in range(6)]

_ops_st = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(_OP_POOL) - 1),
        st.booleans(),  # offer fidelity
        st.booleans(),  # offer measured
        st.integers(min_value=0, max_value=2),  # result variant
    ),
    max_size=20,
)


class TestCrossBackendEquivalence:
    @given(ops=_ops_st)
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_identical_put_sequences_yield_bit_identical_stores(self, tmp_path, ops):
        case = tmp_path / f"case-{next(_CASES)}"
        stores = [open_store(case / name, backend=name) for name in BACKENDS]
        returns = [[], []]
        for index, offer_fidelity, offer_measured, variant in ops:
            scenario = _OP_POOL[index]
            for store, seen in zip(stores, returns):
                seen.append(
                    store.put(
                        scenario,
                        fake_result(scenario, variant=variant),
                        fidelity=fake_fidelity(scenario) if offer_fidelity else None,
                        measured=fake_measured(scenario) if offer_measured else None,
                    )
                )
        jsonl, sqlite_store = stores
        assert returns[0] == returns[1]
        assert jsonl.keys() == sqlite_store.keys()
        assert len(jsonl) == len(sqlite_store)
        assert [entry_digest(e) for e in jsonl.records()] == [
            entry_digest(e) for e in sqlite_store.records()
        ]

    @pytest.fixture(scope="class")
    def query_corpus(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("query-corpus")
        stores = [open_store(root / name, backend=name) for name in BACKENDS]
        for i, scenario in enumerate(corpus_scenarios()):
            for store in stores:
                store.put(
                    scenario,
                    fake_result(scenario, variant=i % 2),
                    fidelity=fake_fidelity(scenario) if i % 3 == 0 else None,
                    measured=fake_measured(scenario) if i % 4 == 0 else None,
                )
        return stores

    @pytest.mark.parametrize(
        "query",
        [
            {},
            {"filters": [("model", "==", "m-alpha")]},
            {"filters": ["buffer_bytes<=524288", "design!=d-two"]},
            {"filters": ["scheme=none"]},
            {"filters": ["scheme!=none"], "order_by": "scheme"},
            # effective_scheme never holds NULL: it is the override when
            # set, else the design name — so filters on it see both kinds.
            {"filters": [("effective_scheme", "==", "s-x")]},
            {"filters": [("effective_scheme", "==", "d-one")]},
            {"filters": ["effective_scheme!=s-x"], "order_by": "effective_scheme"},
            {"filters": [("total_cycles", ">", 500.0)], "order_by": "-energy_joules"},
            {"order_by": "total_cycles", "limit": 7},
            {"order_by": "-buffer_bytes", "limit": 3},
            # The three descending spellings and the explicit ascending one
            # must agree across backends (and with each other, tested below).
            {"order_by": "~total_cycles", "limit": 7},
            {"order_by": "total_cycles:desc", "limit": 7},
            {"order_by": "total_cycles:asc", "limit": 7},
        ],
        ids=repr,
    )
    def test_entry_queries_agree(self, query_corpus, query):
        jsonl, sqlite_store = query_corpus
        a = [entry_digest(e) for e in jsonl.query(**query)]
        b = [entry_digest(e) for e in sqlite_store.query(**query)]
        assert a == b
        assert a or query.get("filters")  # non-filtered shapes must match rows

    @pytest.mark.parametrize(
        "query",
        [
            {"group_by": ("model", "design")},
            {"group_by": "model", "order_by": "-count"},
            {"group_by": ("model", "scheme")},  # a NULL group key
            {"group_by": ("design",), "order_by": "mean_total_cycles", "limit": 2},
            {"filters": ["buffer_bytes>262144"], "group_by": ("model", "design")},
            {"group_by": ("effective_scheme",), "order_by": "~count"},
            {"filters": [("effective_scheme", "!=", "d-two")],
             "group_by": ("model", "effective_scheme")},
        ],
        ids=repr,
    )
    def test_grouped_queries_agree(self, query_corpus, query):
        jsonl, sqlite_store = query_corpus
        a = jsonl.query(**query)
        b = sqlite_store.query(**query)
        assert len(a) == len(b)
        for row_a, row_b in zip(a, b):
            assert set(row_a) == set(row_b)
            for column, value in row_a.items():
                if column.startswith("mean_"):
                    # SQLite's AVG may accumulate in a different order.
                    assert row_b[column] == pytest.approx(value, rel=1e-12)
                else:
                    assert row_b[column] == value, column


# --------------------------------------------------------------------------- #
# Migration.
# --------------------------------------------------------------------------- #
class TestMigration:
    def test_jsonl_sqlite_jsonl_round_trip_is_exact(self, tmp_path):
        source = open_store(tmp_path / "a", backend="jsonl")
        for i, scenario in enumerate(corpus_scenarios()[:10]):
            source.put(
                scenario,
                fake_result(scenario),
                fidelity=fake_fidelity(scenario) if i % 2 == 0 else None,
                measured=fake_measured(scenario) if i % 3 == 0 else None,
            )
        middle = open_store(tmp_path / "b", backend="sqlite")
        assert migrate_store(source, middle) == 10
        back = open_store(tmp_path / "c", backend="jsonl")
        assert migrate_store(middle, back) == 10
        assert back.keys() == source.keys()  # keys AND insertion order
        assert store_digests(back) == store_digests(source)

    def test_migrate_skips_unreadable_source_records(self, tmp_path):
        source = open_store(tmp_path / "src", backend="jsonl")
        good = Scenario(model="good")
        source.put(good, fake_result(good))
        inject_corrupt(source, n_bad_payload=2, n_wrong_version=1)
        dest = open_store(tmp_path / "dst", backend="sqlite")
        assert migrate_store(source, dest) == 1
        assert source.skipped == 3
        assert dest.get(good) == fake_result(good)

    def test_migrate_into_same_store_is_rejected(self, tmp_path):
        store = open_store(tmp_path / "s", backend="sqlite")
        with pytest.raises(ValueError, match="same store"):
            migrate_store(store, open_store(tmp_path / "s", backend="sqlite"))

    def test_mixed_layout_directory_detects_sqlite_first(self, tmp_path):
        root = tmp_path / "both"
        scenario = Scenario()
        open_store(root, backend="jsonl").put(scenario, fake_result(scenario))
        open_store(root, backend="sqlite").put(scenario, fake_result(scenario))
        assert detect_store_backend(root) == "sqlite"
        assert open_store(root).backend_name == "sqlite"
        assert open_store(root, backend="jsonl").backend_name == "jsonl"

    def test_open_store_unknown_backend_suggests_nearest(self, tmp_path):
        with pytest.raises(ValueError, match="did you mean 'sqlite'"):
            open_store(tmp_path, backend="sqlte")

    def test_old_schema_database_gains_backfilled_effective_scheme(self, tmp_path):
        # A database created before the materialised effective_scheme
        # column existed must migrate on open: the column appears, is
        # backfilled from COALESCE(scheme, result design_name), and
        # pushdown answers match a JSONL store holding the same records.
        scenarios = corpus_scenarios()[:8]
        jsonl = open_store(tmp_path / "ref", backend="jsonl")
        for scenario in scenarios:
            jsonl.put(scenario, fake_result(scenario))

        root = tmp_path / "old"
        root.mkdir()
        conn = sqlite3.connect(str(root / SqliteStoreBackend.FILENAME))
        conn.execute(
            """
            CREATE TABLE records (
                key TEXT PRIMARY KEY,
                schema_version INTEGER NOT NULL,
                model TEXT, task TEXT, sequence_length INTEGER,
                batch_size INTEGER, scheme TEXT, design TEXT,
                buffer_bytes INTEGER, activation_buffer_fraction REAL,
                scenario TEXT NOT NULL, result TEXT NOT NULL,
                fidelity TEXT, measured TEXT
            )
            """
        )
        for scenario in scenarios:
            result = fake_result(scenario)
            conn.execute(
                "INSERT INTO records VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    scenario_key(scenario),
                    SCHEMA_VERSION,
                    scenario.model,
                    scenario.task,
                    scenario.sequence_length,
                    scenario.batch_size,
                    scenario.scheme,
                    scenario.design,
                    scenario.buffer_bytes,
                    scenario.activation_buffer_fraction,
                    json.dumps(scenario.to_dict(), sort_keys=True),
                    json.dumps(result.to_dict(), sort_keys=True),
                    None,
                    None,
                ),
            )
        conn.commit()
        conn.close()

        migrated = open_store(root, backend="sqlite")
        inner = migrated._connect(create=False)
        columns = {row[1] for row in inner.execute("PRAGMA table_info(records)")}
        assert "effective_scheme" in columns
        for query in (
            {"filters": [("effective_scheme", "==", "s-x")]},
            {"filters": [("effective_scheme", "==", "d-one")]},
            {"group_by": ("effective_scheme",)},
        ):
            a = jsonl.query(**query)
            b = migrated.query(**query)
            if query.get("group_by"):
                assert len(a) == len(b)
                for row_a, row_b in zip(a, b):
                    for column, value in row_a.items():
                        if column.startswith("mean_"):
                            assert row_b[column] == pytest.approx(value, rel=1e-12)
                        else:
                            assert row_b[column] == value, column
            else:
                assert [entry_digest(e) for e in a] == [entry_digest(e) for e in b]
        # Idempotent: a second opener finds the column and changes nothing.
        again = open_store(root, backend="sqlite")
        assert len(again) == len(scenarios)

    def test_spec_validates_store_backend_names(self, tmp_path):
        spec = CampaignSpec(
            execution=ExecutionPolicy(store=str(tmp_path / "s"), store_backend="sqlite")
        )
        assert spec.validate() is spec
        bad = CampaignSpec(
            execution=ExecutionPolicy(store=str(tmp_path / "s"), store_backend="sqlte")
        )
        with pytest.raises(RegistryError, match="did you mean 'sqlite'"):
            bad.validate()


# --------------------------------------------------------------------------- #
# Concurrency: threads and processes against one SQLite store.
# --------------------------------------------------------------------------- #


def _stress_scenario(i: int) -> Scenario:
    return Scenario(model=f"stress-{i % 4}", batch_size=i % 3 + 1, buffer_bytes=(i + 1) * 64 * KB)


def _stress_put(store: SqliteStoreBackend, i: int, part: int) -> None:
    scenario = _stress_scenario(i)
    store.put(
        scenario,
        fake_result(scenario),
        fidelity=fake_fidelity(scenario) if part == 1 else None,
        measured=fake_measured(scenario) if part == 2 else None,
    )


def _process_stress_worker(root: str, indices, part: int) -> int:
    store = SqliteStoreBackend(root)
    try:
        for i in indices:
            _stress_put(store, i, part)
    finally:
        store.close()
    return len(indices)


def _oracle_digests(tmp_path, n: int) -> dict:
    oracle = open_store(tmp_path / "oracle", backend="sqlite")
    for i in range(n):
        scenario = _stress_scenario(i)
        oracle.put(
            scenario,
            fake_result(scenario),
            fidelity=fake_fidelity(scenario),
            measured=fake_measured(scenario),
        )
    return store_digests(oracle)


class TestSqliteConcurrency:
    N = 16

    def test_thread_stress_equals_serial_oracle(self, tmp_path):
        store = SqliteStoreBackend(tmp_path / "shared")
        # Every (scenario, part) op twice over: commutative by construction
        # (same result payload, deterministic parts), so any interleaving
        # must land on the serial-oracle state with no lost records.
        ops = [(i, part) for i in range(self.N) for part in (0, 1, 2)] * 2
        failures = []

        def worker(seed: int) -> None:
            local = ops[:]
            random.Random(seed).shuffle(local)
            try:
                for i, part in local:
                    _stress_put(store, i, part)
            except Exception as exc:  # surfaced after join
                failures.append(exc)

        threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        assert len(store) == self.N  # no lost records
        assert store_digests(store) == _oracle_digests(tmp_path, self.N)

    def test_process_stress_equals_serial_oracle(self, tmp_path):
        root = str(tmp_path / "shared")
        indices = list(range(self.N))
        with ProcessPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(_process_stress_worker, root, indices, part)
                for part in (0, 1, 2, 0, 1, 2)
            ]
            assert [f.result() for f in futures] == [self.N] * 6
        store = SqliteStoreBackend(root)
        assert len(store) == self.N
        assert store_digests(store) == _oracle_digests(tmp_path, self.N)

    def test_killed_sqlite_campaign_resumes_bit_identically(self, tmp_path):
        def spec(store_dir):
            return CampaignSpec(
                name="sqlite-resume",
                axes=AxisGrid(
                    designs=("mokey", "tensor-cores"), buffer_bytes=(256 * KB, 512 * KB)
                ),
                execution=ExecutionPolicy(
                    executor="serial", store=str(store_dir), store_backend="sqlite"
                ),
            )

        fresh = run_spec(spec(tmp_path / "fresh"))
        assert fresh.simulated_count == 4
        assert detect_store_backend(tmp_path / "fresh") == "sqlite"

        events = iter_campaign(spec(tmp_path / "killed"))
        next(events)
        events.close()  # the kill: one record persisted, three missing
        killed = open_store(tmp_path / "killed")
        assert len(killed) == 1

        resumed = run_spec(spec(tmp_path / "killed"))
        assert resumed.simulated_count == 3
        assert sum(1 for r in resumed if r.cached) == 1
        assert store_digests(open_store(tmp_path / "killed")) == store_digests(
            open_store(tmp_path / "fresh")
        )


# --------------------------------------------------------------------------- #
# Pushdown at scale: the 10k-record acceptance test.
# --------------------------------------------------------------------------- #
class TestSqlitePushdownScale:
    GRID = 10_000

    @pytest.fixture(scope="class")
    def big_store(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("bulk") / "big"
        store = SqliteStoreBackend(root)
        scenarios = [
            Scenario(
                model=f"model-{i % 5}",
                task=f"task-{i % 3}",
                batch_size=i % 8 + 1,
                sequence_length=64 + i,  # guarantees 10k distinct scenarios
                design=f"design-{i % 4}",
                buffer_bytes=(i % 50 + 1) * 64 * KB + (i // 2000) * KB,
            )
            for i in range(self.GRID)
        ]
        assert len({scenario_key(s) for s in scenarios}) == self.GRID
        from repro.experiments import StoreEntry

        stored = store.put_many(
            StoreEntry(s, fake_result(s), None, None) for s in scenarios
        )
        assert stored == self.GRID
        return store, scenarios

    @pytest.fixture
    def rebuild_counter(self, monkeypatch):
        calls = {"n": 0}
        real = store_sqlite_module.Scenario

        class CountingScenario:
            @staticmethod
            def from_dict(data):
                calls["n"] += 1
                return real.from_dict(data)

        monkeypatch.setattr(store_sqlite_module, "Scenario", CountingScenario)
        return calls

    def test_grouped_report_deserializes_nothing(self, big_store, rebuild_counter):
        store, scenarios = big_store
        rows = store.query(
            filters=["buffer_bytes<=1048576"], group_by=("model", "design"), order_by="-count"
        )
        assert rebuild_counter["n"] == 0  # pure pushdown: no payload rebuilt
        expected = {}
        for s in scenarios:
            if s.buffer_bytes <= 1048576:
                key = (s.model, s.design)
                expected[key] = expected.get(key, 0) + 1
        assert {(r["model"], r["design"]): r["count"] for r in rows} == expected
        counts = [r["count"] for r in rows]
        assert counts == sorted(counts, reverse=True)

    def test_top_k_deserializes_only_k_records(self, big_store, rebuild_counter):
        store, scenarios = big_store
        top = list(
            store.query(
                filters=[("model", "==", "model-1")], order_by="-total_cycles", limit=10
            )
        )
        assert len(top) == 10
        assert rebuild_counter["n"] == 10  # only the surviving rows rebuilt
        expected = sorted(
            (fake_result(s).total_cycles for s in scenarios if s.model == "model-1"),
            reverse=True,
        )[:10]
        assert [e.result.total_cycles for e in top] == expected

    def test_records_prefix_read_is_streaming(self, big_store, rebuild_counter):
        store, _scenarios = big_store
        stream = store.records()
        for _ in range(3):
            next(stream)
        stream.close()
        assert rebuild_counter["n"] == 3
