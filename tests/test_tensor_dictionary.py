"""Tests for per-tensor dictionary fitting, encoding and decoding."""

import numpy as np
import pytest

from repro.core.tensor_dictionary import TensorDictionary


def _gaussian_with_outliers(rng, n=4000, mean=0.5, std=2.0, outlier_fraction=0.02):
    values = rng.normal(mean, std, n)
    k = int(n * outlier_fraction)
    idx = rng.choice(n, k, replace=False)
    values[idx] = mean + rng.choice([-1, 1], k) * rng.uniform(6 * std, 12 * std, k)
    return values


class TestFitting:
    def test_fit_from_values_records_statistics(self, golden, rng):
        values = _gaussian_with_outliers(rng)
        dictionary = TensorDictionary.fit("t", golden, values=values)
        assert dictionary.mean == pytest.approx(values.mean(), abs=0.05)
        assert dictionary.std == pytest.approx(values.std(), rel=0.05)
        assert dictionary.has_outliers

    def test_fit_from_stats_matches_fit_from_values(self, golden, rng):
        values = _gaussian_with_outliers(rng)
        from_values = TensorDictionary.fit("a", golden, values=values)
        from_stats = TensorDictionary.fit(
            "b",
            golden,
            mean=float(values.mean()),
            std=float(values.std()),
            minimum=float(values.min()),
            maximum=float(values.max()),
            outlier_samples=values,
        )
        assert from_stats.mean == pytest.approx(from_values.mean)
        assert from_stats.std == pytest.approx(from_values.std)
        assert np.allclose(from_stats.outlier_centroids, from_values.outlier_centroids)

    def test_fit_requires_values_or_stats(self, golden):
        with pytest.raises(ValueError):
            TensorDictionary.fit("t", golden)

    def test_empty_tensor_rejected(self, golden):
        with pytest.raises(ValueError):
            TensorDictionary.fit("t", golden, values=np.empty(0))

    def test_no_outliers_for_pure_gaussian_without_tail(self, golden, rng):
        values = np.clip(rng.normal(0, 1, 2000), -2, 2)
        dictionary = TensorDictionary.fit("t", golden, values=values)
        assert not dictionary.has_outliers

    def test_outlier_centroid_count_bounded(self, golden, rng):
        values = _gaussian_with_outliers(rng, outlier_fraction=0.1)
        dictionary = TensorDictionary.fit("t", golden, values=values, max_outlier_entries=16)
        assert 0 < dictionary.outlier_centroids.size <= 16

    def test_threshold_scales_with_std(self, golden, rng):
        narrow = TensorDictionary.fit("n", golden, values=rng.normal(0, 0.1, 2000))
        wide = TensorDictionary.fit("w", golden, values=rng.normal(0, 10.0, 2000))
        assert wide.threshold > narrow.threshold * 50

    def test_metadata_bits_small(self, golden, rng):
        values = _gaussian_with_outliers(rng)
        dictionary = TensorDictionary.fit("t", golden, values=values)
        # 8 Gaussian + <=16 outlier centroids + 4 constants at 16 bits each.
        assert dictionary.metadata_bits() <= (8 + 16 + 4) * 16


class TestEncodeDecode:
    def test_round_trip_error_small_for_gaussian_core(self, golden, rng):
        values = rng.normal(1.0, 2.0, 5000)
        dictionary = TensorDictionary.fit("t", golden, values=values)
        recon = dictionary.quantize_dequantize(values)
        relative = np.abs(recon - values).mean() / np.abs(values).mean()
        assert relative < 0.35  # 4-bit quantization error envelope

    def test_outliers_reconstructed_closely(self, golden, rng):
        values = _gaussian_with_outliers(rng)
        dictionary = TensorDictionary.fit("t", golden, values=values)
        encoded = dictionary.encode(values)
        recon = dictionary.decode(encoded)
        outlier_positions = encoded.is_outlier
        if outlier_positions.any():
            errors = np.abs(recon[outlier_positions] - values[outlier_positions])
            spans = np.abs(values[outlier_positions])
            assert np.median(errors / spans) < 0.35

    def test_encode_preserves_shape(self, golden, rng):
        values = rng.normal(0, 1, (13, 7))
        dictionary = TensorDictionary.fit("t", golden, values=values)
        encoded = dictionary.encode(values)
        assert encoded.shape == (13, 7)
        assert dictionary.decode(encoded).shape == (13, 7)

    def test_gaussian_index_within_range(self, golden, rng):
        values = rng.normal(0, 3, 1000)
        dictionary = TensorDictionary.fit("t", golden, values=values)
        encoded = dictionary.encode(values)
        assert encoded.gaussian_index.min() >= 0
        assert encoded.gaussian_index.max() <= 7

    def test_sign_matches_centred_value(self, golden, rng):
        values = rng.normal(0, 1, 1000)
        dictionary = TensorDictionary.fit("t", golden, values=values)
        encoded = dictionary.encode(values)
        centred = values - dictionary.mean
        assert np.all((encoded.sign >= 0) == (centred >= 0))

    def test_outlier_fraction_accounting(self, golden, rng):
        values = _gaussian_with_outliers(rng, outlier_fraction=0.03)
        dictionary = TensorDictionary.fit("t", golden, values=values)
        encoded = dictionary.encode(values)
        assert encoded.outlier_fraction == pytest.approx(
            encoded.outlier_count / values.size
        )
        assert 0.005 < encoded.outlier_fraction < 0.08

    def test_decode_without_fixed_point_is_exact_dictionary_value(self, golden, rng):
        values = rng.normal(0, 1, 100)
        dictionary = TensorDictionary.fit("t", golden, values=values)
        encoded = dictionary.encode(values)
        exact = dictionary.decode(encoded, apply_fixed_point=False)
        rounded = dictionary.decode(encoded, apply_fixed_point=True)
        assert np.max(np.abs(exact - rounded)) <= dictionary.fixed_point.scale / 2 + 1e-12

    def test_gaussian_centroids_sorted_and_symmetric_about_mean(self, golden, rng):
        values = rng.normal(2.0, 1.5, 2000)
        dictionary = TensorDictionary.fit("t", golden, values=values)
        centroids = dictionary.gaussian_centroids()
        assert centroids.size == 16
        assert np.all(np.diff(centroids) > 0)
        mid = (centroids[:8][::-1] + centroids[8:]) / 2.0
        assert np.allclose(mid, dictionary.mean, atol=2 * dictionary.fixed_point.scale)

    def test_all_centroids_combines_both_dictionaries(self, golden, rng):
        values = _gaussian_with_outliers(rng)
        dictionary = TensorDictionary.fit("t", golden, values=values)
        combined = dictionary.all_centroids()
        assert combined.size == 16 + dictionary.outlier_centroids.size
        assert np.all(np.diff(combined) >= 0)
