"""Property/metamorphic tests for the task-performance metrics.

The accuracy campaigns stand on three metrics from
:mod:`repro.transformer.tasks`; these hypothesis suites pin the algebraic
properties the fidelity numbers rely on:

* ``spearman_correlation`` is rank-based: invariant under strictly
  monotone transforms of the predictions, antisymmetric under strictly
  decreasing ones;
* ``accuracy`` and ``span_f1`` are bounded in [0, 100] (percent scale)
  and equal 100 on identical inputs;
* all three are invariant under a consistent permutation of the samples.

Prediction values are drawn as integer-valued floats so that monotone
transforms are exactly tie- and order-preserving in float arithmetic
(adjacent large floats could otherwise collide after a transform, which
would legitimately change ranks).
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.transformer.tasks import accuracy, span_f1, spearman_correlation

# Bounded so cubes stay far above float64 ulp spacing (1e18 vs ulp ~256).
_values = st.integers(min_value=-(10 ** 6), max_value=10 ** 6)


@st.composite
def paired_arrays(draw, min_size=2, max_size=40):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    a = draw(st.lists(_values, min_size=n, max_size=n))
    b = draw(st.lists(_values, min_size=n, max_size=n))
    return np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)


@st.composite
def span_arrays(draw, min_size=1, max_size=30):
    n = draw(st.integers(min_value=min_size, max_value=max_size))

    def spans():
        pairs = draw(
            st.lists(
                st.tuples(st.integers(0, 100), st.integers(0, 100)),
                min_size=n,
                max_size=n,
            )
        )
        return np.asarray([(min(s, e), max(s, e)) for s, e in pairs], dtype=np.int64)

    return spans(), spans()


MONOTONE_TRANSFORMS = [
    ("affine", lambda x: 3.0 * x + 1.5),
    ("cube", lambda x: x ** 3),
    ("arctan", np.arctan),
]


class TestSpearmanProperties:
    @pytest.mark.parametrize("name,transform", MONOTONE_TRANSFORMS)
    @settings(max_examples=60, deadline=None)
    @given(data=paired_arrays())
    def test_invariant_under_strictly_monotone_transform(self, name, transform, data):
        predictions, targets = data
        assume(np.unique(predictions).size > 1)
        assume(np.unique(targets).size > 1)
        base = spearman_correlation(predictions, targets)
        transformed = spearman_correlation(transform(predictions), targets)
        assert transformed == pytest.approx(base, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(data=paired_arrays())
    def test_antisymmetric_under_strictly_decreasing_transform(self, data):
        predictions, targets = data
        assume(np.unique(predictions).size > 1)
        assume(np.unique(targets).size > 1)
        base = spearman_correlation(predictions, targets)
        assert spearman_correlation(-predictions, targets) == pytest.approx(-base, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(data=paired_arrays(), seed=st.integers(0, 2 ** 32 - 1))
    def test_invariant_under_consistent_permutation(self, data, seed):
        predictions, targets = data
        permutation = np.random.default_rng(seed).permutation(predictions.size)
        base = spearman_correlation(predictions, targets)
        permuted = spearman_correlation(predictions[permutation], targets[permutation])
        assert permuted == pytest.approx(base, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(data=paired_arrays())
    def test_bounded_and_perfect_on_self(self, data):
        predictions, targets = data
        assert -100.0 - 1e-9 <= spearman_correlation(predictions, targets) <= 100.0 + 1e-9
        assert spearman_correlation(predictions, predictions) == pytest.approx(100.0)


class TestAccuracyProperties:
    @settings(max_examples=60, deadline=None)
    @given(data=paired_arrays(min_size=1))
    def test_bounded_and_perfect_on_identical(self, data):
        predictions, labels = data
        score = accuracy(predictions, labels)
        assert 0.0 <= score <= 100.0
        assert accuracy(predictions, predictions) == 100.0

    @settings(max_examples=60, deadline=None)
    @given(data=paired_arrays(min_size=1), seed=st.integers(0, 2 ** 32 - 1))
    def test_invariant_under_consistent_permutation(self, data, seed):
        predictions, labels = data
        permutation = np.random.default_rng(seed).permutation(predictions.size)
        assert accuracy(predictions[permutation], labels[permutation]) == pytest.approx(
            accuracy(predictions, labels)
        )


class TestSpanF1Properties:
    @settings(max_examples=60, deadline=None)
    @given(data=span_arrays())
    def test_bounded_and_perfect_on_identical(self, data):
        predicted, reference = data
        score = span_f1(predicted, reference)
        assert 0.0 <= score <= 100.0 + 1e-9
        assert span_f1(predicted, predicted) == pytest.approx(100.0)

    @settings(max_examples=60, deadline=None)
    @given(data=span_arrays(), seed=st.integers(0, 2 ** 32 - 1))
    def test_invariant_under_consistent_permutation(self, data, seed):
        predicted, reference = data
        permutation = np.random.default_rng(seed).permutation(predicted.shape[0])
        assert span_f1(predicted[permutation], reference[permutation]) == pytest.approx(
            span_f1(predicted, reference), abs=1e-9
        )
