"""Tests for the accelerator models: workloads, dataflow, simulator, designs."""

import numpy as np
import pytest

from repro.accelerator.compression_modes import CompressionMode, tensor_cores_with_mokey_compression
from repro.accelerator.dataflow import activation_working_set_bits, plan_layer
from repro.accelerator.designs import AcceleratorDesign
from repro.accelerator.gobo_accel import gobo_design
from repro.accelerator.mokey_accel import mokey_design
from repro.accelerator.simulator import AcceleratorSimulator
from repro.accelerator.tensor_cores import tensor_cores_design
from repro.accelerator.workloads import (
    TASK_SEQUENCE_LENGTHS,
    encoder_gemms,
    model_workload,
    paper_workloads,
)
from repro.transformer.model_zoo import bert_base

KB = 1024
MB = 1024 * 1024
BUFFERS = (256 * KB, 512 * KB, 1 * MB, 2 * MB, 4 * MB)


class TestWorkloads:
    def test_encoder_gemm_macs_match_analytic_count(self):
        cfg = bert_base()
        seq = 128
        gemms = encoder_gemms(cfg, seq)
        macs = sum(g.macs for g in gemms)
        h, i, heads, hd = cfg.hidden_size, cfg.intermediate_size, cfg.num_heads, cfg.head_dim
        expected = (
            4 * seq * h * h              # QKV + output projections
            + 2 * heads * seq * seq * hd  # scores + context
            + 2 * seq * h * i             # FFN up + down
        )
        assert macs == expected

    def test_attention_gemms_not_weight_static(self):
        gemms = encoder_gemms(bert_base(), 128)
        by_name = {g.name: g for g in gemms}
        assert not by_name["attention.scores"].weight_static
        assert not by_name["attention.context"].weight_static
        assert by_name["ffn.intermediate"].weight_static

    def test_squad_uses_longer_sequences(self):
        assert TASK_SEQUENCE_LENGTHS["squad"] > TASK_SEQUENCE_LENGTHS["mnli"]
        wl = model_workload("bert-large", "squad")
        assert wl.sequence_length == 384

    def test_total_macs_scale_with_layers(self):
        base = model_workload("bert-base", "mnli")
        large = model_workload("bert-large", "mnli")
        assert large.total_macs > 2 * base.total_macs

    def test_deberta_has_extra_gemms(self):
        deberta = model_workload("deberta-xl", "mnli")
        bert = model_workload("bert-large", "mnli")
        assert len(deberta.layer_gemms) > len(bert.layer_gemms)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            model_workload("albert-xxl")

    def test_paper_workloads_count(self):
        assert len(paper_workloads()) == 8


class TestDataflow:
    def test_more_buffer_never_increases_traffic(self):
        wl = model_workload("bert-large", "squad")
        design = tensor_cores_design()
        traffic = [plan_layer(wl, design, size).total_bytes for size in BUFFERS]
        assert all(a >= b - 1e-6 for a, b in zip(traffic, traffic[1:]))

    def test_quantized_design_moves_less_data(self):
        wl = model_workload("bert-base", "mnli")
        for size in BUFFERS:
            tc = plan_layer(wl, tensor_cores_design(), size).total_bytes
            mk = plan_layer(wl, mokey_design(), size).total_bytes
            assert mk < tc / 2.0

    def test_weight_traffic_at_least_model_size(self):
        wl = model_workload("bert-base", "mnli")
        design = tensor_cores_design()
        plan = plan_layer(wl, design, 4 * MB)
        layer_weight_bytes = sum(
            g.weight_values * 2 for g in wl.layer_gemms if g.weight_static
        )
        assert plan.weight_bytes >= layer_weight_bytes * 0.99

    def test_activation_residency_with_huge_buffer(self):
        wl = model_workload("bert-base", "mnli")
        plan = plan_layer(wl, mokey_design(), 64 * MB)
        assert plan.activations_resident
        assert plan.activation_bytes == 0.0

    def test_working_set_scales_with_bits(self):
        wl = model_workload("bert-base", "mnli")
        assert activation_working_set_bits(wl, 16) > 3 * activation_working_set_bits(wl, 5)


class TestDesigns:
    def test_invalid_datapath_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorDesign(name="x", datapath="tpu", num_units=8, unit_area_mm2=0.01)

    def test_compute_areas_match_table_ii(self):
        assert tensor_cores_design().compute_area_mm2 == pytest.approx(16.1, abs=0.2)
        assert gobo_design().compute_area_mm2 == pytest.approx(15.9, abs=0.2)
        assert mokey_design().compute_area_mm2 == pytest.approx(14.8, abs=0.2)

    def test_mokey_pe_39_percent_smaller_than_tensor_core_unit(self):
        tc = tensor_cores_design()
        mk = mokey_design()
        ratio = mk.unit_area_mm2 / tc.unit_area_mm2
        assert ratio == pytest.approx(0.61, abs=0.05)

    def test_with_buffer_bits_variant(self):
        design = tensor_cores_design().with_buffer_bits(
            weight_bits_offchip=4.4, name="compressed", decompression_lut=True
        )
        assert design.weight_bits_offchip == 4.4
        assert design.decompression_lut
        assert design.name == "compressed"
        # original untouched (frozen dataclass semantics)
        assert tensor_cores_design().weight_bits_offchip == 16.0


class TestSimulator:
    @pytest.fixture(scope="class")
    def sims(self):
        return (
            AcceleratorSimulator(tensor_cores_design()),
            AcceleratorSimulator(gobo_design()),
            AcceleratorSimulator(mokey_design()),
        )

    def test_mokey_faster_than_tensor_cores_everywhere(self, sims):
        tc, _, mk = sims
        for wl in paper_workloads():
            for size in (256 * KB, 4 * MB):
                r_tc = tc.simulate(wl, size)
                r_mk = mk.simulate(wl, size)
                assert r_mk.speedup_over(r_tc) > 1.0, (wl.name, size)

    def test_mokey_more_energy_efficient_than_tensor_cores(self, sims):
        tc, _, mk = sims
        for wl in paper_workloads():
            r_tc = tc.simulate(wl, 512 * KB)
            r_mk = mk.simulate(wl, 512 * KB)
            assert r_mk.energy_efficiency_over(r_tc) > 1.5, wl.name

    def test_mokey_at_least_as_fast_as_gobo(self, sims):
        _, gb, mk = sims
        for wl in paper_workloads():
            for size in (256 * KB, 4 * MB):
                r_gb = gb.simulate(wl, size)
                r_mk = mk.simulate(wl, size)
                assert r_mk.speedup_over(r_gb) >= 0.95, (wl.name, size)

    def test_speedup_shrinks_with_larger_buffers(self, sims):
        tc, _, mk = sims
        wl = model_workload("bert-base", "mnli")
        speedups = []
        for size in BUFFERS:
            speedups.append(mk.simulate(wl, size).speedup_over(tc.simulate(wl, size)))
        assert speedups[0] > speedups[-1]

    def test_larger_buffers_never_slower(self, sims):
        tc, _, _ = sims
        wl = model_workload("bert-large", "squad")
        cycles = [tc.simulate(wl, size).total_cycles for size in BUFFERS]
        assert all(a >= b - 1e-6 for a, b in zip(cycles, cycles[1:]))

    def test_table_ii_cycle_ordering(self, sims):
        tc, gb, mk = sims
        wl = model_workload("bert-base", "mnli")
        r_tc, r_gb, r_mk = (s.simulate(wl, 512 * KB) for s in (tc, gb, mk))
        assert r_tc.total_cycles > r_gb.total_cycles > r_mk.total_cycles
        assert r_tc.energy.total > r_gb.energy.total > r_mk.energy.total

    def test_energy_breakdown_components_positive(self, sims):
        tc, _, _ = sims
        result = tc.simulate(model_workload("bert-base", "mnli"), 512 * KB)
        assert result.energy.dram > 0
        assert result.energy.sram > 0
        assert result.energy.compute > 0
        assert result.energy.total == pytest.approx(
            result.energy.dram + result.energy.sram + result.energy.compute
        )

    def test_overlap_fraction_bounded(self, sims):
        tc, _, mk = sims
        for sim in (tc, mk):
            result = sim.simulate(model_workload("bert-large", "squad"), 256 * KB)
            assert 0.0 <= result.overlap_fraction <= 1.0

    def test_mokey_chip_area_smaller_than_tensor_cores(self, sims):
        tc, _, mk = sims
        wl = model_workload("bert-large", "squad")
        for size in (256 * KB, 1 * MB):
            assert mk.simulate(wl, size).area.total < tc.simulate(wl, size).area.total

    def test_sweep_buffers_helper(self, sims):
        tc, _, _ = sims
        results = tc.sweep_buffers(model_workload("bert-base", "mnli"), BUFFERS)
        assert set(results) == set(BUFFERS)

    def test_squad_benefits_more_than_mnli_at_small_buffers(self, sims):
        """Longer sequences (larger activations) gain more from Mokey."""
        tc, _, mk = sims
        mnli = model_workload("bert-large", "mnli")
        squad = model_workload("bert-large", "squad")
        size = 256 * KB
        speedup_mnli = mk.simulate(mnli, size).speedup_over(tc.simulate(mnli, size))
        speedup_squad = mk.simulate(squad, size).speedup_over(tc.simulate(squad, size))
        assert speedup_squad >= speedup_mnli * 0.9


class TestCompressionModes:
    def test_mode_none_returns_baseline(self):
        assert tensor_cores_with_mokey_compression(CompressionMode.NONE).name == "tensor-cores"

    def test_oc_compresses_offchip_only(self):
        design = tensor_cores_with_mokey_compression(CompressionMode.OFF_CHIP)
        assert design.weight_bits_offchip < 16
        assert design.weight_bits_onchip == 16

    def test_ocon_compresses_both(self):
        design = tensor_cores_with_mokey_compression(CompressionMode.OFF_CHIP_AND_ON_CHIP)
        assert design.weight_bits_onchip == 5.0
        assert design.buffer_interface_bits == 5

    def test_compression_speeds_up_baseline(self):
        wl = model_workload("bert-large", "squad")
        base = AcceleratorSimulator(tensor_cores_design())
        for mode in (CompressionMode.OFF_CHIP, CompressionMode.OFF_CHIP_AND_ON_CHIP):
            sim = AcceleratorSimulator(tensor_cores_with_mokey_compression(mode))
            for size in (256 * KB, 4 * MB):
                speedup = sim.simulate(wl, size).speedup_over(base.simulate(wl, size))
                assert speedup > 1.0, (mode, size)

    def test_onchip_compression_helps_most_at_small_buffers(self):
        wl = model_workload("bert-large", "squad")
        base = AcceleratorSimulator(tensor_cores_design())
        oc = AcceleratorSimulator(tensor_cores_with_mokey_compression(CompressionMode.OFF_CHIP))
        ocon = AcceleratorSimulator(
            tensor_cores_with_mokey_compression(CompressionMode.OFF_CHIP_AND_ON_CHIP)
        )
        size = 256 * KB
        base_result = base.simulate(wl, size)
        speedup_oc = oc.simulate(wl, size).speedup_over(base_result)
        speedup_ocon = ocon.simulate(wl, size).speedup_over(base_result)
        assert speedup_ocon >= speedup_oc

    def test_compression_improves_energy(self):
        wl = model_workload("bert-base", "mnli")
        base = AcceleratorSimulator(tensor_cores_design())
        oc = AcceleratorSimulator(tensor_cores_with_mokey_compression(CompressionMode.OFF_CHIP))
        assert oc.simulate(wl, 256 * KB).energy_efficiency_over(base.simulate(wl, 256 * KB)) > 1.0
