"""Golden-regression suite over the full scheme × design × model grid.

``tests/goldens.json`` pins a content digest of the complete
:class:`~repro.accelerator.metrics.SimulationResult` for every registered
quantization scheme × accelerator design × model-zoo configuration (on
MNLI at the default 512 KB buffer).  Any numeric drift in the simulator,
the schemes, or the workload models — or a scheme/design/model added or
removed from the registries — fails this suite.

``tests/goldens_accuracy.json`` pins the accuracy half the same way: a
content digest of the full
:class:`~repro.experiments.accuracy.FidelityResult` for every row of the
paper's Table I grid (the eight (model, task) pairs under Mokey at the
default :data:`~repro.experiments.accuracy.DEFAULT_ACCURACY_SETTINGS`).
Any drift in the quantization numerics, the functional twins, the task
suite or the metrics fails it.

After an **intentional** change to the numerics, regenerate both files
with::

    PYTHONPATH=src python tests/test_goldens.py --write

commit them together with the change that caused it (the diff of the
goldens files documents the blast radius), and bump the store's
``SCHEMA_VERSION`` so stale stores re-simulate instead of silently
serving pre-change results.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List

from repro.accelerator.metrics import SimulationResult
from repro.experiments import (
    Scenario,
    available_designs,
    expand_grid,
    fidelity_digest,
    run_campaign,
)
from repro.schemes import available_schemes
from repro.transformer.model_zoo import MODEL_CONFIGS, PAPER_MODELS

GOLDENS_PATH = Path(__file__).parent / "goldens.json"
ACCURACY_GOLDENS_PATH = Path(__file__).parent / "goldens_accuracy.json"
KB = 1024
GOLDEN_BUFFER_BYTES = 512 * KB
GOLDEN_TASK = "mnli"


def golden_grid() -> List[Scenario]:
    """Every registered scheme × design × model-zoo config, one buffer point."""
    return expand_grid(
        models=tuple(sorted(MODEL_CONFIGS)),
        tasks=(GOLDEN_TASK,),
        schemes=available_schemes(),
        designs=available_designs(),
        buffer_bytes=(GOLDEN_BUFFER_BYTES,),
    )


def golden_label(scenario: Scenario) -> str:
    return f"{scenario.model}|{scenario.design}|{scenario.scheme}"


def result_digest(result: SimulationResult) -> str:
    """Stable content digest of the full result (all fields, full precision)."""
    blob = json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def compute_goldens() -> Dict[str, str]:
    campaign = run_campaign(golden_grid())
    return {golden_label(r.scenario): result_digest(r.result) for r in campaign}


def load_goldens() -> Dict[str, str]:
    with GOLDENS_PATH.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def accuracy_golden_grid() -> List[Scenario]:
    """The paper's Table I grid: eight (model, task) pairs under Mokey."""
    return expand_grid(
        workloads=[(model, task, seq) for (model, task, seq, _head) in PAPER_MODELS],
        designs=("mokey",),
        buffer_bytes=(GOLDEN_BUFFER_BYTES,),
    )


def accuracy_golden_label(scenario: Scenario) -> str:
    return f"{scenario.model}|{scenario.task}|mokey"


def compute_accuracy_goldens() -> Dict[str, str]:
    campaign = run_campaign(accuracy_golden_grid(), with_accuracy=True, executor="serial")
    return {
        accuracy_golden_label(r.scenario): fidelity_digest(r.fidelity) for r in campaign
    }


def load_accuracy_goldens() -> Dict[str, str]:
    with ACCURACY_GOLDENS_PATH.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def test_goldens_cover_current_registries():
    """The goldens file names exactly the current scheme/design/model grid."""
    expected = {golden_label(s) for s in golden_grid()}
    recorded = set(load_goldens())
    missing = sorted(expected - recorded)
    stale = sorted(recorded - expected)
    assert not missing and not stale, (
        f"goldens out of sync with the registries — missing: {missing[:5]}, "
        f"stale: {stale[:5]}; regenerate with "
        f"`PYTHONPATH=src python tests/test_goldens.py --write`"
    )


def test_goldens_no_numeric_drift():
    """Every simulated digest matches the checked-in golden exactly."""
    recorded = load_goldens()
    measured = compute_goldens()
    drifted = sorted(
        label
        for label, digest in measured.items()
        if recorded.get(label) != digest
    )
    assert not drifted, (
        f"{len(drifted)} of {len(measured)} golden results drifted "
        f"(first: {drifted[:5]}); if the numeric change is intentional, "
        f"regenerate with `PYTHONPATH=src python tests/test_goldens.py --write`"
    )


def test_accuracy_goldens_cover_table1_grid():
    """The accuracy goldens file names exactly the Table I grid."""
    expected = {accuracy_golden_label(s) for s in accuracy_golden_grid()}
    recorded = set(load_accuracy_goldens())
    missing = sorted(expected - recorded)
    stale = sorted(recorded - expected)
    assert not missing and not stale, (
        f"accuracy goldens out of sync with the Table I grid — missing: "
        f"{missing[:5]}, stale: {stale[:5]}; regenerate with "
        f"`PYTHONPATH=src python tests/test_goldens.py --write`"
    )


def test_accuracy_goldens_no_fidelity_drift():
    """Every Table I fidelity digest matches the checked-in golden exactly."""
    recorded = load_accuracy_goldens()
    measured = compute_accuracy_goldens()
    drifted = sorted(
        label
        for label, digest in measured.items()
        if recorded.get(label) != digest
    )
    assert not drifted, (
        f"{len(drifted)} of {len(measured)} accuracy goldens drifted "
        f"(first: {drifted[:5]}); if the numeric change is intentional, "
        f"regenerate with `PYTHONPATH=src python tests/test_goldens.py --write` "
        f"and bump the store SCHEMA_VERSION"
    )


def _write_goldens() -> None:
    goldens = compute_goldens()
    with GOLDENS_PATH.open("w", encoding="utf-8") as handle:
        json.dump(goldens, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(goldens)} goldens to {GOLDENS_PATH}")
    accuracy_goldens = compute_accuracy_goldens()
    with ACCURACY_GOLDENS_PATH.open("w", encoding="utf-8") as handle:
        json.dump(accuracy_goldens, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(accuracy_goldens)} accuracy goldens to {ACCURACY_GOLDENS_PATH}")


if __name__ == "__main__":
    import sys

    if "--write" in sys.argv:
        _write_goldens()
    else:
        print(__doc__)
        raise SystemExit("pass --write to regenerate tests/goldens.json")
