"""Tests for the exponential curve fit (paper Fig. 3)."""

import numpy as np
import pytest

from repro.core.exponential_fit import ExponentialFit, fit_exponential


class TestFitExponential:
    def test_recovers_exact_exponential(self):
        a, b = 1.25, -0.9
        half = a ** np.arange(8) + b
        fit = fit_exponential(half)
        assert fit.a == pytest.approx(a, rel=1e-4)
        assert fit.b == pytest.approx(b, rel=1e-3)

    def test_paper_parameters_reproduce_their_dictionary(self):
        """Check the fit is self-consistent for the paper's own (a, b)."""
        half = 1.179 ** np.arange(8) - 0.977
        fit = fit_exponential(half)
        assert fit.a == pytest.approx(1.179, abs=0.01)
        assert fit.b == pytest.approx(-0.977, abs=0.02)

    def test_weighting_prioritises_inner_bins(self):
        # Perturb only the outermost bin: the fit should barely move near zero.
        a, b = 1.2, -0.8
        half = a ** np.arange(8) + b
        perturbed = half.copy()
        perturbed[-1] += 0.5
        fit = fit_exponential(perturbed)
        assert abs(fit.value(0) - half[0]) < 0.05
        # ... while the outer bin absorbs most of the residual error.
        assert abs(fit.value(7) - perturbed[7]) > abs(fit.value(0) - perturbed[0])

    def test_requires_sorted_input(self):
        with pytest.raises(ValueError):
            fit_exponential([1.0, 0.5, 2.0])

    def test_requires_two_entries(self):
        with pytest.raises(ValueError):
            fit_exponential([1.0])

    def test_base_greater_than_one(self):
        rng = np.random.default_rng(0)
        half = np.sort(np.abs(rng.normal(0, 1, 8)))
        half = np.unique(half)
        if half.size < 2:
            pytest.skip("degenerate random draw")
        fit = fit_exponential(half)
        assert fit.a > 1.0


class TestExponentialFitObject:
    def test_magnitudes_match_formula(self):
        fit = ExponentialFit(a=1.2, b=-0.9, num_entries=8)
        expected = 1.2 ** np.arange(8) - 0.9
        assert np.allclose(fit.magnitudes(), expected)

    def test_value_with_signs(self):
        fit = ExponentialFit(a=1.2, b=-0.9, num_entries=8)
        values = fit.value(np.array([0, 3]), sign=np.array([1, -1]))
        assert values[0] == pytest.approx(1.2 ** 0 - 0.9)
        assert values[1] == pytest.approx(-(1.2 ** 3 - 0.9))

    def test_max_exponent_sum(self):
        fit = ExponentialFit(a=1.2, b=-0.9, num_entries=8)
        assert fit.max_exponent_sum() == 14
        assert fit.product_bases().size == 15

    def test_product_bases_are_powers(self):
        fit = ExponentialFit(a=1.3, b=-1.0, num_entries=8)
        bases = fit.product_bases()
        assert np.allclose(bases, 1.3 ** np.arange(15))

    def test_fit_error_requires_matching_size(self):
        fit = ExponentialFit(a=1.2, b=-0.9, num_entries=8)
        with pytest.raises(ValueError):
            fit.fit_error(np.arange(5))

    def test_fit_error_zero_for_exact_curve(self):
        fit = ExponentialFit(a=1.2, b=-0.9, num_entries=8)
        assert fit.fit_error(fit.magnitudes()) == pytest.approx(0.0)
