"""Tests for the elementwise/normalisation primitives."""

import numpy as np
import pytest

from repro.transformer.functional import erf, gelu, layer_norm, relu, softmax, tanh_gelu


class TestErfGelu:
    def test_erf_reference_values(self):
        assert erf(np.array(0.0)) == pytest.approx(0.0, abs=1e-6)
        assert erf(np.array(1.0)) == pytest.approx(0.8427, abs=1e-3)
        assert erf(np.array(-1.0)) == pytest.approx(-0.8427, abs=1e-3)
        assert erf(np.array(3.0)) == pytest.approx(1.0, abs=1e-4)

    def test_erf_is_odd(self, rng):
        x = rng.normal(0, 2, 100)
        assert np.allclose(erf(x), -erf(-x), atol=1e-6)

    def test_gelu_reference_values(self):
        assert gelu(np.array(0.0)) == pytest.approx(0.0, abs=1e-6)
        assert gelu(np.array(1.0)) == pytest.approx(0.8413, abs=1e-3)
        assert gelu(np.array(-10.0)) == pytest.approx(0.0, abs=1e-4)
        assert gelu(np.array(10.0)) == pytest.approx(10.0, abs=1e-4)

    def test_gelu_close_to_tanh_approximation(self, rng):
        x = rng.normal(0, 2, 200)
        assert np.max(np.abs(gelu(x) - tanh_gelu(x))) < 0.02

    def test_relu(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.normal(0, 5, (4, 7))
        p = softmax(x, axis=-1)
        assert np.allclose(p.sum(axis=-1), 1.0, atol=1e-6)

    def test_invariant_to_constant_shift(self, rng):
        x = rng.normal(0, 1, (3, 5))
        assert np.allclose(softmax(x), softmax(x + 100.0), atol=1e-6)

    def test_no_overflow_for_large_logits(self):
        p = softmax(np.array([[1e4, 0.0, -1e4]]))
        assert np.isfinite(p).all()
        assert p[0, 0] == pytest.approx(1.0, abs=1e-6)

    def test_uniform_for_equal_logits(self):
        p = softmax(np.zeros((1, 8)))
        assert np.allclose(p, 1 / 8)


class TestLayerNorm:
    def test_zero_mean_unit_variance_with_identity_params(self, rng):
        x = rng.normal(3, 5, (6, 32))
        out = layer_norm(x, np.ones(32), np.zeros(32))
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gamma_beta_applied(self, rng):
        x = rng.normal(0, 1, (2, 16))
        gamma = np.full(16, 2.0)
        beta = np.full(16, -1.0)
        base = layer_norm(x, np.ones(16), np.zeros(16))
        assert np.allclose(layer_norm(x, gamma, beta), base * 2.0 - 1.0, atol=1e-5)

    def test_constant_rows_do_not_explode(self):
        x = np.full((1, 8), 7.0)
        out = layer_norm(x, np.ones(8), np.zeros(8))
        assert np.isfinite(out).all()
        assert np.allclose(out, 0.0, atol=1e-3)
