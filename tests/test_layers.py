"""Tests for the basic layers (Linear, LayerNorm, Embedding, FeedForward)."""

import numpy as np
import pytest

from repro.transformer.functional import gelu
from repro.transformer.layers import Embedding, FeedForward, LayerNorm, Linear


class TestLinear:
    def test_matches_numpy(self, rng):
        w = rng.normal(0, 1, (8, 4))
        b = rng.normal(0, 1, 4)
        x = rng.normal(0, 1, (3, 8))
        layer = Linear(w, b)
        assert np.allclose(layer(x), x @ w + b)

    def test_default_zero_bias(self, rng):
        w = rng.normal(0, 1, (8, 4))
        layer = Linear(w)
        assert np.allclose(layer.bias, 0.0)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            Linear(rng.normal(0, 1, 8))
        with pytest.raises(ValueError):
            Linear(rng.normal(0, 1, (8, 4)), rng.normal(0, 1, 3))

    def test_named_parameters_and_set(self, rng):
        layer = Linear(rng.normal(0, 1, (4, 4)))
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}
        new_weight = np.zeros((4, 4), dtype=np.float32)
        layer.set_parameter("weight", new_weight)
        assert np.array_equal(layer.weight, new_weight)
        with pytest.raises(ValueError):
            layer.set_parameter("weight", np.zeros((2, 2)))
        with pytest.raises(KeyError):
            layer.set_parameter("nope", new_weight)

    def test_macs(self, rng):
        layer = Linear(rng.normal(0, 1, (16, 32)))
        assert layer.macs(rows=10) == 10 * 16 * 32


class TestLayerNormModule:
    def test_forward_matches_functional(self, rng):
        gamma = rng.normal(1, 0.1, 8)
        beta = rng.normal(0, 0.1, 8)
        layer = LayerNorm(gamma, beta)
        x = rng.normal(0, 1, (4, 8))
        from repro.transformer.functional import layer_norm

        assert np.allclose(layer(x), layer_norm(x, gamma, beta, layer.eps))

    def test_mismatched_params_rejected(self, rng):
        with pytest.raises(ValueError):
            LayerNorm(np.ones(8), np.zeros(4))

    def test_set_parameter(self):
        layer = LayerNorm(np.ones(4), np.zeros(4))
        layer.set_parameter("gamma", np.full(4, 2.0))
        assert np.allclose(layer.gamma, 2.0)
        with pytest.raises(KeyError):
            layer.set_parameter("delta", np.ones(4))


class TestEmbedding:
    def test_lookup(self, rng):
        table = rng.normal(0, 1, (10, 4))
        layer = Embedding(table)
        ids = np.array([[0, 3], [9, 1]])
        assert np.allclose(layer(ids), table[ids])

    def test_out_of_range_rejected(self, rng):
        layer = Embedding(rng.normal(0, 1, (10, 4)))
        with pytest.raises(IndexError):
            layer(np.array([[10]]))

    def test_properties(self, rng):
        layer = Embedding(rng.normal(0, 1, (10, 4)))
        assert layer.num_embeddings == 10
        assert layer.embedding_dim == 4


class TestFeedForward:
    def test_forward_is_gelu_sandwich(self, rng):
        up = Linear(rng.normal(0, 0.1, (8, 16)), rng.normal(0, 0.1, 16))
        down = Linear(rng.normal(0, 0.1, (16, 8)), rng.normal(0, 0.1, 8))
        ffn = FeedForward(up, down)
        x = rng.normal(0, 1, (2, 8))
        expected = down(gelu(up(x)))
        assert np.allclose(ffn(x), expected)

    def test_hook_sees_intermediate_and_output(self, rng):
        up = Linear(rng.normal(0, 0.1, (8, 16)))
        down = Linear(rng.normal(0, 0.1, (16, 8)))
        ffn = FeedForward(up, down)
        seen = []

        def hook(name, array):
            seen.append(name)
            return array

        ffn(rng.normal(0, 1, (2, 8)), hook=hook, prefix="layer0.ffn")
        assert seen == ["layer0.ffn.intermediate", "layer0.ffn.output"]

    def test_named_parameters_prefixed(self, rng):
        ffn = FeedForward(Linear(rng.normal(0, 1, (4, 8))), Linear(rng.normal(0, 1, (8, 4))))
        names = [n for n, _ in ffn.named_parameters()]
        assert "intermediate.weight" in names
        assert "output.bias" in names

    def test_set_parameter_routing(self, rng):
        ffn = FeedForward(Linear(rng.normal(0, 1, (4, 8))), Linear(rng.normal(0, 1, (8, 4))))
        ffn.set_parameter("output.weight", np.zeros((8, 4), dtype=np.float32))
        assert np.allclose(ffn.output.weight, 0.0)
        with pytest.raises(KeyError):
            ffn.set_parameter("unknown.weight", np.zeros((8, 4)))
