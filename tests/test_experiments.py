"""Tests for the scenario/campaign sweep engine."""

import pytest

from repro.accelerator.simulator import AcceleratorSimulator
from repro.accelerator.mokey_accel import mokey_design
from repro.accelerator.tensor_cores import tensor_cores_design
from repro.accelerator.workloads import model_workload
from repro.experiments import (
    ResultCache,
    Scenario,
    available_designs,
    build_design,
    expand_grid,
    register_design,
    run_campaign,
    run_scenario,
)

KB = 1024
MB = 1024 * 1024


class TestScenario:
    def test_frozen_and_hashable(self):
        a = Scenario(model="bert-base", task="mnli", buffer_bytes=256 * KB)
        b = Scenario(model="bert-base", task="mnli", buffer_bytes=256 * KB)
        assert a == b
        assert hash(a) == hash(b)
        with pytest.raises(Exception):
            a.model = "bert-large"

    def test_sequence_length_defaults_from_task(self):
        assert Scenario(task="squad").resolved_sequence_length == 384
        assert Scenario(task="mnli").resolved_sequence_length == 128
        assert Scenario(task="squad", sequence_length=512).resolved_sequence_length == 512

    def test_build_workload_threads_batch_size(self):
        workload = Scenario(model="bert-base", task="mnli", batch_size=4).build_workload()
        assert workload.batch_size == 4
        assert workload.name.endswith("/bs4")
        single = Scenario(model="bert-base", task="mnli").build_workload()
        assert workload.total_macs == 4 * single.total_macs

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            Scenario(batch_size=0).build_workload()
        with pytest.raises(ValueError):
            Scenario(sequence_length=0).build_workload()

    def test_build_design_from_registry(self):
        assert Scenario(design="mokey").build_design().datapath == "mokey"
        with pytest.raises(ValueError):
            Scenario(design="does-not-exist").build_design()

    def test_scheme_override_reparameterises_design(self):
        design = Scenario(design="tensor-cores", scheme="mokey").build_design()
        assert design.datapath == "mokey"
        assert design.num_units == tensor_cores_design().num_units
        assert design.weight_bits_offchip == pytest.approx(4.4)

    def test_design_registry_contents(self):
        names = available_designs()
        for expected in (
            "tensor-cores",
            "gobo",
            "mokey",
            "tensor-cores+mokey-oc",
            "tensor-cores+mokey-oc+on",
        ):
            assert expected in names
        assert build_design("gobo").name == "gobo"

    def test_register_design_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_design("mokey", mokey_design)


class TestExpandGrid:
    def test_cross_product_counts(self):
        scenarios = expand_grid(
            models=("bert-base", "bert-large"),
            tasks=("mnli",),
            designs=("tensor-cores", "mokey"),
            buffer_bytes=(256 * KB, 1 * MB),
            batch_sizes=(1, 8),
        )
        assert len(scenarios) == 2 * 2 * 2 * 2
        assert len(set(scenarios)) == len(scenarios)

    def test_workload_specs_override_cross_product(self):
        scenarios = expand_grid(
            models=("ignored",),
            workloads=[("bert-base", "mnli", None), ("bert-large", "squad", None)],
            designs=("mokey",),
        )
        assert len(scenarios) == 2
        assert {s.model for s in scenarios} == {"bert-base", "bert-large"}


class TestCampaign:
    def test_records_match_direct_simulation(self):
        scenarios = expand_grid(
            workloads=[("bert-base", "mnli", None)],
            designs=("mokey",),
            buffer_bytes=(512 * KB,),
        )
        campaign = run_campaign(scenarios)
        direct = AcceleratorSimulator(mokey_design()).simulate(
            model_workload("bert-base", "mnli"), 512 * KB
        )
        result = campaign.result(design="mokey", buffer_bytes=512 * KB)
        assert result.total_cycles == direct.total_cycles
        assert result.energy.total == direct.energy.total
        assert result.traffic_bytes == direct.traffic_bytes

    def test_record_order_follows_input(self):
        scenarios = expand_grid(
            workloads=[("bert-base", "mnli", None)],
            designs=("tensor-cores", "mokey"),
            buffer_bytes=(256 * KB, 512 * KB),
        )
        campaign = run_campaign(scenarios)
        assert [r.scenario for r in campaign] == scenarios

    def test_cache_hits_on_second_campaign(self):
        cache = ResultCache()
        scenarios = expand_grid(
            workloads=[("bert-base", "mnli", None)],
            designs=("tensor-cores", "mokey"),
            buffer_bytes=(256 * KB, 512 * KB),
        )
        first = run_campaign(scenarios, cache=cache)
        assert not any(record.cached for record in first)
        assert cache.misses == len(scenarios)
        assert cache.hits == 0

        second = run_campaign(scenarios, cache=cache)
        assert all(record.cached for record in second)
        assert cache.hits == len(scenarios)
        assert cache.misses == len(scenarios)  # unchanged
        for a, b in zip(first, second):
            assert a.result is b.result  # the very same object, not a re-run

    def test_duplicate_scenarios_simulated_once(self):
        cache = ResultCache()
        scenario = Scenario(model="bert-base", task="mnli", design="mokey")
        campaign = run_campaign([scenario, scenario, scenario], cache=cache)
        assert len(campaign) == 3
        assert len(cache) == 1
        results = {id(record.result) for record in campaign}
        assert len(results) == 1
        # Only the first occurrence was actually simulated.
        assert [record.cached for record in campaign] == [False, True, True]

    def test_cache_clear_resets_statistics(self):
        cache = ResultCache()
        run_campaign([Scenario()], cache=cache)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_filter_and_to_dicts(self):
        scenarios = expand_grid(
            workloads=[("bert-base", "mnli", None)],
            designs=("tensor-cores", "mokey"),
            buffer_bytes=(256 * KB,),
        )
        campaign = run_campaign(scenarios)
        mokey_only = campaign.filter(design="mokey")
        assert len(mokey_only) == 1
        row = mokey_only.to_dicts()[0]
        for key in ("model", "task", "design", "buffer_bytes", "total_cycles",
                    "traffic_bytes", "energy_joules", "area_mm2", "workload"):
            assert key in row

    def test_result_requires_unique_match(self):
        scenarios = expand_grid(
            workloads=[("bert-base", "mnli", None)],
            designs=("tensor-cores", "mokey"),
            buffer_bytes=(256 * KB,),
        )
        campaign = run_campaign(scenarios)
        with pytest.raises(LookupError):
            campaign.result(buffer_bytes=256 * KB)  # two designs match
        with pytest.raises(LookupError):
            campaign.result(design="gobo")  # none match

    def test_shared_cache_with_simulator_factory_rejected(self):
        cache = ResultCache()
        with pytest.raises(ValueError):
            run_campaign(
                [Scenario()],
                cache=cache,
                simulator_factory=lambda s: AcceleratorSimulator(s.build_design()),
            )

    def test_with_batch_size_relabels_cleanly(self):
        batched = model_workload("bert-base", "mnli", batch_size=2)
        rebatched = batched.with_batch_size(4)
        assert rebatched.name.endswith("/bs4")
        assert "/bs2" not in rebatched.name
        assert rebatched.with_batch_size(1).name == model_workload("bert-base", "mnli").name

    def test_run_scenario_standalone(self):
        result = run_scenario(Scenario(design="gobo", buffer_bytes=1 * MB))
        assert result.design_name == "gobo"
        assert result.total_cycles > 0


class TestBatchScalingInvariants:
    @pytest.fixture(scope="class")
    def batch_results(self):
        cache = ResultCache()
        scenarios = expand_grid(
            workloads=[("bert-base", "mnli", None)],
            designs=("tensor-cores", "mokey"),
            buffer_bytes=(256 * KB, 4 * MB),
            batch_sizes=(1, 2),
        )
        return run_campaign(scenarios, cache=cache)

    @pytest.mark.parametrize("design", ["tensor-cores", "mokey"])
    @pytest.mark.parametrize("size", [256 * KB, 4 * MB])
    def test_batch2_doubles_compute(self, batch_results, design, size):
        r1 = batch_results.result(design=design, buffer_bytes=size, batch_size=1)
        r2 = batch_results.result(design=design, buffer_bytes=size, batch_size=2)
        assert r2.compute_cycles == pytest.approx(2.0 * r1.compute_cycles, rel=1e-12)

    @pytest.mark.parametrize("design", ["tensor-cores", "mokey"])
    @pytest.mark.parametrize("size", [256 * KB, 4 * MB])
    def test_batch2_traffic_amortises_weights(self, batch_results, design, size):
        r1 = batch_results.result(design=design, buffer_bytes=size, batch_size=1)
        r2 = batch_results.result(design=design, buffer_bytes=size, batch_size=2)
        # Weights amortise over the batch: traffic grows, but never doubles.
        assert r1.traffic_bytes <= r2.traffic_bytes <= 2.0 * r1.traffic_bytes + 1e-6

    @pytest.mark.parametrize("design", ["tensor-cores", "mokey"])
    @pytest.mark.parametrize("size", [256 * KB, 4 * MB])
    def test_batch2_total_cycles_bounded(self, batch_results, design, size):
        r1 = batch_results.result(design=design, buffer_bytes=size, batch_size=1)
        r2 = batch_results.result(design=design, buffer_bytes=size, batch_size=2)
        assert r1.total_cycles < r2.total_cycles <= 2.1 * r1.total_cycles
