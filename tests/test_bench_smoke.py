"""Benchmark smoke test: every ``benchmarks/bench_*.py`` runs on a tiny grid.

The paper-figure benchmarks are not part of the default unit run
(``testpaths = tests``), so API drift in the packages they import would
otherwise go unnoticed until someone regenerates the figures.  This test
— marked ``bench_smoke`` so CI can select it with ``-m bench_smoke`` —
runs the whole benchmark suite in a subprocess with ``REPRO_BENCH_TINY=1``
(see ``benchmarks/conftest.py``), which shrinks the sample-heavy
functional experiments while keeping every grid and assertion intact.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
BENCH_FILES = sorted(path.name for path in BENCH_DIR.glob("bench_*.py"))


@pytest.mark.bench_smoke
def test_all_benchmarks_pass_on_tiny_grid():
    pytest.importorskip("pytest_benchmark")
    assert len(BENCH_FILES) >= 18  # the suite exists and was discovered

    env = dict(os.environ)
    env["REPRO_BENCH_TINY"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [
            sys.executable, "-m", "pytest", str(BENCH_DIR),
            "-v", "--no-header", "-p", "no:cacheprovider",
            "--benchmark-disable-gc",
        ],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        env=env,
        timeout=600,
    )
    tail = "\n".join((proc.stdout + proc.stderr).splitlines()[-40:])
    assert proc.returncode == 0, f"tiny benchmark run failed:\n{tail}"
    # Every bench entry point actually executed (none silently skipped).
    for name in BENCH_FILES:
        assert name in proc.stdout, f"{name} was not collected:\n{tail}"
    assert " PASSED" in proc.stdout
    assert "FAILED" not in proc.stdout and "ERROR" not in proc.stdout
