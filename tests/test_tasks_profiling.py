"""Tests for synthetic tasks, metrics, profiling and tensor bookkeeping."""

import numpy as np
import pytest

from repro.transformer.profiling import ActivationProfiler, TensorStatistics, profile_weights
from repro.transformer.tasks import (
    accuracy,
    evaluate,
    generate_inputs,
    label_with_model,
    span_f1,
    spearman_correlation,
)
from repro.transformer.tensors import ActivationRecorder, NamedTensor, TensorRegistry


class TestMetrics:
    def test_accuracy_basic(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 0])) == pytest.approx(200 / 3)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))

    def test_accuracy_empty(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_spearman_perfect_monotonic(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_correlation(x, x ** 3) == pytest.approx(100.0)

    def test_spearman_anticorrelated(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_correlation(x, -x) == pytest.approx(-100.0)

    def test_spearman_with_ties(self):
        x = np.array([1.0, 1.0, 2.0, 3.0])
        y = np.array([1.0, 1.0, 2.0, 3.0])
        assert spearman_correlation(x, y) == pytest.approx(100.0)

    def test_spearman_constant_inputs(self):
        assert spearman_correlation(np.ones(4), np.ones(4)) == pytest.approx(100.0)

    def test_spearman_matches_scipy(self, rng):
        from scipy import stats

        x = rng.normal(0, 1, 50)
        y = x + rng.normal(0, 0.5, 50)
        ours = spearman_correlation(x, y)
        reference = stats.spearmanr(x, y).statistic * 100
        assert ours == pytest.approx(reference, abs=1e-6)

    def test_span_f1_exact_match(self):
        assert span_f1(np.array([[2, 5]]), np.array([[2, 5]])) == pytest.approx(100.0)

    def test_span_f1_no_overlap(self):
        assert span_f1(np.array([[0, 1]]), np.array([[5, 8]])) == pytest.approx(0.0)

    def test_span_f1_partial_overlap(self):
        # predicted [2,5] (4 tokens) vs reference [4,7] (4 tokens): overlap 2.
        f1 = span_f1(np.array([[2, 5]]), np.array([[4, 7]]))
        assert f1 == pytest.approx(50.0)


class TestDatasets:
    def test_generate_inputs_shapes(self):
        data = generate_inputs(100, 16, 8, "classification", seed=1)
        assert data.token_ids.shape == (8, 16)
        assert data.segment_ids.shape == (8, 16)
        assert data.attention_mask.shape == (8, 16)
        assert data.labels is None

    def test_generate_inputs_unknown_task(self):
        with pytest.raises(ValueError):
            generate_inputs(100, 16, 8, "summarisation")

    def test_label_with_model_classification(self, tiny_model, tiny_config):
        data = generate_inputs(tiny_config.vocab_size, 12, 6, "classification", seed=2)
        labelled = label_with_model(tiny_model, data)
        assert labelled.labels.shape == (6,)
        assert set(np.unique(labelled.labels)).issubset({0, 1, 2})

    def test_label_with_model_qa_spans_ordered(self, tiny_config):
        from repro.transformer.model_zoo import build_model

        model = build_model(tiny_config, task="qa", seed=4)
        data = generate_inputs(tiny_config.vocab_size, 12, 6, "qa", seed=2)
        labelled = label_with_model(model, data)
        assert labelled.labels.shape == (6, 2)
        assert np.all(labelled.labels[:, 1] >= labelled.labels[:, 0])

    def test_evaluate_requires_labels(self, tiny_model, tiny_config):
        data = generate_inputs(tiny_config.vocab_size, 12, 4, seed=3)
        with pytest.raises(ValueError):
            evaluate(tiny_model, data)

    def test_subset(self, tiny_dataset):
        subset = tiny_dataset.subset(np.array([0, 2, 4]))
        assert subset.num_samples == 3
        assert subset.labels.shape[0] == 3


class TestProfiling:
    def test_streaming_statistics_match_numpy(self, rng):
        stats = TensorStatistics("x")
        chunks = [rng.normal(2, 3, 100) for _ in range(5)]
        for chunk in chunks:
            stats.update(chunk)
        values = np.concatenate(chunks)
        assert stats.count == values.size
        assert stats.mean == pytest.approx(values.mean(), rel=1e-9)
        assert stats.std == pytest.approx(values.std(), rel=1e-6)
        assert stats.minimum == pytest.approx(values.min())
        assert stats.maximum == pytest.approx(values.max())

    def test_empty_update_ignored(self):
        stats = TensorStatistics("x")
        stats.update(np.empty(0))
        assert stats.count == 0
        assert stats.std == 0.0

    def test_profiler_collects_all_activations(self, tiny_model, tiny_dataset):
        profiler = ActivationProfiler()
        profiler.profile(tiny_model, tiny_dataset, num_samples=8)
        assert len(profiler) > 10
        assert "encoder.0.attention.query" in profiler.names()
        stats = profiler["encoder.0.attention.query"]
        assert stats.count > 0
        assert stats.std > 0

    def test_profiler_does_not_change_outputs(self, tiny_model, tiny_dataset):
        plain = tiny_model(tiny_dataset.token_ids[:2], tiny_dataset.segment_ids[:2],
                           tiny_dataset.attention_mask[:2])
        hooked = tiny_model(tiny_dataset.token_ids[:2], tiny_dataset.segment_ids[:2],
                            tiny_dataset.attention_mask[:2], hook=ActivationProfiler())
        assert np.allclose(plain, hooked)

    def test_profile_weights(self, tiny_model):
        stats = profile_weights(tiny_model)
        assert set(stats) == set(tiny_model.weight_matrices())
        for entry in stats.values():
            assert entry.count > 0


class TestTensorRegistry:
    def test_register_and_query(self, rng):
        registry = TensorRegistry()
        registry.register("a.weight", rng.normal(0, 1, (4, 4)), role="weight")
        registry.register("a.out", rng.normal(0, 1, (4,)), role="activation")
        assert "a.weight" in registry
        assert len(registry) == 2
        assert registry.total_values("weight") == 16
        assert [t.name for t in registry.by_role("activation")] == ["a.out"]

    def test_invalid_role_rejected(self, rng):
        with pytest.raises(ValueError):
            NamedTensor("x", rng.normal(0, 1, 4), role="gradient")

    def test_recorder_subsamples(self, rng):
        recorder = ActivationRecorder(max_values_per_tensor=100, seed=1)
        recorder("big", rng.normal(0, 1, 10_000))
        assert recorder.concatenated()["big"].size == 100

    def test_recorder_concatenates_batches(self, rng):
        recorder = ActivationRecorder()
        recorder("x", rng.normal(0, 1, 10))
        recorder("x", rng.normal(0, 1, 5))
        assert recorder.concatenated()["x"].size == 15
        assert recorder.names() == ["x"]
