"""Tests for the accuracy-campaign subsystem (:mod:`repro.experiments.accuracy`).

Four guarantees the fidelity layer must give:

1. **Determinism** — same settings + scenario ⇒ bit-identical
   :class:`FidelityResult`, identical store digests, and serial/process
   executor equivalence (the accuracy extension of the store suite's
   executor property).
2. **Memoisation** — fidelity depends only on (model, task, scheme), so
   one quantization serves every seq/batch/buffer point of a grid and a
   second campaign over a shared store evaluates nothing.
3. **Round-trip** — fidelity results survive the store (including the
   upgrade of pre-accuracy hardware records) and ``to_dict``/``from_dict``.
4. **Fail-fast** — schemes without a numerics side raise
   :class:`UnsupportedSchemeError` before any simulation runs.
"""

import hashlib
import json

import pytest

from repro.experiments import (
    ArtifactStore,
    ResultCache,
    Scenario,
    ScenarioRecord,
    UnsupportedSchemeError,
    accuracy_key,
    accuracy_scheme_for,
    evaluate_fidelity,
    expand_grid,
    fidelity_digest,
    run_campaign,
    supported_accuracy_schemes,
    supports_accuracy,
)
from repro.experiments.accuracy import AccuracySettings, FidelityResult
from repro.schemes import QuantizationScheme, register_scheme
from repro.schemes.base import _REGISTRY as _SCHEME_REGISTRY

KB = 1024

# Reduced (but structurally identical) evaluation for fast tests; the
# default settings are exercised by the accuracy goldens and bench_table1.
TINY = AccuracySettings(
    pool_samples=16,
    profile_samples=4,
    classification_sequence_length=12,
    qa_sequence_length=16,
    golden_samples=3000,
    golden_repeats=1,
)


@pytest.fixture()
def compute_only_scheme():
    """A registered scheme with no accuracy-side numerics, cleaned up after."""

    class ComputeOnlyScheme(QuantizationScheme):
        name = "compute-only-test"

        def layer_compute(self, workload, design):  # pragma: no cover - never run
            raise NotImplementedError

    register_scheme(ComputeOnlyScheme(), replace=True)
    yield "compute-only-test"
    _SCHEME_REGISTRY.pop("compute-only-test", None)


class TestAccuracyKey:
    def test_scheme_override_wins(self):
        scenario = Scenario(design="tensor-cores", scheme="q8bert")
        assert accuracy_scheme_for(scenario) == "q8bert"

    def test_design_datapath_is_the_fallback(self):
        assert accuracy_scheme_for(Scenario(design="mokey")) == "mokey"
        assert accuracy_scheme_for(Scenario(design="tensor-cores")) == "fp16"
        assert accuracy_scheme_for(Scenario(design="gobo")) == "gobo"
        assert accuracy_scheme_for(Scenario(design="tensor-cores+mokey-oc")) == "mokey-oc"

    def test_key_ignores_hardware_axes(self):
        base = Scenario(model="bert-base", task="mnli", design="mokey")
        for variant in (
            Scenario(model="bert-base", task="mnli", design="mokey", sequence_length=64),
            Scenario(model="bert-base", task="mnli", design="mokey", batch_size=8),
            Scenario(model="bert-base", task="mnli", design="mokey", buffer_bytes=256 * KB),
            Scenario(model="bert-base", task="mnli", design="tensor-cores+mokey-oc+on"),
        ):
            if variant.design == base.design:
                assert accuracy_key(variant) == accuracy_key(base)
        # ... but not the numerics scheme.
        assert accuracy_key(Scenario(design="gobo")) != accuracy_key(base)

    def test_every_builtin_scheme_supports_accuracy(self):
        from repro.schemes import available_schemes

        for scheme in available_schemes():
            assert supports_accuracy(scheme), scheme
        assert not supports_accuracy("not-a-scheme")
        assert "mokey" in supported_accuracy_schemes()


class TestFidelityResult:
    def test_round_trips(self):
        result = FidelityResult(
            scheme="mokey",
            metric="accuracy",
            fp_score=100.0,
            weight_only_score=95.0,
            weight_activation_score=92.5,
            weight_outlier_fraction=0.013,
            activation_outlier_fraction=0.02,
            compression_ratio=7.5,
            eval_samples=40,
            seed=123,
        )
        assert FidelityResult.from_dict(result.to_dict()) == result
        assert fidelity_digest(FidelityResult.from_dict(result.to_dict())) == fidelity_digest(
            result
        )

    def test_from_dict_ignores_unknown_fields(self):
        data = FidelityResult(scheme="gobo").to_dict()
        data["future_field"] = {"nested": True}
        assert FidelityResult.from_dict(data).scheme == "gobo"

    def test_error_properties(self):
        result = FidelityResult(fp_score=100.0, weight_only_score=97.0)
        assert result.weight_only_error == pytest.approx(3.0)
        assert result.weight_activation_error is None
        result.weight_activation_score = 95.5
        assert result.weight_activation_error == pytest.approx(4.5)

    def test_none_weight_activation_round_trips(self):
        result = FidelityResult(scheme="fp16", weight_activation_score=None)
        rebuilt = FidelityResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt.weight_activation_score is None


class TestEvaluateFidelity:
    def test_unsupported_scheme_raises(self, compute_only_scheme):
        with pytest.raises(UnsupportedSchemeError):
            evaluate_fidelity("bert-base", "mnli", compute_only_scheme, settings=TINY)

    def test_unknown_task_and_model_raise(self):
        with pytest.raises(ValueError):
            evaluate_fidelity("bert-base", "sqaud", "mokey", settings=TINY)
        with pytest.raises(ValueError):
            evaluate_fidelity("bert-tiny", "mnli", "mokey", settings=TINY)

    def test_fp16_is_the_trivial_baseline(self):
        result = evaluate_fidelity("bert-base", "mnli", "fp16", settings=TINY)
        assert result.fp_score == pytest.approx(100.0)
        assert result.weight_only_score == pytest.approx(100.0)
        assert result.weight_activation_score is None
        assert result.compression_ratio == pytest.approx(2.0)

    def test_mokey_quantizes_weights_and_activations(self):
        result = evaluate_fidelity("bert-base", "mnli", "mokey", settings=TINY)
        assert result.metric == "accuracy"
        assert result.weight_activation_score is not None
        assert 0.0 < result.weight_outlier_fraction < 0.1
        assert result.compression_ratio > 6.0
        assert result.eval_samples == TINY.pool_samples - TINY.profile_samples

    def test_weights_only_schemes_report_no_activation_score(self):
        gobo = evaluate_fidelity("bert-base", "mnli", "gobo", settings=TINY)
        assert gobo.weight_activation_score is None
        q8bert = evaluate_fidelity("bert-base", "mnli", "q8bert", settings=TINY)
        assert q8bert.weight_activation_score is not None

    def test_deterministic_across_calls(self):
        first = evaluate_fidelity("bert-large", "stsb", "mokey", settings=TINY)
        second = evaluate_fidelity("bert-large", "stsb", "mokey", settings=TINY)
        assert first.to_dict() == second.to_dict()
        assert fidelity_digest(first) == fidelity_digest(second)


def accuracy_grid():
    """One (model, task, scheme) accuracy key spread over hardware axes."""
    return expand_grid(
        models=("bert-base",),
        tasks=("mnli",),
        sequence_lengths=(None, 64),
        batch_sizes=(1, 4),
        designs=("mokey",),
        buffer_bytes=(512 * KB,),
    )


class TestAccuracyCampaign:
    def test_one_quantization_serves_many_points(self):
        campaign = run_campaign(accuracy_grid(), with_accuracy=True, accuracy_settings=TINY)
        assert len(campaign) == 4
        assert campaign.fidelity_evaluated == 1
        digests = {fidelity_digest(record.fidelity) for record in campaign}
        assert len(digests) == 1

    def test_records_without_accuracy_have_no_fidelity(self):
        campaign = run_campaign(accuracy_grid()[:1])
        assert campaign.fidelity_evaluated == 0
        assert all(record.fidelity is None for record in campaign)
        assert "fp_score" not in campaign.to_dicts()[0]

    def test_rows_gain_fidelity_columns(self):
        campaign = run_campaign(accuracy_grid()[:1], with_accuracy=True, accuracy_settings=TINY)
        row = campaign.to_dicts()[0]
        assert row["fp_score"] == pytest.approx(100.0)
        assert "weight_only_err" in row and "weight_outlier_pct" in row

    def test_unsupported_scheme_fails_before_simulating(self, compute_only_scheme):
        grid = expand_grid(schemes=(compute_only_scheme,), designs=("mokey",))
        cache = ResultCache()
        with pytest.raises(UnsupportedSchemeError):
            run_campaign(grid, cache=cache, with_accuracy=True, accuracy_settings=TINY)
        assert cache.misses == 0 and len(cache) == 0

    def test_unknown_task_fails_before_simulating(self):
        # The hardware side tolerates unknown tasks (they default the
        # sequence length), but the accuracy side cannot label a dataset
        # for them — the campaign must reject the grid up front.
        grid = expand_grid(tasks=("not-a-task",), designs=("mokey",))
        cache = ResultCache()
        with pytest.raises(ValueError):
            run_campaign(grid, cache=cache, with_accuracy=True, accuracy_settings=TINY)
        assert cache.misses == 0 and len(cache) == 0

    def test_scenario_record_round_trips_with_fidelity(self):
        campaign = run_campaign(accuracy_grid()[:1], with_accuracy=True, accuracy_settings=TINY)
        record = campaign.records[0]
        rebuilt = ScenarioRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert rebuilt.fidelity == record.fidelity
        assert rebuilt.scenario == record.scenario


class TestAccuracyStore:
    def test_fidelity_round_trips_through_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        campaign = run_campaign(
            accuracy_grid(),
            cache=ResultCache(store=store),
            with_accuracy=True,
            accuracy_settings=TINY,
        )
        fresh = ArtifactStore(tmp_path / "store")
        for record in campaign:
            assert fresh.get_fidelity(record.scenario) == record.fidelity
        assert all(entry.fidelity is not None for entry in fresh.records())

    def test_second_campaign_simulates_and_evaluates_nothing(self, tmp_path):
        store_root = tmp_path / "store"
        run_campaign(
            accuracy_grid(),
            cache=ResultCache(store=ArtifactStore(store_root)),
            with_accuracy=True,
            accuracy_settings=TINY,
        )
        again = run_campaign(
            accuracy_grid(),
            cache=ResultCache(store=ArtifactStore(store_root)),
            with_accuracy=True,
            accuracy_settings=TINY,
        )
        assert again.simulated_count == 0
        assert again.fidelity_evaluated == 0
        assert all(record.fidelity is not None for record in again)

    def test_hardware_only_records_upgrade_in_place(self, tmp_path):
        store_root = tmp_path / "store"
        grid = accuracy_grid()[:2]
        first = run_campaign(grid, cache=ResultCache(store=ArtifactStore(store_root)))
        assert all(record.fidelity is None for record in first)

        upgraded = run_campaign(
            grid,
            cache=ResultCache(store=ArtifactStore(store_root)),
            with_accuracy=True,
            accuracy_settings=TINY,
        )
        assert upgraded.simulated_count == 0  # hardware came from the store
        assert upgraded.fidelity_evaluated == 1
        fresh = ArtifactStore(store_root)
        for scenario in grid:
            assert fresh.get_fidelity(scenario) is not None
            # The hardware result must be untouched by the upgrade.
            assert fresh.get(scenario) == first.result(
                model=scenario.model,
                sequence_length=scenario.sequence_length,
                batch_size=scenario.batch_size,
            )

    def test_upgrade_appends_rather_than_rewrites(self, tmp_path):
        store_root = tmp_path / "store"
        scenario = accuracy_grid()[0]
        run_campaign([scenario], cache=ResultCache(store=ArtifactStore(store_root)))
        run_campaign(
            [scenario],
            cache=ResultCache(store=ArtifactStore(store_root)),
            with_accuracy=True,
            accuracy_settings=TINY,
        )
        lines = (store_root / "records.jsonl").read_text().strip().splitlines()
        assert len(lines) == 2  # original + upgraded line under the same key
        assert "fidelity" not in json.loads(lines[0])
        assert json.loads(lines[1])["fidelity"]["scheme"] == "mokey"
        assert len(ArtifactStore(store_root)) == 1  # last line wins

    def test_different_settings_never_serve_stale_fidelity(self, tmp_path):
        store_root = tmp_path / "store"
        scenario = accuracy_grid()[0]
        first = run_campaign(
            [scenario],
            cache=ResultCache(store=ArtifactStore(store_root)),
            with_accuracy=True,
            accuracy_settings=TINY,
        )
        other_settings = AccuracySettings(
            pool_samples=TINY.pool_samples + 8,
            profile_samples=TINY.profile_samples,
            classification_sequence_length=TINY.classification_sequence_length,
            qa_sequence_length=TINY.qa_sequence_length,
            golden_samples=TINY.golden_samples,
            golden_repeats=TINY.golden_repeats,
        )
        second = run_campaign(
            [scenario],
            cache=ResultCache(store=ArtifactStore(store_root)),
            with_accuracy=True,
            accuracy_settings=other_settings,
        )
        # The store holds TINY's fidelity; a differently-parameterised run
        # must re-evaluate rather than silently serve it.
        assert second.fidelity_evaluated == 1
        first_f, second_f = first.records[0].fidelity, second.records[0].fidelity
        assert first_f.settings_digest != second_f.settings_digest
        assert second_f.eval_samples == (
            other_settings.pool_samples - other_settings.profile_samples
        )

    def test_same_seed_means_identical_store_digests(self, tmp_path):
        digests = []
        for name in ("a", "b"):
            run_campaign(
                accuracy_grid(),
                cache=ResultCache(store=ArtifactStore(tmp_path / name)),
                with_accuracy=True,
                accuracy_settings=TINY,
                executor="serial",
            )
            blob = (tmp_path / name / "records.jsonl").read_bytes()
            digests.append(hashlib.sha256(blob).hexdigest())
        assert digests[0] == digests[1]


class TestAccuracyExecutorEquivalence:
    def equivalence_grid(self):
        # Two accuracy keys so the process pool actually fans out.
        return expand_grid(
            models=("bert-base", "bert-large"),
            tasks=("mnli",),
            designs=("mokey",),
            buffer_bytes=(256 * KB, 512 * KB),
        )

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_matches_serial_bit_for_bit(self, executor):
        serial = run_campaign(
            self.equivalence_grid(),
            with_accuracy=True,
            accuracy_settings=TINY,
            executor="serial",
        )
        parallel = run_campaign(
            self.equivalence_grid(),
            with_accuracy=True,
            accuracy_settings=TINY,
            executor=executor,
            max_workers=2,
        )
        assert len(parallel) == len(serial)
        for expected, measured in zip(serial, parallel):
            assert measured.scenario == expected.scenario
            assert measured.result == expected.result
            assert measured.fidelity == expected.fidelity
            assert json.dumps(measured.fidelity.to_dict(), sort_keys=True) == json.dumps(
                expected.fidelity.to_dict(), sort_keys=True
            )
