"""End-to-end integration tests across the library layers.

These tests tie the pieces together the way the paper's evaluation does:
quantize a model with Mokey, check fidelity against the FP baseline,
verify the quantized tensors survive the off-chip memory container, and
confirm the accelerator-level conclusions follow from the same artefacts.
"""

import numpy as np
import pytest

from repro.accelerator.simulator import AcceleratorSimulator
from repro.accelerator.mokey_accel import mokey_design
from repro.accelerator.tensor_cores import tensor_cores_design
from repro.accelerator.workloads import model_workload
from repro.core.index_compute import index_domain_matmul
from repro.core.model_quantizer import MokeyModelQuantizer, QuantizationMode
from repro.memory.layout import pack_offchip, unpack_offchip
from repro.transformer.model_zoo import build_simulation_model
from repro.transformer.tasks import evaluate, generate_inputs, label_with_model


class TestEndToEndQuantizedInference:
    @pytest.fixture(scope="class")
    def pipeline(self, golden):
        model = build_simulation_model("bert-base", task="mnli", scale=16, max_layers=2, seed=8)
        inputs = generate_inputs(model.config.vocab_size, 24, 20, "classification", seed=13)
        dataset = label_with_model(model, inputs)
        quantizer = MokeyModelQuantizer(golden)
        bundle = quantizer.quantize(
            model,
            mode=QuantizationMode.WEIGHTS_AND_ACTIVATIONS,
            profiling_dataset=dataset.subset(np.arange(8)),
        )
        return model, dataset, bundle

    def test_quantized_model_tracks_fp_model(self, pipeline):
        model, dataset, bundle = pipeline
        fp_score = evaluate(model, dataset)
        weight_only_score = evaluate(bundle.model, dataset)
        full_score = evaluate(bundle.model, dataset, hook=bundle.activation_hook())
        assert fp_score == pytest.approx(100.0)
        assert weight_only_score >= 70.0
        assert full_score >= 60.0

    def test_outlier_fractions_in_expected_ranges(self, pipeline):
        _, dataset, bundle = pipeline
        hook = bundle.activation_hook()
        evaluate(bundle.model, dataset, hook=hook)
        assert 0.001 < bundle.report.weight_outlier_fraction < 0.06
        assert hook.outlier_fraction < 0.25

    def test_quantized_weights_survive_memory_container(self, pipeline):
        _, _, bundle = pipeline
        name, quantized = next(iter(bundle.quantized_weights.items()))
        container = pack_offchip(quantized.encoded)
        restored = unpack_offchip(container)
        # Rebuild a QuantizedTensor from the unpacked stream and compare the
        # dequantized values against the original reconstruction.
        from repro.core.quantizer import QuantizedTensor

        rebuilt = QuantizedTensor(
            name=name,
            shape=(quantized.size,),
            encoded=restored,
            dictionary=quantized.dictionary,
        )
        assert np.allclose(
            rebuilt.dequantize(), quantized.dequantize().reshape(-1), atol=1e-6
        )

    def test_layer_matmul_in_index_domain_matches_dequantized_layer(self, pipeline, golden):
        """A real layer's GEMM computed purely on indexes matches decoding."""
        from repro.core.quantizer import MokeyQuantizer

        model, dataset, bundle = pipeline
        quantizer = MokeyQuantizer(golden)
        weight = model.weight_matrices()["encoder.0.attention.query.weight"][:24, :6]
        activations = np.asarray(
            model.embeddings(dataset.token_ids[:1, :8], dataset.segment_ids[:1, :8])
        )[0, :, :24]
        aq = quantizer.quantize(activations, "act")
        wq = quantizer.quantize(weight, "w")
        result, stats = index_domain_matmul(aq, wq)
        a_dec = aq.dictionary.decode(aq.encoded, apply_fixed_point=False).reshape(activations.shape)
        w_dec = wq.dictionary.decode(wq.encoded, apply_fixed_point=False).reshape(weight.shape)
        assert np.allclose(result, a_dec @ w_dec, rtol=1e-8, atol=1e-8)
        assert stats.total_pairs == activations.shape[0] * 24 * 6


class TestEndToEndAcceleratorStory:
    def test_headline_claims_hold_together(self):
        """The paper's headline: Mokey is faster and far more energy
        efficient than the FP16 baseline, with a smaller chip, across
        buffer sizes — and the advantage is largest when buffers are small."""
        wl = model_workload("bert-large", "squad")
        tc = AcceleratorSimulator(tensor_cores_design())
        mk = AcceleratorSimulator(mokey_design())
        small_tc, small_mk = tc.simulate(wl, 256 * 1024), mk.simulate(wl, 256 * 1024)
        large_tc, large_mk = tc.simulate(wl, 4 << 20), mk.simulate(wl, 4 << 20)

        assert small_mk.speedup_over(small_tc) > 2.0
        assert large_mk.speedup_over(large_tc) > 1.0
        assert small_mk.speedup_over(small_tc) > large_mk.speedup_over(large_tc)
        assert small_mk.energy_efficiency_over(small_tc) > 2.0
        assert small_mk.area.total < small_tc.area.total
        assert small_mk.traffic_bytes < small_tc.traffic_bytes / 2
