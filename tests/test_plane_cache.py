"""The incremental indicator-plane cache (ISSUE 9) — bit-identity locks.

The plane cache and the KV-cache plane slabs are *pure execution
strategies*: they may only move wall time, never values, outlier masks
or operation counts.  This file locks that contract three ways:

1. hypothesis property tests that an incrementally-extended
   :class:`~repro.transformer.index_model._PlaneSlab` yields plane
   arrays byte-identical to a full rebuild over the concatenated cache,
   for any chunking of appends, any head slice, and either orientation;
2. hypothesis property tests that a plane-cached decode run equals the
   uncached oracle exactly — outputs ``array_equal``, stats ``==`` —
   across prompt lengths, decode depths and dictionary fits, plus fixed
   parametrised cases across the scalar / vectorized / torch engines;
3. unit tests of the :class:`~repro.core.index_compute.PlaneCache`
   itself — LRU eviction under a byte budget, counters, the scoped
   override, and the digest/attached resolution order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index_compute import (
    PlaneCache,
    VectorizedIndexDomainEngine,
    get_plane_cache,
    index_domain_matmul,
    set_plane_cache,
    use_plane_cache,
)
from repro.transformer.config import TransformerConfig
from repro.transformer.index_model import (
    MultiStreamDecoder,
    _concat_quantized,
    _PlaneSlab,
    _slice_quantized,
    execute_decoder,
)

MICRO_DECODER = TransformerConfig(
    name="gpt-micro-planes",
    num_layers=1,
    hidden_size=32,
    num_heads=4,
    intermediate_size=64,
    vocab_size=128,
    max_position_embeddings=64,
)


def _kv_rows(rng, rows, width):
    values = rng.normal(0.1, 1.2, (rows, width))
    flat = values.ravel()
    picks = rng.choice(flat.size, max(1, flat.size // 25), replace=False)
    flat[picks] = rng.choice([-1.0, 1.0], picks.size) * 30.0
    return values


def _slab_and_tensor(quantizer, rng, chunks, width):
    """Grow a KV-style tensor chunk by chunk, extending a slab each time."""
    tensor = quantizer.quantize(_kv_rows(rng, chunks[0], width), "kv.prop")
    slab = _PlaneSlab(tensor.dictionary, width)
    slab.extend(tensor)
    for rows in chunks[1:]:
        appended = quantizer.quantize(
            _kv_rows(rng, rows, width), tensor.name, dictionary=tensor.dictionary
        )
        tensor = _concat_quantized(tensor, appended)
        slab.extend(tensor)
    return slab, tensor


class TestSlabEqualsRebuild:
    """Incremental plane append == full plane rebuild, byte for byte."""

    @given(
        chunks=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=5),
        seed=st.integers(min_value=0, max_value=2**16),
        transpose=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_plane_arrays_bit_identical(self, quantizer, chunks, seed, transpose):
        width = 8
        rng = np.random.default_rng(seed)
        slab, tensor = _slab_and_tensor(quantizer, rng, chunks, width)
        columns = slice(2, 6)  # one "head" of the hidden width
        sliced = _slice_quantized(tensor, columns, transpose=transpose)
        engine = VectorizedIndexDomainEngine(tensor.dictionary, tensor.dictionary)
        rebuilt = engine._build_plane_set(
            sliced, "rhs", sliced.shape, sliced.dictionary
        )
        incremental = slab.plane_set(columns, transpose=transpose)
        for name in ("p", "g", "out", "dec"):
            ours, oracle = getattr(incremental, name), getattr(rebuilt, name)
            assert ours.dtype == oracle.dtype
            assert ours.shape == oracle.shape
            assert np.array_equal(ours, oracle), f"plane {name} diverged"
        assert np.array_equal(incremental.stacked, rebuilt.stacked)

    @given(
        chunks=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_attached_planes_gemm_bit_identical(self, quantizer, chunks, seed):
        """A GEMM against slab planes == the same GEMM against a rebuild."""
        width = 8
        rng = np.random.default_rng(seed)
        slab, tensor = _slab_and_tensor(quantizer, rng, chunks, width)
        columns = slice(0, 4)
        act = quantizer.quantize(rng.normal(0.2, 1.0, (3, 4)), "q.prop")

        with use_plane_cache(None):
            plain = _slice_quantized(tensor, columns, transpose=True)
            oracle_values, oracle_stats = index_domain_matmul(act, plain)
            attached = _slice_quantized(tensor, columns, transpose=True)
            attached._plane_sets = {
                "rhs": slab.plane_set(columns, transpose=True)
            }
            cached_values, cached_stats = index_domain_matmul(act, attached)
        assert np.array_equal(cached_values, oracle_values)
        assert cached_stats == oracle_stats

    def test_slab_rejects_shrunken_tensor(self, quantizer):
        rng = np.random.default_rng(3)
        slab, tensor = _slab_and_tensor(quantizer, rng, [4], 8)
        shorter = _slice_quantized(tensor, slice(0, 8))  # columns, same rows
        slab.extend(shorter)  # same row count: no-op
        with pytest.raises(ValueError):
            smaller = quantizer.quantize(_kv_rows(rng, 2, 8), "kv.small")
            slab.extend(smaller)


class TestDecodeBitIdentity:
    """Plane-cached decode == uncached decode, across fits and engines."""

    @given(
        prompt_length=st.integers(min_value=1, max_value=5),
        decode_tokens=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=10, deadline=None)
    def test_cached_decode_equals_uncached(
        self, quantizer, prompt_length, decode_tokens, seed
    ):
        kwargs = dict(
            prompt_length=prompt_length,
            decode_tokens=decode_tokens,
            quantizer=quantizer,
            seed=seed,
        )
        cached = execute_decoder(MICRO_DECODER, **kwargs)
        uncached = execute_decoder(MICRO_DECODER, plane_caching=False, **kwargs)
        assert np.array_equal(cached.outputs, uncached.outputs)
        assert cached.stats == uncached.stats
        assert cached.output_rms_error == uncached.output_rms_error
        assert uncached.plane_cache is None

    @pytest.mark.parametrize("engine", ["scalar", "vectorized", "torch"])
    def test_cached_decode_equals_uncached_per_engine(self, quantizer, engine):
        if engine == "torch":
            pytest.importorskip("torch")
        kwargs = dict(
            prompt_length=3,
            decode_tokens=2,
            quantizer=quantizer,
            engine=engine,
            device="cpu" if engine == "torch" else None,
        )
        cached = execute_decoder(MICRO_DECODER, **kwargs)
        uncached = execute_decoder(MICRO_DECODER, plane_caching=False, **kwargs)
        assert np.array_equal(cached.outputs, uncached.outputs)
        assert cached.stats == uncached.stats

    def test_multi_stream_stream0_matches_solo_decoder(self, quantizer):
        solo = execute_decoder(
            MICRO_DECODER, prompt_length=4, decode_tokens=2, quantizer=quantizer
        )
        multi = MultiStreamDecoder(
            MICRO_DECODER, num_streams=3, quantizer=quantizer
        ).run(prompt_length=4, decode_tokens=2)
        assert multi.outputs is not None and len(multi.outputs) == 3
        assert np.allclose(multi.outputs[0], solo.outputs, rtol=1e-9, atol=1e-9)
        assert multi.tokens_per_second > 0
        assert multi.output_rms_error < 0.5


class TestPlaneCacheUnit:
    def _plane_set(self, quantizer, seed=0, rows=6, cols=4):
        rng = np.random.default_rng(seed)
        tensor = quantizer.quantize(rng.normal(0, 0.5, (rows, cols)), f"w.{seed}")
        engine = VectorizedIndexDomainEngine(tensor.dictionary, tensor.dictionary)
        return engine._build_plane_set(tensor, "rhs", tensor.shape, tensor.dictionary)

    def test_lru_eviction_under_byte_budget(self, quantizer):
        sets = [self._plane_set(quantizer, seed=s) for s in range(3)]
        budget = sets[0].nbytes * 2 + sets[1].nbytes // 2  # fits two, not three
        cache = PlaneCache(max_bytes=budget)
        for s, plane_set in enumerate(sets):
            cache.put((f"digest{s}", "rhs"), plane_set)
        assert len(cache) <= 2
        assert cache.stats().evictions >= 1
        # The oldest entry went first.
        assert cache.get(("digest0", "rhs")) is None
        assert cache.get(("digest2", "rhs")) is sets[2]
        assert cache.bytes_cached <= budget

    def test_counters_and_hit_rate(self, quantizer):
        cache = PlaneCache(max_bytes=1 << 30)
        plane_set = self._plane_set(quantizer)
        assert cache.get(("d", "rhs")) is None  # miss
        cache.put(("d", "rhs"), plane_set)
        assert cache.get(("d", "rhs")) is plane_set  # hit
        cache.note_attached_hit()
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.attached_hits) == (1, 1, 1)
        assert stats.hit_rate == pytest.approx(2 / 3)
        delta = cache.stats().minus(stats)
        assert delta.hits == 0 and delta.entries == stats.entries

    def test_zero_budget_caches_nothing(self, quantizer):
        cache = PlaneCache(max_bytes=0)
        cache.put(("d", "rhs"), self._plane_set(quantizer))
        assert len(cache) == 0 and cache.bytes_cached == 0

    def test_use_plane_cache_restores_previous(self):
        original = get_plane_cache()
        try:
            inner = PlaneCache(max_bytes=1 << 20)
            with use_plane_cache(None):
                assert get_plane_cache() is None
                with use_plane_cache(inner):
                    assert get_plane_cache() is inner
                assert get_plane_cache() is None
            assert get_plane_cache() is original
        finally:
            set_plane_cache(original)

    def test_digest_cache_serves_equal_content_fresh_instance(self, quantizer):
        """Two quantizations of the same values share cached weight planes."""
        rng = np.random.default_rng(11)
        values = rng.normal(0, 0.4, (5, 6))
        act = quantizer.quantize(rng.normal(0, 1.0, (3, 5)), "a")
        first = quantizer.quantize(values, "w")
        second = quantizer.quantize(values, "w")
        assert first is not second
        assert first.content_digest() == second.content_digest()
        cache = PlaneCache(max_bytes=1 << 30)
        with use_plane_cache(cache):
            one_values, _ = index_domain_matmul(act, first)
            two_values, _ = index_domain_matmul(act, second)
        assert np.array_equal(one_values, two_values)
        stats = cache.stats()
        assert stats.hits >= 1  # the second GEMM reused the first's planes

    def test_attached_planes_with_wrong_fit_are_rebuilt(self, quantizer):
        """A stale attachment (mismatched fit key) must not be trusted."""
        rng = np.random.default_rng(13)
        act = quantizer.quantize(rng.normal(0, 1.0, (2, 4)), "a")
        wgt = quantizer.quantize(rng.normal(0, 0.3, (4, 3)), "w")
        engine = VectorizedIndexDomainEngine(act.dictionary, wgt.dictionary)
        good = engine._build_plane_set(wgt, "rhs", wgt.shape, wgt.dictionary)
        with use_plane_cache(None):
            oracle_values, oracle_stats = index_domain_matmul(act, wgt)
            bogus = type(good)(
                p=good.p.copy(),
                g=good.g.copy(),
                out=good.out.copy(),
                role="rhs",
                fit_key=(-1.0, -1.0, 1),  # no real fit looks like this
                dec=good.dec.copy(),
            )
            wgt._plane_sets = {"rhs": bogus}
            values, stats = index_domain_matmul(act, wgt)
        del wgt._plane_sets
        assert np.array_equal(values, oracle_values)
        assert stats == oracle_stats
