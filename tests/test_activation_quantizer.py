"""Tests for the output-activation quantizer (paper Fig. 7)."""

import numpy as np
import pytest

from repro.core.activation_quantizer import OutputActivationQuantizer


class TestOutputQuantizer:
    def test_functional_equivalence_with_dictionary_encode(self, quantizer, rng):
        values = rng.normal(1.0, 2.0, 512)
        dictionary = quantizer.fit_dictionary("out", values)
        unit = OutputActivationQuantizer(dictionary)
        quantized, _ = unit.quantize(values)
        direct = dictionary.encode(dictionary.fixed_point.quantize(values))
        assert np.array_equal(quantized.encoded.gaussian_index, direct.gaussian_index)
        assert np.array_equal(quantized.encoded.is_outlier, direct.is_outlier)

    def test_nearest_centroid_property(self, quantizer, rng):
        """Every reconstructed value is the nearest centroid to its input."""
        values = rng.normal(0.0, 1.5, 300)
        dictionary = quantizer.fit_dictionary("out", values)
        unit = OutputActivationQuantizer(dictionary)
        quantized, _ = unit.quantize(values)
        recon = quantized.dequantize()
        centroids = dictionary.all_centroids()
        for v, r in zip(dictionary.fixed_point.quantize(values), recon):
            best = centroids[np.argmin(np.abs(centroids - v))]
            assert abs(r - v) <= abs(best - v) + 2 * dictionary.fixed_point.scale

    def test_comparator_count_matches_dictionary_size(self, quantizer, rng):
        values = rng.normal(0, 1, 100)
        dictionary = quantizer.fit_dictionary("out", values)
        unit = OutputActivationQuantizer(dictionary)
        assert unit.num_comparators == dictionary.all_centroids().size

    def test_stats_scale_with_values(self, quantizer, rng):
        values = rng.normal(0, 1, 256)
        dictionary = quantizer.fit_dictionary("out", values)
        unit = OutputActivationQuantizer(dictionary)
        _, stats = unit.quantize(values)
        assert stats.values == 256
        assert stats.comparisons == 256 * (unit.num_comparators + 1)
        assert stats.subtractions == 512

    def test_stats_merge(self, quantizer, rng):
        values = rng.normal(0, 1, 64)
        dictionary = quantizer.fit_dictionary("out", values)
        unit = OutputActivationQuantizer(dictionary)
        _, s1 = unit.quantize(values)
        _, s2 = unit.quantize(values)
        s1.merge(s2)
        assert s1.values == 128

    def test_round_trip_error_reasonable(self, quantizer, rng):
        values = rng.normal(2.0, 3.0, 2048)
        dictionary = quantizer.fit_dictionary("out", values)
        unit = OutputActivationQuantizer(dictionary)
        assert unit.round_trip_error(values) < 0.35 * np.abs(values).mean() + 0.2

    def test_preserves_shape(self, quantizer, rng):
        values = rng.normal(0, 1, (4, 8, 16))
        dictionary = quantizer.fit_dictionary("out", values)
        unit = OutputActivationQuantizer(dictionary)
        quantized, _ = unit.quantize(values)
        assert quantized.dequantize().shape == (4, 8, 16)
