"""Shared fixtures for the test suite.

The Golden Dictionary generation over 50,000 samples takes a few seconds,
so the suite shares smaller (but structurally identical) session-scoped
fixtures: a reduced-sample Golden Dictionary, a small transformer model
and a matching synthetic dataset.

The suite's two dominant hotspots are repeated fidelity evaluations of
the same ``(model, task, scheme)`` keys under identical settings (the CLI
``table1`` tests and the accuracy goldens both sweep the paper's eight
Table I rows): :func:`_fidelity_session_cache` memoises
``evaluate_fidelity`` for the whole session so each key is computed once
per run.  Correct because the evaluation is deterministic in (key,
settings) — a guarantee still locked independently by the
process-executor equivalence tests (pool workers bypass the in-process
memo) and the accuracy goldens.
"""

from __future__ import annotations

import copy
import threading

import numpy as np
import pytest

from repro.core.golden_dictionary import GoldenDictionary, generate_golden_dictionary
from repro.core.quantizer import MokeyQuantizer
from repro.transformer.config import TransformerConfig
from repro.transformer.model_zoo import build_model
from repro.transformer.tasks import generate_inputs, label_with_model


@pytest.fixture(scope="session", autouse=True)
def _fidelity_session_cache():
    """Compute each (model, task, scheme, settings) fidelity once per run."""
    from repro.experiments import accuracy, campaign

    real = accuracy.evaluate_fidelity
    memo: dict = {}
    lock = threading.Lock()

    def cached(model, task, scheme, settings=None):
        digest = (settings or accuracy.DEFAULT_ACCURACY_SETTINGS).digest()
        key = (model, task, scheme, digest)
        with lock:
            hit = memo.get(key)
        if hit is None:
            hit = real(model, task, scheme, settings=settings)
            with lock:
                memo[key] = hit
        # Each caller gets an independent instance so one test mutating
        # its result cannot contaminate another.
        return copy.deepcopy(hit)

    accuracy.evaluate_fidelity = cached
    campaign.evaluate_fidelity = cached
    try:
        yield
    finally:
        accuracy.evaluate_fidelity = real
        campaign.evaluate_fidelity = real


@pytest.fixture(scope="session")
def golden() -> GoldenDictionary:
    """A Golden Dictionary generated from a reduced sample count."""
    return generate_golden_dictionary(num_samples=8000, num_repeats=2, seed=7)


@pytest.fixture(scope="session")
def quantizer(golden) -> MokeyQuantizer:
    return MokeyQuantizer(golden)


@pytest.fixture(scope="session")
def tiny_config() -> TransformerConfig:
    """A very small but structurally complete transformer configuration."""
    return TransformerConfig(
        name="tiny",
        num_layers=2,
        hidden_size=32,
        num_heads=4,
        intermediate_size=64,
        vocab_size=128,
        max_position_embeddings=64,
    )


@pytest.fixture(scope="session")
def tiny_model(tiny_config):
    return build_model(tiny_config, task="classification", seed=3)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_model, tiny_config):
    """A labelled classification dataset for the tiny model."""
    inputs = generate_inputs(
        vocab_size=tiny_config.vocab_size,
        sequence_length=16,
        num_samples=24,
        task="classification",
        seed=11,
    )
    return label_with_model(tiny_model, inputs)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
