"""Tests for the serving-traffic simulator (:mod:`repro.serving`).

Covers the four layers independently and end to end: seeded trace
generators (determinism, sortedness, shape), batching-policy release
semantics (hand-computed tiny traces against a fake cost model), the
replay event loop (every metric checked against a worked example), and
the ServingSpec execution layer (executor bit-identity, store
memoisation across backends, kill→resume without re-simulation).
"""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.experiments import ResultCache, Scenario, open_store
from repro.registry import POLICIES, TRACES, RegistryError
from repro.serving import (
    BatchCost,
    BatchCostModel,
    PolicySpec,
    ServingSpec,
    TraceSpec,
    generate_trace,
    iter_serving,
    replay_trace,
    run_serving,
)
from repro.serving.policies import release_time

KB = 1024

TRACE_KINDS = ("poisson", "bursty", "diurnal")


def flat_cost(latency_s=0.010):
    """Fake cost model: constant latency, energy equal to the batch size."""
    return lambda size: BatchCost(latency_s=latency_s, energy_j=float(size))


# --------------------------------------------------------------------------- #
# Traces.
# --------------------------------------------------------------------------- #


class TestTraces:
    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_shape_sortedness_and_positivity(self, kind):
        spec = TraceSpec(kind=kind, rate_rps=200.0, num_requests=500, seed=42)
        arrivals = generate_trace(spec)
        assert arrivals.shape == (500,)
        assert arrivals.dtype == np.float64
        assert np.all(np.diff(arrivals) >= 0)
        assert arrivals[0] > 0

    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_same_seed_is_bit_identical_and_seeds_differ(self, kind):
        spec = TraceSpec(kind=kind, rate_rps=100.0, num_requests=300, seed=7)
        assert np.array_equal(generate_trace(spec), generate_trace(spec))
        other = generate_trace(replace(spec, seed=8))
        assert not np.array_equal(generate_trace(spec), other)

    def test_poisson_mean_rate_is_roughly_right(self):
        spec = TraceSpec(kind="poisson", rate_rps=100.0, num_requests=20_000, seed=0)
        arrivals = generate_trace(spec)
        empirical = spec.num_requests / arrivals[-1]
        assert empirical == pytest.approx(100.0, rel=0.05)

    def test_params_reach_the_generator(self):
        base = TraceSpec(kind="diurnal", rate_rps=100.0, num_requests=200, seed=1)
        flat = replace(base, params={"amplitude": 0.0})
        assert not np.array_equal(generate_trace(base), generate_trace(flat))

    def test_unknown_kind_has_did_you_mean(self):
        with pytest.raises(RegistryError, match="did you mean 'poisson'"):
            generate_trace(TraceSpec(kind="poison"))

    def test_spec_round_trips_through_json_dict(self):
        spec = TraceSpec(
            kind="bursty", rate_rps=50.0, num_requests=10, seed=3,
            params={"burst_factor": 6.0, "mean_dwell_s": 2.0},
        )
        assert TraceSpec.from_dict(spec.to_dict()) == spec
        # params normalise to a sorted tuple whatever the input order.
        assert spec.params == (("burst_factor", 6.0), ("mean_dwell_s", 2.0))
        assert spec.param("burst_factor", 4.0) == 6.0
        assert spec.param("missing", 1.5) == 1.5

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError, match="num_requests"):
            generate_trace(TraceSpec(num_requests=0))
        with pytest.raises(ValueError, match="rate_rps"):
            generate_trace(TraceSpec(rate_rps=0.0))

    def test_registry_view_is_live(self):
        assert set(TRACE_KINDS) <= set(TRACES.names())
        for kind in TRACE_KINDS:
            assert TRACES.describe(kind)


# --------------------------------------------------------------------------- #
# Policies.
# --------------------------------------------------------------------------- #


class TestPolicies:
    def test_continuous_releases_at_queue_head(self):
        spec = PolicySpec(kind="continuous", max_batch=8)
        assert release_time(spec, 1.5, 2.0, 9.0) == 1.5
        assert release_time(spec, 1.5, math.inf, 9.0) == 1.5

    def test_max_batch_waits_for_fill_then_flushes_tail(self):
        spec = PolicySpec(kind="max-batch", max_batch=4)
        assert release_time(spec, 1.0, 3.0, 9.0) == 3.0
        # Unfillable remainder flushes once the last request has arrived.
        assert release_time(spec, 1.0, math.inf, 9.0) == 9.0
        assert release_time(spec, 10.0, math.inf, 9.0) == 10.0

    def test_timeout_is_fill_or_deadline_whichever_first(self):
        spec = PolicySpec(kind="timeout", max_batch=8, timeout_ms=10.0)
        assert release_time(spec, 1.0, 1.005, 9.0) == 1.005
        assert release_time(spec, 1.0, 1.5, 9.0) == pytest.approx(1.010)
        assert release_time(spec, 1.0, math.inf, 9.0) == pytest.approx(1.010)

    def test_unknown_kind_has_did_you_mean(self):
        with pytest.raises(RegistryError, match="did you mean 'timeout'"):
            release_time(PolicySpec(kind="timeut"), 0.0, 1.0, 2.0)
        assert set(POLICIES.names()) >= {"continuous", "max-batch", "timeout"}

    def test_spec_round_trips_and_labels(self):
        spec = PolicySpec(kind="max-batch", max_batch=16, timeout_ms=5.0)
        assert PolicySpec.from_dict(spec.to_dict()) == spec
        assert spec.label == "max-batch(b<=16)"
        assert PolicySpec(kind="timeout", timeout_ms=2.5, max_batch=4).label == (
            "timeout(2.5ms,b<=4)"
        )


# --------------------------------------------------------------------------- #
# Replay loop: a fully hand-computed example.
# --------------------------------------------------------------------------- #


class TestReplay:
    def test_continuous_replay_matches_hand_computation(self):
        # 10ms constant batch latency, energy == batch size.  Walked by
        # hand: batches are [r0], [r1, r2], [r3], [r4] — the second forms
        # because r2 (0.002s) lands while the engine is busy until 0.010s.
        arrivals = np.array([0.0, 0.001, 0.002, 0.100, 0.101])
        replay = replay_trace(arrivals, PolicySpec(kind="continuous", max_batch=8), flat_cost())
        m = replay.metrics
        assert replay.batch_size_counts == {1: 3, 2: 1}
        assert m.requests == 5
        assert m.batches == 4
        assert m.distinct_batch_sizes == 2
        assert m.mean_batch_size == pytest.approx(1.25)
        # Latencies: [10, 19, 18, 10, 19] ms.
        assert m.p50_ms == pytest.approx(18.0)
        assert m.p95_ms == pytest.approx(19.0)
        assert m.p99_ms == pytest.approx(19.0)
        assert m.max_ms == pytest.approx(19.0)
        assert m.mean_ms == pytest.approx((10 + 19 + 18 + 10 + 19) / 5)
        # Span 0.0 → 0.12s; 4 batches × 10ms busy on one engine.
        assert m.span_s == pytest.approx(0.12)
        assert m.throughput_rps == pytest.approx(5 / 0.12)
        assert m.utilisation == pytest.approx(0.04 / 0.12)
        assert m.total_energy_j == pytest.approx(1 + 2 + 1 + 1)
        assert m.energy_per_request_j == pytest.approx(5 / 5)
        assert m.mean_queue_depth == pytest.approx(1.25)
        assert m.max_queue_depth == 2
        # No SLO: goodput is throughput, attainment is 1.
        assert m.goodput_rps == m.throughput_rps
        assert m.slo_attainment == 1.0

    def test_max_batch_waits_and_flushes_remainder(self):
        arrivals = np.array([0.0, 1.0, 2.0, 3.0])
        replay = replay_trace(arrivals, PolicySpec(kind="max-batch", max_batch=2), flat_cost())
        assert replay.batch_size_counts == {2: 2}
        remainder = replay_trace(
            np.array([0.0, 10.0]), PolicySpec(kind="max-batch", max_batch=4), flat_cost()
        )
        # Unfillable: both requests flush as one batch at the trace end.
        assert remainder.batch_size_counts == {2: 1}
        assert remainder.metrics.max_ms == pytest.approx((10.0 + 0.010) * 1000.0)

    def test_timeout_forms_partial_batch_at_deadline(self):
        arrivals = np.array([0.0, 0.005, 0.1])
        replay = replay_trace(
            arrivals, PolicySpec(kind="timeout", max_batch=8, timeout_ms=10.0), flat_cost()
        )
        assert replay.batch_size_counts == {1: 1, 2: 1}
        assert replay.metrics.p50_ms == pytest.approx(20.0)  # [20, 15, 20] ms

    def test_slo_splits_goodput_from_throughput(self):
        arrivals = np.array([0.0, 0.001, 0.002, 0.100, 0.101])
        replay = replay_trace(
            arrivals, PolicySpec(kind="continuous", max_batch=8), flat_cost(), slo_ms=15.0
        )
        m = replay.metrics
        # Latencies [10, 19, 18, 10, 19]: 2 of 5 within 15ms.
        assert m.slo_ms == 15.0
        assert m.slo_attainment == pytest.approx(2 / 5)
        assert m.goodput_rps == pytest.approx(m.throughput_rps * 2 / 5)

    def test_second_accelerator_overlaps_batches(self):
        arrivals = np.array([0.0, 0.001])
        policy = PolicySpec(kind="continuous", max_batch=1)
        serial = replay_trace(arrivals, policy, flat_cost(), num_accelerators=1)
        twin = replay_trace(arrivals, policy, flat_cost(), num_accelerators=2)
        # One engine: r1 waits for r0's batch (completes 0.020).  Two
        # engines: r1 dispatches at its arrival (completes 0.011).
        assert serial.metrics.max_ms == pytest.approx(19.0)
        assert twin.metrics.max_ms == pytest.approx(10.0)
        assert twin.metrics.mean_queue_depth == 1.0

    def test_empty_trace_and_bad_counts_rejected(self):
        with pytest.raises(ValueError, match="empty trace"):
            replay_trace(np.array([]), PolicySpec(), flat_cost())
        with pytest.raises(ValueError, match="num_accelerators"):
            replay_trace(np.array([0.0]), PolicySpec(), flat_cost(), num_accelerators=0)
        with pytest.raises(ValueError, match="max_batch"):
            replay_trace(np.array([0.0]), PolicySpec(max_batch=0), flat_cost())


# --------------------------------------------------------------------------- #
# Cost model: memoisation through the campaign cache and store.
# --------------------------------------------------------------------------- #


class TestBatchCostModel:
    def test_each_distinct_size_simulates_once(self):
        model = BatchCostModel(Scenario(scheme="mokey-oc"), cache=ResultCache())
        costs = [model.cost(size) for size in (1, 2, 1, 4, 2, 1)]
        assert model.simulated == 3  # sizes 1, 2, 4
        assert model.from_store == 0
        assert costs[0] == costs[2] == costs[5]
        assert costs[0].latency_s > 0 and costs[0].energy_j > 0
        # Larger batches cost more in total but amortise per request.
        assert costs[3].latency_s > costs[0].latency_s
        assert costs[3].latency_s < 4 * costs[0].latency_s

    def test_warm_store_serves_every_shape(self, tmp_path):
        store = open_store(tmp_path / "s", backend="sqlite")
        base = Scenario(scheme="mokey-oc")
        cold = BatchCostModel(base, cache=ResultCache(store=store))
        cold_costs = [cold.cost(size) for size in (1, 3)]
        assert cold.simulated == 2
        warm = BatchCostModel(base, cache=ResultCache(store=store))
        warm_costs = [warm.cost(size) for size in (1, 3)]
        assert warm.simulated == 0
        assert warm.from_store == 2
        assert warm_costs == cold_costs  # bit-identical through the store

    def test_write_through_false_collects_fresh_pairs(self, tmp_path):
        store = open_store(tmp_path / "s", backend="jsonl")
        model = BatchCostModel(
            Scenario(scheme="mokey-oc"), cache=ResultCache(store=store), write_through=False
        )
        model.cost(2)
        assert len(store) == 0  # nothing persisted by the worker itself
        assert [s.batch_size for s, _ in model.fresh] == [2]


# --------------------------------------------------------------------------- #
# ServingSpec end to end.
# --------------------------------------------------------------------------- #

TINY = ServingSpec(
    name="test",
    schemes=("mokey-oc", "fp16"),
    designs=("mokey",),
    trace=TraceSpec(kind="poisson", rate_rps=150.0, num_requests=400, seed=5),
    policy=PolicySpec(kind="timeout", max_batch=4, timeout_ms=10.0),
)


def rows_of(spec, cache=None):
    return [record.to_row() for record in run_serving(spec, cache=cache).records]


class TestServingSpec:
    def test_round_trips_through_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        spec = TINY.with_execution(store=str(tmp_path / "s"), store_backend="sqlite")
        spec.save(path)
        assert ServingSpec.load(path) == spec

    def test_validate_names_every_bad_axis(self):
        with pytest.raises(RegistryError, match="did you mean 'bert-base'"):
            replace(TINY, model="bert-bas").validate()
        with pytest.raises(RegistryError, match="did you mean 'poisson'"):
            replace(TINY, trace=TraceSpec(kind="poison")).validate()
        with pytest.raises(RegistryError, match="did you mean 'max-batch'"):
            replace(TINY, policy=PolicySpec(kind="max-batc")).validate()
        with pytest.raises(ValueError, match="num_accelerators"):
            replace(TINY, num_accelerators=0).validate()
        # iter_serving validates eagerly, before any simulation.
        with pytest.raises(RegistryError):
            iter_serving(replace(TINY, designs=("mokeyy",)))

    def test_combos_cross_schemes_and_designs(self):
        combos = TINY.combos()
        assert [(c.scheme, c.design) for c in combos] == [
            ("mokey-oc", "mokey"), ("fp16", "mokey")
        ]
        assert all(c.batch_size == 1 for c in combos)

    def test_executors_are_bit_identical(self):
        baseline = rows_of(TINY.with_execution(executor="serial", store=None))
        for executor in ("thread", "process"):
            assert rows_of(TINY.with_execution(executor=executor, store=None)) == baseline

    @pytest.mark.parametrize("backend", ("jsonl", "sqlite"))
    def test_warm_store_rerun_simulates_nothing(self, tmp_path, backend):
        spec = TINY.with_execution(store=str(tmp_path / "s"), store_backend=backend)
        cold = run_serving(spec)
        assert cold.simulated > 0
        for record in cold.records:
            assert record.simulated <= record.metrics.distinct_batch_sizes
        warm = run_serving(spec)
        assert warm.simulated == 0
        assert warm.from_store == cold.simulated
        # Metrics are bit-identical; only the simulated bookkeeping moves.
        assert [r.metrics.to_dict() for r in warm.records] == [
            r.metrics.to_dict() for r in cold.records
        ]
        assert [r.to_row() | {"simulated": 0} for r in cold.records] == [
            r.to_row() for r in warm.records
        ]

    def test_backends_and_executors_agree_bitwise(self, tmp_path):
        results = {}
        for backend in ("jsonl", "sqlite"):
            for executor in ("serial", "process"):
                spec = TINY.with_execution(
                    store=str(tmp_path / f"{backend}-{executor}"),
                    store_backend=backend,
                    executor=executor,
                )
                results[(backend, executor)] = [
                    record.metrics.to_dict() for record in run_serving(spec).records
                ]
        baseline = results[("jsonl", "serial")]
        assert all(metrics == baseline for metrics in results.values())

    def test_killed_run_resumes_without_resimulating(self, tmp_path):
        spec = TINY.with_execution(store=str(tmp_path / "s"), store_backend="sqlite")
        events = iter_serving(spec)
        first_record, first_progress = next(events)
        events.close()  # "kill" after one of two combos
        assert first_progress.completed == 1
        assert first_record.simulated > 0

        resumed = run_serving(spec)
        assert [r.scheme_label for r in resumed.records] == ["mokey-oc", "fp16"]
        # The completed combo's batch shapes all come from the store.
        assert resumed.records[0].simulated == 0
        assert resumed.records[0].from_store == first_record.simulated
        assert resumed.records[0].to_row() == first_record.to_row() | {"simulated": 0}
        # Only the un-run combo simulates.
        assert resumed.simulated == resumed.records[1].simulated > 0

    def test_progress_counts_accumulate(self):
        spec = TINY.with_execution(store=None)
        seen = [progress for _record, progress in iter_serving(spec)]
        assert [p.completed for p in seen] == [1, 2]
        assert all(p.total == 2 for p in seen)
        assert seen[-1].requests == 2 * TINY.trace.num_requests
        assert "batch shapes simulated" in str(seen[-1])

    def test_schemes_change_the_served_latency(self):
        records = run_serving(TINY.with_execution(store=None)).records
        by_scheme = {record.scheme_label: record.metrics for record in records}
        assert set(by_scheme) == {"mokey-oc", "fp16"}
        # fp16 streams 4x the bytes of the 4-bit scheme: it must be
        # strictly slower and hungrier per request under identical load.
        assert by_scheme["fp16"].p50_ms > by_scheme["mokey-oc"].p50_ms
        assert (
            by_scheme["fp16"].energy_per_request_j
            > by_scheme["mokey-oc"].energy_per_request_j
        )

    def test_serving_rows_fit_the_reporting_helpers(self):
        from repro.analysis.reporting import format_records

        rows = rows_of(TINY.with_execution(store=None))
        table = format_records(rows, "table")
        assert "p99_ms" in table and "goodput_rps" in table
        csv_text = format_records(rows, "csv")
        assert csv_text.splitlines()[0].startswith("model,task,sequence_length,scheme")


class TestDecodeStreams:
    """The serving-facing multi-stream software decode entry point."""

    def test_replay_decode_streams_round_trip(self, quantizer):
        from repro.serving import DecodeStreamsResult, replay_decode_streams
        from repro.transformer.config import TransformerConfig

        micro = TransformerConfig(
            name="gpt-micro-serving",
            num_layers=1,
            hidden_size=32,
            num_heads=4,
            intermediate_size=64,
            vocab_size=128,
            max_position_embeddings=64,
        )
        result = replay_decode_streams(
            model=micro,
            num_streams=2,
            prompt_length=4,
            decode_tokens=3,
            quantizer=quantizer,
        )
        assert isinstance(result, DecodeStreamsResult)
        assert result.num_streams == 2
        assert result.prompt_length == 4 and result.decode_tokens == 3
        assert result.tokens_per_second > 0
        assert result.tokens_per_second == pytest.approx(
            2 * result.per_stream_tokens_per_second
        )
        assert result.output_rms_error < 0.5
        assert result.plane_cache is not None
        assert result.plane_cache["attached_hits"] > 0
        payload = result.to_dict()
        assert payload["num_streams"] == 2
        import json

        json.dumps(payload)  # BENCH_PERF-ready: plain JSON types only

    def test_plane_caching_off_reports_no_cache(self, quantizer):
        from repro.serving import replay_decode_streams
        from repro.transformer.config import TransformerConfig

        micro = TransformerConfig(
            name="gpt-micro-serving-off",
            num_layers=1,
            hidden_size=32,
            num_heads=4,
            intermediate_size=64,
            vocab_size=128,
            max_position_embeddings=64,
        )
        result = replay_decode_streams(
            model=micro,
            num_streams=2,
            prompt_length=3,
            decode_tokens=2,
            quantizer=quantizer,
            plane_caching=False,
        )
        assert result.plane_cache is None
        assert result.output_rms_error < 0.5
