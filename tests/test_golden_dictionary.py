"""Tests for Golden Dictionary generation (paper Step 1, Fig. 2)."""

import numpy as np
import pytest

from repro.core.golden_dictionary import GoldenDictionary, generate_golden_dictionary


class TestGeneration:
    def test_default_half_size_is_eight(self, golden):
        assert golden.num_half_entries == 8
        assert golden.num_entries == 16

    def test_bits_per_value_is_four(self, golden):
        assert golden.index_bits == 3
        assert golden.bits_per_value == 4

    def test_half_is_positive_and_increasing(self, golden):
        assert np.all(golden.half > 0)
        assert np.all(np.diff(golden.half) > 0)

    def test_full_dictionary_is_symmetric(self, golden):
        full = golden.full()
        assert full.size == 16
        assert np.allclose(full, -full[::-1])

    def test_innermost_centroid_near_zero(self, golden):
        """Ward clustering of N(0,1) puts the first centroid close to zero."""
        assert golden.half[0] < 0.3

    def test_outermost_centroid_in_tail(self, golden):
        assert 1.8 < golden.half[-1] < 3.5

    def test_threshold_beyond_last_centroid(self, golden):
        assert golden.gaussian_threshold() > golden.half[-1]

    def test_generation_is_deterministic(self):
        a = generate_golden_dictionary(num_samples=4000, num_repeats=1, seed=5)
        b = generate_golden_dictionary(num_samples=4000, num_repeats=1, seed=5)
        assert np.allclose(a.half, b.half)

    def test_different_seed_changes_little(self):
        """The Golden Dictionary is stable across generated distributions.

        Individual centroids move a little between random draws (Ward merges
        near the tail are data dependent) but the fitted exponential — which
        is what the datapath actually uses — stays put.
        """
        a = generate_golden_dictionary(num_samples=8000, num_repeats=1, seed=1)
        b = generate_golden_dictionary(num_samples=8000, num_repeats=1, seed=2)
        assert a.fit.a == pytest.approx(b.fit.a, abs=0.06)
        assert a.fit.b == pytest.approx(b.fit.b, abs=0.15)
        assert np.allclose(a.half, b.half, rtol=0.4, atol=0.2)

    def test_odd_entry_count_rejected(self):
        with pytest.raises(ValueError):
            generate_golden_dictionary(num_entries=15, num_samples=1000)

    def test_zero_repeats_rejected(self):
        with pytest.raises(ValueError):
            generate_golden_dictionary(num_repeats=0, num_samples=1000)

    def test_eight_entry_dictionary(self):
        gd = generate_golden_dictionary(num_entries=8, num_samples=4000, num_repeats=1)
        assert gd.num_half_entries == 4
        assert gd.bits_per_value == 3


class TestExponentialView:
    def test_fit_attached(self, golden):
        assert golden.fit.num_entries == golden.num_half_entries
        assert golden.fit.a > 1.0

    def test_paper_fit_ballpark(self, golden):
        """The fitted curve should be in the neighbourhood of the paper's
        a=1.179, b=-0.977 (our clustering is not bit-identical to
        SciKit-Learn's, so the tolerance is wide)."""
        assert 1.1 < golden.fit.a < 1.35
        assert -1.2 < golden.fit.b < -0.6

    def test_exponential_half_close_to_clustered_half(self, golden):
        error = np.abs(golden.exponential_half() - golden.half)
        # The inner (heavily weighted) bins must fit tightly.
        assert error[0] < 0.1
        assert error[:4].max() < 0.2

    def test_stored_half_exponential_vs_raw(self, golden):
        assert np.allclose(golden.stored_half(True), golden.fit.magnitudes())
        assert np.allclose(golden.stored_half(False), golden.half, atol=golden.fixed_point.scale)


class TestValidation:
    def test_rejects_negative_half(self, golden):
        with pytest.raises(ValueError):
            GoldenDictionary(
                half=np.array([-0.1, 0.5, 1.0]),
                fit=golden.fit,
                fixed_point=golden.fixed_point,
            )

    def test_rejects_non_increasing_half(self, golden):
        with pytest.raises(ValueError):
            GoldenDictionary(
                half=np.array([0.5, 0.5, 1.0]),
                fit=golden.fit,
                fixed_point=golden.fixed_point,
            )
