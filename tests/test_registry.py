"""Tests for the unified registry surface (:mod:`repro.registry`)."""

import pytest

from repro.experiments.scenario import DESIGN_FACTORIES, available_designs, build_design
from repro.registry import (
    DESIGNS,
    ENGINES,
    MODELS,
    REGISTRIES,
    SCHEMES,
    TASKS,
    Registry,
    RegistryError,
    get_registry,
    nearest_match,
    registry_kinds,
)
from repro.schemes import available_schemes, get_scheme


class TestProtocol:
    def test_kinds_cover_every_pluggable_axis(self):
        assert registry_kinds() == (
            "designs", "engines", "job-states", "models", "policies",
            "schemes", "stores", "tasks", "traces",
        )
        for kind in registry_kinds():
            assert get_registry(kind) is REGISTRIES[kind]

    def test_names_are_sorted_and_iterable(self):
        for kind in registry_kinds():
            registry = get_registry(kind)
            assert registry.names() == tuple(sorted(registry.names()))
            assert list(registry) == list(registry.names())
            assert len(registry) == len(registry.names())

    def test_schemes_view_matches_legacy_registry(self):
        assert SCHEMES.names() == available_schemes()
        for name in SCHEMES.names():
            assert SCHEMES.get(name) is get_scheme(name)

    def test_designs_view_matches_legacy_registry(self):
        assert DESIGNS.names() == available_designs()
        for name in DESIGNS.names():
            assert DESIGNS.get(name) is DESIGN_FACTORIES[name]

    def test_describe_returns_one_line_per_entry(self):
        for kind in registry_kinds():
            registry = get_registry(kind)
            described = registry.describe()
            assert set(described) == set(registry.names())
            for name, line in described.items():
                assert isinstance(line, str) and line
                assert "\n" not in line
                assert line == registry.describe(name)

    def test_membership(self):
        assert "mokey" in SCHEMES and "mokey" in DESIGNS
        assert "bert-base" in MODELS
        assert "mnli" in TASKS and "classification" in TASKS
        assert "vectorized" in ENGINES and "torch" in ENGINES
        assert "nope" not in SCHEMES

    def test_engines_view_matches_backend_mapping(self):
        from repro.core.index_compute import ENGINE_BACKENDS, available_engines

        assert ENGINES.names() == available_engines()
        for name in ENGINES.names():
            assert ENGINES.get(name) is ENGINE_BACKENDS[name]

    def test_engine_descriptions_are_static_strings(self):
        # This suite must pass in torch-less environments: describing the
        # torch backend comes from a static table, never from importing it.
        from repro.core.index_compute import ENGINE_DESCRIPTIONS

        described = ENGINES.describe()
        assert described.keys() == set(ENGINES.names())
        assert described["torch"] == ENGINE_DESCRIPTIONS["torch"]
        assert "einsum" in described["torch"]
        assert "oracle" in described["vectorized"]


class TestErrors:
    def test_unknown_name_names_registry_and_nearest_match(self):
        with pytest.raises(RegistryError) as excinfo:
            DESIGNS.get("mokeyy")
        message = str(excinfo.value)
        assert "'designs' registry" in message
        assert "did you mean 'mokey'?" in message
        assert excinfo.value.kind == "designs"
        assert excinfo.value.suggestion == "mokey"

    def test_unknown_name_without_a_near_match_lists_entries(self):
        with pytest.raises(RegistryError) as excinfo:
            MODELS.get("zzzzzz")
        message = str(excinfo.value)
        assert "'models' registry" in message
        assert "did you mean" not in message
        assert "bert-base" in message
        assert excinfo.value.suggestion is None

    def test_unknown_kind_suggests_nearest_kind(self):
        with pytest.raises(RegistryError) as excinfo:
            get_registry("designz")
        assert "did you mean 'designs'?" in str(excinfo.value)

    def test_registry_error_is_a_value_error(self):
        # Callers that caught ValueError from the legacy helpers keep working.
        with pytest.raises(ValueError):
            SCHEMES.get("nonexistent")

    def test_legacy_lookup_errors_gained_suggestions(self):
        with pytest.raises(ValueError, match="did you mean 'mokey'"):
            get_scheme("mokeyy")
        with pytest.raises(ValueError, match="did you mean 'tensor-cores'"):
            build_design("tensor-core")

    def test_nearest_match_helper(self):
        assert nearest_match("mokeyy", ("mokey", "gobo")) == "mokey"
        assert nearest_match("zzz", ("mokey", "gobo")) is None


class TestRegistration:
    def test_register_is_visible_to_legacy_helpers_and_back(self):
        from repro.accelerator.mokey_accel import mokey_design

        DESIGNS.register("test-registry-design", mokey_design)
        try:
            assert "test-registry-design" in available_designs()
            assert build_design("test-registry-design").datapath == "mokey"
        finally:
            del DESIGN_FACTORIES["test-registry-design"]
        assert "test-registry-design" not in DESIGNS

    def test_duplicate_registration_needs_replace(self):
        with pytest.raises(RegistryError, match="already registered"):
            DESIGNS.register("mokey", DESIGN_FACTORIES["mokey"])
        DESIGNS.register("mokey", DESIGN_FACTORIES["mokey"], replace=True)

    def test_entry_decorator(self):
        from repro.accelerator.gobo_accel import gobo_design

        @DESIGNS.entry("test-entry-design")
        def factory():
            return gobo_design()

        try:
            assert DESIGNS.get("test-entry-design") is factory
        finally:
            del DESIGN_FACTORIES["test-entry-design"]

    def test_scheme_registration_checks_instance_name(self):
        scheme = SCHEMES.get("mokey")
        with pytest.raises(RegistryError, match="names itself"):
            SCHEMES.register("not-mokey", scheme)

    def test_empty_name_rejected(self):
        with pytest.raises(RegistryError, match="empty name"):
            DESIGNS.register("", lambda: None)


class TestLiveView:
    def test_registry_is_a_live_view_not_a_copy(self):
        before = DESIGNS.names()
        DESIGN_FACTORIES["test-live-design"] = DESIGN_FACTORIES["mokey"]
        try:
            assert "test-live-design" in DESIGNS
            assert "test-live-design" in DESIGNS.names()
        finally:
            del DESIGN_FACTORIES["test-live-design"]
        assert DESIGNS.names() == before

    def test_task_registration_reaches_the_task_helpers(self):
        """TASKS is a live view over TASK_FAMILIES: a task registered here
        resolves through task_family (so it actually runs), and one added
        there is immediately validatable here."""
        from repro.transformer.tasks import TASK_FAMILIES, task_family

        TASKS.register("test-boolq", "classification")
        try:
            assert task_family("test-boolq") == "classification"
            assert "test-boolq" in TASKS
            assert TASKS.get("test-boolq") == "classification"
        finally:
            del TASK_FAMILIES["test-boolq"]
        assert "test-boolq" not in TASKS

        TASK_FAMILIES["test-direct"] = "qa"
        try:
            assert "test-direct" in TASKS
            assert "qa" in TASKS.describe("test-direct")
        finally:
            del TASK_FAMILIES["test-direct"]

    def test_task_registration_rejects_unknown_families(self):
        with pytest.raises(RegistryError, match="family"):
            TASKS.register("test-bad", "summarisation")

    def test_family_names_are_readonly_virtual_entries(self):
        assert TASKS.get("classification") == "classification"
        with pytest.raises(RegistryError, match="already registered"):
            TASKS.register("mnli", "classification")
        with pytest.raises(RegistryError, match="already registered"):
            TASKS.register("classification", "classification")  # virtual name
