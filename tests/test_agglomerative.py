"""Tests for the agglomerative clustering used by the Golden Dictionary."""

import numpy as np
import pytest

from repro.core.agglomerative import agglomerative_cluster_1d, pairwise_agglomerative


class TestValidation:
    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            agglomerative_cluster_1d([], 2)

    def test_too_many_clusters_rejected(self):
        with pytest.raises(ValueError):
            agglomerative_cluster_1d([1.0, 2.0], 3)

    def test_zero_clusters_rejected(self):
        with pytest.raises(ValueError):
            agglomerative_cluster_1d([1.0, 2.0], 0)

    def test_unknown_linkage_rejected(self):
        with pytest.raises(ValueError):
            agglomerative_cluster_1d([1.0, 2.0, 3.0], 2, linkage="single")

    def test_pairwise_large_input_rejected(self):
        with pytest.raises(ValueError):
            pairwise_agglomerative(np.zeros(3000), 2)


class TestBasicBehaviour:
    def test_single_cluster_is_mean(self):
        values = [1.0, 2.0, 3.0, 10.0]
        result = agglomerative_cluster_1d(values, 1)
        assert result.num_clusters == 1
        assert result.centroids[0] == pytest.approx(np.mean(values))
        assert result.sizes[0] == 4

    def test_n_clusters_equals_n_values(self):
        values = [3.0, 1.0, 2.0]
        result = agglomerative_cluster_1d(values, 3)
        assert np.allclose(result.centroids, [1.0, 2.0, 3.0])
        assert np.all(result.sizes == 1)

    def test_well_separated_groups_are_found(self):
        rng = np.random.default_rng(0)
        values = np.concatenate(
            [rng.normal(0, 0.05, 50), rng.normal(5, 0.05, 50), rng.normal(10, 0.05, 50)]
        )
        result = agglomerative_cluster_1d(values, 3)
        assert np.allclose(np.sort(result.centroids), [0, 5, 10], atol=0.2)
        assert np.all(result.sizes == 50)

    def test_centroids_sorted_ascending(self):
        rng = np.random.default_rng(1)
        result = agglomerative_cluster_1d(rng.normal(0, 1, 500), 8)
        assert np.all(np.diff(result.centroids) > 0)

    def test_sizes_sum_to_input_size(self):
        rng = np.random.default_rng(2)
        values = rng.normal(0, 1, 300)
        result = agglomerative_cluster_1d(values, 7)
        assert result.sizes.sum() == values.size

    def test_assignments_consistent_with_centroids(self):
        rng = np.random.default_rng(3)
        values = rng.normal(0, 1, 200)
        result = agglomerative_cluster_1d(values, 5)
        for cluster in range(result.num_clusters):
            members = values[result.assignments == cluster]
            assert members.size == result.sizes[cluster]
            assert members.mean() == pytest.approx(result.centroids[cluster])

    def test_average_linkage_supported(self):
        rng = np.random.default_rng(4)
        values = rng.normal(0, 1, 400)
        result = agglomerative_cluster_1d(values, 6, linkage="average")
        assert result.num_clusters == 6
        assert np.all(np.diff(result.centroids) > 0)


class TestAgainstExactReference:
    def test_matches_pairwise_on_separated_data(self):
        rng = np.random.default_rng(5)
        values = np.concatenate([rng.normal(c, 0.1, 20) for c in (0.0, 3.0, 6.0, 9.0)])
        fast = agglomerative_cluster_1d(values, 4)
        exact = pairwise_agglomerative(values, 4)
        assert np.allclose(np.sort(fast.centroids), np.sort(exact.centroids), atol=1e-9)

    def test_ward_prefers_fine_clusters_in_dense_region(self):
        """Ward keeps the dense centre finely clustered and lumps the sparse tail."""
        rng = np.random.default_rng(6)
        values = np.abs(rng.normal(0, 1, 20000))
        result = agglomerative_cluster_1d(values, 8, linkage="ward")
        # The innermost centroid sits close to zero and the outermost absorbs
        # the tail (centroid around 2-3 sigma), mirroring the paper's Fig. 2.
        assert result.centroids[0] < 0.3
        assert 1.8 < result.centroids[-1] < 3.5
        # Cluster sizes shrink monotonically-ish towards the tail: the last
        # cluster is far smaller than the first.
        assert result.sizes[-1] < result.sizes[0]
