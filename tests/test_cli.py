"""Tests for the ``repro`` CLI (``python -m repro``)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

SRC = str(Path(__file__).resolve().parent.parent / "src")


def run_cli(args, capsys):
    code = main(args)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestCampaignRun:
    def test_second_identical_run_simulates_nothing(self, tmp_path, capsys):
        args = [
            "campaign", "run",
            "--models", "bert-base",
            "--designs", "mokey", "tensor-cores",
            "--buffer-kb", "256", "1024",
            "--store", str(tmp_path / "store"),
        ]
        code, _out, err = run_cli(args, capsys)
        assert code == 0
        assert "4 simulated" in err
        code, _out, err = run_cli(args, capsys)
        assert code == 0
        assert "0 simulated" in err
        assert "4 cache hits (4 from store)" in err

    def test_json_output_is_parseable_and_clean(self, tmp_path, capsys):
        code, out, err = run_cli(
            ["campaign", "run", "--store", str(tmp_path / "s"), "--format", "json"], capsys
        )
        assert code == 0
        rows = json.loads(out)  # no summary mixed into stdout
        assert len(rows) == 1
        assert rows[0]["model"] == "bert-base"
        assert "1 records" in err

    def test_csv_output_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "rows.csv"
        code, out, _err = run_cli(
            [
                "campaign", "run",
                "--store", str(tmp_path / "s"),
                "--format", "csv",
                "--output", str(out_file),
            ],
            capsys,
        )
        assert code == 0
        lines = out_file.read_text().strip().splitlines()
        assert lines[0].startswith("model,task,sequence_length")
        assert len(lines) == 2
        assert "1 records" in out  # summary goes to stdout when records go to a file

    def test_no_store_mode_never_touches_disk(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, _out, err = run_cli(["campaign", "run", "--no-store"], capsys)
        assert code == 0
        assert "1 simulated" in err
        assert not (tmp_path / ".repro-store").exists()

    def test_executor_choices_run(self, tmp_path, capsys):
        for executor in ("serial", "thread", "process"):
            code, _out, err = run_cli(
                [
                    "campaign", "run",
                    "--no-store",
                    "--executor", executor,
                    "--designs", "mokey",
                ],
                capsys,
            )
            assert code == 0
            assert f"executor={executor}" in err

    def test_paper_workloads_flag(self, tmp_path, capsys):
        code, _out, err = run_cli(
            ["campaign", "run", "--no-store", "--paper-workloads", "--format", "json"],
            capsys,
        )
        assert code == 0
        assert "8 records" in err

    def test_unknown_design_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "run", "--designs", "nonexistent", "--store", str(tmp_path)])
        assert excinfo.value.code == 2

    def test_unknown_scheme_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "run", "--schemes", "int3", "--store", str(tmp_path)])
        assert excinfo.value.code == 2

    def test_unknown_task_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "run", "--tasks", "sqaud", "--store", str(tmp_path)])
        assert excinfo.value.code == 2


class TestReportListClean:
    @pytest.fixture()
    def populated_store(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(
            [
                "campaign", "run",
                "--models", "bert-base", "bert-large",
                "--designs", "mokey", "tensor-cores",
                "--store", store,
            ]
        )
        capsys.readouterr()
        return store

    def test_report_filters_and_formats(self, populated_store, capsys):
        code, out, _err = run_cli(
            ["campaign", "report", "--store", populated_store, "--design", "mokey",
             "--format", "json"],
            capsys,
        )
        assert code == 0
        rows = json.loads(out)
        assert len(rows) == 2
        assert {row["design"] for row in rows} == {"mokey"}

    def test_report_scheme_filter_matches_displayed_column(self, populated_store, capsys):
        # Records run without a scheme override display the design name in
        # the scheme column; the filter must match that same value.
        code, out, _err = run_cli(
            ["campaign", "report", "--store", populated_store, "--scheme", "tensor-cores",
             "--format", "json"],
            capsys,
        )
        assert code == 0
        rows = json.loads(out)
        assert len(rows) == 2
        assert {row["scheme"] for row in rows} == {"tensor-cores"}

    def test_report_empty_match_fails(self, populated_store, capsys):
        code, _out, err = run_cli(
            ["campaign", "report", "--store", populated_store, "--design", "gobo"], capsys
        )
        assert code == 1
        assert "no matching records" in err

    def test_list_summarises(self, populated_store, capsys):
        code, out, _err = run_cli(["campaign", "list", "--store", populated_store], capsys)
        assert code == 0
        assert "4 records" in out
        assert "bert-large on mokey: 1" in out

    def test_clean_requires_yes(self, populated_store, capsys):
        code, _out, err = run_cli(["campaign", "clean", "--store", populated_store], capsys)
        assert code == 1
        assert "--yes" in err
        code, out, _err = run_cli(
            ["campaign", "clean", "--store", populated_store, "--yes"], capsys
        )
        assert code == 0
        assert "deleted 4 records" in out
        code, out, _err = run_cli(["campaign", "list", "--store", populated_store], capsys)
        assert code == 0
        assert "0 records" in out


class TestAccuracyRun:
    @pytest.fixture()
    def compute_only_scheme(self):
        from repro.schemes import QuantizationScheme, register_scheme
        from repro.schemes.base import _REGISTRY

        class ComputeOnlyScheme(QuantizationScheme):
            name = "compute-only-cli"

            def layer_compute(self, workload, design):  # pragma: no cover
                raise NotImplementedError

        register_scheme(ComputeOnlyScheme(), replace=True)
        yield "compute-only-cli"
        _REGISTRY.pop("compute-only-cli", None)

    def test_with_accuracy_persists_joint_records(self, tmp_path, capsys):
        args = [
            "campaign", "run",
            "--models", "bert-base",
            "--designs", "mokey",
            "--with-accuracy",
            "--store", str(tmp_path / "store"),
            "--format", "json",
        ]
        code, out, err = run_cli(args, capsys)
        assert code == 0
        assert "1 simulated" in err and "1 fidelity evaluated" in err
        rows = json.loads(out)
        assert rows[0]["fp_score"] == pytest.approx(100.0)
        assert "weight_only_err" in rows[0]
        # Second identical run simulates and evaluates nothing.
        code, _out, err = run_cli(args, capsys)
        assert code == 0
        assert "0 simulated" in err and "0 fidelity evaluated" in err

    def test_with_accuracy_unsupported_scheme_is_a_one_line_error(
        self, tmp_path, capsys, compute_only_scheme
    ):
        code, _out, err = run_cli(
            [
                "campaign", "run",
                "--schemes", compute_only_scheme,
                "--with-accuracy",
                "--store", str(tmp_path / "store"),
            ],
            capsys,
        )
        assert code == 2
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1
        assert "accuracy" in err
        # Nothing was simulated or stored before the failure.
        assert not (tmp_path / "store" / "records.jsonl").exists()


class TestTable1:
    @pytest.fixture(scope="class")
    def table1_store(self, tmp_path_factory):
        return str(tmp_path_factory.mktemp("table1") / "store")

    def test_renders_all_eight_paper_rows(self, table1_store, capsys):
        code, out, err = run_cli(
            ["table1", "--store", table1_store, "--format", "json"], capsys
        )
        assert code == 0
        assert "8 Table I fidelity rows" in err
        rows = json.loads(out)
        assert len(rows) == 8
        assert [(r["model"], r["task"]) for r in rows] == [
            ("bert-base", "mnli"),
            ("bert-large", "mnli"),
            ("bert-large", "stsb"),
            ("bert-large", "squad"),
            ("roberta-large", "mnli"),
            ("roberta-large", "stsb"),
            ("roberta-large", "squad"),
            ("deberta-xl", "mnli"),
        ]
        assert {r["metric"] for r in rows} == {"accuracy", "spearman", "f1"}
        for row in rows:
            assert row["fp_score"] >= 99.0
            assert row["paper_fp_score"] != ""

    def test_joint_view_pairs_fidelity_with_speedup(self, table1_store, capsys):
        # Rides on the store the previous test populated: nothing re-runs.
        code, out, err = run_cli(
            ["table1", "--store", table1_store, "--joint", "--format", "json"], capsys
        )
        assert code == 0
        assert "0 simulated, 0 fidelity evaluated" in err
        rows = json.loads(out)
        assert len(rows) == 8
        for row in rows:
            assert row["baseline"] == "tensor-cores"
            assert row["speedup"] > 1.0
            assert row["energy_efficiency"] > 1.0
            assert row["scheme"] == "mokey"
            # Mokey quantizes activations, so the joint view must report
            # the weight+activation error — small but non-zero.
            assert 0.0 < row["fidelity_err"] <= 50.0
            assert row["weight_compression"] > 6.0

    def test_unknown_scheme_is_a_one_line_error(self, tmp_path, capsys):
        code, _out, err = run_cli(
            ["table1", "--scheme", "int3", "--store", str(tmp_path)], capsys
        )
        assert code == 2
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1


class TestSpecDrivenRun:
    @pytest.fixture()
    def spec_file(self, tmp_path):
        from repro.experiments import AxisGrid, CampaignSpec, ExecutionPolicy

        spec = CampaignSpec(
            name="cli-spec",
            axes=AxisGrid(
                models=("bert-base",),
                designs=("mokey", "tensor-cores"),
                buffer_bytes=(512 * 1024,),
            ),
            execution=ExecutionPolicy(
                executor="serial", store=str(tmp_path / "spec-store")
            ),
        )
        path = tmp_path / "spec.json"
        spec.save(path)
        return str(path)

    def test_run_spec_uses_the_policy_store(self, spec_file, tmp_path, capsys):
        code, _out, err = run_cli(["campaign", "run", "--spec", spec_file], capsys)
        assert code == 0
        assert "2 simulated" in err
        assert "executor=serial" in err
        assert str(tmp_path / "spec-store") in err
        # Identical second run resolves everything from the spec's store.
        code, _out, err = run_cli(["campaign", "run", "--spec", spec_file], capsys)
        assert code == 0
        assert "0 simulated" in err

    def test_limit_interrupts_and_resume_completes_bit_identically(
        self, spec_file, tmp_path, capsys
    ):
        from repro.experiments import ArtifactStore

        code, _out, err = run_cli(
            ["campaign", "run", "--spec", spec_file, "--limit", "1", "--progress"], capsys
        )
        assert code == 0
        assert "1 simulated" in err
        assert "interrupted after 1/2" in err
        assert "[1/2]" in err  # --progress streamed a line
        assert len(ArtifactStore(tmp_path / "spec-store")) == 1

        code, _out, err = run_cli(["campaign", "resume", "--spec", spec_file], capsys)
        assert code == 0
        assert "resumed from 1 stored records" in err
        assert "1 simulated" in err and "1 cache hits (1 from store)" in err
        assert len(ArtifactStore(tmp_path / "spec-store")) == 2

    def test_execution_flags_override_the_spec_policy(self, spec_file, tmp_path, capsys):
        code, _out, err = run_cli(
            [
                "campaign", "run",
                "--spec", spec_file,
                "--executor", "thread",
                "--store", str(tmp_path / "override-store"),
            ],
            capsys,
        )
        assert code == 0
        assert "executor=thread" in err
        assert str(tmp_path / "override-store") in err
        assert not (tmp_path / "spec-store").exists()

    def test_spec_with_unknown_design_is_a_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"axes": {"designs": ["mokeyy"]}}))
        code, _out, err = run_cli(
            ["campaign", "run", "--spec", str(path), "--no-store"], capsys
        )
        assert code == 2
        assert "did you mean 'mokey'?" in err
        assert len(err.strip().splitlines()) == 1

    def test_unreadable_spec_is_a_usage_error_exit_2(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "run", "--spec", str(path), "--no-store"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "run", "--spec", str(tmp_path / "missing.json")])
        assert excinfo.value.code == 2

    def test_spec_resume_false_resimulates_through_the_cli(self, tmp_path, capsys):
        spec = {
            "axes": {"models": ["bert-base"], "designs": ["mokey"]},
            "execution": {
                "executor": "serial",
                "store": str(tmp_path / "store"),
                "resume": False,
            },
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        for _ in range(2):  # second run must NOT serve from the store
            code, _out, err = run_cli(["campaign", "run", "--spec", str(path)], capsys)
            assert code == 0
            assert "1 simulated, 0 cache hits (0 from store)" in err
        from repro.experiments import ArtifactStore

        assert len(ArtifactStore(tmp_path / "store")) == 1  # but it did persist


class TestRegistryList:
    def test_lists_all_kinds(self, capsys):
        code, out, _err = run_cli(["registry", "list"], capsys)
        assert code == 0
        for kind in (
            "schemes", "designs", "models", "tasks", "engines",
            "stores", "traces", "policies", "job-states",
        ):
            assert kind in out
        assert "mokey" in out

    def test_expands_one_kind_with_descriptions(self, capsys):
        code, out, _err = run_cli(["registry", "list", "schemes"], capsys)
        assert code == 0
        assert "9 entries" in out
        assert "mokey" in out and "MokeyScheme" in out

    def test_json_format(self, capsys):
        code, out, _err = run_cli(["registry", "list", "designs", "--format", "json"], capsys)
        assert code == 0
        payload = json.loads(out)
        assert "mokey" in payload
        code, out, _err = run_cli(["registry", "list", "--format", "json"], capsys)
        assert code == 0
        payload = json.loads(out)
        assert set(payload) == {
            "schemes", "designs", "models", "tasks", "engines", "stores",
            "traces", "policies", "job-states",
        }

    def test_unknown_kind_suggests_nearest(self, capsys):
        code, _out, err = run_cli(["registry", "list", "designz"], capsys)
        assert code == 2
        assert "did you mean 'designs'?" in err


class TestServeSim:
    ARGS = [
        "serve-sim",
        "--schemes", "mokey-oc", "fp16",
        "--rate", "100", "--requests", "1000", "--seed", "4",
    ]

    def test_reports_latency_goodput_energy_per_combo(self, tmp_path, capsys):
        code, out, err = run_cli(
            self.ARGS + ["--store", str(tmp_path / "s"), "--format", "json"], capsys
        )
        assert code == 0
        rows = json.loads(out)
        assert [row["scheme"] for row in rows] == ["mokey-oc", "fp16"]
        for row in rows:
            assert row["requests"] == 1000
            assert 0 < row["p50_ms"] <= row["p99_ms"]
            assert row["goodput_rps"] > 0
            assert row["energy_per_request_j"] > 0
            # The headline guarantee: real sims never exceed batch shapes.
            assert row["simulated"] <= row["batch_shapes"]
        assert "2 combos" in err and "batch shapes simulated" in err

    def test_warm_store_rerun_simulates_nothing(self, tmp_path, capsys):
        args = self.ARGS + ["--store", str(tmp_path / "s"), "--format", "json"]
        code, out, err = run_cli(args, capsys)
        assert code == 0
        cold = json.loads(out)
        code, out, err = run_cli(args, capsys)
        assert code == 0
        warm = json.loads(out)
        assert "0 batch shapes simulated" in err
        drop = lambda row: {k: v for k, v in row.items() if k != "simulated"}
        assert [drop(row) for row in warm] == [drop(row) for row in cold]

    def test_executors_and_backends_are_bit_identical(self, tmp_path, capsys):
        outputs = set()
        for backend in ("jsonl", "sqlite"):
            for executor in ("serial", "thread", "process"):
                code, out, _err = run_cli(
                    self.ARGS + [
                        "--store", str(tmp_path / f"{backend}-{executor}"),
                        "--store-backend", backend,
                        "--executor", executor,
                        "--format", "csv",
                    ],
                    capsys,
                )
                assert code == 0
                outputs.add(out)
        assert len(outputs) == 1

    def test_spec_file_round_trip(self, tmp_path, capsys):
        from repro.serving import PolicySpec, ServingSpec, TraceSpec

        spec = ServingSpec(
            schemes=("mokey-oc",),
            trace=TraceSpec(rate_rps=80.0, num_requests=500, seed=9),
            policy=PolicySpec(kind="max-batch", max_batch=4),
            slo_ms=100.0,
        )
        path = tmp_path / "serving.json"
        spec.save(path)
        code, out, err = run_cli(
            ["serve-sim", "--spec", str(path), "--no-store", "--format", "json"], capsys
        )
        assert code == 0
        (row,) = json.loads(out)
        assert row["requests"] == 500
        assert "max-batch(b<=4)" in err

    def test_trace_param_flag_reaches_the_generator(self, tmp_path, capsys):
        base = self.ARGS + ["--trace", "bursty", "--no-store", "--format", "csv"]
        code, calm_out, _err = run_cli(base, capsys)
        assert code == 0
        code, burst_out, _err = run_cli(
            base + ["--trace-param", "burst_factor=12"], capsys
        )
        assert code == 0
        assert calm_out != burst_out

    def test_unknown_trace_and_policy_are_one_line_errors(self, tmp_path, capsys):
        code, _out, err = run_cli(
            ["serve-sim", "--trace", "poison", "--no-store"], capsys
        )
        assert code == 2
        assert "did you mean 'poisson'?" in err
        code, _out, err = run_cli(
            ["serve-sim", "--policy", "continuos", "--no-store"], capsys
        )
        assert code == 2
        assert "did you mean 'continuous'?" in err

    def test_malformed_trace_param_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve-sim", "--trace-param", "amplitude", "--no-store"])
        assert excinfo.value.code == 2
        capsys.readouterr()


def test_table1_unknown_scheme_subprocess_has_no_traceback(tmp_path):
    """End to end: a bad scheme exits 2 with one stderr line, no traceback."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "table1", "--scheme", "nope"],
        capture_output=True,
        text=True,
        cwd=str(tmp_path),
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        timeout=120,
    )
    assert proc.returncode == 2
    assert "Traceback" not in proc.stderr
    assert len(proc.stderr.strip().splitlines()) == 1


class TestStoreBackendsCli:
    def _run_grid(self, store, capsys, backend=None):
        args = [
            "campaign", "run",
            "--models", "bert-base", "bert-large",
            "--designs", "mokey", "tensor-cores",
            "--store", store,
        ]
        if backend is not None:
            args += ["--store-backend", backend]
        return run_cli(args, capsys)

    def test_sqlite_campaign_run_and_cached_rerun(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        code, _out, err = self._run_grid(store, capsys, backend="sqlite")
        assert code == 0
        assert "4 simulated" in err
        assert (tmp_path / "store" / "records.sqlite").exists()
        assert not (tmp_path / "store" / "records.jsonl").exists()
        # The second run auto-detects the backend: no --store-backend needed.
        code, _out, err = self._run_grid(store, capsys)
        assert code == 0
        assert "0 simulated" in err

    def test_report_where_and_top_on_sqlite(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self._run_grid(store, capsys, backend="sqlite")
        code, out, _err = run_cli(
            ["campaign", "report", "--store", store, "--where", "design=mokey",
             "--format", "json"],
            capsys,
        )
        assert code == 0
        rows = json.loads(out)
        assert len(rows) == 2
        assert {row["design"] for row in rows} == {"mokey"}
        code, out, _err = run_cli(
            ["campaign", "report", "--store", store, "--order-by=-total_cycles",
             "--top", "1", "--format", "json"],
            capsys,
        )
        assert code == 0
        assert len(json.loads(out)) == 1

    def test_report_group_by_on_sqlite(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self._run_grid(store, capsys, backend="sqlite")
        code, out, _err = run_cli(
            ["campaign", "report", "--store", store, "--group-by", "model", "design",
             "--order-by=-count", "--format", "json"],
            capsys,
        )
        assert code == 0
        rows = json.loads(out)
        assert len(rows) == 4
        assert all(row["count"] == 1 for row in rows)
        assert {"model", "design", "count", "with_fidelity"} <= set(rows[0])

    def test_report_scheme_combines_with_group_by(self, tmp_path, capsys):
        # --scheme compiles to the effective_scheme pushdown field now, so
        # it composes with --group-by like any other filter (it used to be
        # a Python post-filter that parser.error'd on this combination).
        store = str(tmp_path / "store")
        self._run_grid(store, capsys, backend="sqlite")
        code, out, _err = run_cli(
            ["campaign", "report", "--store", store, "--scheme", "mokey",
             "--group-by", "model", "--format", "json"],
            capsys,
        )
        assert code == 0
        rows = json.loads(out)
        assert {row["model"] for row in rows} == {"bert-base", "bert-large"}
        assert all(row["count"] == 1 for row in rows)

    @pytest.mark.parametrize(
        "spelling", ["~total_cycles", "total_cycles:desc", "--order-by=-total_cycles"]
    )
    def test_report_order_by_descending_spellings(self, tmp_path, capsys, spelling):
        # '-FIELD' only parses in the equals form (argparse reads a bare
        # '-t...' as a flag); '~FIELD' and 'FIELD:desc' work as plain
        # arguments too, and all three must order identically.
        store = str(tmp_path / "store")
        self._run_grid(store, capsys, backend="sqlite")
        args = ["campaign", "report", "--store", store, "--format", "json"]
        if spelling.startswith("--"):
            args.append(spelling)
        else:
            args += ["--order-by", spelling]
        code, out, _err = run_cli(args, capsys)
        assert code == 0
        cycles = [row["total_cycles"] for row in json.loads(out)]
        assert cycles == sorted(cycles, reverse=True)
        code, out, _err = run_cli(
            ["campaign", "report", "--store", store, "--order-by",
             "total_cycles:asc", "--format", "json"],
            capsys,
        )
        assert code == 0
        ascending = [row["total_cycles"] for row in json.loads(out)]
        assert ascending == list(reversed(cycles))

    def test_report_bad_where_field_is_a_usage_error(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self._run_grid(store, capsys, backend="sqlite")
        code, _out, err = run_cli(
            ["campaign", "report", "--store", store, "--where", "modle=x"], capsys
        )
        assert code == 2
        assert "did you mean 'model'?" in err

    def test_list_on_sqlite_store(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self._run_grid(store, capsys, backend="sqlite")
        code, out, _err = run_cli(["campaign", "list", "--store", store], capsys)
        assert code == 0
        assert "4 records" in out

    def test_store_migrate_round_trip(self, tmp_path, capsys):
        jsonl_store = str(tmp_path / "a")
        self._run_grid(jsonl_store, capsys)  # default jsonl
        code, out, _err = run_cli(
            ["store", "migrate", jsonl_store, str(tmp_path / "b"),
             "--to-backend", "sqlite"],
            capsys,
        )
        assert code == 0
        assert "migrated 4 records" in out
        assert (tmp_path / "b" / "records.sqlite").exists()
        code, out, _err = run_cli(
            ["store", "migrate", str(tmp_path / "b"), str(tmp_path / "c"),
             "--to-backend", "jsonl"],
            capsys,
        )
        assert code == 0
        assert "migrated 4 records" in out
        original = (tmp_path / "a" / "records.jsonl").read_text()
        round_tripped = (tmp_path / "c" / "records.jsonl").read_text()
        assert round_tripped == original

    def test_store_migrate_missing_source_fails(self, tmp_path, capsys):
        code, _out, err = run_cli(
            ["store", "migrate", str(tmp_path / "nope"), str(tmp_path / "dst")], capsys
        )
        assert code == 2
        assert "no jsonl store at" in err

    def test_registry_list_stores(self, capsys):
        code, out, _err = run_cli(["registry", "list", "stores"], capsys)
        assert code == 0
        assert "jsonl" in out and "sqlite" in out

    def test_registry_list_job_states(self, capsys):
        code, out, _err = run_cli(["registry", "list", "job-states"], capsys)
        assert code == 0
        for state in ("pending", "running", "completed", "failed", "cancelled"):
            assert state in out


class TestStoreStats:
    def _populate(self, tmp_path, capsys, backend="sqlite"):
        root = tmp_path / "stats-store"
        code, _out, _err = run_cli(
            [
                "campaign", "run", "--store", str(root),
                "--store-backend", backend,
                "--batch-sizes", "1", "2", "--designs", "mokey", "tensor-cores",
            ],
            capsys,
        )
        assert code == 0
        return str(root)

    def test_stats_reports_counts_and_coverage(self, tmp_path, capsys):
        root = self._populate(tmp_path, capsys)
        code, out, _err = run_cli(["store", "stats", root], capsys)
        assert code == 0
        assert "backend: sqlite (schema v1)" in out
        assert "records: 4 across 2 model x design combos" in out
        assert "fidelity coverage: 0/4" in out
        assert "skipped (unreadable/old-schema): 0" in out

    def test_stats_json_is_parseable(self, tmp_path, capsys):
        root = self._populate(tmp_path, capsys, backend="jsonl")
        code, out, _err = run_cli(["store", "stats", root, "--format", "json"], capsys)
        assert code == 0
        payload = json.loads(out)
        assert payload["backend"] == "jsonl"
        assert payload["records"] == 4
        assert payload["schema_version"] == 1
        assert payload["fidelity_coverage"] == 0.0
        assert payload["skipped"] == 0

    def test_stats_counts_skipped_lines(self, tmp_path, capsys):
        root = self._populate(tmp_path, capsys, backend="jsonl")
        with open(tmp_path / "stats-store" / "records.jsonl", "a", encoding="utf-8") as fh:
            fh.write("this is not json\n")
        code, out, _err = run_cli(["store", "stats", root, "--format", "json"], capsys)
        assert code == 0
        payload = json.loads(out)
        assert payload["records"] == 4
        assert payload["skipped"] == 1

    def test_stats_missing_store_fails_cleanly(self, tmp_path, capsys):
        code, _out, err = run_cli(["store", "stats", str(tmp_path / "nope")], capsys)
        assert code == 2
        assert "no jsonl store at" in err


def test_python_dash_m_entry_point(tmp_path):
    """The module is runnable as `python -m repro` (what CI exercises)."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "campaign", "run", "--no-store"],
        capture_output=True,
        text=True,
        cwd=str(tmp_path),
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "1 simulated" in proc.stderr
