"""Tests for the baseline quantization methods of Table IV."""

import numpy as np
import pytest

from repro.baselines import (
    ALL_BASELINES,
    GoboQuantizer,
    IBertQuantizer,
    Q8BertQuantizer,
    QBertQuantizer,
    TernaryBertQuantizer,
)
from repro.baselines.base import uniform_symmetric_quantize
from repro.baselines.gobo import gobo_quantize_tensor
from repro.baselines.ibert import i_erf, i_gelu
from repro.baselines.qbert import groupwise_quantize
from repro.baselines.ternarybert import ternarize
from repro.transformer.functional import erf, gelu
from repro.transformer.tasks import evaluate


class TestPrimitives:
    def test_uniform_symmetric_quantize_error_bound(self, rng):
        values = rng.normal(0, 1, 1000)
        recon, scale = uniform_symmetric_quantize(values, 8)
        assert np.max(np.abs(recon - values)) <= scale / 2 + 1e-9

    def test_uniform_symmetric_level_count(self, rng):
        values = rng.uniform(-1, 1, 10_000)
        recon, _ = uniform_symmetric_quantize(values, 4)
        assert np.unique(recon).size <= 16

    def test_uniform_rejects_single_bit(self):
        with pytest.raises(ValueError):
            uniform_symmetric_quantize(np.ones(4), 1)

    def test_groupwise_quantize_per_group_ranges(self, rng):
        # Two groups with very different ranges: group-wise quantization keeps
        # the small-range group precise.
        small = rng.normal(0, 0.01, 128)
        large = rng.normal(0, 10.0, 128)
        values = np.concatenate([small, large])
        recon = groupwise_quantize(values, 4, num_groups=2)
        small_err = np.abs(recon[:128] - small).max()
        assert small_err < 0.01

    def test_ternarize_three_levels(self, rng):
        values = rng.normal(0, 1, 1000)
        recon, threshold, scale = ternarize(values)
        assert np.unique(recon).size <= 3
        assert threshold > 0
        assert scale > 0

    def test_gobo_quantize_tensor_reconstructs_outliers_exactly(self, rng):
        values = rng.normal(0, 0.02, 5000)
        values[:10] = 0.5
        recon, fraction, bits = gobo_quantize_tensor(values)
        assert fraction > 0
        assert np.allclose(recon[:10], 0.5)
        assert bits < values.size * 32

    def test_igelu_close_to_gelu(self, rng):
        x = rng.uniform(-4, 4, 1000)
        assert np.max(np.abs(i_gelu(x) - gelu(x))) < 0.03

    def test_ierf_close_to_erf(self, rng):
        # The I-BERT polynomial trades accuracy of erf itself (worst ~0.1 for
        # small inputs) for accuracy of GELU after the x/2 damping, which is
        # what test_igelu_close_to_gelu checks tightly.
        x = rng.uniform(-3, 3, 1000)
        assert np.max(np.abs(i_erf(x) - erf(x))) < 0.11


class TestMethodProperties:
    def test_table_iv_bit_widths(self):
        assert Q8BertQuantizer().properties.weight_bits == 8
        assert IBertQuantizer().properties.weight_bits == 8
        assert QBertQuantizer().properties.weight_bits == 4
        assert GoboQuantizer().properties.weight_bits == 3
        assert TernaryBertQuantizer().properties.weight_bits == 2

    def test_only_ibert_is_integer_compute(self):
        flags = {cls().properties.name: cls().properties.integer_compute for cls in ALL_BASELINES}
        assert flags["I-BERT"] is True
        assert flags["Q8BERT"] is False
        assert flags["GOBO"] is False

    def test_only_gobo_is_post_training(self):
        flags = {cls().properties.name: cls().properties.post_training for cls in ALL_BASELINES}
        assert flags["GOBO"] is True
        assert flags["Q-BERT"] is False
        assert flags["TernaryBERT"] is False


class TestQuantizeModels:
    @pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
    def test_quantize_produces_runnable_model(self, baseline_cls, tiny_model, tiny_dataset):
        result = baseline_cls().quantize(tiny_model, calibration=tiny_dataset)
        hook = result.activation_hook_factory() if result.activation_hook_factory else None
        score = evaluate(result.model, tiny_dataset, hook=hook)
        assert 0.0 <= score <= 100.0

    @pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
    def test_weight_compression_ratio_positive(self, baseline_cls, tiny_model):
        result = baseline_cls().quantize(tiny_model)
        assert result.weight_compression_ratio > 1.5

    def test_compression_ordering_matches_bit_widths(self, tiny_model):
        """Fewer weight bits -> higher weight compression."""
        q8 = Q8BertQuantizer().quantize(tiny_model).weight_compression_ratio
        q4 = QBertQuantizer().quantize(tiny_model).weight_compression_ratio
        t2 = TernaryBertQuantizer().quantize(tiny_model).weight_compression_ratio
        assert t2 > q4 > q8

    def test_8bit_methods_nearly_lossless(self, tiny_model, tiny_dataset):
        for cls in (Q8BertQuantizer, IBertQuantizer):
            result = cls().quantize(tiny_model, calibration=tiny_dataset)
            hook = result.activation_hook_factory()
            assert evaluate(result.model, tiny_dataset, hook=hook) >= 85.0

    def test_gobo_weight_only_close_to_fp(self, tiny_model, tiny_dataset):
        result = GoboQuantizer().quantize(tiny_model)
        assert result.activation_hook_factory is None
        assert evaluate(result.model, tiny_dataset) >= 75.0
        assert 0.0 < result.extra["mean_outlier_fraction"] < 0.1

    def test_original_model_not_mutated(self, tiny_model, tiny_dataset):
        before = {n: v.copy() for n, v in tiny_model.named_parameters()}
        Q8BertQuantizer().quantize(tiny_model, calibration=tiny_dataset)
        TernaryBertQuantizer().quantize(tiny_model)
        for name, value in tiny_model.named_parameters():
            assert np.array_equal(before[name], value)
