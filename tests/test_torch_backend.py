"""Parity tests for the optional torch index-domain engine.

The torch backend replaces only the floating-point indicator-plane GEMMs
(``einsum``); the integer statistics are computed from the NumPy planes
in the shared base class, so against the NumPy oracle the contract is:

* **identical** :class:`~repro.core.index_compute.IndexComputeStats`
  (not approximately — by construction), and
* values equal to floating-point round-off.

The whole module skips cleanly when torch is not installed (it is an
optional dependency; CI exercises this file in a dedicated matrix leg).
"""

import numpy as np
import pytest

torch = pytest.importorskip("torch")

from repro.core.index_compute import (  # noqa: E402
    TorchIndexDomainEngine,
    VectorizedIndexDomainEngine,
    index_domain_matmul,
    index_domain_matmul_many,
)
from repro.transformer.config import TransformerConfig  # noqa: E402
from repro.transformer.index_model import execute_decoder, execute_model  # noqa: E402

NANO_CONFIG = TransformerConfig(
    name="bert-nano-torch-test",
    num_layers=2,
    hidden_size=32,
    num_heads=4,
    intermediate_size=64,
    vocab_size=128,
    max_position_embeddings=64,
)


def _operands(quantizer, rng, m, k, n, tag):
    activations = rng.normal(0.4, 1.5, (m, k))
    activations.ravel()[rng.choice(m * k, max(1, (m * k) // 40), replace=False)] = 25.0
    weights = rng.normal(0.0, 0.03, (k, n))
    return (
        quantizer.quantize(activations, f"{tag}.act"),
        quantizer.quantize(weights, f"{tag}.w"),
    )


class TestTorchEngineParity:
    def test_matmul_matches_numpy_oracle(self, quantizer, rng):
        aq, wq = _operands(quantizer, rng, 8, 24, 12, "torch0")
        oracle = VectorizedIndexDomainEngine(aq.dictionary, wq.dictionary).matmul(aq, wq)
        result = TorchIndexDomainEngine(aq.dictionary, wq.dictionary).matmul(aq, wq)
        assert result.stats == oracle.stats
        np.testing.assert_allclose(result.values, oracle.values, rtol=1e-9, atol=1e-9)

    def test_engine_switch_through_dispatch(self, quantizer, rng):
        aq, wq = _operands(quantizer, rng, 6, 10, 5, "torch1")
        numpy_values, numpy_stats = index_domain_matmul(aq, wq, engine="vectorized")
        torch_values, torch_stats = index_domain_matmul(aq, wq, engine="torch")
        assert torch_stats == numpy_stats
        np.testing.assert_allclose(torch_values, numpy_values, rtol=1e-9, atol=1e-9)

    def test_batched_matmul_many_matches(self, quantizer, rng):
        pairs = [_operands(quantizer, rng, 5, 12, 6, f"tb{i}") for i in range(3)]
        pairs.append(_operands(quantizer, rng, 3, 7, 4, "tb-odd"))
        numpy_results = index_domain_matmul_many(pairs, engine="vectorized")
        torch_results = index_domain_matmul_many(pairs, engine="torch")
        for n, t in zip(numpy_results, torch_results):
            assert t.stats == n.stats
            np.testing.assert_allclose(t.values, n.values, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("seed", range(3))
    def test_property_stats_identical_values_fp_close(self, quantizer, seed):
        rng = np.random.default_rng(4000 + seed)
        m, k, n = rng.integers(2, 16, size=3)
        aq, wq = _operands(quantizer, rng, int(m), int(k), int(n), f"tp{seed}")
        oracle = VectorizedIndexDomainEngine(aq.dictionary, wq.dictionary).matmul(
            aq, wq, per_row_stats=True
        )
        result = TorchIndexDomainEngine(aq.dictionary, wq.dictionary).matmul(
            aq, wq, per_row_stats=True
        )
        assert result.stats == oracle.stats
        assert result.row_stats == oracle.row_stats
        np.testing.assert_allclose(result.values, oracle.values, rtol=1e-9, atol=1e-9)


class TestTorchFullModelParity:
    def test_model_stats_identical(self, quantizer):
        numpy_run = execute_model(
            NANO_CONFIG, sequence_length=8, quantizer=quantizer, engine="vectorized"
        )
        torch_run = execute_model(
            NANO_CONFIG, sequence_length=8, quantizer=quantizer, engine="torch"
        )
        assert torch_run.stats == numpy_run.stats
        assert torch_run.output_rms_error == pytest.approx(
            numpy_run.output_rms_error, rel=1e-6
        )

    def test_decoder_stats_identical(self, quantizer):
        decoder = TransformerConfig(
            name="gpt-nano-torch-test",
            num_layers=2,
            hidden_size=32,
            num_heads=4,
            intermediate_size=64,
            vocab_size=128,
            max_position_embeddings=64,
        )
        numpy_run = execute_decoder(
            decoder, prompt_length=5, decode_tokens=2, quantizer=quantizer
        )
        torch_run = execute_decoder(
            decoder, prompt_length=5, decode_tokens=2, quantizer=quantizer, engine="torch"
        )
        assert torch_run.stats == numpy_run.stats
        assert torch_run.output_rms_error == pytest.approx(
            numpy_run.output_rms_error, rel=1e-6
        )


class TestDeviceResidentPlanes:
    """Cached planes are uploaded to the device once and reused after."""

    def test_upload_once_reuse_after(self, quantizer, rng):
        from repro.core.index_compute import PlaneCache, use_plane_cache

        aq, wq = _operands(quantizer, rng, 6, 16, 8, "resident")
        engine = TorchIndexDomainEngine(
            aq.dictionary, wq.dictionary, device="cpu"
        )
        oracle = VectorizedIndexDomainEngine(aq.dictionary, wq.dictionary)
        cache = PlaneCache(max_bytes=1 << 30)
        with use_plane_cache(cache):
            first = engine.matmul(aq, wq)
            uploads_after_first = cache.stats().device_uploads
            second = engine.matmul(aq, wq)
            expected = oracle.matmul(aq, wq)
        stats = cache.stats()
        assert uploads_after_first > 0
        # The second GEMM re-used every tensor the first one uploaded.
        assert stats.device_uploads == uploads_after_first
        assert stats.device_reuses >= uploads_after_first
        # Residency is an execution detail: parity with NumPy holds.
        assert first.stats == second.stats == expected.stats
        assert np.allclose(first.values, expected.values, rtol=1e-6, atol=1e-8)

    def test_decoder_with_resident_planes_matches_numpy(self, quantizer):
        from repro.core.index_compute import PlaneCache, use_plane_cache

        decoder = TransformerConfig(
            name="gpt-nano-torch-resident",
            num_layers=1,
            hidden_size=32,
            num_heads=4,
            intermediate_size=64,
            vocab_size=128,
            max_position_embeddings=64,
        )
        cache = PlaneCache(max_bytes=1 << 30)
        with use_plane_cache(cache):
            torch_run = execute_decoder(
                decoder, prompt_length=4, decode_tokens=3,
                quantizer=quantizer, engine="torch", device="cpu",
            )
            numpy_run = execute_decoder(
                decoder, prompt_length=4, decode_tokens=3, quantizer=quantizer
            )
        assert torch_run.stats == numpy_run.stats
        assert np.allclose(
            torch_run.outputs, numpy_run.outputs, rtol=1e-6, atol=1e-6
        )
        assert cache.stats().device_reuses > 0
