"""Tests for the memory subpackage: layout, compression, DRAM and SRAM."""

import numpy as np
import pytest

from repro.memory.compression import (
    FootprintBreakdown,
    method_footprint,
    model_memory_footprint,
    mokey_stream_bits,
)
from repro.memory.dram import DramModel
from repro.memory.layout import (
    GROUP_SIZE,
    pack_offchip,
    pack_onchip_5bit,
    unpack_offchip,
    unpack_onchip_5bit,
)
from repro.memory.sram import SramBuffer
from repro.transformer.model_zoo import bert_base, bert_large


def _encode(quantizer, rng, n=500, outliers=0.05):
    values = rng.normal(0, 1, n)
    k = max(1, int(n * outliers))
    values[rng.choice(n, k, replace=False)] = rng.choice([-1, 1], k) * 20.0
    q = quantizer.quantize(values, "t")
    return q.encoded


class TestOffchipLayout:
    def test_round_trip_is_lossless(self, quantizer, rng):
        encoded = _encode(quantizer, rng)
        container = pack_offchip(encoded)
        restored = unpack_offchip(container)
        assert np.array_equal(restored.is_outlier, encoded.is_outlier.ravel())
        gaussian = ~encoded.is_outlier.ravel()
        assert np.array_equal(
            restored.gaussian_index[gaussian], encoded.gaussian_index.ravel()[gaussian]
        )
        assert np.array_equal(restored.sign[gaussian], encoded.sign.ravel()[gaussian])
        assert np.array_equal(
            restored.outlier_index[~gaussian], encoded.outlier_index.ravel()[~gaussian]
        )

    def test_value_stream_is_half_a_byte_per_value(self, quantizer, rng):
        encoded = _encode(quantizer, rng, n=640)
        container = pack_offchip(encoded)
        assert container.value_bits == 640 * 4
        assert container.value_stream.size == 320

    def test_pointer_bits_formula(self, quantizer, rng):
        encoded = _encode(quantizer, rng, n=640)
        container = pack_offchip(encoded)
        groups = int(np.ceil(640 / GROUP_SIZE))
        expected = groups * 6 + int(encoded.is_outlier.sum()) * 6
        assert container.pointer_bits == expected

    def test_compression_ratio_close_to_4x_vs_fp16(self, quantizer, rng):
        encoded = _encode(quantizer, rng, n=20_000, outliers=0.02)
        container = pack_offchip(encoded)
        assert 3.3 < container.compression_ratio(16) < 4.0

    def test_odd_length_tensor(self, quantizer, rng):
        encoded = _encode(quantizer, rng, n=333)
        container = pack_offchip(encoded)
        restored = unpack_offchip(container)
        assert restored.is_outlier.size == 333

    def test_no_outliers(self, quantizer, rng):
        values = np.clip(rng.normal(0, 1, 128), -2, 2)
        encoded = quantizer.quantize(values, "t").encoded
        container = pack_offchip(encoded)
        restored = unpack_offchip(container)
        assert not restored.is_outlier.any()


class TestOnchipLayout:
    def test_round_trip(self, quantizer, rng):
        encoded = _encode(quantizer, rng)
        packed = pack_onchip_5bit(encoded)
        restored = unpack_onchip_5bit(packed)
        assert np.array_equal(restored.is_outlier, encoded.is_outlier.ravel())
        gaussian = ~encoded.is_outlier.ravel()
        assert np.array_equal(restored.sign[gaussian], encoded.sign.ravel()[gaussian])
        assert np.array_equal(
            restored.gaussian_index[gaussian], encoded.gaussian_index.ravel()[gaussian]
        )
        assert np.array_equal(
            restored.outlier_index[~gaussian], encoded.outlier_index.ravel()[~gaussian]
        )

    def test_one_byte_per_value_staging(self, quantizer, rng):
        encoded = _encode(quantizer, rng, n=100)
        assert pack_onchip_5bit(encoded).size == 100


class TestCompressionAccounting:
    def test_mokey_stream_bits_matches_container(self, quantizer, rng):
        encoded = _encode(quantizer, rng, n=2000, outliers=0.03)
        container = pack_offchip(encoded)
        estimate = mokey_stream_bits(2000, float(encoded.is_outlier.mean()))
        assert estimate == pytest.approx(container.total_bits, rel=0.02)

    def test_zero_values(self):
        assert mokey_stream_bits(0, 0.0) == 0.0

    def test_footprint_activation_share_grows_with_sequence(self):
        cfg = bert_large()
        short = model_memory_footprint(cfg, 128, 16, 16)
        long = model_memory_footprint(cfg, 2048, 16, 16)
        assert long.activation_share > short.activation_share
        assert long.activation_share > 0.5

    def test_method_footprint_compression_ratios_match_table_iv_ordering(self):
        cfg = bert_base()
        fp32 = method_footprint(cfg, 128, 32, 32, "FP32")
        q8 = method_footprint(cfg, 128, 8, 8, "Q8BERT")
        mokey = method_footprint(cfg, 128, 4.4, 4.4, "Mokey")
        ternary = method_footprint(cfg, 128, 2, 8, "TernaryBERT")
        assert q8.compression_ratio(fp32) == pytest.approx(4.0, rel=0.01)
        assert 6.5 < mokey.compression_ratio(fp32) < 8.0
        assert ternary.compression_ratio(fp32) > mokey.compression_ratio(fp32)

    def test_breakdown_unit_conversions(self):
        breakdown = FootprintBreakdown(weight_bits=8 * 2 ** 20 * 8, activation_bits=0, label="x")
        assert breakdown.total_mb == pytest.approx(8.0)
        assert breakdown.weight_mb == pytest.approx(8.0)


class TestDram:
    def test_peak_bandwidth(self):
        dram = DramModel()
        assert dram.peak_bandwidth_bytes_per_second == pytest.approx(51.2e9)

    def test_transfer_cycles_scale_linearly(self):
        dram = DramModel()
        one = dram.transfer_cycles(1 << 20)
        four = dram.transfer_cycles(4 << 20)
        assert four == pytest.approx(4 * one, rel=0.01)

    def test_burst_granularity_rounding(self):
        dram = DramModel()
        assert dram.transfer_bytes(1) == 64
        assert dram.transfer_bytes(65) == 128
        assert dram.transfer_bytes(0) == 0

    def test_energy_proportional_to_traffic(self):
        dram = DramModel()
        assert dram.transfer_energy_joules(2 << 20) == pytest.approx(
            2 * dram.transfer_energy_joules(1 << 20), rel=0.01
        )


class TestSram:
    def test_area_grows_with_capacity(self):
        small = SramBuffer(256 * 1024, 16)
        large = SramBuffer(4 * 1024 * 1024, 16)
        assert large.area_mm2 > small.area_mm2

    def test_narrow_interface_buffer_is_smaller(self):
        wide = SramBuffer(1024 * 1024, 16)
        narrow = SramBuffer(1024 * 1024, 5)
        assert narrow.area_mm2 < wide.area_mm2

    def test_paper_area_relation_mokey_1mb_close_to_tc_256kb(self):
        """Table III: Mokey's 1MB buffer area is comparable to TC's 256KB."""
        tc_256 = SramBuffer(256 * 1024, 16).area_mm2
        mokey_1mb = SramBuffer(1024 * 1024, 5).area_mm2
        assert mokey_1mb == pytest.approx(tc_256, rel=0.35)

    def test_access_energy_positive_and_linear(self):
        buffer = SramBuffer(512 * 1024, 16)
        assert buffer.read_energy_joules(1e6) > 0
        assert buffer.write_energy_joules(2e6) == pytest.approx(
            2 * buffer.write_energy_joules(1e6)
        )

    def test_effective_value_capacity(self):
        buffer = SramBuffer(1024, 16)
        assert buffer.effective_value_capacity(16) == 512
        assert buffer.effective_value_capacity(5) == 1638
        with pytest.raises(ValueError):
            buffer.effective_value_capacity(0)
