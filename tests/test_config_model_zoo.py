"""Tests for TransformerConfig and the model zoo."""

import numpy as np
import pytest

from repro.transformer.config import TransformerConfig
from repro.transformer.model_zoo import (
    MODEL_CONFIGS,
    PAPER_MODELS,
    bert_base,
    bert_large,
    build_simulation_model,
    deberta_xl,
    gaussian_with_outliers,
    roberta_large,
)


class TestConfig:
    def test_head_dim(self):
        assert bert_base().head_dim == 64
        assert bert_large().head_dim == 64

    def test_invalid_heads_rejected(self):
        with pytest.raises(ValueError):
            TransformerConfig("bad", 2, 30, 4, 64)

    def test_parameter_counts_match_published_sizes(self):
        # BERT-Base ~110M, BERT-Large ~340M, RoBERTa-Large ~355M,
        # DeBERTa-XL ~750M (the paper quotes 750M).
        assert 100e6 < bert_base().parameter_count() < 120e6
        assert 320e6 < bert_large().parameter_count() < 350e6
        assert 340e6 < roberta_large().parameter_count() < 370e6
        assert 650e6 < deberta_xl().parameter_count() < 850e6

    def test_parameter_bytes_track_dtype(self):
        cfg32 = bert_base()
        cfg16 = TransformerConfig(**{**cfg32.to_dict(), "dtype": "float16"})
        assert cfg32.parameter_bytes() == 2 * cfg16.parameter_bytes()

    def test_activation_footprint_grows_quadratically(self):
        cfg = bert_large()
        small = cfg.activation_bytes(128)
        large = cfg.activation_bytes(2048)
        # 16x longer sequences -> more than 16x activations (quadratic term).
        assert large > 20 * small

    def test_activations_dominate_beyond_512_tokens(self):
        """The Fig. 1 observation: activations dominate past ~512 tokens."""
        cfg = TransformerConfig(**{**bert_large().to_dict(), "dtype": "float16",
                                   "max_position_embeddings": 2048})
        weights = cfg.parameter_bytes()
        assert cfg.activation_bytes(128) < weights
        assert cfg.activation_bytes(1024) > weights

    def test_scaled_config_preserves_structure(self):
        scaled = bert_large().scaled(8)
        assert scaled.num_layers == 24
        assert scaled.num_heads == 16
        assert scaled.hidden_size % scaled.num_heads == 0
        assert scaled.hidden_size < bert_large().hidden_size

    def test_scaled_factor_one_is_identity(self):
        cfg = bert_base()
        assert cfg.scaled(1) is cfg

    def test_scaled_invalid_factor(self):
        with pytest.raises(ValueError):
            bert_base().scaled(0)


class TestModelZoo:
    def test_all_paper_models_have_configs(self):
        for model_name, _task, _seq, _head in PAPER_MODELS:
            assert model_name in MODEL_CONFIGS

    def test_deberta_uses_disentangled_attention(self):
        assert deberta_xl().disentangled_attention
        assert not bert_large().disentangled_attention

    def test_gaussian_with_outliers_fraction(self, rng):
        values = gaussian_with_outliers((100_000,), std=1.0, outlier_fraction=0.02, rng=rng)
        outliers = np.abs(values) > 3.0
        assert 0.01 < outliers.mean() < 0.04

    def test_gaussian_with_outliers_no_outliers(self, rng):
        values = gaussian_with_outliers((10_000,), std=1.0, outlier_fraction=0.0, rng=rng)
        assert np.abs(values).max() < 6.0

    def test_build_simulation_model_scales_down(self):
        model = build_simulation_model("bert-base", scale=12, max_layers=2, seed=0)
        assert model.config.num_layers == 2
        assert model.config.hidden_size < 768
        assert model.config.hidden_size % model.config.num_heads == 0

    def test_build_simulation_model_task_mapping(self):
        assert build_simulation_model("bert-large", task="stsb", scale=16, max_layers=1).task == "regression"
        assert build_simulation_model("bert-large", task="squad", scale=16, max_layers=1).task == "qa"
        assert build_simulation_model("bert-base", task="mnli", scale=16, max_layers=1).task == "classification"

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            build_simulation_model("gpt-17")

    def test_weight_distributions_are_bell_shaped_with_outliers(self, tiny_model):
        """The synthetic weights reproduce the distribution Mokey relies on."""
        for name, values in list(tiny_model.weight_matrices().items())[:5]:
            flat = values.ravel()
            std = flat.std()
            inside = np.abs(flat - flat.mean()) < 3 * std
            assert inside.mean() > 0.93, name
