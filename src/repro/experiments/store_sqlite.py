"""Indexed SQLite artifact-store backend for large campaign grids.

Implements the :class:`~repro.experiments.store.StoreBackend` contract
over a single SQLite database (``<root>/records.sqlite``) with

* a real, indexed column per scenario axis (model, task,
  sequence_length, batch_size, scheme, design, buffer_bytes,
  activation_buffer_fraction) plus a materialised, indexed
  ``effective_scheme`` column (the scheme override, else the result's
  design name — what the report's scheme column shows) and the content
  key as primary key, so
  :meth:`SqliteStoreBackend.query` pushes filters, grouping, ordering
  and limits into the engine instead of deserializing every record;
* JSON payload columns for the scenario/result/fidelity/measured
  parts, extracted on demand (``json_extract``) for metric filters;
* WAL journaling + ``BEGIN IMMEDIATE`` write transactions with a busy
  timeout, so concurrent shard writers — threads or processes — can
  interleave puts and upgrades against one store without losing
  records (the stress tests in ``tests/test_store_backends.py`` hammer
  exactly this).

Record semantics (keys, last-write-wins upgrades, insertion order via
rowid, degrade-don't-crash on unreadable rows) match the JSONL backend
bit-for-bit; ``repro store migrate`` converts either direction
losslessly.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.accelerator.metrics import SimulationResult
from repro.experiments.accuracy import FidelityResult
from repro.experiments.measured import MeasuredStats
from repro.experiments.scenario import Scenario
from repro.experiments.store import (
    AXIS_FIELDS,
    GROUP_METRICS,
    QUERY_FIELDS,
    SCHEMA_VERSION,
    Filter,
    StoreEntry,
    _QueryPlan,
    register_store_backend,
    scenario_key,
)

__all__ = ["SqliteStoreBackend", "SQLITE_FILENAME"]

SQLITE_FILENAME = "records.sqlite"

_CREATE_TABLE = """
CREATE TABLE IF NOT EXISTS records (
    key TEXT PRIMARY KEY,
    schema_version INTEGER NOT NULL,
    model TEXT,
    task TEXT,
    sequence_length INTEGER,
    batch_size INTEGER,
    scheme TEXT,
    design TEXT,
    buffer_bytes INTEGER,
    activation_buffer_fraction REAL,
    effective_scheme TEXT,
    scenario TEXT NOT NULL,
    result TEXT NOT NULL,
    fidelity TEXT,
    measured TEXT
)
"""

_PAYLOAD_COLUMNS = "key, scenario, result, fidelity, measured"


def _dumps(payload: Optional[dict]) -> Optional[str]:
    if payload is None:
        return None
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class SqliteStoreBackend:
    """WAL-mode SQLite implementation of the artifact-store contract.

    One connection per thread (SQLite connections are not thread-safe);
    every write runs inside a ``BEGIN IMMEDIATE`` transaction with
    retry-on-busy, so any number of threads or processes may share the
    same database file.  Reads never create the store — a missing
    database is an empty store, mirroring the JSONL backend.
    """

    backend_name = "sqlite"
    FILENAME = SQLITE_FILENAME

    #: How long a writer waits on a locked database before giving up.
    BUSY_TIMEOUT_S = 30.0

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        self.path = self.root / self.FILENAME
        self._local = threading.local()
        self._connections: List[sqlite3.Connection] = []
        self._conn_lock = threading.Lock()
        # Keys of rows whose payload failed to rebuild (counted as
        # skipped alongside wrong-schema-version rows).
        self._corrupt: Set[str] = set()

    # -- connection management -------------------------------------------

    def _connect(self, create: bool) -> Optional[sqlite3.Connection]:
        conn: Optional[sqlite3.Connection] = getattr(self._local, "conn", None)
        if conn is not None:
            return conn
        if not create and not self.path.exists():
            return None
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        # isolation_level=None: no implicit transactions; writes manage
        # their own BEGIN IMMEDIATE / COMMIT for multi-writer safety.
        conn = sqlite3.connect(str(self.path), timeout=self.BUSY_TIMEOUT_S, isolation_level=None)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(f"PRAGMA busy_timeout={int(self.BUSY_TIMEOUT_S * 1000)}")
        conn.execute(_CREATE_TABLE)
        self._ensure_effective_scheme(conn)
        for column in AXIS_FIELDS + ("effective_scheme", "schema_version"):
            conn.execute(
                f"CREATE INDEX IF NOT EXISTS idx_records_{column} ON records ({column})"
            )
        self._local.conn = conn
        with self._conn_lock:
            self._connections.append(conn)
        return conn

    def _ensure_effective_scheme(self, conn: sqlite3.Connection) -> None:
        """Migrate pre-existing databases to the materialised scheme column.

        ``effective_scheme`` holds what the report's scheme column shows
        (the scenario's override, else the result's design name) so the
        ``--scheme``/``effective_scheme`` filter compiles to an indexed
        SQL comparison instead of rebuilding every result payload.  The
        backfill expression matches the Python evaluator exactly —
        ``COALESCE(scheme, json_extract(result, '$.design_name'))`` — so
        answers stay bit-identical to the JSONL backend.  Runs inside one
        immediate transaction; a concurrent opener that raced the ALTER
        re-checks and finds the column already present.
        """
        columns = {row[1] for row in conn.execute("PRAGMA table_info(records)")}
        if "effective_scheme" in columns:
            return
        deadline = time.monotonic() + self.BUSY_TIMEOUT_S
        while True:
            try:
                conn.execute("BEGIN IMMEDIATE")
                break
            except sqlite3.OperationalError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.005)
        try:
            columns = {row[1] for row in conn.execute("PRAGMA table_info(records)")}
            if "effective_scheme" not in columns:
                conn.execute("ALTER TABLE records ADD COLUMN effective_scheme TEXT")
                conn.execute(
                    "UPDATE records SET effective_scheme = "
                    "COALESCE(scheme, json_extract(result, '$.design_name'))"
                )
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    def close(self) -> None:
        """Close every connection this instance opened (all threads)."""
        with self._conn_lock:
            conns, self._connections = self._connections, []
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:
                pass
        self._local = threading.local()

    def _write(self, conn: sqlite3.Connection, work) -> Any:
        """Run ``work(conn)`` inside an immediate transaction, retrying on busy."""
        deadline = time.monotonic() + self.BUSY_TIMEOUT_S
        while True:
            try:
                conn.execute("BEGIN IMMEDIATE")
                break
            except sqlite3.OperationalError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.005)
        try:
            value = work(conn)
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")
        return value

    # -- row <-> entry ----------------------------------------------------

    def _rebuild(self, row: Sequence[Any]) -> Optional[StoreEntry]:
        key, scenario_json, result_json, fidelity_json, measured_json = row
        try:
            scenario = Scenario.from_dict(json.loads(scenario_json))
            result = SimulationResult.from_dict(json.loads(result_json))
            fidelity = (
                None if fidelity_json is None else FidelityResult.from_dict(json.loads(fidelity_json))
            )
            measured = (
                None if measured_json is None else MeasuredStats.from_dict(json.loads(measured_json))
            )
        except (ValueError, KeyError, TypeError, AttributeError):
            self._corrupt.add(key)
            return None
        return StoreEntry(scenario, result, fidelity, measured)

    # -- read surface -----------------------------------------------------

    @property
    def skipped(self) -> int:
        """Stored records this code version cannot read (wrong schema
        version, unparseable payloads discovered so far)."""
        conn = self._connect(create=False)
        if conn is None:
            return 0
        (stale,) = conn.execute(
            "SELECT COUNT(*) FROM records WHERE schema_version != ?", (SCHEMA_VERSION,)
        ).fetchone()
        return int(stale) + len(self._corrupt)

    def __len__(self) -> int:
        conn = self._connect(create=False)
        if conn is None:
            return 0
        (count,) = conn.execute(
            "SELECT COUNT(*) FROM records WHERE schema_version = ?", (SCHEMA_VERSION,)
        ).fetchone()
        return int(count) - sum(1 for _ in self._corrupt)

    def __contains__(self, scenario: Scenario) -> bool:
        return self._fetch_entry(scenario_key(scenario)) is not None

    def _fetch_entry(self, key: str) -> Optional[StoreEntry]:
        conn = self._connect(create=False)
        if conn is None or key in self._corrupt:
            return None
        row = conn.execute(
            f"SELECT {_PAYLOAD_COLUMNS} FROM records WHERE key = ? AND schema_version = ?",
            (key, SCHEMA_VERSION),
        ).fetchone()
        if row is None:
            return None
        return self._rebuild(row)

    def get(self, scenario: Scenario) -> Optional[SimulationResult]:
        """The stored result for ``scenario``, or ``None``."""
        entry = self._fetch_entry(scenario_key(scenario))
        return entry.result if entry is not None else None

    def get_fidelity(self, scenario: Scenario) -> Optional[FidelityResult]:
        """The stored fidelity for ``scenario``, or ``None``."""
        entry = self._fetch_entry(scenario_key(scenario))
        return entry.fidelity if entry is not None else None

    def get_measured(self, scenario: Scenario) -> Optional[MeasuredStats]:
        """The stored measured stats for ``scenario``, or ``None``."""
        entry = self._fetch_entry(scenario_key(scenario))
        return entry.measured if entry is not None else None

    def keys(self) -> List[str]:
        conn = self._connect(create=False)
        if conn is None:
            return []
        rows = conn.execute(
            "SELECT key FROM records WHERE schema_version = ? ORDER BY rowid",
            (SCHEMA_VERSION,),
        ).fetchall()
        return [key for (key,) in rows if key not in self._corrupt]

    def records(self) -> Iterator[StoreEntry]:
        """All readable entries, in insertion order, as a lazy cursor scan.

        Rows stream straight off a SQLite cursor (rowid order — stable
        under upgrades, which UPDATE in place), so a prefix read only
        deserializes the prefix; rows that fail to rebuild are counted
        into :attr:`skipped` and skipped.
        """
        conn = self._connect(create=False)
        if conn is None:
            return
        cursor = conn.execute(
            f"SELECT {_PAYLOAD_COLUMNS} FROM records WHERE schema_version = ? ORDER BY rowid",
            (SCHEMA_VERSION,),
        )
        for row in cursor:
            entry = self._rebuild(row)
            if entry is not None:
                yield entry

    def refresh(self) -> None:
        """Forget remembered corrupt rows; SQLite reads are always live."""
        self._corrupt = set()

    # -- query pushdown ---------------------------------------------------

    def query(
        self,
        filters: Iterable[Union[str, Filter]] = (),
        group_by: Optional[Union[str, Sequence[str]]] = None,
        order_by: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> Union[Iterator[StoreEntry], List[Dict[str, Any]]]:
        """Filtered (and optionally grouped) view, evaluated inside SQLite.

        Same signature and row semantics as
        :meth:`repro.experiments.store.ArtifactStore.query` — the shared
        :class:`~repro.experiments.store._QueryPlan` validates the query,
        then compiles here to a single SQL statement over the indexed
        axis columns (metrics via ``json_extract``), so filtering,
        grouping, ordering and ``limit`` all happen server-side and only
        the surviving rows are deserialized.
        """
        plan = _QueryPlan.build(filters, group_by, order_by, limit)
        conn = self._connect(create=False)
        if conn is None:
            if plan.group_fields:
                return []
            return iter(())
        where, params = self._compile_filters(plan)
        if plan.group_fields:
            return self._query_groups(conn, plan, where, params)
        return self._query_entries(conn, plan, where, params)

    @staticmethod
    def _compile_filters(plan: _QueryPlan) -> Tuple[List[str], List[Any]]:
        where = ["schema_version = ?"]
        params: List[Any] = [SCHEMA_VERSION]
        for field, op, value in plan.filters:
            if value is None:
                where.append(f"{field.sql} IS {'NULL' if op == '==' else 'NOT NULL'}")
            else:
                where.append(f"{field.sql} {'=' if op == '==' else op} ?")
                params.append(value)
        return where, params

    def _query_entries(
        self, conn: sqlite3.Connection, plan: _QueryPlan, where: List[str], params: List[Any]
    ) -> Iterator[StoreEntry]:
        order = ["rowid"]
        if plan.order_field is not None:
            field = QUERY_FIELDS[plan.order_field]
            # NULLs first ASC / last DESC is SQLite's default placement,
            # matching the plan's Python sort key.
            order.insert(0, f"{field.sql} {'DESC' if plan.descending else 'ASC'}")
        sql = (
            f"SELECT {_PAYLOAD_COLUMNS} FROM records "
            f"WHERE {' AND '.join(where)} ORDER BY {', '.join(order)}"
        )
        if plan.limit is not None:
            sql += " LIMIT ?"
            params = params + [plan.limit]

        def rows() -> Iterator[StoreEntry]:
            for row in conn.execute(sql, params):
                entry = self._rebuild(row)
                if entry is not None:
                    yield entry

        return rows()

    def _query_groups(
        self, conn: sqlite3.Connection, plan: _QueryPlan, where: List[str], params: List[Any]
    ) -> List[Dict[str, Any]]:
        group_cols = [field.sql for field in plan.group_fields]
        select = [f'{field.sql} AS "{field.name}"' for field in plan.group_fields]
        select.append('COUNT(*) AS "count"')
        select.append('SUM(fidelity IS NOT NULL) AS "with_fidelity"')
        select.append('SUM(measured IS NOT NULL) AS "with_measured"')
        for metric in GROUP_METRICS:
            expr = QUERY_FIELDS[metric].sql
            select.append(f'MIN({expr}) AS "min_{metric}"')
            select.append(f'AVG({expr}) AS "mean_{metric}"')
        # Group keys are always secondary sort keys: ties under an explicit
        # order_by fall back to the default key order, exactly like the JSONL
        # plan's stable sort over key-ordered rows.
        order_terms = [f'"{field.name}" ASC' for field in plan.group_fields]
        if plan.order_field is not None:
            order_terms.insert(
                0, f'"{plan.order_field}" {"DESC" if plan.descending else "ASC"}'
            )
        order = ", ".join(order_terms)
        sql = (
            f"SELECT {', '.join(select)} FROM records WHERE {' AND '.join(where)} "
            f"GROUP BY {', '.join(group_cols)} ORDER BY {order}"
        )
        if plan.limit is not None:
            sql += " LIMIT ?"
            params = params + [plan.limit]
        cursor = conn.execute(sql, params)
        names = [desc[0] for desc in cursor.description]
        return [dict(zip(names, row)) for row in cursor.fetchall()]

    # -- mutation ---------------------------------------------------------

    def put(
        self,
        scenario: Scenario,
        result: SimulationResult,
        fidelity: Optional[FidelityResult] = None,
        measured: Optional[MeasuredStats] = None,
    ) -> bool:
        """Persist one record; returns ``False`` if nothing new was stored.

        Same last-write-wins upgrade semantics as the JSONL backend: an
        existing record only changes when a missing part (fidelity /
        measured) is offered, and the upgrade replaces the scenario and
        result payloads while keeping the row's original insertion
        position (UPDATE leaves rowid unchanged).  The decision and the
        write happen in one ``BEGIN IMMEDIATE`` transaction, so
        concurrent upgraders never lose a part.
        """
        conn = self._connect(create=True)
        return self._write(conn, lambda c: self._put_locked(c, scenario, result, fidelity, measured))

    def _put_locked(
        self,
        conn: sqlite3.Connection,
        scenario: Scenario,
        result: SimulationResult,
        fidelity: Optional[FidelityResult],
        measured: Optional[MeasuredStats],
    ) -> bool:
        key = scenario_key(scenario)
        effective_scheme = (
            scenario.scheme if scenario.scheme is not None else result.design_name
        )
        row = conn.execute(
            "SELECT fidelity, measured FROM records WHERE key = ? AND schema_version = ?",
            (key, SCHEMA_VERSION),
        ).fetchone()
        if row is not None:
            existing_fidelity, existing_measured = row
            adds_fidelity = fidelity is not None and existing_fidelity is None
            adds_measured = measured is not None and existing_measured is None
            if not adds_fidelity and not adds_measured:
                return False
            fidelity_json = _dumps(fidelity.to_dict()) if fidelity is not None else existing_fidelity
            measured_json = _dumps(measured.to_dict()) if measured is not None else existing_measured
            conn.execute(
                "UPDATE records SET schema_version = ?, scenario = ?, result = ?, "
                "effective_scheme = ?, fidelity = ?, measured = ? WHERE key = ?",
                (
                    SCHEMA_VERSION,
                    _dumps(scenario.to_dict()),
                    _dumps(result.to_dict()),
                    effective_scheme,
                    fidelity_json,
                    measured_json,
                    key,
                ),
            )
            return True
        axis_values = tuple(getattr(scenario, name) for name in AXIS_FIELDS)
        conn.execute(
            f"INSERT OR REPLACE INTO records "
            f"(key, schema_version, {', '.join(AXIS_FIELDS)}, effective_scheme, "
            f"scenario, result, fidelity, measured) "
            f"VALUES ({', '.join('?' * (len(AXIS_FIELDS) + 7))})",
            (key, SCHEMA_VERSION)
            + axis_values
            + (
                effective_scheme,
                _dumps(scenario.to_dict()),
                _dumps(result.to_dict()),
                _dumps(fidelity.to_dict()) if fidelity is not None else None,
                _dumps(measured.to_dict()) if measured is not None else None,
            ),
        )
        return True

    def put_many(self, entries: Iterable[StoreEntry]) -> int:
        """Persist many entries in one write transaction; returns how many
        stored anything (bulk-load / migration fast path)."""
        conn = self._connect(create=True)

        def work(c: sqlite3.Connection) -> int:
            return sum(
                1
                for entry in entries
                if self._put_locked(c, entry.scenario, entry.result, entry.fidelity, entry.measured)
            )

        return self._write(conn, work)

    def clear(self) -> int:
        """Delete every record; returns how many current-schema records existed.

        The database file itself remains (WAL and connections stay
        valid), so other writers sharing the store keep working.
        """
        conn = self._connect(create=False)
        if conn is None:
            return 0

        def work(c: sqlite3.Connection) -> int:
            (count,) = c.execute(
                "SELECT COUNT(*) FROM records WHERE schema_version = ?", (SCHEMA_VERSION,)
            ).fetchone()
            c.execute("DELETE FROM records")
            return int(count) - sum(1 for _ in self._corrupt)

        count = self._write(conn, work)
        self._corrupt = set()
        return count


register_store_backend("sqlite", SqliteStoreBackend)
