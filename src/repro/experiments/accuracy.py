"""Accuracy campaigns: task-fidelity evaluation of quantization schemes.

The paper's headline claim is joint: Mokey's 4-bit dictionary quantization
costs <1% task fidelity (Table I) *while* delivering the hardware wins of
Tables II-IV.  This module computes the accuracy half for the same
:class:`~repro.experiments.scenario.Scenario` grid the hardware campaigns
sweep: for each scenario it materializes the scaled functional twin of the
model from the zoo, quantizes it through the numerics side of the scheme
registry (weight-only and, where the scheme quantizes activations,
weight+activation), evaluates it on the synthetic task suite
(:mod:`repro.transformer.tasks`) and returns a :class:`FidelityResult`.

Scores are fidelity to each model's own FP behaviour (the FP model scores
100 by construction), so ``fp_score - score`` is the paper's "Err"
quantity — degradation relative to the FP baseline; see DESIGN.md §2.

Fidelity depends only on ``(model, task, scheme)`` — not on sequence
length, batch size, design point or buffer capacity — so one quantization
plus evaluation (memoised per :func:`accuracy_key` in the campaign's
:class:`~repro.experiments.campaign.ResultCache`) serves every seq/batch/
buffer point of the grid.

Built-in schemes are mapped to numerics evaluators here (the Mokey family
through the full :class:`~repro.core.model_quantizer.MokeyModelQuantizer`,
everything else through the scheme's tensor-level ``quantize_dequantize``);
a registered scheme without an evaluator — e.g. a compute-only cost model —
raises :class:`UnsupportedSchemeError` when swept with accuracy enabled.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Callable, Dict, Mapping, NamedTuple, Optional, Tuple

import numpy as np

from repro.experiments.scenario import Scenario, build_design
from repro.transformer.tasks import (
    TASK_METRICS,
    SyntheticDataset,
    evaluate,
    generate_inputs,
    label_with_model,
    task_family,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.model_quantizer import MokeyModelQuantizer

__all__ = [
    "AccuracySettings",
    "DEFAULT_ACCURACY_SETTINGS",
    "AccuracyKey",
    "FidelityResult",
    "UnsupportedSchemeError",
    "accuracy_scheme_for",
    "accuracy_key",
    "supports_accuracy",
    "supported_accuracy_schemes",
    "register_fidelity_evaluator",
    "evaluate_fidelity",
    "fidelity_digest",
]


class UnsupportedSchemeError(ValueError):
    """A scheme has no accuracy-side numerics evaluator registered."""


@dataclass(frozen=True)
class AccuracySettings:
    """Deterministic parameters of one fidelity evaluation.

    The functional models are the architecture-preserving scaled twins of
    DESIGN.md §2 (the full models hold 110M-750M parameters); the Golden
    Dictionary uses a reduced but structurally identical build so a fresh
    worker process pays fractions of a second, not tens.  All fields feed
    the evaluation deterministically: identical settings + scenario always
    produce a bit-identical :class:`FidelityResult`.

    Attributes:
        scale: Width divisor for the functional twin.
        max_layers: Encoder-depth cap for the functional twin.
        pool_samples: Synthetic samples generated per (model, task); the
            first :attr:`profile_samples` calibrate activations, the rest
            evaluate.
        profile_samples: Profiling inputs (the paper uses one small batch).
        classification_sequence_length: Eval tokens for MNLI/STS-B twins.
        qa_sequence_length: Eval tokens for SQuAD twins.
        golden_samples: Samples for the Golden Dictionary build.
        golden_repeats: Repeats for the Golden Dictionary build.
        golden_seed: Seed for the Golden Dictionary build.
    """

    scale: int = 16
    max_layers: int = 2
    pool_samples: int = 48
    profile_samples: int = 8
    classification_sequence_length: int = 24
    qa_sequence_length: int = 48
    golden_samples: int = 12000
    golden_repeats: int = 2
    golden_seed: int = 7

    def sequence_length_for(self, family: str) -> int:
        return self.qa_sequence_length if family == "qa" else self.classification_sequence_length

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data) -> "AccuracySettings":
        """Rebuild settings from :meth:`to_dict` output, ignoring unknown keys."""
        names = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in dict(data).items() if key in names})

    def digest(self) -> str:
        """Stable content digest of the settings.

        Stamped into every :class:`FidelityResult` so cached/stored
        fidelity is never served to a campaign evaluating under different
        parameters — a result is only reusable when its settings match.
        """
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


DEFAULT_ACCURACY_SETTINGS = AccuracySettings()

#: The memo key of one fidelity evaluation: ``(model, task, scheme)``.
AccuracyKey = Tuple[str, str, str]


def accuracy_scheme_for(scenario: Scenario) -> str:
    """The numerics scheme a scenario evaluates: the override, else the
    design's own datapath scheme."""
    if scenario.scheme is not None:
        return scenario.scheme
    return build_design(scenario.design).datapath


def accuracy_key(scenario: Scenario) -> AccuracyKey:
    """The fidelity memo key of ``scenario``.

    Deliberately excludes sequence length, batch size, design point and
    buffer capacity: task fidelity is a property of the numerics alone, so
    one evaluation serves every hardware point of the grid.
    """
    return (scenario.model, scenario.task, accuracy_scheme_for(scenario))


def _stable_seed(model: str, task: str) -> int:
    """A process- and hash-seed-independent seed for one (model, task)."""
    blob = f"{model}|{task}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest()[:4], "big")


@dataclass
class FidelityResult:
    """Task-fidelity outcome of one (model, task, scheme) evaluation.

    Attributes:
        scheme: Numerics scheme evaluated.
        metric: Task metric (``accuracy`` | ``spearman`` | ``f1``), in
            percent on the fidelity-to-FP scale (FP model = 100).
        fp_score: Score of the FP twin on its own labels (100 nominal).
        weight_only_score: Score after weight-only quantization.
        weight_activation_score: Score after weight+activation
            quantization; ``None`` when the scheme has no activation
            numerics (FP16, GOBO).
        weight_outlier_fraction: Fraction of weight values outlier-encoded
            (measured for the Mokey family, the scheme's declared storage
            fraction otherwise) — Table I "W OT%" when ×100.
        activation_outlier_fraction: Same for activations ("A OT%").
        compression_ratio: FP32 weight bits over quantized weight bits.
        eval_samples: Evaluation samples behind the scores.
        seed: Seed the functional twin and datasets were built from.
        settings_digest: :meth:`AccuracySettings.digest` of the settings
            that produced the result; cache/store lookups only reuse a
            result whose digest matches the requested settings.
    """

    scheme: str = ""
    metric: str = ""
    fp_score: float = 0.0
    weight_only_score: float = 0.0
    weight_activation_score: Optional[float] = None
    weight_outlier_fraction: float = 0.0
    activation_outlier_fraction: float = 0.0
    compression_ratio: float = 1.0
    eval_samples: int = 0
    seed: int = 0
    settings_digest: str = ""

    @property
    def weight_only_error(self) -> float:
        """The paper's "Err" for weight-only mode: FP score minus score."""
        return self.fp_score - self.weight_only_score

    @property
    def weight_activation_error(self) -> Optional[float]:
        """The paper's "Err" for weight+activation mode (``None`` if unsupported)."""
        if self.weight_activation_score is None:
            return None
        return self.fp_score - self.weight_activation_score

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready field mapping; inverse of :meth:`from_dict`."""
        return {
            "scheme": self.scheme,
            "metric": self.metric,
            "fp_score": float(self.fp_score),
            "weight_only_score": float(self.weight_only_score),
            "weight_activation_score": (
                None
                if self.weight_activation_score is None
                else float(self.weight_activation_score)
            ),
            "weight_outlier_fraction": float(self.weight_outlier_fraction),
            "activation_outlier_fraction": float(self.activation_outlier_fraction),
            "compression_ratio": float(self.compression_ratio),
            "eval_samples": int(self.eval_samples),
            "seed": int(self.seed),
            "settings_digest": self.settings_digest,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FidelityResult":
        """Rebuild a result from :meth:`to_dict` output, ignoring unknown keys."""
        names = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in names})


def fidelity_digest(result: FidelityResult) -> str:
    """Stable content digest of the full fidelity result (all fields)."""
    blob = json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# --------------------------------------------------------------------------- #
# Numerics evaluators
# --------------------------------------------------------------------------- #
class _FidelityParts(NamedTuple):
    """Scheme-specific half of a fidelity evaluation."""

    weight_only_score: float
    weight_activation_score: Optional[float]
    weight_outlier_fraction: float
    activation_outlier_fraction: float
    compression_ratio: float


#: ``(scheme_name, fp_model, profiling, evaluation, settings) -> _FidelityParts``
_FidelityEvaluator = Callable[..., _FidelityParts]

_EVALUATORS: Dict[str, _FidelityEvaluator] = {}


def register_fidelity_evaluator(
    name: str, evaluator: _FidelityEvaluator, replace: bool = False
) -> None:
    """Register the accuracy-side numerics evaluator for scheme ``name``."""
    if name in _EVALUATORS and not replace:
        raise ValueError(f"fidelity evaluator for {name!r} is already registered")
    _EVALUATORS[name] = evaluator


def supports_accuracy(scheme_name: str) -> bool:
    """Whether ``scheme_name`` can be evaluated for task fidelity."""
    return scheme_name in _EVALUATORS


def supported_accuracy_schemes() -> Tuple[str, ...]:
    """Scheme names with a registered fidelity evaluator, sorted."""
    return tuple(sorted(_EVALUATORS))


_QUANTIZER_LOCK = threading.Lock()
_QUANTIZER_CACHE: Dict[Tuple[int, int, int], "MokeyModelQuantizer"] = {}


def _model_quantizer(settings: AccuracySettings) -> "MokeyModelQuantizer":
    """One shared MokeyModelQuantizer per Golden-Dictionary parameterisation.

    The Golden Dictionary build is the expensive, deterministic prefix of
    every Mokey-family evaluation; sharing it across the campaign keeps the
    per-scenario cost at the quantize+evaluate level.
    """
    from repro.core.golden_dictionary import generate_golden_dictionary
    from repro.core.model_quantizer import MokeyModelQuantizer

    key = (settings.golden_samples, settings.golden_repeats, settings.golden_seed)
    with _QUANTIZER_LOCK:
        quantizer = _QUANTIZER_CACHE.get(key)
        if quantizer is None:
            golden = generate_golden_dictionary(
                num_samples=settings.golden_samples,
                num_repeats=settings.golden_repeats,
                seed=settings.golden_seed,
            )
            quantizer = MokeyModelQuantizer(golden)
            _QUANTIZER_CACHE[key] = quantizer
        return quantizer


def _mokey_fidelity(
    scheme_name: str,
    fp_model,
    profiling: SyntheticDataset,
    evaluation: SyntheticDataset,
    settings: AccuracySettings,
) -> _FidelityParts:
    """Mokey-family numerics: full weight + profiled-activation quantization.

    The memory-compression deployments (``mokey-oc``, ``mokey-oc+on``)
    share Mokey's numerics exactly — only the accelerator cost model
    differs (paper Section IV-D).
    """
    from repro.core.model_quantizer import QuantizationMode

    quantizer = _model_quantizer(settings)
    weight_only = quantizer.quantize(fp_model, mode=QuantizationMode.WEIGHTS_ONLY)
    weight_only_score = evaluate(weight_only.model, evaluation)
    full = quantizer.quantize(
        fp_model,
        mode=QuantizationMode.WEIGHTS_AND_ACTIVATIONS,
        profiling_dataset=profiling,
        profiling_samples=settings.profile_samples,
    )
    hook = full.activation_hook()
    weight_activation_score = evaluate(full.model, evaluation, hook=hook)
    return _FidelityParts(
        weight_only_score=weight_only_score,
        weight_activation_score=weight_activation_score,
        weight_outlier_fraction=full.report.weight_outlier_fraction,
        activation_outlier_fraction=hook.outlier_fraction if hook is not None else 0.0,
        compression_ratio=full.report.weight_compression_ratio,
    )


class _UniformActivationHook:
    """Fake-quantizes activations with uniform symmetric numerics.

    Used for the Table IV baselines that quantize activations to a uniform
    integer grid (Q8BERT/I-BERT/Q-BERT/TernaryBERT run 8-bit activations);
    the final task logits stay FP like the Mokey path's excludes.
    """

    EXCLUDES = ("head.output",)

    def __init__(self, bits: int) -> None:
        self.bits = bits

    def __call__(self, name: str, array: np.ndarray) -> np.ndarray:
        from repro.baselines.base import uniform_symmetric_quantize

        if name in self.EXCLUDES:
            return array
        reconstruction, _ = uniform_symmetric_quantize(np.asarray(array), self.bits)
        return reconstruction.reshape(array.shape).astype(np.float32)


def _tensor_fidelity(
    scheme_name: str,
    fp_model,
    profiling: SyntheticDataset,
    evaluation: SyntheticDataset,
    settings: AccuracySettings,
) -> _FidelityParts:
    """Generic numerics: round-trip every weight through the scheme.

    Weight-only mode maps the scheme's ``quantize_dequantize`` over the
    parameter tensors; weight+activation mode additionally fake-quantizes
    activations on a uniform grid when the scheme declares activation bits
    below 16 (weights-only methods like GOBO report ``None``).  Outlier
    fractions come from the scheme's declared storage model — these
    numerics don't expose measured fractions.
    """
    from repro.schemes import get_scheme

    scheme = get_scheme(scheme_name)
    quantized = fp_model.copy()
    for name, values in fp_model.weight_matrices().items():
        quantized.set_parameter(
            name, np.asarray(scheme.quantize_dequantize(values, name=name), dtype=np.float32)
        )
    weight_only_score = evaluate(quantized, evaluation)

    weight_activation_score: Optional[float] = None
    if scheme.activation_bits < 16.0:
        hook = _UniformActivationHook(int(scheme.activation_bits))
        weight_activation_score = evaluate(quantized, evaluation, hook=hook)

    storage = scheme.storage()
    return _FidelityParts(
        weight_only_score=weight_only_score,
        weight_activation_score=weight_activation_score,
        weight_outlier_fraction=storage.weight_outlier_fraction,
        activation_outlier_fraction=storage.activation_outlier_fraction,
        compression_ratio=32.0 / float(scheme.weight_bits),
    )


for _name in ("mokey", "mokey-oc", "mokey-oc+on"):
    register_fidelity_evaluator(_name, _mokey_fidelity)
for _name in ("fp16", "gobo", "q8bert", "ibert", "qbert", "ternarybert"):
    register_fidelity_evaluator(_name, _tensor_fidelity)
del _name


# --------------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------------- #
def evaluate_fidelity(
    model: str,
    task: str,
    scheme: str,
    settings: Optional[AccuracySettings] = None,
) -> FidelityResult:
    """Evaluate the task fidelity of ``scheme`` on one (model, task) pair.

    Deterministic: the functional twin, the dataset pool and the split are
    all derived from a stable hash of ``(model, task)``, so any process —
    serial or pool worker — produces a bit-identical result.

    Raises:
        UnsupportedSchemeError: ``scheme`` has no registered evaluator.
        ValueError: unknown task or model name.
    """
    from repro.transformer.model_zoo import build_simulation_model

    settings = settings or DEFAULT_ACCURACY_SETTINGS
    evaluator = _EVALUATORS.get(scheme)
    if evaluator is None:
        supported = ", ".join(supported_accuracy_schemes())
        raise UnsupportedSchemeError(
            f"scheme {scheme!r} has no accuracy-side numerics evaluator "
            f"(schemes supporting accuracy campaigns: {supported})"
        )
    family = task_family(task)
    seed = _stable_seed(model, task)
    try:
        fp_model = build_simulation_model(
            model, task=task, scale=settings.scale, max_layers=settings.max_layers, seed=seed
        )
    except KeyError as exc:
        raise ValueError(str(exc)) from None
    pool = label_with_model(
        fp_model,
        generate_inputs(
            fp_model.config.vocab_size,
            settings.sequence_length_for(family),
            settings.pool_samples,
            family,
            seed=seed + 1,
        ),
    )
    profiling = pool.subset(np.arange(settings.profile_samples))
    evaluation = pool.subset(np.arange(settings.profile_samples, pool.num_samples))

    fp_score = evaluate(fp_model, evaluation)
    parts = evaluator(scheme, fp_model, profiling, evaluation, settings)
    return FidelityResult(
        scheme=scheme,
        metric=TASK_METRICS[family],
        fp_score=fp_score,
        weight_only_score=parts.weight_only_score,
        weight_activation_score=parts.weight_activation_score,
        weight_outlier_fraction=parts.weight_outlier_fraction,
        activation_outlier_fraction=parts.activation_outlier_fraction,
        compression_ratio=parts.compression_ratio,
        eval_samples=evaluation.num_samples,
        seed=seed,
        settings_digest=settings.digest(),
    )
