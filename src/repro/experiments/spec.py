"""Declarative, JSON-round-trippable campaign specifications.

A :class:`CampaignSpec` is the full description of one experiment sweep as
a frozen value: the axes grid (:class:`AxisGrid`), which joins to compute
(:class:`Enrichments`) and how to execute (:class:`ExecutionPolicy`).
Because the spec is plain data — ``spec.to_json()`` /
``CampaignSpec.from_json(...)`` round-trip exactly — an experiment can be
committed to a repo, shipped to a worker fleet, re-run bit-identically
months later, and resumed after a kill from its on-disk store.

The streaming entry point is :func:`iter_campaign`::

    from repro.experiments import AxisGrid, CampaignSpec, ExecutionPolicy, iter_campaign

    spec = CampaignSpec(
        name="buffer-sweep",
        axes=AxisGrid(
            workloads=(("bert-large", "squad", None),),
            designs=("tensor-cores", "gobo", "mokey"),
            buffer_bytes=(256 * 1024, 1024 * 1024),
        ),
        execution=ExecutionPolicy(executor="process", store="./.repro-store"),
    )
    for record, progress in iter_campaign(spec):
        print(progress, record.scenario.label)

Every scenario is appended to the policy's store the moment it completes,
so a killed campaign resumes by re-running the same spec: persisted keys
are skipped (``resume=True``, the default) and the final record set —
store keys and digests — is bit-identical to an uninterrupted run.
:func:`run_spec` is the batch convenience (drain, return a
:class:`~repro.experiments.campaign.CampaignResult`).

Validation happens against the unified registry surface
(:mod:`repro.registry`): every model, task, scheme and design name on the
grid must be registered, and an unknown name raises a
:class:`~repro.registry.RegistryError` naming the registry and its
nearest match *before* anything simulates.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.accuracy import AccuracySettings
from repro.experiments.campaign import (
    EXECUTORS,
    CampaignProgress,
    CampaignResult,
    ResultCache,
    ScenarioRecord,
    expand_grid,
    stream_campaign,
)
from repro.experiments.measured import MeasurementSettings
from repro.experiments.scenario import KB, Scenario
from repro.experiments.store import StoreBackend, open_store

__all__ = [
    "AxisGrid",
    "Enrichments",
    "ExecutionPolicy",
    "CampaignSpec",
    "iter_campaign",
    "run_spec",
    "shard_spec",
]

WorkloadTriple = Tuple[str, str, Optional[int]]


def _tuple_or_none(values: Optional[Sequence[Any]]) -> Optional[Tuple[Any, ...]]:
    return None if values is None else tuple(values)


@dataclass(frozen=True)
class AxisGrid:
    """The swept axes of a campaign; expands to the scenario list.

    Mirrors :func:`~repro.experiments.campaign.expand_grid`: the first
    three axes cross with each other unless :attr:`workloads` pins
    explicit ``(model, task, sequence_length)`` triples (the paper's
    Table I pairs are not a full cross product), and every workload then
    crosses with batch sizes × schemes × designs × buffer sizes.

    Attributes:
        models, tasks, sequence_lengths: Workload axes (``None`` sequence
            length = the task's default).
        batch_sizes: Batch axis.
        schemes: Scheme overrides (``None`` = the design's own scheme).
        designs: Registered design names.
        buffer_bytes: On-chip buffer capacity axis.
        workloads: Optional explicit workload triples replacing the cross
            product of the first three axes.
        shard: Optional ``(index, count)`` pair restricting the grid to
            one deterministic shard: scenario ``k`` of the full expansion
            belongs to shard ``k % count``.  The ``count`` shards of a
            grid are pairwise disjoint (positionally), their union is the
            full grid, and each shard preserves full-grid order — the
            algebra :func:`shard_spec` (and the campaign service's worker
            fan-out) is built on.
    """

    models: Tuple[str, ...] = ("bert-base",)
    tasks: Tuple[str, ...] = ("mnli",)
    sequence_lengths: Tuple[Optional[int], ...] = (None,)
    batch_sizes: Tuple[int, ...] = (1,)
    schemes: Tuple[Optional[str], ...] = (None,)
    designs: Tuple[str, ...] = ("mokey",)
    buffer_bytes: Tuple[int, ...] = (512 * KB,)
    workloads: Optional[Tuple[WorkloadTriple, ...]] = None
    shard: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        # Normalise sequences (JSON lists, generator output) to tuples so
        # the grid is hashable and from_dict(to_dict()) round-trips to
        # equality.
        for name in ("models", "tasks", "sequence_lengths", "batch_sizes",
                     "schemes", "designs", "buffer_bytes"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        if self.workloads is not None:
            object.__setattr__(
                self, "workloads", tuple(tuple(triple) for triple in self.workloads)
            )
        if self.shard is not None:
            object.__setattr__(self, "shard", tuple(self.shard))

    def scenarios(self) -> List[Scenario]:
        """Expand the axes into the scenario list (this shard's, if sharded).

        A sharded grid takes every ``count``-th scenario of the full
        expansion starting at ``index`` — a round-robin slice, so the
        shards of one grid stay balanced even when the grid's tail axes
        (e.g. buffer sizes) correlate with simulation cost.
        """
        expanded = expand_grid(
            models=self.models,
            tasks=self.tasks,
            sequence_lengths=self.sequence_lengths,
            batch_sizes=self.batch_sizes,
            schemes=self.schemes,
            designs=self.designs,
            buffer_bytes=self.buffer_bytes,
            workloads=self.workloads,
        )
        if self.shard is None:
            return expanded
        index, count = self.shard
        return expanded[index::count]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "models": list(self.models),
            "tasks": list(self.tasks),
            "sequence_lengths": list(self.sequence_lengths),
            "batch_sizes": list(self.batch_sizes),
            "schemes": list(self.schemes),
            "designs": list(self.designs),
            "buffer_bytes": list(self.buffer_bytes),
            "workloads": (
                None if self.workloads is None else [list(t) for t in self.workloads]
            ),
            "shard": None if self.shard is None else list(self.shard),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AxisGrid":
        """Rebuild from :meth:`to_dict` output, ignoring unknown keys."""
        names = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in dict(data).items() if key in names}
        if kwargs.get("workloads") is not None:
            kwargs["workloads"] = tuple(tuple(triple) for triple in kwargs["workloads"])
        if kwargs.get("shard") is not None:
            kwargs["shard"] = tuple(kwargs["shard"])
        return cls(**kwargs)


@dataclass(frozen=True)
class Enrichments:
    """Which joins a campaign computes next to the hardware results.

    Attributes:
        accuracy: Join a :class:`~repro.experiments.accuracy.FidelityResult`
            to every record (memoised per ``(model, task, scheme)``).
        measured: Join a :class:`~repro.experiments.measured.MeasuredStats`
            (memoised per ``(model, seq, batch)``).
        accuracy_settings: Parameters of the fidelity evaluation; ``None``
            uses :data:`~repro.experiments.accuracy.DEFAULT_ACCURACY_SETTINGS`.
        measurement_settings: Parameters of the measured-layer execution;
            ``None`` uses
            :data:`~repro.experiments.measured.DEFAULT_MEASUREMENT_SETTINGS`.
    """

    accuracy: bool = False
    measured: bool = False
    accuracy_settings: Optional[AccuracySettings] = None
    measurement_settings: Optional[MeasurementSettings] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "accuracy": bool(self.accuracy),
            "measured": bool(self.measured),
            "accuracy_settings": (
                None if self.accuracy_settings is None else self.accuracy_settings.to_dict()
            ),
            "measurement_settings": (
                None
                if self.measurement_settings is None
                else self.measurement_settings.to_dict()
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Enrichments":
        """Rebuild from :meth:`to_dict` output, ignoring unknown keys."""
        raw_accuracy = data.get("accuracy_settings")
        raw_measurement = data.get("measurement_settings")
        return cls(
            accuracy=bool(data.get("accuracy", False)),
            measured=bool(data.get("measured", False)),
            accuracy_settings=(
                None if raw_accuracy is None else AccuracySettings.from_dict(raw_accuracy)
            ),
            measurement_settings=(
                None
                if raw_measurement is None
                else MeasurementSettings.from_dict(raw_measurement)
            ),
        )


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a campaign executes: fan-out, persistence and resume semantics.

    Attributes:
        executor: ``"serial"`` / ``"thread"`` / ``"process"`` (see
            :func:`~repro.experiments.campaign.stream_campaign`).
        max_workers: Pool width (``None`` = the executor's heuristic).
        chunksize: Scenarios per process-pool work item (process only).
        store: Artifact-store directory; ``None`` keeps everything in
            memory.  With a store, every completed scenario is appended
            incrementally, making the campaign killable and resumable.
        store_backend: Which registered store backend (``"jsonl"`` /
            ``"sqlite"``) to open the store directory under; ``None``
            (the default) keeps whatever layout the directory already
            holds, falling back to JSONL for a fresh directory.
        resume: When the store already holds a scenario's key, serve it
            from disk instead of re-simulating (the default).  With
            ``resume=False`` the store is kept out of the lookup path —
            everything re-simulates — but fresh results still persist.
    """

    executor: str = "thread"
    max_workers: Optional[int] = None
    chunksize: Optional[int] = None
    store: Optional[str] = None
    store_backend: Optional[str] = None
    resume: bool = True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "executor": self.executor,
            "max_workers": self.max_workers,
            "chunksize": self.chunksize,
            "store": self.store,
            "store_backend": self.store_backend,
            "resume": bool(self.resume),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutionPolicy":
        """Rebuild from :meth:`to_dict` output, ignoring unknown keys."""
        names = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in dict(data).items() if key in names})


#: Schema version of the serialized spec form.  Bump on incompatible
#: changes to the JSON layout; older specs are still accepted as long as
#: their fields parse (unknown fields are ignored in both directions).
SPEC_VERSION = 1


@dataclass(frozen=True)
class CampaignSpec:
    """One experiment, fully described as a frozen, serializable value.

    Attributes:
        name: Human label; appears in progress output and filenames only
            (two specs differing only by name run identical campaigns).
        axes: The swept grid (:class:`AxisGrid`).
        enrichments: Joins to compute (:class:`Enrichments`).
        execution: Fan-out/persistence policy (:class:`ExecutionPolicy`).
    """

    name: str = "campaign"
    axes: AxisGrid = field(default_factory=AxisGrid)
    enrichments: Enrichments = field(default_factory=Enrichments)
    execution: ExecutionPolicy = field(default_factory=ExecutionPolicy)

    # -- validation ------------------------------------------------------

    def validate(self) -> "CampaignSpec":
        """Check every name on the grid against the unified registries.

        Raises :class:`~repro.registry.RegistryError` for unknown model /
        task / scheme / design names (naming the registry and its nearest
        match) and ``ValueError`` for malformed numeric axes or an unknown
        executor — all before anything simulates.  Returns ``self`` so it
        chains: ``iter_campaign(spec.validate())``.
        """
        from repro import registry  # deferred: registry imports this package

        axes = self.axes
        if axes.workloads is not None:
            for triple in axes.workloads:
                if len(triple) != 3:
                    raise ValueError(
                        f"workload triple {triple!r} must be (model, task, sequence_length)"
                    )
            models = [model for model, _task, _seq in axes.workloads]
            tasks = [task for _model, task, _seq in axes.workloads]
            seqs = [seq for _model, _task, seq in axes.workloads]
        else:
            models, tasks, seqs = list(axes.models), list(axes.tasks), list(axes.sequence_lengths)
        for model in models:
            registry.MODELS.get(model)
        for task in tasks:
            registry.TASKS.get(task)
        for scheme in axes.schemes:
            if scheme is not None:
                registry.SCHEMES.get(scheme)
        for design in axes.designs:
            registry.DESIGNS.get(design)
        for seq in seqs:
            if seq is not None and (not isinstance(seq, int) or seq <= 0):
                raise ValueError(f"sequence lengths must be positive or None, got {seq!r}")
        for label, values in (("batch_sizes", axes.batch_sizes),
                              ("buffer_bytes", axes.buffer_bytes)):
            for value in values:
                if not isinstance(value, int) or value <= 0:
                    raise ValueError(f"{label} must be positive integers, got {value!r}")
        if axes.shard is not None:
            shard = axes.shard
            if (
                len(shard) != 2
                or not all(isinstance(part, int) and not isinstance(part, bool)
                           for part in shard)
            ):
                raise ValueError(
                    f"shard must be an (index, count) pair of integers, got {shard!r}"
                )
            index, count = shard
            if count < 1:
                raise ValueError(f"shard count must be >= 1, got {count}")
            if not 0 <= index < count:
                raise ValueError(
                    f"shard index must be in [0, {count}), got {index}"
                )
        if self.execution.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.execution.executor!r} "
                f"(choose from {', '.join(EXECUTORS)})"
            )
        if self.execution.store_backend is not None:
            registry.STORES.get(self.execution.store_backend)
        return self

    def scenarios(self) -> List[Scenario]:
        """The expanded scenario list of :attr:`axes`."""
        return self.axes.scenarios()

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready nested mapping; inverse of :meth:`from_dict`."""
        return {
            "spec_version": SPEC_VERSION,
            "name": self.name,
            "axes": self.axes.to_dict(),
            "enrichments": self.enrichments.to_dict(),
            "execution": self.execution.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output, ignoring unknown keys."""
        return cls(
            name=str(data.get("name", "campaign")),
            axes=AxisGrid.from_dict(data.get("axes") or {}),
            enrichments=Enrichments.from_dict(data.get("enrichments") or {}),
            execution=ExecutionPolicy.from_dict(data.get("execution") or {}),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, os.PathLike]) -> None:
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "CampaignSpec":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # -- derivation ------------------------------------------------------

    def with_execution(self, **changes: Any) -> "CampaignSpec":
        """A copy with :class:`ExecutionPolicy` fields replaced."""
        return replace(self, execution=replace(self.execution, **changes))

    def with_enrichments(self, **changes: Any) -> "CampaignSpec":
        """A copy with :class:`Enrichments` fields replaced."""
        return replace(self, enrichments=replace(self.enrichments, **changes))


def shard_spec(spec: CampaignSpec, num_shards: int) -> List[CampaignSpec]:
    """Split ``spec`` into ``num_shards`` deterministic shard specs.

    Shard ``i`` is ``spec`` with ``axes.shard = (i, num_shards)``: its
    scenario list is every ``num_shards``-th scenario of the full grid
    starting at ``i``.  The shards are pairwise disjoint (positionally),
    their concatenation-by-interleaving is exactly the full grid, each
    preserves full-grid order, and each round-trips through JSON like any
    other spec — so a fleet of workers each running one shard against one
    shared store produces precisely the full campaign's store keys and
    record digests, whatever the interleaving.  Everything else about the
    spec (enrichments, execution policy, name) is shared verbatim.

    Raises ``ValueError`` for a non-positive ``num_shards`` or a spec
    that is already a shard (shards of shards would silently drop grid
    points).
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if spec.axes.shard is not None:
        raise ValueError(
            f"spec {spec.name!r} is already shard {spec.axes.shard[0]} of "
            f"{spec.axes.shard[1]}; shard the unsharded spec instead"
        )
    return [
        replace(spec, axes=replace(spec.axes, shard=(index, num_shards)))
        for index in range(num_shards)
    ]


def _policy_cache(policy: ExecutionPolicy) -> Tuple[ResultCache, Optional[StoreBackend]]:
    """Build the cache (and possibly a write-only store) the policy asks for."""
    if policy.store is None:
        return ResultCache(), None
    store = open_store(policy.store, backend=policy.store_backend)
    if policy.resume:
        return ResultCache(store=store), None
    # resume=False: keep the store out of the lookup path (everything
    # re-simulates) but still persist what this run produces.
    return ResultCache(), store


def iter_campaign(
    spec: CampaignSpec,
    cache: Optional[ResultCache] = None,
    simulator_factory: Any = None,
) -> Iterator[Tuple[ScenarioRecord, CampaignProgress]]:
    """Stream one declarative campaign: validate, expand, simulate, yield.

    Yields ``(record, progress)`` as scenarios complete, in grid order.
    Each record is appended to the policy's store before it is yielded,
    so a consumer that stops mid-grid (kill, ``break``, exception) loses
    nothing already emitted; re-running the same spec resumes from the
    store, skipping persisted keys, and ends with a record set
    bit-identical to an uninterrupted run.

    Args:
        spec: The campaign description; validated against the unified
            registries before anything simulates.
        cache: Override the cache the execution policy would build (e.g.
            to share one in-memory cache across specs in tests).  When
            given, the policy's ``store``/``resume`` fields are ignored —
            the cache's own backing store governs persistence.
        simulator_factory: As for
            :func:`~repro.experiments.campaign.stream_campaign`.  Results
            produced under a custom simulator must never mix into a
            shared store (they are keyed by scenario only), so a policy
            ``store`` — or an explicit ``cache`` — is rejected alongside
            it.
    """
    cache, events = _prepare_stream(spec, cache, simulator_factory)
    return events


def run_spec(
    spec: CampaignSpec,
    cache: Optional[ResultCache] = None,
) -> CampaignResult:
    """Drain :func:`iter_campaign` into a batch :class:`CampaignResult`."""
    cache, events = _prepare_stream(spec, cache, None)
    records: List[ScenarioRecord] = []
    progress: Optional[CampaignProgress] = None
    for record, progress in events:
        records.append(record)
    return CampaignResult(
        records,
        cache,
        fidelity_evaluated=progress.fidelity_evaluated if progress else 0,
        measured_evaluated=progress.measured_evaluated if progress else 0,
    )


def _prepare_stream(
    spec: CampaignSpec,
    cache: Optional[ResultCache],
    simulator_factory: Any,
) -> Tuple[ResultCache, Iterator[Tuple[ScenarioRecord, CampaignProgress]]]:
    """Validate, resolve the policy's cache/store, and open the stream.

    The single body behind :func:`iter_campaign` and :func:`run_spec`, so
    the two paths cannot drift.  Validation runs before any store object
    exists.
    """
    spec.validate()
    if simulator_factory is not None and (cache is not None or spec.execution.store is not None):
        raise ValueError(
            "a custom simulator_factory cannot be combined with a cache or a "
            "policy store: persisted entries are keyed by scenario only and "
            "would mix results from different simulator configurations"
        )
    write_store = None
    if cache is None:
        cache, write_store = _policy_cache(spec.execution)
    policy = spec.execution
    events = stream_campaign(
        spec.scenarios(),
        max_workers=policy.max_workers,
        cache=None if simulator_factory is not None else cache,
        simulator_factory=simulator_factory,
        executor=policy.executor,
        chunksize=policy.chunksize,
        with_accuracy=spec.enrichments.accuracy,
        accuracy_settings=spec.enrichments.accuracy_settings,
        with_measured=spec.enrichments.measured,
        measurement_settings=spec.enrichments.measurement_settings,
        write_store=write_store,
    )
    return cache, events
