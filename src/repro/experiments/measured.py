"""Measured index-domain statistics for campaign records.

The schemes' analytic cost models count operations from GEMM shapes plus
*assumed* outlier-pair fractions (``gaussian_pairs`` / ``outlier_pairs``
in the Mokey scheme's compute detail).  This module produces the
*measured* counterpart by actually running one encoder layer of the
scenario's workload through the vectorized index-domain engine
(:mod:`repro.transformer.index_execution`) and counting every Gaussian
and outlier operand pair in the real encodings.

Measured statistics depend only on ``(model, sequence_length,
batch_size)`` — not on the design point, scheme override or buffer
capacity — so one layer execution (memoised per :func:`measured_key` in
the campaign's :class:`~repro.experiments.campaign.ResultCache`, and
persisted through the artifact store) serves every hardware point of a
grid.  Everything is derived from a stable hash of the key, so any
process produces a bit-identical :class:`MeasuredStats`; wall-clock
timings live in the perf benchmarks (``BENCH_PERF.json``), never in
stored records.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Tuple

from repro.experiments.scenario import Scenario

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.quantizer import MokeyQuantizer

__all__ = [
    "MeasurementSettings",
    "DEFAULT_MEASUREMENT_SETTINGS",
    "MeasuredKey",
    "MeasuredStats",
    "measured_key",
    "evaluate_measured",
    "measured_digest",
]


@dataclass(frozen=True)
class MeasurementSettings:
    """Deterministic parameters of one measured-layer execution.

    All fields feed the execution deterministically: identical settings +
    key always produce a bit-identical :class:`MeasuredStats`.

    Attributes:
        golden_samples: Samples for the Golden Dictionary build (reduced
            but structurally identical, matching the accuracy campaign's
            default build).
        golden_repeats: Repeats for the Golden Dictionary build.
        golden_seed: Seed for the Golden Dictionary build.
        scope: ``"layer"`` (default) measures one encoder layer;
            ``"model"`` runs the whole encoder stack through
            :func:`repro.transformer.index_model.execute_model` — every
            layer's index-domain output feeding the next — and sums the
            counts across the full depth.
    """

    golden_samples: int = 12000
    golden_repeats: int = 2
    golden_seed: int = 7
    scope: str = "layer"

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data) -> "MeasurementSettings":
        """Rebuild settings from :meth:`to_dict` output, ignoring unknown keys."""
        names = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in dict(data).items() if key in names})

    def digest(self) -> str:
        """Stable content digest, stamped into every :class:`MeasuredStats`."""
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


DEFAULT_MEASUREMENT_SETTINGS = MeasurementSettings()

#: The memo key of one measurement: ``(model, sequence_length, batch_size)``.
MeasuredKey = Tuple[str, int, int]


def measured_key(scenario: Scenario) -> MeasuredKey:
    """The measurement memo key of ``scenario``.

    Deliberately excludes the design point, scheme override and buffer
    capacity: the index-domain operation mix is a property of the workload
    alone, so one layer execution serves every hardware point of a grid.
    """
    return (scenario.model, scenario.resolved_sequence_length, scenario.batch_size)


def _stable_seed(model: str, sequence_length: int, batch_size: int) -> int:
    """A process- and hash-seed-independent seed for one measured key."""
    blob = f"{model}|{sequence_length}|{batch_size}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest()[:4], "big")


@dataclass
class MeasuredStats:
    """Measured index-domain operation counts of one encoder layer.

    The count fields mirror
    :class:`~repro.core.index_compute.IndexComputeStats`, summed over
    every GEMM instance of one encoder layer (the analytic compute detail
    is per layer too, so the two are directly comparable).

    Attributes:
        model: Model-zoo name measured.
        sequence_length: Tokens per input.
        batch_size: Inputs per pass.
        gaussian_pairs: Operand pairs handled by the GPE index path.
        outlier_pairs: Operand pairs handled by the OPP's direct MACs.
        index_additions: Narrow index additions performed.
        counter_updates: CRF counter updates performed.
        post_processing_macs: Post-processing MACs (per-bin reductions
            plus one MAC per outlier pair).
        gemm_instances: GEMM instances executed (heads x batch for the
            attention score/context GEMMs).
        output_rms_error: Relative RMS error of the index-domain output
            against the FP forward (of the block at layer scope, of the
            whole stack at model scope).
        seed: Seed the block and inputs were built from.
        settings_digest: :meth:`MeasurementSettings.digest` of the
            settings that produced the result; lookups only reuse a
            result whose digest matches.
        scope: ``"layer"`` or ``"model"`` — what the counts cover.
        layers_measured: Encoder layers the counts were summed over
            (1 at layer scope, the configured depth at model scope).
    """

    model: str = ""
    sequence_length: int = 0
    batch_size: int = 0
    gaussian_pairs: int = 0
    outlier_pairs: int = 0
    index_additions: int = 0
    counter_updates: int = 0
    post_processing_macs: int = 0
    gemm_instances: int = 0
    output_rms_error: float = 0.0
    seed: int = 0
    settings_digest: str = ""
    scope: str = "layer"
    layers_measured: int = 1

    @property
    def total_pairs(self) -> int:
        """Operand pairs processed (equals the layer's MAC count)."""
        return self.gaussian_pairs + self.outlier_pairs

    @property
    def outlier_pair_fraction(self) -> float:
        total = self.total_pairs
        return self.outlier_pairs / total if total else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready field mapping; inverse of :meth:`from_dict`."""
        return {
            "model": self.model,
            "sequence_length": int(self.sequence_length),
            "batch_size": int(self.batch_size),
            "gaussian_pairs": int(self.gaussian_pairs),
            "outlier_pairs": int(self.outlier_pairs),
            "index_additions": int(self.index_additions),
            "counter_updates": int(self.counter_updates),
            "post_processing_macs": int(self.post_processing_macs),
            "gemm_instances": int(self.gemm_instances),
            "output_rms_error": float(self.output_rms_error),
            "seed": int(self.seed),
            "settings_digest": self.settings_digest,
            "scope": self.scope,
            "layers_measured": int(self.layers_measured),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MeasuredStats":
        """Rebuild from :meth:`to_dict` output, ignoring unknown keys."""
        names = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in names})


def measured_digest(result: MeasuredStats) -> str:
    """Stable content digest of the full measured result (all fields)."""
    blob = json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


_QUANTIZER_LOCK = threading.Lock()
_QUANTIZER_CACHE: Dict[Tuple[int, int, int], "MokeyQuantizer"] = {}


def _measurement_quantizer(settings: MeasurementSettings) -> "MokeyQuantizer":
    """One shared quantizer per Golden-Dictionary parameterisation."""
    from repro.core.golden_dictionary import generate_golden_dictionary
    from repro.core.quantizer import MokeyQuantizer

    key = (settings.golden_samples, settings.golden_repeats, settings.golden_seed)
    with _QUANTIZER_LOCK:
        quantizer = _QUANTIZER_CACHE.get(key)
        if quantizer is None:
            golden = generate_golden_dictionary(
                num_samples=settings.golden_samples,
                num_repeats=settings.golden_repeats,
                seed=settings.golden_seed,
            )
            quantizer = MokeyQuantizer(golden)
            _QUANTIZER_CACHE[key] = quantizer
        return quantizer


def evaluate_measured(
    model: str,
    sequence_length: int,
    batch_size: int = 1,
    settings: Optional[MeasurementSettings] = None,
) -> MeasuredStats:
    """Measure the index-domain operation mix of one workload.

    At the default layer scope, runs
    :func:`repro.transformer.index_execution.execute_encoder_layer` at
    the workload's full model width; at model scope
    (``settings.scope == "model"``), runs the entire encoder stack
    through :func:`repro.transformer.index_model.execute_model` and sums
    the counts across the full depth.  Either way the outcome folds into
    a deterministic, serializable :class:`MeasuredStats`.

    Raises:
        KeyError: unknown model name.
        ValueError: non-positive sequence length or batch size, or an
            unknown measurement scope.
    """
    settings = settings or DEFAULT_MEASUREMENT_SETTINGS
    if settings.scope not in ("layer", "model"):
        raise ValueError(
            f"unknown measurement scope {settings.scope!r} (choose 'layer' or 'model')"
        )
    seed = _stable_seed(model, sequence_length, batch_size)
    quantizer = _measurement_quantizer(settings)
    if settings.scope == "model":
        from repro.transformer.index_model import execute_model

        measurement = execute_model(
            model,
            sequence_length=sequence_length,
            batch_size=batch_size,
            quantizer=quantizer,
            seed=seed,
        )
        gemm_instances = sum(
            g.count for layer in measurement.layers for g in layer.gemms
        )
        layers_measured = measurement.num_layers
    else:
        from repro.transformer.index_execution import execute_encoder_layer

        measurement = execute_encoder_layer(
            model,
            sequence_length=sequence_length,
            batch_size=batch_size,
            quantizer=quantizer,
            seed=seed,
        )
        gemm_instances = sum(g.count for g in measurement.gemms)
        layers_measured = 1
    stats = measurement.stats
    return MeasuredStats(
        model=model,
        sequence_length=sequence_length,
        batch_size=batch_size,
        gaussian_pairs=stats.gaussian_pairs,
        outlier_pairs=stats.outlier_pairs,
        index_additions=stats.index_additions,
        counter_updates=stats.counter_updates,
        post_processing_macs=stats.post_processing_macs,
        gemm_instances=gemm_instances,
        output_rms_error=measurement.output_rms_error,
        seed=seed,
        settings_digest=settings.digest(),
        scope=settings.scope,
        layers_measured=layers_measured,
    )
