"""Scenario descriptors and the accelerator-design registry.

A :class:`Scenario` is one frozen point of the evaluation grid: which
model runs which task, at what sequence length and batch size, on which
accelerator design, with which quantization scheme, and how much on-chip
buffer the chip has.  Scenarios are hashable, so they key the campaign
result cache directly.

Designs are looked up by name in :data:`DESIGN_FACTORIES`; registering a
new design point (:func:`register_design`) immediately makes it sweepable
by every campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.accelerator.compression_modes import (
    COMPRESSION_MODE_DESIGNS,
    CompressionMode,
    tensor_cores_with_mokey_compression,
)
from repro.accelerator.designs import AcceleratorDesign
from repro.accelerator.gobo_accel import gobo_design
from repro.accelerator.mokey_accel import mokey_design
from repro.accelerator.tensor_cores import tensor_cores_design
from repro.accelerator.workloads import TASK_SEQUENCE_LENGTHS, Workload, model_workload

__all__ = [
    "Scenario",
    "DESIGN_FACTORIES",
    "register_design",
    "available_designs",
    "build_design",
]

KB = 1024

DESIGN_FACTORIES: Dict[str, Callable[[], AcceleratorDesign]] = {}


def register_design(
    name: str, factory: Callable[[], AcceleratorDesign], replace: bool = False
) -> None:
    """Register a zero-argument design factory under ``name``."""
    if name in DESIGN_FACTORIES and not replace:
        raise ValueError(f"design {name!r} is already registered")
    DESIGN_FACTORIES[name] = factory


def available_designs() -> Tuple[str, ...]:
    """Names of all registered designs, sorted."""
    return tuple(sorted(DESIGN_FACTORIES))


def build_design(name: str) -> AcceleratorDesign:
    """Instantiate a registered design by name."""
    try:
        factory = DESIGN_FACTORIES[name]
    except KeyError:
        import difflib

        matches = difflib.get_close_matches(str(name), list(DESIGN_FACTORIES), n=1, cutoff=0.6)
        hint = f" — did you mean {matches[0]!r}?" if matches else ""
        known = ", ".join(available_designs()) or "none"
        raise ValueError(
            f"unknown design {name!r}{hint} (registered designs: {known})"
        ) from None
    return factory()


register_design("tensor-cores", tensor_cores_design)
register_design("gobo", gobo_design)
register_design("mokey", mokey_design)
register_design(
    COMPRESSION_MODE_DESIGNS[CompressionMode.OFF_CHIP],
    lambda: tensor_cores_with_mokey_compression(CompressionMode.OFF_CHIP),
)
register_design(
    COMPRESSION_MODE_DESIGNS[CompressionMode.OFF_CHIP_AND_ON_CHIP],
    lambda: tensor_cores_with_mokey_compression(CompressionMode.OFF_CHIP_AND_ON_CHIP),
)


@dataclass(frozen=True)
class Scenario:
    """One point of the evaluation grid.

    Attributes:
        model: Model-zoo name (e.g. ``"bert-large"``).
        task: Task name; sets the default sequence length.
        sequence_length: Tokens per input; ``None`` uses the task default.
        batch_size: Inputs per inference pass.
        scheme: Optional scheme override.  ``None`` runs the design's own
            scheme; a registered scheme name re-parameterises the design's
            storage widths with that scheme's defaults (fixed PE array,
            different numerics) via
            :meth:`~repro.accelerator.designs.AcceleratorDesign.with_scheme`.
        design: Registered design name (see :data:`DESIGN_FACTORIES`).
        buffer_bytes: On-chip buffer capacity.
        activation_buffer_fraction: Buffer fraction reserved for activations.
    """

    model: str = "bert-base"
    task: str = "mnli"
    sequence_length: Optional[int] = None
    batch_size: int = 1
    scheme: Optional[str] = None
    design: str = "mokey"
    buffer_bytes: int = 512 * KB
    activation_buffer_fraction: float = 0.5

    @property
    def resolved_sequence_length(self) -> int:
        if self.sequence_length is not None:
            return self.sequence_length
        return TASK_SEQUENCE_LENGTHS.get(self.task, 128)

    @property
    def label(self) -> str:
        parts = [
            f"{self.model}/{self.task}/seq{self.resolved_sequence_length}",
        ]
        if self.batch_size != 1:
            parts.append(f"bs{self.batch_size}")
        parts.append(self.design if self.scheme is None else f"{self.design}[{self.scheme}]")
        parts.append(f"{self.buffer_bytes // KB}KB")
        return " ".join(parts)

    def build_workload(self) -> Workload:
        return model_workload(
            self.model, self.task, self.sequence_length, batch_size=self.batch_size
        )

    def build_design(self) -> AcceleratorDesign:
        design = build_design(self.design)
        if self.scheme is not None and self.scheme != design.datapath:
            design = design.with_scheme(self.scheme)
        return design

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready field mapping; inverse of :meth:`from_dict`.

        Every field is emitted explicitly (including defaults) so the
        serialized form — and therefore the store's content hash — does not
        change when a field's default value changes.
        """
        return {
            "model": self.model,
            "task": self.task,
            "sequence_length": self.sequence_length,
            "batch_size": int(self.batch_size),
            "scheme": self.scheme,
            "design": self.design,
            "buffer_bytes": int(self.buffer_bytes),
            "activation_buffer_fraction": float(self.activation_buffer_fraction),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output, ignoring unknown keys."""
        names = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in names})
