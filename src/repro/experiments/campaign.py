"""Campaign engine: grid expansion, cached simulation, parallel fan-out.

``run_campaign`` is the single sweep loop the benchmarks and examples
share.  It takes a list of :class:`~repro.experiments.scenario.Scenario`
points (usually from :func:`expand_grid`), simulates each — fanning out
over a :class:`concurrent.futures.ThreadPoolExecutor` and deduplicating
through an in-process :class:`ResultCache` keyed by scenario — and returns
a :class:`CampaignResult` of structured records ready for
:mod:`repro.analysis.reporting`.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.accelerator.metrics import SimulationResult
from repro.accelerator.simulator import AcceleratorSimulator
from repro.experiments.scenario import KB, Scenario

__all__ = [
    "ResultCache",
    "ScenarioRecord",
    "CampaignResult",
    "expand_grid",
    "run_scenario",
    "run_campaign",
]


class ResultCache:
    """Thread-safe in-process cache of simulation results keyed by scenario."""

    def __init__(self) -> None:
        self._results: Dict[Scenario, SimulationResult] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, scenario: Scenario) -> bool:
        with self._lock:
            return scenario in self._results

    def lookup(self, scenario: Scenario) -> Optional[SimulationResult]:
        """Return the cached result, counting a hit or miss."""
        with self._lock:
            result = self._results.get(scenario)
            if result is None:
                self.misses += 1
            else:
                self.hits += 1
            return result

    def store(self, scenario: Scenario, result: SimulationResult) -> None:
        with self._lock:
            self._results[scenario] = result

    def clear(self) -> None:
        with self._lock:
            self._results.clear()
            self.hits = 0
            self.misses = 0


@dataclass
class ScenarioRecord:
    """One structured campaign outcome.

    Attributes:
        scenario: The grid point that produced the result.
        result: The full simulation result.
        cached: Whether the result came from the cache without simulating.
    """

    scenario: Scenario
    result: SimulationResult
    cached: bool = False

    @property
    def workload_name(self) -> str:
        return self.result.workload_name

    @property
    def design_name(self) -> str:
        return self.result.design_name

    def to_dict(self) -> Dict[str, object]:
        """Flatten scenario + headline metrics for tabular reporting."""
        return {
            "model": self.scenario.model,
            "task": self.scenario.task,
            "sequence_length": self.scenario.resolved_sequence_length,
            "batch_size": self.scenario.batch_size,
            "scheme": self.scenario.scheme or self.result.design_name,
            "design": self.scenario.design,
            "buffer_bytes": self.scenario.buffer_bytes,
            "activation_buffer_fraction": self.scenario.activation_buffer_fraction,
            "workload": self.workload_name,
            "compute_cycles": self.result.compute_cycles,
            "memory_cycles": self.result.memory_cycles,
            "total_cycles": self.result.total_cycles,
            "traffic_bytes": self.result.traffic_bytes,
            "energy_joules": self.result.energy.total,
            "area_mm2": self.result.area.total,
        }


class CampaignResult:
    """The records of one campaign plus cache statistics.

    Iterable over :class:`ScenarioRecord` in submission order; ``filter``
    and ``result`` select records by scenario fields (plus the virtual
    ``workload`` key matching the workload label).
    """

    def __init__(self, records: Sequence[ScenarioRecord], cache: ResultCache) -> None:
        self.records = list(records)
        self.cache = cache

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @staticmethod
    def _matches(record: ScenarioRecord, criteria: Dict[str, object]) -> bool:
        for key, wanted in criteria.items():
            if key == "workload":
                value = record.workload_name
            else:
                value = getattr(record.scenario, key)
            if value != wanted:
                return False
        return True

    def filter(self, **criteria) -> "CampaignResult":
        """Records whose scenario (or workload label) matches ``criteria``."""
        matching = [r for r in self.records if self._matches(r, criteria)]
        return CampaignResult(matching, self.cache)

    def result(self, **criteria) -> SimulationResult:
        """The unique simulation result matching ``criteria``."""
        matching = [r for r in self.records if self._matches(r, criteria)]
        if len(matching) != 1:
            raise LookupError(
                f"expected exactly one record for {criteria}, found {len(matching)}"
            )
        return matching[0].result

    def to_dicts(self) -> List[Dict[str, object]]:
        return [record.to_dict() for record in self.records]


def expand_grid(
    models: Sequence[str] = ("bert-base",),
    tasks: Sequence[str] = ("mnli",),
    sequence_lengths: Sequence[Optional[int]] = (None,),
    batch_sizes: Sequence[int] = (1,),
    schemes: Sequence[Optional[str]] = (None,),
    designs: Sequence[str] = ("mokey",),
    buffer_bytes: Sequence[int] = (512 * KB,),
    workloads: Optional[Iterable[Tuple[str, str, Optional[int]]]] = None,
) -> List[Scenario]:
    """Expand axis values into the full list of scenarios.

    Args:
        models, tasks, sequence_lengths: Workload axes, crossed with each
            other unless ``workloads`` pins explicit combinations.
        batch_sizes: Batch axis.
        schemes: Scheme overrides (``None`` = the design's own scheme).
        designs: Registered design names.
        buffer_bytes: Buffer-capacity axis.
        workloads: Optional explicit ``(model, task, sequence_length)``
            triples replacing the cross product of the first three axes
            (the paper's Table I pairs are not a full cross product).
    """
    if workloads is None:
        workload_specs = list(itertools.product(models, tasks, sequence_lengths))
    else:
        workload_specs = [tuple(spec) for spec in workloads]
    return [
        Scenario(
            model=model,
            task=task,
            sequence_length=seq,
            batch_size=batch,
            scheme=scheme,
            design=design,
            buffer_bytes=size,
        )
        for (model, task, seq), batch, scheme, design, size in itertools.product(
            workload_specs, batch_sizes, schemes, designs, buffer_bytes
        )
    ]


def run_scenario(
    scenario: Scenario,
    simulator_factory: Callable[[Scenario], AcceleratorSimulator] = None,
) -> SimulationResult:
    """Simulate one scenario (no caching)."""
    if simulator_factory is None:
        simulator = AcceleratorSimulator(scenario.build_design())
    else:
        simulator = simulator_factory(scenario)
    return simulator.simulate(
        scenario.build_workload(),
        scenario.buffer_bytes,
        scenario.activation_buffer_fraction,
    )


def run_campaign(
    scenarios: Sequence[Scenario],
    max_workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    simulator_factory: Callable[[Scenario], AcceleratorSimulator] = None,
) -> CampaignResult:
    """Simulate every scenario, fanning out across a thread pool.

    Scenarios already present in ``cache`` (including duplicates within
    ``scenarios``) are not re-simulated; their records are marked
    ``cached=True``.

    Args:
        scenarios: Grid points to run; record order follows this order.
        max_workers: Thread-pool width (default: executor's heuristic).
        cache: Cross-campaign result cache; a fresh one is used if omitted.
            Cache entries are keyed by scenario only, so a shared cache
            cannot be combined with a custom ``simulator_factory`` (the
            cached results would have been produced under a different
            simulator configuration).
        simulator_factory: Override how a scenario builds its simulator
            (e.g. to inject a different DRAM model or overlap stage).
    """
    if cache is not None and simulator_factory is not None:
        raise ValueError(
            "a shared cache cannot be combined with a custom simulator_factory: "
            "cache entries are keyed by scenario only and would mix results "
            "from different simulator configurations; use a dedicated cache"
        )
    cache = cache if cache is not None else ResultCache()

    resolved: Dict[Scenario, SimulationResult] = {}
    cached_flags: Dict[Scenario, bool] = {}
    pending: List[Scenario] = []
    for scenario in scenarios:
        if scenario in resolved or scenario in cached_flags:
            continue
        hit = cache.lookup(scenario)
        if hit is not None:
            resolved[scenario] = hit
            cached_flags[scenario] = True
        else:
            cached_flags[scenario] = False
            pending.append(scenario)

    if pending:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            outcomes = pool.map(
                lambda s: run_scenario(s, simulator_factory=simulator_factory), pending
            )
            for scenario, result in zip(pending, outcomes):
                cache.store(scenario, result)
                resolved[scenario] = result

    records = []
    seen: set = set()
    for s in scenarios:
        # Later duplicates of an in-run scenario reuse the first record's
        # result, so they count as cache reuses too.
        records.append(
            ScenarioRecord(scenario=s, result=resolved[s], cached=cached_flags[s] or s in seen)
        )
        seen.add(s)
    return CampaignResult(records, cache)
