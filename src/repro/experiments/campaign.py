"""Campaign engine: grid expansion, cached streaming simulation, fan-out.

``stream_campaign`` is the single sweep loop the benchmarks, examples and
the ``repro`` CLI share.  It takes a list of
:class:`~repro.experiments.scenario.Scenario` points (usually from
:func:`expand_grid`), simulates each — fanning out over the chosen
executor (``serial``, ``thread`` or ``process``) and deduplicating through
a :class:`ResultCache` keyed by scenario, optionally layered over an
on-disk :class:`~repro.experiments.store.ArtifactStore` — and *streams*
``(ScenarioRecord, CampaignProgress)`` events as scenarios complete, with
each record appended to the backing store the moment it exists.  A killed
campaign therefore resumes from the store by skipping already-persisted
keys, bit-identical to an uninterrupted run.

The declarative front door is :func:`repro.experiments.spec.iter_campaign`
(a :class:`~repro.experiments.spec.CampaignSpec` in, the same streamed
events out); :func:`run_campaign` remains as a thin batch wrapper whose
legacy enrichment/execution kwargs are deprecated in favour of specs.
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.accelerator.metrics import SimulationResult
from repro.accelerator.simulator import AcceleratorSimulator
from repro.experiments.accuracy import (
    DEFAULT_ACCURACY_SETTINGS,
    AccuracyKey,
    AccuracySettings,
    FidelityResult,
    UnsupportedSchemeError,
    accuracy_key,
    evaluate_fidelity,
    supported_accuracy_schemes,
    supports_accuracy,
)
from repro.experiments.measured import (
    DEFAULT_MEASUREMENT_SETTINGS,
    MeasuredKey,
    MeasuredStats,
    MeasurementSettings,
    evaluate_measured,
    measured_key,
)
from repro.experiments.scenario import KB, Scenario
from repro.transformer.model_zoo import MODEL_CONFIGS
from repro.transformer.tasks import task_family

_DEFAULT_SETTINGS_DIGEST = DEFAULT_ACCURACY_SETTINGS.digest()
_DEFAULT_MEASUREMENT_DIGEST = DEFAULT_MEASUREMENT_SETTINGS.digest()

__all__ = [
    "EXECUTORS",
    "CampaignProgress",
    "ResultCache",
    "ScenarioRecord",
    "CampaignResult",
    "expand_grid",
    "run_scenario",
    "stream_campaign",
    "run_campaign",
]

#: Valid ``run_campaign(executor=...)`` choices.
EXECUTORS = ("serial", "thread", "process")


class ResultCache:
    """Thread-safe in-process cache of simulation results keyed by scenario.

    When constructed with a backing
    :class:`~repro.experiments.store.ArtifactStore`, lookups that miss in
    memory fall through to disk (counted in :attr:`store_hits` as well as
    :attr:`hits`) and stores write through, making the cache persistent
    across processes.  :meth:`clear` drops only the in-memory state; the
    backing store is managed separately (``repro campaign clean``).
    """

    def __init__(self, store: Optional[Any] = None) -> None:
        self._results: Dict[Scenario, SimulationResult] = {}
        # Fidelity memo, keyed by (model, task, scheme) + settings digest:
        # one quantization + evaluation serves every seq/batch/design/buffer
        # point of a grid, but never a run under different settings.
        self._fidelity: Dict[Tuple[AccuracyKey, str], FidelityResult] = {}
        # Measured-stats memo, keyed by (model, seq, batch) + settings
        # digest: one layer execution serves every design/scheme/buffer
        # point of a grid.
        self._measured: Dict[Tuple[MeasuredKey, str], MeasuredStats] = {}
        self._lock = threading.Lock()
        self._store = store
        self.hits = 0
        self.misses = 0
        self.store_hits = 0
        self.fidelity_hits = 0
        self.fidelity_misses = 0
        self.fidelity_store_hits = 0
        self.measured_hits = 0
        self.measured_misses = 0
        self.measured_store_hits = 0

    @property
    def backing_store(self) -> Optional[Any]:
        return self._store

    def query(self, *args: Any, **kwargs: Any) -> Any:
        """Run a pushdown query against the backing store.

        Passes through to the store backend's
        :meth:`~repro.experiments.store.StoreBackend.query` (filters /
        ``group_by`` / ``order_by`` / ``limit``), which evaluates it
        server-side when the backend supports it (SQLite).  Raises
        ``ValueError`` when the cache has no backing store — the
        in-memory maps are keyed for exact lookup, not scans.
        """
        if self._store is None:
            raise ValueError("ResultCache.query needs a backing store (ResultCache(store=...))")
        return self._store.query(*args, **kwargs)

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, scenario: Scenario) -> bool:
        with self._lock:
            if scenario in self._results:
                return True
        return self._store is not None and scenario in self._store

    def lookup(self, scenario: Scenario) -> Optional[SimulationResult]:
        """Return the cached result, counting a hit or miss."""
        with self._lock:
            result = self._results.get(scenario)
            if result is not None:
                self.hits += 1
                return result
        if self._store is not None:
            result = self._store.get(scenario)
            if result is not None:
                with self._lock:
                    self._results[scenario] = result
                    self.hits += 1
                    self.store_hits += 1
                return result
        with self._lock:
            self.misses += 1
        return None

    def store(
        self,
        scenario: Scenario,
        result: SimulationResult,
        fidelity: Optional[FidelityResult] = None,
        measured: Optional[MeasuredStats] = None,
    ) -> None:
        memo_key = (
            None if fidelity is None else (accuracy_key(scenario), fidelity.settings_digest)
        )
        measured_memo_key = (
            None if measured is None else (measured_key(scenario), measured.settings_digest)
        )
        with self._lock:
            self._results[scenario] = result
            if memo_key is not None:
                self._fidelity[memo_key] = fidelity
            if measured_memo_key is not None:
                self._measured[measured_memo_key] = measured
        if self._store is not None:
            self._store.put(scenario, result, fidelity=fidelity, measured=measured)

    def lookup_fidelity(
        self,
        scenario: Scenario,
        key: Optional[AccuracyKey] = None,
        settings_digest: Optional[str] = None,
    ) -> Optional[FidelityResult]:
        """The cached fidelity for ``scenario``, counting a hit or miss.

        Resolution order: the in-memory memo by :func:`accuracy_key` (one
        evaluation serves every seq/batch/buffer point sharing the key),
        then the backing store by scenario.  A result only hits when its
        settings digest matches ``settings_digest`` — stored fidelity from
        a differently-parameterised evaluation is never served.
        """
        key = accuracy_key(scenario) if key is None else key
        if settings_digest is None:
            settings_digest = _DEFAULT_SETTINGS_DIGEST
        memo_key = (key, settings_digest)
        with self._lock:
            fidelity = self._fidelity.get(memo_key)
            if fidelity is not None:
                self.fidelity_hits += 1
                return fidelity
        if self._store is not None:
            fidelity = self._store.get_fidelity(scenario)
            if fidelity is not None and fidelity.settings_digest == settings_digest:
                with self._lock:
                    self._fidelity[memo_key] = fidelity
                    self.fidelity_hits += 1
                    self.fidelity_store_hits += 1
                return fidelity
        with self._lock:
            self.fidelity_misses += 1
        return None

    def lookup_measured(
        self,
        scenario: Scenario,
        key: Optional[MeasuredKey] = None,
        settings_digest: Optional[str] = None,
    ) -> Optional[MeasuredStats]:
        """The cached measured stats for ``scenario``, counting hit or miss.

        Resolution order mirrors :meth:`lookup_fidelity`: the in-memory
        memo by :func:`~repro.experiments.measured.measured_key`, then the
        backing store by scenario; a result only hits when its settings
        digest matches.
        """
        key = measured_key(scenario) if key is None else key
        if settings_digest is None:
            settings_digest = _DEFAULT_MEASUREMENT_DIGEST
        memo_key = (key, settings_digest)
        with self._lock:
            measured = self._measured.get(memo_key)
            if measured is not None:
                self.measured_hits += 1
                return measured
        if self._store is not None:
            measured = self._store.get_measured(scenario)
            if measured is not None and measured.settings_digest == settings_digest:
                with self._lock:
                    self._measured[memo_key] = measured
                    self.measured_hits += 1
                    self.measured_store_hits += 1
                return measured
        with self._lock:
            self.measured_misses += 1
        return None

    def clear(self) -> None:
        """Reset the in-memory cache and counters (not the backing store)."""
        with self._lock:
            self._results.clear()
            self._fidelity.clear()
            self._measured.clear()
            self.hits = 0
            self.misses = 0
            self.store_hits = 0
            self.fidelity_hits = 0
            self.fidelity_misses = 0
            self.fidelity_store_hits = 0
            self.measured_hits = 0
            self.measured_misses = 0
            self.measured_store_hits = 0


@dataclass
class ScenarioRecord:
    """One structured campaign outcome.

    Attributes:
        scenario: The grid point that produced the result.
        result: The full simulation result.
        cached: Whether the result came from the cache without simulating.
        fidelity: Task-fidelity outcome joined by an accuracy campaign
            (``None`` for hardware-only runs).
        measured: Measured index-domain operation counts joined by a
            ``with_measured`` campaign (``None`` otherwise).
    """

    scenario: Scenario
    result: SimulationResult
    cached: bool = False
    fidelity: Optional[FidelityResult] = None
    measured: Optional[MeasuredStats] = None

    @property
    def workload_name(self) -> str:
        return self.result.workload_name

    @property
    def design_name(self) -> str:
        return self.result.design_name

    def to_dict(self) -> Dict[str, object]:
        """Full nested representation; inverse of :meth:`from_dict`.

        For the flat tabular form used by reporting, see :meth:`to_row`.
        """
        return {
            "scenario": self.scenario.to_dict(),
            "result": self.result.to_dict(),
            "cached": bool(self.cached),
            "fidelity": None if self.fidelity is None else self.fidelity.to_dict(),
            "measured": None if self.measured is None else self.measured.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioRecord":
        """Rebuild a record from :meth:`to_dict` output, ignoring unknown keys."""
        raw_fidelity = data.get("fidelity")
        raw_measured = data.get("measured")
        return cls(
            scenario=Scenario.from_dict(data.get("scenario") or {}),
            result=SimulationResult.from_dict(data.get("result") or {}),
            cached=bool(data.get("cached", False)),
            fidelity=None if raw_fidelity is None else FidelityResult.from_dict(raw_fidelity),
            measured=None if raw_measured is None else MeasuredStats.from_dict(raw_measured),
        )

    def to_row(self) -> Dict[str, object]:
        """Flatten scenario + headline metrics for tabular reporting.

        Fidelity and measured-stats columns are appended only when the
        record carries them, so hardware-only reports keep their column
        set.  The ``measured_*`` columns sit next to the analytic
        ``gaussian_pairs`` / ``outlier_pairs`` the scheme's compute detail
        reports (both are per encoder layer).
        """
        row = self._hardware_row()
        if self.measured is not None:
            m = self.measured
            row.update(
                {
                    "measured_gaussian_pairs": m.gaussian_pairs,
                    "measured_outlier_pairs": m.outlier_pairs,
                    "measured_outlier_pct": 100.0 * m.outlier_pair_fraction,
                    "measured_output_rms_err": m.output_rms_error,
                }
            )
        if self.fidelity is not None:
            f = self.fidelity
            row.update(
                {
                    "fidelity_metric": f.metric,
                    "fp_score": f.fp_score,
                    "weight_only_score": f.weight_only_score,
                    "weight_only_err": f.weight_only_error,
                    "weight_activation_score": (
                        "" if f.weight_activation_score is None else f.weight_activation_score
                    ),
                    "weight_activation_err": (
                        "" if f.weight_activation_error is None else f.weight_activation_error
                    ),
                    "weight_outlier_pct": 100.0 * f.weight_outlier_fraction,
                    "activation_outlier_pct": 100.0 * f.activation_outlier_fraction,
                    "weight_compression": f.compression_ratio,
                }
            )
        return row

    def _hardware_row(self) -> Dict[str, object]:
        return {
            "model": self.scenario.model,
            "task": self.scenario.task,
            "sequence_length": self.scenario.resolved_sequence_length,
            "batch_size": self.scenario.batch_size,
            "scheme": self.scenario.scheme or self.result.design_name,
            "design": self.scenario.design,
            "buffer_bytes": self.scenario.buffer_bytes,
            "activation_buffer_fraction": self.scenario.activation_buffer_fraction,
            "workload": self.workload_name,
            "compute_cycles": self.result.compute_cycles,
            "memory_cycles": self.result.memory_cycles,
            "total_cycles": self.result.total_cycles,
            "traffic_bytes": self.result.traffic_bytes,
            "energy_joules": self.result.energy.total,
            "area_mm2": self.result.area.total,
        }


@dataclass(frozen=True)
class CampaignProgress:
    """Where a streaming campaign stands after one record was emitted.

    Attributes:
        completed: Records emitted so far (including this one).
        total: Records the campaign will emit in total.
        simulated: How many of the completed records were freshly simulated.
        cached: How many were cache/store hits (or in-run duplicates).
        store_key: The content-addressed store key of the record just
            emitted (see :func:`~repro.experiments.store.scenario_key`);
            the key a resumed campaign would skip on.
        fidelity_evaluated: Fidelity evaluations the campaign ran (joins
            are resolved up front, so this is constant across events).
        measured_evaluated: Measured-layer executions the campaign ran.
    """

    completed: int
    total: int
    simulated: int
    cached: int
    store_key: str
    fidelity_evaluated: int = 0
    measured_evaluated: int = 0

    @property
    def fraction(self) -> float:
        return self.completed / self.total if self.total else 1.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping of the progress counters.

        The structured form the campaign service's workers report over
        their queue and the HTTP status endpoint serves back, so remote
        pollers see exactly what a local ``iter_campaign`` consumer sees.
        """
        return {
            "completed": self.completed,
            "total": self.total,
            "simulated": self.simulated,
            "cached": self.cached,
            "store_key": self.store_key,
            "fidelity_evaluated": self.fidelity_evaluated,
            "measured_evaluated": self.measured_evaluated,
        }

    def __str__(self) -> str:
        return (
            f"[{self.completed}/{self.total}] "
            f"{self.simulated} simulated, {self.cached} cached"
        )


class CampaignResult:
    """The records of one campaign plus cache statistics.

    Iterable over :class:`ScenarioRecord` in submission order; ``filter``
    and ``result`` select records by scenario fields (plus the virtual
    ``workload`` key matching the workload label).
    """

    def __init__(
        self,
        records: Sequence[ScenarioRecord],
        cache: ResultCache,
        fidelity_evaluated: int = 0,
        measured_evaluated: int = 0,
    ) -> None:
        self.records = list(records)
        self.cache = cache
        #: How many fidelity evaluations this campaign actually ran (the
        #: rest were memo/store hits or scenarios sharing an accuracy key).
        self.fidelity_evaluated = fidelity_evaluated
        #: How many measured-layer executions this campaign actually ran.
        self.measured_evaluated = measured_evaluated

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @staticmethod
    def _matches(record: ScenarioRecord, criteria: Dict[str, object]) -> bool:
        for key, wanted in criteria.items():
            if key == "workload":
                value = record.workload_name
            else:
                value = getattr(record.scenario, key)
            if value != wanted:
                return False
        return True

    def filter(self, **criteria) -> "CampaignResult":
        """Records whose scenario (or workload label) matches ``criteria``."""
        matching = [r for r in self.records if self._matches(r, criteria)]
        return CampaignResult(matching, self.cache)

    def result(self, **criteria) -> SimulationResult:
        """The unique simulation result matching ``criteria``."""
        matching = [r for r in self.records if self._matches(r, criteria)]
        if len(matching) != 1:
            raise LookupError(
                f"expected exactly one record for {criteria}, found {len(matching)}"
            )
        return matching[0].result

    def to_dicts(self) -> List[Dict[str, object]]:
        """Flat reporting rows (one per record); see :meth:`ScenarioRecord.to_row`."""
        return [record.to_row() for record in self.records]

    @property
    def simulated_count(self) -> int:
        """How many records were actually simulated (not cache/store hits)."""
        return sum(1 for record in self.records if not record.cached)


def expand_grid(
    models: Sequence[str] = ("bert-base",),
    tasks: Sequence[str] = ("mnli",),
    sequence_lengths: Sequence[Optional[int]] = (None,),
    batch_sizes: Sequence[int] = (1,),
    schemes: Sequence[Optional[str]] = (None,),
    designs: Sequence[str] = ("mokey",),
    buffer_bytes: Sequence[int] = (512 * KB,),
    workloads: Optional[Iterable[Tuple[str, str, Optional[int]]]] = None,
) -> List[Scenario]:
    """Expand axis values into the full list of scenarios.

    Args:
        models, tasks, sequence_lengths: Workload axes, crossed with each
            other unless ``workloads`` pins explicit combinations.
        batch_sizes: Batch axis.
        schemes: Scheme overrides (``None`` = the design's own scheme).
        designs: Registered design names.
        buffer_bytes: Buffer-capacity axis.
        workloads: Optional explicit ``(model, task, sequence_length)``
            triples replacing the cross product of the first three axes
            (the paper's Table I pairs are not a full cross product).
    """
    if workloads is None:
        workload_specs = list(itertools.product(models, tasks, sequence_lengths))
    else:
        workload_specs = [tuple(spec) for spec in workloads]
    return [
        Scenario(
            model=model,
            task=task,
            sequence_length=seq,
            batch_size=batch,
            scheme=scheme,
            design=design,
            buffer_bytes=size,
        )
        for (model, task, seq), batch, scheme, design, size in itertools.product(
            workload_specs, batch_sizes, schemes, designs, buffer_bytes
        )
    ]


def run_scenario(
    scenario: Scenario,
    simulator_factory: Callable[[Scenario], AcceleratorSimulator] = None,
) -> SimulationResult:
    """Simulate one scenario (no caching)."""
    if simulator_factory is None:
        simulator = AcceleratorSimulator(scenario.build_design())
    else:
        simulator = simulator_factory(scenario)
    return simulator.simulate(
        scenario.build_workload(),
        scenario.buffer_bytes,
        scenario.activation_buffer_fraction,
    )


def _stream_pending(
    pending: Sequence[Scenario],
    executor: str,
    max_workers: Optional[int],
    chunksize: Optional[int],
    simulator_factory: Optional[Callable[[Scenario], AcceleratorSimulator]],
) -> Iterator[SimulationResult]:
    """Yield ``pending``'s results lazily, in order, under the chosen executor.

    ``map`` on both pool executors returns results in submission order as
    they become available, so the consumer can emit record ``k`` while
    ``k+1`` is still simulating.  Closing the generator early (a killed
    campaign) cancels every not-yet-started scenario and returns as soon
    as the in-flight ones (at most the pool width, or one process chunk)
    finish; their unconsumed results are discarded, not persisted.  With
    the serial executor nothing past the last consumed scenario is ever
    simulated — the executor of choice when interruption loss must be
    zero.
    """
    if simulator_factory is None:
        task = run_scenario
    else:
        task = functools.partial(run_scenario, simulator_factory=simulator_factory)
    if executor == "serial":
        for scenario in pending:
            yield task(scenario)
        return
    if executor == "thread":
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            yield from pool.map(task, pending)
        return
    # Process: the simulator path is pure CPU-bound Python, so only real
    # processes escape the GIL.  Chunked dispatch amortises the per-item
    # pickling; map() preserves submission order, so records stay
    # deterministic regardless of which worker finishes first.
    if chunksize is None:
        workers = max_workers or os.cpu_count() or 1
        chunksize = max(1, len(pending) // (workers * 4))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        yield from pool.map(task, pending, chunksize=chunksize)


def _evaluate_accuracy_key(
    key: AccuracyKey, settings: Optional[AccuracySettings] = None
) -> FidelityResult:
    """Evaluate one fidelity memo key (module-level, so it pickles)."""
    model, task, scheme = key
    return evaluate_fidelity(model, task, scheme, settings=settings)


def _evaluate_measured_key(
    key: MeasuredKey, settings: Optional[MeasurementSettings] = None
) -> MeasuredStats:
    """Measure one layer-execution memo key (module-level, so it pickles)."""
    model, sequence_length, batch_size = key
    return evaluate_measured(model, sequence_length, batch_size, settings=settings)


def _evaluate_pending_fidelity(
    pending: Sequence[AccuracyKey],
    executor: str,
    max_workers: Optional[int],
    settings: Optional[AccuracySettings],
) -> List[FidelityResult]:
    """Evaluate ``pending`` accuracy keys, preserving order.

    Only the process executor fans out: fidelity evaluation is pure-Python
    NumPy work sharing one Mokey model quantizer, so threads would just
    contend on the GIL (and on the quantizer's per-tensor state).
    """
    task = functools.partial(_evaluate_accuracy_key, settings=settings)
    if executor == "process" and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(task, pending))
    return [task(key) for key in pending]


def _validate_accuracy_support(scenarios: Sequence[Scenario]) -> None:
    """Fail fast (before any simulation) on grids fidelity cannot evaluate.

    The hardware side tolerates unknown tasks (they just default the
    sequence length) and needs only the model's *shape*, but the accuracy
    side must build the functional twin and the task's dataset — so
    schemes without numerics, unknown tasks and unknown models are all
    rejected here, before any simulation work is spent.
    """
    schemes = {accuracy_key(scenario)[2] for scenario in scenarios}
    unsupported = sorted(s for s in schemes if not supports_accuracy(s))
    if unsupported:
        raise UnsupportedSchemeError(
            f"scheme(s) {', '.join(repr(s) for s in unsupported)} have no accuracy-side "
            f"numerics evaluator (schemes supporting accuracy campaigns: "
            f"{', '.join(supported_accuracy_schemes())})"
        )
    for task in sorted({scenario.task for scenario in scenarios}):
        task_family(task)  # raises ValueError for unknown tasks
    unknown_models = sorted(
        {scenario.model for scenario in scenarios} - set(MODEL_CONFIGS)
    )
    if unknown_models:
        raise ValueError(
            f"unknown model(s) {', '.join(repr(m) for m in unknown_models)} "
            f"(known: {', '.join(sorted(MODEL_CONFIGS))})"
        )


def _resolve_join(
    scenarios: Sequence[Scenario],
    key_of: Callable[[Scenario], Any],
    lookup: Callable[[Scenario, Any], Optional[Any]],
    evaluate_pending: Callable[[List[Any]], List[Any]],
) -> Tuple[Dict[Scenario, Any], int]:
    """Resolve one joined quantity for every scenario, each unique key once.

    The shared skeleton of the fidelity and measured-stats joins: collect
    the unique memo keys, serve what the cache/store already holds, hand
    the rest to ``evaluate_pending`` in one batch, and fan the outcomes
    back out per scenario.  Returns the per-scenario mapping plus how many
    keys were actually evaluated.
    """
    keys: Dict[Scenario, Any] = {}
    for scenario in scenarios:
        if scenario not in keys:
            keys[scenario] = key_of(scenario)
    resolved: Dict[Any, Any] = {}
    pending: List[Any] = []
    for scenario, key in keys.items():
        if key in resolved or key in pending:
            continue
        hit = lookup(scenario, key)
        if hit is not None:
            resolved[key] = hit
        else:
            pending.append(key)
    if pending:
        resolved.update(zip(pending, evaluate_pending(pending)))
    return {scenario: resolved[key] for scenario, key in keys.items()}, len(pending)


def _resolve_fidelities(
    scenarios: Sequence[Scenario],
    cache: ResultCache,
    executor: str,
    max_workers: Optional[int],
    settings: Optional[AccuracySettings],
) -> Tuple[Dict[Scenario, FidelityResult], int]:
    """Fidelity for every scenario, evaluating each unique accuracy key once.

    Assumes scheme support was validated by :func:`_validate_accuracy_support`.
    """
    settings_digest = (settings or DEFAULT_ACCURACY_SETTINGS).digest()
    return _resolve_join(
        scenarios,
        key_of=accuracy_key,
        lookup=lambda scenario, key: cache.lookup_fidelity(
            scenario, key=key, settings_digest=settings_digest
        ),
        evaluate_pending=lambda pending: _evaluate_pending_fidelity(
            pending, executor, max_workers, settings
        ),
    )


def _resolve_measured(
    scenarios: Sequence[Scenario],
    cache: ResultCache,
    executor: str,
    max_workers: Optional[int],
    settings: Optional[MeasurementSettings],
) -> Tuple[Dict[Scenario, MeasuredStats], int]:
    """Measured stats for every scenario, one layer execution per unique key."""
    settings_digest = (settings or DEFAULT_MEASUREMENT_SETTINGS).digest()

    def evaluate_pending(pending: List[MeasuredKey]) -> List[MeasuredStats]:
        # Layer execution is NumPy/BLAS-heavy; only real processes help,
        # and only when more than one key needs measuring.
        task = functools.partial(_evaluate_measured_key, settings=settings)
        if executor == "process" and len(pending) > 1:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                return list(pool.map(task, pending))
        return [task(key) for key in pending]

    return _resolve_join(
        scenarios,
        key_of=measured_key,
        lookup=lambda scenario, key: cache.lookup_measured(
            scenario, key=key, settings_digest=settings_digest
        ),
        evaluate_pending=evaluate_pending,
    )


def stream_campaign(
    scenarios: Sequence[Scenario],
    max_workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    simulator_factory: Callable[[Scenario], AcceleratorSimulator] = None,
    executor: str = "thread",
    chunksize: Optional[int] = None,
    with_accuracy: bool = False,
    accuracy_settings: Optional[AccuracySettings] = None,
    with_measured: bool = False,
    measurement_settings: Optional[MeasurementSettings] = None,
    write_store: Optional[Any] = None,
) -> Iterator[Tuple[ScenarioRecord, CampaignProgress]]:
    """Simulate every scenario, streaming ``(record, progress)`` events.

    The streaming core of the campaign engine: joins (fidelity, measured
    stats) are resolved up front — they depend only on scenario fields,
    one evaluation per unique memo key — and the hardware simulations then
    stream through the chosen executor in submission order.  Each record
    is appended to the cache's backing store the moment its simulation
    completes, *before* it is yielded, so a consumer that stops mid-grid
    (kill, exception, ``break``) leaves every emitted record persisted; a
    later run over the same store resumes by skipping those keys, and its
    final record set is bit-identical to an uninterrupted run.

    Scenarios already present in ``cache`` (including duplicates within
    ``scenarios``) are not re-simulated; their records are marked
    ``cached=True``.

    Args:
        scenarios: Grid points to run; event order follows this order.
        max_workers: Pool width (default: the executor's own heuristic).
        cache: Cross-campaign result cache; a fresh one is used if omitted.
            Construct with ``ResultCache(store=ArtifactStore(...))`` to
            persist and reuse results across processes.  Cache entries are
            keyed by scenario only, so a shared cache cannot be combined
            with a custom ``simulator_factory`` (the cached results would
            have been produced under a different simulator configuration).
        simulator_factory: Override how a scenario builds its simulator
            (e.g. to inject a different DRAM model or overlap stage).  With
            ``executor="process"`` it must be picklable (a module-level
            function, not a lambda).
        executor: ``"serial"`` (in-line, best for debugging), ``"thread"``
            (default; fine for small grids), or ``"process"`` (a
            ``ProcessPoolExecutor`` — the simulator is CPU-bound Python,
            so this is the fast choice for large grids).
        chunksize: Scenarios per process-pool work item (``process``
            only); defaults to ~4 chunks per worker.
        with_accuracy: Also evaluate task fidelity (see
            :mod:`repro.experiments.accuracy`) and join a
            :class:`~repro.experiments.accuracy.FidelityResult` to every
            record.  Fidelity is memoised per ``(model, task, scheme)`` —
            one quantization serves every seq/batch/buffer point — and
            persists through the backing store alongside the hardware
            result; raises
            :class:`~repro.experiments.accuracy.UnsupportedSchemeError`
            before any evaluation if a swept scheme has no numerics side.
        accuracy_settings: Evaluation parameters for the accuracy side
            (functional-twin scale, sample counts, Golden-Dictionary
            build); defaults to
            :data:`~repro.experiments.accuracy.DEFAULT_ACCURACY_SETTINGS`.
        with_measured: Also execute one encoder layer of each workload
            through the vectorized index-domain engine (see
            :mod:`repro.experiments.measured`) and join a
            :class:`~repro.experiments.measured.MeasuredStats` to every
            record.  Measurements are memoised per ``(model, seq,
            batch)`` — one layer execution serves every design/scheme/
            buffer point — and persist through the backing store
            alongside the hardware result.
        measurement_settings: Parameters of the measured-layer execution;
            defaults to
            :data:`~repro.experiments.measured.DEFAULT_MEASUREMENT_SETTINGS`.
        write_store: Optional write-only store: every freshly simulated
            record is also appended here.  Used by the spec layer's
            ``resume=False`` mode (re-simulate everything, persist anyway)
            when the store is deliberately kept out of the lookup path.
    """
    _check_cache_factory_combination(cache, simulator_factory)
    return _stream_core(
        scenarios,
        max_workers=max_workers,
        cache=cache if cache is not None else ResultCache(),
        simulator_factory=simulator_factory,
        executor=executor,
        chunksize=chunksize,
        with_accuracy=with_accuracy,
        accuracy_settings=accuracy_settings,
        with_measured=with_measured,
        measurement_settings=measurement_settings,
        write_store=write_store,
    )


def _check_cache_factory_combination(
    cache: Optional[ResultCache],
    simulator_factory: Optional[Callable[[Scenario], AcceleratorSimulator]],
) -> None:
    """Reject a *caller-provided* cache next to a custom simulator.

    A fresh cache private to one run is always safe with a custom
    simulator; a shared one is not — its entries are keyed by scenario
    only and would mix results from different simulator configurations.
    """
    if cache is not None and simulator_factory is not None:
        raise ValueError(
            "a shared cache cannot be combined with a custom simulator_factory: "
            "cache entries are keyed by scenario only and would mix results "
            "from different simulator configurations; use a dedicated cache"
        )


def _stream_core(
    scenarios: Sequence[Scenario],
    max_workers: Optional[int],
    cache: ResultCache,
    simulator_factory: Optional[Callable[[Scenario], AcceleratorSimulator]],
    executor: str,
    chunksize: Optional[int],
    with_accuracy: bool,
    accuracy_settings: Optional[AccuracySettings],
    with_measured: bool,
    measurement_settings: Optional[MeasurementSettings],
    write_store: Optional[Any],
) -> Iterator[Tuple[ScenarioRecord, CampaignProgress]]:
    """The streaming engine behind :func:`stream_campaign`/:func:`run_campaign`.

    Takes a concrete ``cache`` and performs no argument-combination
    checks — callers own those (so :func:`run_campaign` can pair its
    freshly created private cache with a custom simulator, which the
    public :func:`stream_campaign` guard rejects for caller-provided
    caches).
    """
    from repro.experiments.store import scenario_key  # local: store is a sibling

    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r} (choose from {', '.join(EXECUTORS)})")
    scenarios = list(scenarios)
    if with_accuracy:
        _validate_accuracy_support(scenarios)

    resolved: Dict[Scenario, SimulationResult] = {}
    cached_flags: Dict[Scenario, bool] = {}
    pending: List[Scenario] = []
    for scenario in scenarios:
        if scenario in cached_flags:
            continue
        hit = cache.lookup(scenario)
        if hit is not None:
            resolved[scenario] = hit
            cached_flags[scenario] = True
        else:
            cached_flags[scenario] = False
            pending.append(scenario)

    # Joins depend only on scenario fields, never on simulation results,
    # so they resolve before anything simulates: every yielded record is
    # complete, and a consumer that stops early loses no join work for
    # records it never asked for.
    fidelities: Dict[Scenario, FidelityResult] = {}
    fidelity_evaluated = 0
    measured: Dict[Scenario, MeasuredStats] = {}
    measured_evaluated = 0
    unique_scenarios = list(cached_flags)
    if with_accuracy:
        fidelities, fidelity_evaluated = _resolve_fidelities(
            unique_scenarios, cache, executor, max_workers, accuracy_settings
        )
    if with_measured:
        measured, measured_evaluated = _resolve_measured(
            unique_scenarios, cache, executor, max_workers, measurement_settings
        )

    outcomes = _stream_pending(pending, executor, max_workers, chunksize, simulator_factory)
    total = len(scenarios)
    completed = simulated = cached_count = 0
    emitted: Dict[Scenario, ScenarioRecord] = {}
    try:
        for scenario in scenarios:
            if scenario in emitted:
                # A later duplicate of an in-run scenario reuses the first
                # record's result, so it counts as a cache reuse.
                record = ScenarioRecord(
                    scenario=scenario,
                    result=emitted[scenario].result,
                    cached=True,
                    fidelity=fidelities.get(scenario),
                    measured=measured.get(scenario),
                )
                cached_count += 1
            elif cached_flags[scenario]:
                result = resolved[scenario]
                if with_accuracy or with_measured:
                    # One store call carrying every join: a joint campaign
                    # appends a single upgrade line per record, not one
                    # per join.
                    cache.store(
                        scenario,
                        result,
                        fidelity=fidelities.get(scenario),
                        measured=measured.get(scenario),
                    )
                record = ScenarioRecord(
                    scenario=scenario,
                    result=result,
                    cached=True,
                    fidelity=fidelities.get(scenario),
                    measured=measured.get(scenario),
                )
                cached_count += 1
            else:
                result = next(outcomes)
                resolved[scenario] = result
                cache.store(
                    scenario,
                    result,
                    fidelity=fidelities.get(scenario),
                    measured=measured.get(scenario),
                )
                if write_store is not None:
                    write_store.put(
                        scenario,
                        result,
                        fidelity=fidelities.get(scenario),
                        measured=measured.get(scenario),
                    )
                record = ScenarioRecord(
                    scenario=scenario,
                    result=result,
                    cached=False,
                    fidelity=fidelities.get(scenario),
                    measured=measured.get(scenario),
                )
                simulated += 1
            emitted[scenario] = record
            completed += 1
            yield record, CampaignProgress(
                completed=completed,
                total=total,
                simulated=simulated,
                cached=cached_count,
                store_key=scenario_key(scenario),
                fidelity_evaluated=fidelity_evaluated,
                measured_evaluated=measured_evaluated,
            )
    finally:
        outcomes.close()


# --------------------------------------------------------------------------- #
# Legacy batch entry point
# --------------------------------------------------------------------------- #

#: Sentinel distinguishing "kwarg not passed" from an explicit default.
_UNSET: Any = object()

#: run_campaign kwargs superseded by the CampaignSpec API, mapped to the
#: spec component and field that replaces each.  Passing any of them warns
#: once per process.
_LEGACY_KWARG_SPEC_FIELDS = {
    "executor": ("execution", "executor"),
    "chunksize": ("execution", "chunksize"),
    "with_accuracy": ("enrichments", "accuracy"),
    "accuracy_settings": ("enrichments", "accuracy_settings"),
    "with_measured": ("enrichments", "measured"),
    "measurement_settings": ("enrichments", "measurement_settings"),
}

_legacy_kwargs_warned = False


def _reset_legacy_kwarg_warning() -> None:
    """Re-arm the once-per-process deprecation warning (tests only)."""
    global _legacy_kwargs_warned
    _legacy_kwargs_warned = False


def _spec_equivalent_snippet(passed: Dict[str, Any]) -> str:
    """A CampaignSpec construction equivalent to the passed legacy kwargs."""
    parts: Dict[str, List[str]] = {"enrichments": [], "execution": []}
    for name in sorted(passed):
        component, field_name = _LEGACY_KWARG_SPEC_FIELDS[name]
        value = passed[name]
        shown = repr(value) if isinstance(value, (bool, int, str, type(None))) else "..."
        parts[component].append(f"{field_name}={shown}")
    lines = ["    spec = CampaignSpec(", "        axes=AxisGrid(...),  # your expand_grid axes"]
    if parts["enrichments"]:
        lines.append(f"        enrichments=Enrichments({', '.join(parts['enrichments'])}),")
    if parts["execution"]:
        lines.append(f"        execution=ExecutionPolicy({', '.join(parts['execution'])}),")
    lines.append("    )")
    lines.append("    for record, progress in iter_campaign(spec): ...")
    return "\n".join(lines)


def _warn_legacy_kwargs(passed: Dict[str, Any]) -> None:
    global _legacy_kwargs_warned
    if _legacy_kwargs_warned:
        return
    _legacy_kwargs_warned = True
    warnings.warn(
        f"run_campaign({', '.join(sorted(passed))}=...) kwargs are deprecated; "
        f"declare the campaign as a spec instead:\n"
        f"{_spec_equivalent_snippet(passed)}\n"
        f"(behaviour is unchanged; this warning fires once per process)",
        DeprecationWarning,
        stacklevel=3,
    )


def run_campaign(
    scenarios: Sequence[Scenario],
    max_workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    simulator_factory: Callable[[Scenario], AcceleratorSimulator] = None,
    executor: Any = _UNSET,
    chunksize: Any = _UNSET,
    with_accuracy: Any = _UNSET,
    accuracy_settings: Any = _UNSET,
    with_measured: Any = _UNSET,
    measurement_settings: Any = _UNSET,
) -> CampaignResult:
    """Batch wrapper over :func:`stream_campaign`: drain, then return.

    Behaviour, record order and store contents are identical to draining
    the stream (goldens lock this); only the streaming events are lost.
    The enrichment/execution kwargs (``executor``, ``chunksize``,
    ``with_accuracy``, ``accuracy_settings``, ``with_measured``,
    ``measurement_settings``) are deprecated in favour of the declarative
    :class:`~repro.experiments.spec.CampaignSpec` API — they keep working
    verbatim but emit a one-time :class:`DeprecationWarning` naming the
    spec field that replaces them.  ``max_workers``, ``cache`` and
    ``simulator_factory`` are runtime injection points, not experiment
    description, and stay first-class.
    """
    legacy = {
        name: value
        for name, value in (
            ("executor", executor),
            ("chunksize", chunksize),
            ("with_accuracy", with_accuracy),
            ("accuracy_settings", accuracy_settings),
            ("with_measured", with_measured),
            ("measurement_settings", measurement_settings),
        )
        if value is not _UNSET
    }
    if legacy:
        _warn_legacy_kwargs(legacy)
    _check_cache_factory_combination(cache, simulator_factory)
    records: List[ScenarioRecord] = []
    progress: Optional[CampaignProgress] = None
    cache = cache if cache is not None else ResultCache()
    for record, progress in _stream_core(
        scenarios,
        max_workers=max_workers,
        cache=cache,
        simulator_factory=simulator_factory,
        executor=executor if executor is not _UNSET else "thread",
        chunksize=chunksize if chunksize is not _UNSET else None,
        with_accuracy=with_accuracy if with_accuracy is not _UNSET else False,
        accuracy_settings=accuracy_settings if accuracy_settings is not _UNSET else None,
        with_measured=with_measured if with_measured is not _UNSET else False,
        measurement_settings=(
            measurement_settings if measurement_settings is not _UNSET else None
        ),
        write_store=None,
    ):
        records.append(record)
    return CampaignResult(
        records,
        cache,
        fidelity_evaluated=progress.fidelity_evaluated if progress else 0,
        measured_evaluated=progress.measured_evaluated if progress else 0,
    )
