"""Campaign engine: grid expansion, cached simulation, parallel fan-out.

``run_campaign`` is the single sweep loop the benchmarks, examples and the
``repro`` CLI share.  It takes a list of
:class:`~repro.experiments.scenario.Scenario` points (usually from
:func:`expand_grid`), simulates each — fanning out over the chosen
executor (``serial``, ``thread`` or ``process``) and deduplicating through
a :class:`ResultCache` keyed by scenario, optionally layered over an
on-disk :class:`~repro.experiments.store.ArtifactStore` — and returns a
:class:`CampaignResult` of structured records ready for
:mod:`repro.analysis.reporting`.
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.accelerator.metrics import SimulationResult
from repro.accelerator.simulator import AcceleratorSimulator
from repro.experiments.scenario import KB, Scenario

__all__ = [
    "EXECUTORS",
    "ResultCache",
    "ScenarioRecord",
    "CampaignResult",
    "expand_grid",
    "run_scenario",
    "run_campaign",
]

#: Valid ``run_campaign(executor=...)`` choices.
EXECUTORS = ("serial", "thread", "process")


class ResultCache:
    """Thread-safe in-process cache of simulation results keyed by scenario.

    When constructed with a backing
    :class:`~repro.experiments.store.ArtifactStore`, lookups that miss in
    memory fall through to disk (counted in :attr:`store_hits` as well as
    :attr:`hits`) and stores write through, making the cache persistent
    across processes.  :meth:`clear` drops only the in-memory state; the
    backing store is managed separately (``repro campaign clean``).
    """

    def __init__(self, store: Optional[Any] = None) -> None:
        self._results: Dict[Scenario, SimulationResult] = {}
        self._lock = threading.Lock()
        self._store = store
        self.hits = 0
        self.misses = 0
        self.store_hits = 0

    @property
    def backing_store(self) -> Optional[Any]:
        return self._store

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, scenario: Scenario) -> bool:
        with self._lock:
            if scenario in self._results:
                return True
        return self._store is not None and scenario in self._store

    def lookup(self, scenario: Scenario) -> Optional[SimulationResult]:
        """Return the cached result, counting a hit or miss."""
        with self._lock:
            result = self._results.get(scenario)
            if result is not None:
                self.hits += 1
                return result
        if self._store is not None:
            result = self._store.get(scenario)
            if result is not None:
                with self._lock:
                    self._results[scenario] = result
                    self.hits += 1
                    self.store_hits += 1
                return result
        with self._lock:
            self.misses += 1
        return None

    def store(self, scenario: Scenario, result: SimulationResult) -> None:
        with self._lock:
            self._results[scenario] = result
        if self._store is not None:
            self._store.put(scenario, result)

    def clear(self) -> None:
        """Reset the in-memory cache and counters (not the backing store)."""
        with self._lock:
            self._results.clear()
            self.hits = 0
            self.misses = 0
            self.store_hits = 0


@dataclass
class ScenarioRecord:
    """One structured campaign outcome.

    Attributes:
        scenario: The grid point that produced the result.
        result: The full simulation result.
        cached: Whether the result came from the cache without simulating.
    """

    scenario: Scenario
    result: SimulationResult
    cached: bool = False

    @property
    def workload_name(self) -> str:
        return self.result.workload_name

    @property
    def design_name(self) -> str:
        return self.result.design_name

    def to_dict(self) -> Dict[str, object]:
        """Full nested representation; inverse of :meth:`from_dict`.

        For the flat tabular form used by reporting, see :meth:`to_row`.
        """
        return {
            "scenario": self.scenario.to_dict(),
            "result": self.result.to_dict(),
            "cached": bool(self.cached),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioRecord":
        """Rebuild a record from :meth:`to_dict` output, ignoring unknown keys."""
        return cls(
            scenario=Scenario.from_dict(data.get("scenario") or {}),
            result=SimulationResult.from_dict(data.get("result") or {}),
            cached=bool(data.get("cached", False)),
        )

    def to_row(self) -> Dict[str, object]:
        """Flatten scenario + headline metrics for tabular reporting."""
        return {
            "model": self.scenario.model,
            "task": self.scenario.task,
            "sequence_length": self.scenario.resolved_sequence_length,
            "batch_size": self.scenario.batch_size,
            "scheme": self.scenario.scheme or self.result.design_name,
            "design": self.scenario.design,
            "buffer_bytes": self.scenario.buffer_bytes,
            "activation_buffer_fraction": self.scenario.activation_buffer_fraction,
            "workload": self.workload_name,
            "compute_cycles": self.result.compute_cycles,
            "memory_cycles": self.result.memory_cycles,
            "total_cycles": self.result.total_cycles,
            "traffic_bytes": self.result.traffic_bytes,
            "energy_joules": self.result.energy.total,
            "area_mm2": self.result.area.total,
        }


class CampaignResult:
    """The records of one campaign plus cache statistics.

    Iterable over :class:`ScenarioRecord` in submission order; ``filter``
    and ``result`` select records by scenario fields (plus the virtual
    ``workload`` key matching the workload label).
    """

    def __init__(self, records: Sequence[ScenarioRecord], cache: ResultCache) -> None:
        self.records = list(records)
        self.cache = cache

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @staticmethod
    def _matches(record: ScenarioRecord, criteria: Dict[str, object]) -> bool:
        for key, wanted in criteria.items():
            if key == "workload":
                value = record.workload_name
            else:
                value = getattr(record.scenario, key)
            if value != wanted:
                return False
        return True

    def filter(self, **criteria) -> "CampaignResult":
        """Records whose scenario (or workload label) matches ``criteria``."""
        matching = [r for r in self.records if self._matches(r, criteria)]
        return CampaignResult(matching, self.cache)

    def result(self, **criteria) -> SimulationResult:
        """The unique simulation result matching ``criteria``."""
        matching = [r for r in self.records if self._matches(r, criteria)]
        if len(matching) != 1:
            raise LookupError(
                f"expected exactly one record for {criteria}, found {len(matching)}"
            )
        return matching[0].result

    def to_dicts(self) -> List[Dict[str, object]]:
        """Flat reporting rows (one per record); see :meth:`ScenarioRecord.to_row`."""
        return [record.to_row() for record in self.records]

    @property
    def simulated_count(self) -> int:
        """How many records were actually simulated (not cache/store hits)."""
        return sum(1 for record in self.records if not record.cached)


def expand_grid(
    models: Sequence[str] = ("bert-base",),
    tasks: Sequence[str] = ("mnli",),
    sequence_lengths: Sequence[Optional[int]] = (None,),
    batch_sizes: Sequence[int] = (1,),
    schemes: Sequence[Optional[str]] = (None,),
    designs: Sequence[str] = ("mokey",),
    buffer_bytes: Sequence[int] = (512 * KB,),
    workloads: Optional[Iterable[Tuple[str, str, Optional[int]]]] = None,
) -> List[Scenario]:
    """Expand axis values into the full list of scenarios.

    Args:
        models, tasks, sequence_lengths: Workload axes, crossed with each
            other unless ``workloads`` pins explicit combinations.
        batch_sizes: Batch axis.
        schemes: Scheme overrides (``None`` = the design's own scheme).
        designs: Registered design names.
        buffer_bytes: Buffer-capacity axis.
        workloads: Optional explicit ``(model, task, sequence_length)``
            triples replacing the cross product of the first three axes
            (the paper's Table I pairs are not a full cross product).
    """
    if workloads is None:
        workload_specs = list(itertools.product(models, tasks, sequence_lengths))
    else:
        workload_specs = [tuple(spec) for spec in workloads]
    return [
        Scenario(
            model=model,
            task=task,
            sequence_length=seq,
            batch_size=batch,
            scheme=scheme,
            design=design,
            buffer_bytes=size,
        )
        for (model, task, seq), batch, scheme, design, size in itertools.product(
            workload_specs, batch_sizes, schemes, designs, buffer_bytes
        )
    ]


def run_scenario(
    scenario: Scenario,
    simulator_factory: Callable[[Scenario], AcceleratorSimulator] = None,
) -> SimulationResult:
    """Simulate one scenario (no caching)."""
    if simulator_factory is None:
        simulator = AcceleratorSimulator(scenario.build_design())
    else:
        simulator = simulator_factory(scenario)
    return simulator.simulate(
        scenario.build_workload(),
        scenario.buffer_bytes,
        scenario.activation_buffer_fraction,
    )


def _simulate_pending(
    pending: Sequence[Scenario],
    executor: str,
    max_workers: Optional[int],
    chunksize: Optional[int],
    simulator_factory: Optional[Callable[[Scenario], AcceleratorSimulator]],
) -> List[SimulationResult]:
    """Simulate ``pending`` under the chosen executor, preserving order."""
    if simulator_factory is None:
        task = run_scenario
    else:
        task = functools.partial(run_scenario, simulator_factory=simulator_factory)
    if executor == "serial":
        return [task(scenario) for scenario in pending]
    if executor == "thread":
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(task, pending))
    # Process: the simulator path is pure CPU-bound Python, so only real
    # processes escape the GIL.  Chunked dispatch amortises the per-item
    # pickling; map() preserves submission order, so records stay
    # deterministic regardless of which worker finishes first.
    if chunksize is None:
        workers = max_workers or os.cpu_count() or 1
        chunksize = max(1, len(pending) // (workers * 4))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(task, pending, chunksize=chunksize))


def run_campaign(
    scenarios: Sequence[Scenario],
    max_workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    simulator_factory: Callable[[Scenario], AcceleratorSimulator] = None,
    executor: str = "thread",
    chunksize: Optional[int] = None,
) -> CampaignResult:
    """Simulate every scenario, fanning out across the chosen executor.

    Scenarios already present in ``cache`` (including duplicates within
    ``scenarios``) are not re-simulated; their records are marked
    ``cached=True``.

    Args:
        scenarios: Grid points to run; record order follows this order.
        max_workers: Pool width (default: the executor's own heuristic).
        cache: Cross-campaign result cache; a fresh one is used if omitted.
            Construct with ``ResultCache(store=ArtifactStore(...))`` to
            persist and reuse results across processes.  Cache entries are
            keyed by scenario only, so a shared cache cannot be combined
            with a custom ``simulator_factory`` (the cached results would
            have been produced under a different simulator configuration).
        simulator_factory: Override how a scenario builds its simulator
            (e.g. to inject a different DRAM model or overlap stage).  With
            ``executor="process"`` it must be picklable (a module-level
            function, not a lambda).
        executor: ``"serial"`` (in-line, best for debugging), ``"thread"``
            (default; fine for small grids), or ``"process"`` (a
            ``ProcessPoolExecutor`` — the simulator is CPU-bound Python,
            so this is the fast choice for large grids).
        chunksize: Scenarios per process-pool work item (``process``
            only); defaults to ~4 chunks per worker.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r} (choose from {', '.join(EXECUTORS)})")
    if cache is not None and simulator_factory is not None:
        raise ValueError(
            "a shared cache cannot be combined with a custom simulator_factory: "
            "cache entries are keyed by scenario only and would mix results "
            "from different simulator configurations; use a dedicated cache"
        )
    cache = cache if cache is not None else ResultCache()

    resolved: Dict[Scenario, SimulationResult] = {}
    cached_flags: Dict[Scenario, bool] = {}
    pending: List[Scenario] = []
    for scenario in scenarios:
        if scenario in resolved or scenario in cached_flags:
            continue
        hit = cache.lookup(scenario)
        if hit is not None:
            resolved[scenario] = hit
            cached_flags[scenario] = True
        else:
            cached_flags[scenario] = False
            pending.append(scenario)

    if pending:
        outcomes = _simulate_pending(pending, executor, max_workers, chunksize, simulator_factory)
        for scenario, result in zip(pending, outcomes):
            cache.store(scenario, result)
            resolved[scenario] = result

    records = []
    seen: set = set()
    for s in scenarios:
        # Later duplicates of an in-run scenario reuse the first record's
        # result, so they count as cache reuses too.
        records.append(
            ScenarioRecord(scenario=s, result=resolved[s], cached=cached_flags[s] or s in seen)
        )
        seen.add(s)
    return CampaignResult(records, cache)
