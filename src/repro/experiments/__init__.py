"""Scenario/campaign sweep engine.

The paper's evaluation is a grid: models × tasks × sequence lengths ×
batch sizes × quantization schemes × accelerator designs × buffer sizes.
This package owns that grid so benchmarks, examples and future services
share one sweep loop instead of each re-implementing it:

* :class:`~repro.experiments.scenario.Scenario` — one frozen, hashable
  grid point, resolvable to a workload and an accelerator design;
* :func:`~repro.experiments.campaign.expand_grid` — axis values → the
  scenario list (with explicit workload triples for non-cross-product
  grids like the paper's Table I);
* :class:`~repro.experiments.campaign.ResultCache` — in-process,
  thread-safe result cache keyed by scenario, shared across campaigns and
  optionally layered over an on-disk store;
* :class:`~repro.experiments.store.ArtifactStore` — content-addressed
  JSONL store persisting results across processes, so repeated campaigns
  only simulate new grid points; one of two pluggable
  :class:`~repro.experiments.store.StoreBackend` implementations
  (``open_store(root, backend=...)``) next to the indexed, WAL-mode
  :class:`~repro.experiments.store_sqlite.SqliteStoreBackend`, which adds
  server-side ``query()`` pushdown and concurrent shard writers;
* :class:`~repro.experiments.spec.CampaignSpec` — the declarative front
  door: a frozen, JSON-round-trippable experiment description (axes grid
  + enrichments + execution policy) validated against the unified
  registries (:mod:`repro.registry`);
* :func:`~repro.experiments.spec.iter_campaign` — streams
  ``(ScenarioRecord, CampaignProgress)`` events as scenarios complete,
  appending each to the store incrementally so a killed campaign resumes
  bit-identically by skipping persisted keys;
* :func:`~repro.experiments.campaign.run_campaign` — the batch wrapper
  (its enrichment/execution kwargs are deprecated in favour of specs):
  fans the scenarios out over the chosen executor (``serial | thread |
  process``) and returns structured
  :class:`~repro.experiments.campaign.ScenarioRecord`
  rows consumable by :mod:`repro.analysis.reporting`;
* :mod:`repro.experiments.accuracy` — the accuracy half of the paper's
  joint claim: ``run_campaign(..., with_accuracy=True)`` joins a
  :class:`~repro.experiments.accuracy.FidelityResult` (task fidelity to
  the FP model, outlier fractions, compression) to every record, memoised
  per ``(model, task, scheme)`` and persisted through the store;
* :mod:`repro.experiments.measured` — measured index-domain operation
  counts: ``run_campaign(..., with_measured=True)`` executes one encoder
  layer of each workload through the vectorized index-domain engine and
  joins a :class:`~repro.experiments.measured.MeasuredStats` (real
  Gaussian/outlier pair counts, next to the schemes' analytic ones) to
  every record, memoised per ``(model, seq, batch)`` and persisted
  through the store.

The ``repro`` CLI (``python -m repro campaign ...``) drives this package
from the command line.

Usage::

    from repro.experiments import expand_grid, run_campaign

    scenarios = expand_grid(
        workloads=[("bert-large", "squad", None), ("bert-base", "mnli", None)],
        designs=("tensor-cores", "mokey"),
        buffer_bytes=(256 * 1024, 1024 * 1024),
        batch_sizes=(1, 8),
    )
    campaign = run_campaign(scenarios)
    mokey = campaign.result(design="mokey", model="bert-base",
                            batch_size=1, buffer_bytes=1024 * 1024)
    baseline = campaign.result(design="tensor-cores", model="bert-base",
                               batch_size=1, buffer_bytes=1024 * 1024)
    print(mokey.speedup_over(baseline))

New designs register through
:func:`~repro.experiments.scenario.register_design`; new numerics methods
register a scheme (see :mod:`repro.schemes`) and are immediately sweepable
via the ``schemes=`` axis.
"""

from repro.experiments.accuracy import (
    DEFAULT_ACCURACY_SETTINGS,
    AccuracySettings,
    FidelityResult,
    UnsupportedSchemeError,
    accuracy_key,
    accuracy_scheme_for,
    evaluate_fidelity,
    fidelity_digest,
    register_fidelity_evaluator,
    supported_accuracy_schemes,
    supports_accuracy,
)
from repro.experiments.measured import (
    DEFAULT_MEASUREMENT_SETTINGS,
    MeasuredStats,
    MeasurementSettings,
    evaluate_measured,
    measured_digest,
    measured_key,
)
from repro.experiments.scenario import (
    DESIGN_FACTORIES,
    Scenario,
    available_designs,
    build_design,
    register_design,
)
from repro.experiments.campaign import (
    EXECUTORS,
    CampaignProgress,
    CampaignResult,
    ResultCache,
    ScenarioRecord,
    expand_grid,
    run_campaign,
    run_scenario,
    stream_campaign,
)
from repro.experiments.store import (
    SCHEMA_VERSION,
    ArtifactStore,
    StoreBackend,
    StoreEntry,
    available_store_backends,
    detect_store_backend,
    entry_digest,
    migrate_store,
    open_store,
    parse_filter,
    register_store_backend,
    scenario_key,
    store_digest,
)

# Importing the SQLite backend registers it in STORE_BACKENDS; it must
# come after ``store`` (it imports the protocol from there), which Python
# guarantees by importing the parent package first.
from repro.experiments.store_sqlite import SqliteStoreBackend
from repro.experiments.spec import (
    AxisGrid,
    CampaignSpec,
    Enrichments,
    ExecutionPolicy,
    iter_campaign,
    run_spec,
    shard_spec,
)

__all__ = [
    "DEFAULT_ACCURACY_SETTINGS",
    "DEFAULT_MEASUREMENT_SETTINGS",
    "MeasuredStats",
    "MeasurementSettings",
    "evaluate_measured",
    "measured_digest",
    "measured_key",
    "AccuracySettings",
    "FidelityResult",
    "UnsupportedSchemeError",
    "accuracy_key",
    "accuracy_scheme_for",
    "evaluate_fidelity",
    "fidelity_digest",
    "register_fidelity_evaluator",
    "supported_accuracy_schemes",
    "supports_accuracy",
    "DESIGN_FACTORIES",
    "Scenario",
    "available_designs",
    "build_design",
    "register_design",
    "EXECUTORS",
    "CampaignProgress",
    "CampaignResult",
    "ResultCache",
    "ScenarioRecord",
    "expand_grid",
    "run_campaign",
    "run_scenario",
    "stream_campaign",
    "SCHEMA_VERSION",
    "ArtifactStore",
    "SqliteStoreBackend",
    "StoreBackend",
    "StoreEntry",
    "available_store_backends",
    "detect_store_backend",
    "entry_digest",
    "migrate_store",
    "open_store",
    "parse_filter",
    "register_store_backend",
    "scenario_key",
    "store_digest",
    "AxisGrid",
    "CampaignSpec",
    "Enrichments",
    "ExecutionPolicy",
    "iter_campaign",
    "run_spec",
    "shard_spec",
]
