"""Content-addressed on-disk artifact store for simulation results.

The store makes campaigns incremental across processes: every simulated
:class:`~repro.experiments.scenario.Scenario` is appended to a JSONL log
keyed by a stable content hash of the scenario (plus the record schema
version), and later campaigns — in this process or any other — resolve
identical grid points from disk instead of re-simulating them.

On-disk layout (one directory per store)::

    <root>/
      records.jsonl     # one JSON object per line, append-only

Each line is a self-describing record::

    {"schema_version": 1, "key": "<sha256 prefix>",
     "scenario": {...Scenario.to_dict()...},
     "result": {...SimulationResult.to_dict()...},
     "fidelity": {...FidelityResult.to_dict()...},    # optional
     "measured": {...MeasuredStats.to_dict()...}}     # optional

The ``fidelity`` field is the accuracy half of the record (see
:mod:`repro.experiments.accuracy`) and ``measured`` is the measured
index-domain operation mix (see :mod:`repro.experiments.measured`); both
are omitted for hardware-only records, and a later campaign *upgrades*
such a record by appending a new line under the same key (the last line
per key wins on load; an upgrade line carries every part already known
plus the new one).  Because unknown fields are tolerated in both
directions, adding these joins needs no ``SCHEMA_VERSION`` bump — the
simulator numerics the key protects are unchanged.

Records with a different ``schema_version``, unparseable lines, and lines
whose payload does not rebuild are skipped on load (counted in
:attr:`ArtifactStore.skipped`), so a store written by a newer code version
degrades to cache misses rather than crashing.  Unknown *fields inside* a
record are ignored by ``from_dict`` — see :mod:`repro.accelerator.metrics`.

The content key is computed from the canonical JSON of the scenario's
field mapping, so it is stable across processes, platforms, and
``PYTHONHASHSEED`` — unlike ``hash(scenario)``, which keys the in-memory
:class:`~repro.experiments.campaign.ResultCache` only.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Dict, Iterator, List, NamedTuple, Optional, Union

from repro.accelerator.metrics import SimulationResult
from repro.experiments.accuracy import FidelityResult
from repro.experiments.measured import MeasuredStats
from repro.experiments.scenario import Scenario

__all__ = ["SCHEMA_VERSION", "scenario_key", "StoreEntry", "ArtifactStore"]


class StoreEntry(NamedTuple):
    """One stored record: the scenario, its result and optional joins."""

    scenario: Scenario
    result: SimulationResult
    fidelity: Optional[FidelityResult]
    measured: Optional[MeasuredStats]

# Bump on any change that invalidates stored results: an incompatible
# serialized form of Scenario/SimulationResult, OR an intentional change
# to the simulator's numerics (i.e. whenever tests/goldens.json is
# regenerated).  The key hashes only scenario *inputs*, so without a bump
# an existing store would silently keep serving pre-change results.
# Old-version records are ignored (and re-simulated) rather than misread.
SCHEMA_VERSION = 1

RECORDS_FILENAME = "records.jsonl"


def scenario_key(scenario: Scenario, schema_version: int = SCHEMA_VERSION) -> str:
    """Stable content hash identifying ``scenario`` under ``schema_version``.

    The key is the first 24 hex digits of the SHA-256 of the canonical
    (sorted-key, compact) JSON of the scenario's fields plus the schema
    version, so two processes always agree on it.
    """
    payload = {"schema_version": schema_version, "scenario": scenario.to_dict()}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


class ArtifactStore:
    """Append-only, content-addressed store of scenario → result records.

    Thread-safe; the JSONL log is loaded lazily on first access and kept
    as an in-memory index afterwards.  Layer it under a
    :class:`~repro.experiments.campaign.ResultCache` (``ResultCache(store=...)``)
    to make ``run_campaign`` incremental across processes.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        self.path = self.root / RECORDS_FILENAME
        self._lock = threading.Lock()
        self._index: Optional[Dict[str, StoreEntry]] = None
        #: Lines skipped on load (corrupt, wrong schema version, unreadable).
        self.skipped = 0

    # -- loading ---------------------------------------------------------

    def _load_locked(self) -> Dict[str, StoreEntry]:
        if self._index is not None:
            return self._index
        index: Dict[str, StoreEntry] = {}
        self.skipped = 0
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        if record.get("schema_version") != SCHEMA_VERSION:
                            raise ValueError("schema version mismatch")
                        scenario = Scenario.from_dict(record["scenario"])
                        result = SimulationResult.from_dict(record["result"])
                        raw_fidelity = record.get("fidelity")
                        fidelity = (
                            None if raw_fidelity is None else FidelityResult.from_dict(raw_fidelity)
                        )
                        raw_measured = record.get("measured")
                        measured = (
                            None if raw_measured is None else MeasuredStats.from_dict(raw_measured)
                        )
                        key = record.get("key") or scenario_key(scenario)
                    except (ValueError, KeyError, TypeError, AttributeError):
                        self.skipped += 1
                        continue
                    index[key] = StoreEntry(scenario, result, fidelity, measured)
        self._index = index
        return index

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._load_locked())

    def __contains__(self, scenario: Scenario) -> bool:
        with self._lock:
            return scenario_key(scenario) in self._load_locked()

    def get(self, scenario: Scenario) -> Optional[SimulationResult]:
        """The stored result for ``scenario``, or ``None``."""
        with self._lock:
            entry = self._load_locked().get(scenario_key(scenario))
            return entry.result if entry is not None else None

    def get_fidelity(self, scenario: Scenario) -> Optional[FidelityResult]:
        """The stored fidelity for ``scenario``, or ``None``."""
        with self._lock:
            entry = self._load_locked().get(scenario_key(scenario))
            return entry.fidelity if entry is not None else None

    def get_measured(self, scenario: Scenario) -> Optional[MeasuredStats]:
        """The stored measured stats for ``scenario``, or ``None``."""
        with self._lock:
            entry = self._load_locked().get(scenario_key(scenario))
            return entry.measured if entry is not None else None

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._load_locked())

    def records(self) -> Iterator[StoreEntry]:
        """All stored entries, in insertion order.

        Each :class:`StoreEntry` unpacks as ``(scenario, result,
        fidelity, measured)``; the optional parts are ``None`` for
        hardware-only records.
        """
        with self._lock:
            entries = list(self._load_locked().values())
        return iter(entries)

    # -- mutation --------------------------------------------------------

    def put(
        self,
        scenario: Scenario,
        result: SimulationResult,
        fidelity: Optional[FidelityResult] = None,
        measured: Optional[MeasuredStats] = None,
    ) -> bool:
        """Persist one record; returns ``False`` if nothing new was stored.

        A record stored without fidelity and/or measured stats is
        *upgraded* when the missing part is provided: a fresh line is
        appended under the same key carrying every part already known plus
        the new one (the last line per key wins on load).  A record that
        already carries everything offered is never rewritten, and the
        no-op path skips serialization entirely (it is the hot path of
        fully-cached re-runs).
        """
        key = scenario_key(scenario)
        with self._lock:
            index = self._load_locked()
            existing = index.get(key)
            if existing is not None:
                adds_fidelity = fidelity is not None and existing.fidelity is None
                adds_measured = measured is not None and existing.measured is None
                if not adds_fidelity and not adds_measured:
                    return False
                # Carry the parts the stored record already has.
                fidelity = fidelity if fidelity is not None else existing.fidelity
                measured = measured if measured is not None else existing.measured
            record = {
                "schema_version": SCHEMA_VERSION,
                "key": key,
                "scenario": scenario.to_dict(),
                "result": result.to_dict(),
            }
            if fidelity is not None:
                record["fidelity"] = fidelity.to_dict()
            if measured is not None:
                record["measured"] = measured.to_dict()
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
            self.root.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
            index[key] = StoreEntry(scenario, result, fidelity, measured)
            return True

    def clear(self) -> int:
        """Delete every record (and the log file); returns how many existed."""
        with self._lock:
            count = len(self._load_locked())
            if self.path.exists():
                self.path.unlink()
            self._index = {}
            self.skipped = 0
            return count
