"""Pluggable, content-addressed artifact stores for simulation results.

The store makes campaigns incremental across processes: every simulated
:class:`~repro.experiments.scenario.Scenario` is persisted under a stable
content hash of the scenario (plus the record schema version), and later
campaigns — in this process or any other — resolve identical grid points
from disk instead of re-simulating them.

Two backends ship behind one :class:`StoreBackend` contract, registered
in :data:`STORE_BACKENDS` (and surfaced as the ``stores`` registry of
:mod:`repro.registry`):

* :class:`ArtifactStore` — the append-only JSONL backend (the default):
  one self-describing JSON object per line in ``<root>/records.jsonl``,
  loaded into an in-memory index on first access.  Zero dependencies,
  human-greppable, but every query re-parses the whole log and
  concurrent writers from different processes are unsupported.
* :class:`~repro.experiments.store_sqlite.SqliteStoreBackend` — an
  indexed SQLite database in ``<root>/records.sqlite`` (WAL mode), with
  a real column per scenario axis so :meth:`StoreBackend.query` filters,
  orders, groups and limits **server-side**, and concurrent shard
  writers (threads or processes) interleave safely.  The backend for
  million-record campaign grids.

``open_store(root)`` auto-detects which layout a directory holds (a
directory holding both resolves to SQLite; pass ``backend=`` to force)
and :func:`migrate_store` copies one store into another, preserving
insertion order, keys and record digests — so ``repro store migrate``
converts between layouts losslessly.

The protocol contract (see :class:`StoreBackend` for the full method
set) every backend must honour:

* **Content addressing** — records are keyed by :func:`scenario_key`;
  two processes always agree on the key of a scenario.
* **Last-write-wins upgrades** — :meth:`~StoreBackend.put` on an
  existing key stores nothing unless it *adds* a missing part (fidelity
  and/or measured stats); an upgrade carries every part already known
  plus the new ones, and the upgraded record replaces the old one while
  keeping its original insertion position.
* **Insertion order** — :meth:`~StoreBackend.keys` and
  :meth:`~StoreBackend.records` iterate in first-put order, stable
  across upgrades, re-opens and migrations.
* **Degrade, never crash** — records written under a different
  ``schema_version`` and records whose payload does not rebuild are
  skipped (surfaced via :attr:`~StoreBackend.skipped`), so a store
  written by a newer code version degrades to cache misses.
* **Streaming** — :meth:`~StoreBackend.records` and ungrouped
  :meth:`~StoreBackend.query` results are lazy iterators; consuming a
  prefix must not materialise (or deserialize) the full record set.
* **Query pushdown** — :meth:`~StoreBackend.query` evaluates filters /
  ``order_by`` / ``limit`` / ``group_by`` inside the backend; both
  backends return identical rows for identical content (locked by the
  conformance suite in ``tests/test_store_backends.py``).

Each JSONL line (and each SQLite row's payload columns) is a
self-describing record::

    {"schema_version": 1, "key": "<sha256 prefix>",
     "scenario": {...Scenario.to_dict()...},
     "result": {...SimulationResult.to_dict()...},
     "fidelity": {...FidelityResult.to_dict()...},    # optional
     "measured": {...MeasuredStats.to_dict()...}}     # optional

The ``fidelity`` field is the accuracy half of the record (see
:mod:`repro.experiments.accuracy`) and ``measured`` is the measured
index-domain operation mix (see :mod:`repro.experiments.measured`); both
are omitted for hardware-only records, and a later campaign *upgrades*
such a record as described above.  Because unknown fields are tolerated
in both directions, adding these joins needs no ``SCHEMA_VERSION`` bump —
the simulator numerics the key protects are unchanged.

The content key is computed from the canonical JSON of the scenario's
field mapping, so it is stable across processes, platforms, and
``PYTHONHASHSEED`` — unlike ``hash(scenario)``, which keys the in-memory
:class:`~repro.experiments.campaign.ResultCache` only.
"""

from __future__ import annotations

import difflib
import hashlib
import itertools
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.accelerator.metrics import SimulationResult
from repro.experiments.accuracy import FidelityResult
from repro.experiments.measured import MeasuredStats
from repro.experiments.scenario import Scenario

__all__ = [
    "SCHEMA_VERSION",
    "scenario_key",
    "entry_digest",
    "store_digest",
    "StoreEntry",
    "StoreBackend",
    "ArtifactStore",
    "QueryField",
    "QUERY_FIELDS",
    "AXIS_FIELDS",
    "GROUP_METRICS",
    "GROUP_AGGREGATES",
    "parse_filter",
    "STORE_BACKENDS",
    "DEFAULT_STORE_BACKEND",
    "register_store_backend",
    "available_store_backends",
    "detect_store_backend",
    "open_store",
    "migrate_store",
]


class StoreEntry(NamedTuple):
    """One stored record: the scenario, its result and optional joins."""

    scenario: Scenario
    result: SimulationResult
    fidelity: Optional[FidelityResult]
    measured: Optional[MeasuredStats]


# Bump on any change that invalidates stored results: an incompatible
# serialized form of Scenario/SimulationResult, OR an intentional change
# to the simulator's numerics (i.e. whenever tests/goldens.json is
# regenerated).  The key hashes only scenario *inputs*, so without a bump
# an existing store would silently keep serving pre-change results.
# Old-version records are ignored (and re-simulated) rather than misread.
SCHEMA_VERSION = 1

RECORDS_FILENAME = "records.jsonl"


def scenario_key(scenario: Scenario, schema_version: int = SCHEMA_VERSION) -> str:
    """Stable content hash identifying ``scenario`` under ``schema_version``.

    The key is the first 24 hex digits of the SHA-256 of the canonical
    (sorted-key, compact) JSON of the scenario's fields plus the schema
    version, so two processes always agree on it.
    """
    payload = {"schema_version": schema_version, "scenario": scenario.to_dict()}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


def entry_digest(entry: StoreEntry) -> str:
    """SHA-256 of one stored record's canonical content.

    Hashes the full self-describing record form (schema version, scenario,
    result, and whichever joins the entry carries) as canonical JSON, so
    two entries digest equal iff a reader would rebuild identical values
    from them — independent of which process wrote them, in what order,
    or under which backend.
    """
    record: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "scenario": entry.scenario.to_dict(),
        "result": entry.result.to_dict(),
    }
    if entry.fidelity is not None:
        record["fidelity"] = entry.fidelity.to_dict()
    if entry.measured is not None:
        record["measured"] = entry.measured.to_dict()
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def store_digest(store: "StoreBackend") -> Dict[str, str]:
    """Content identity of a whole store: ``{scenario key: record digest}``.

    Insertion order is deliberately *not* part of the identity: shard
    workers appending to one shared store interleave nondeterministically,
    but a multi-worker campaign is bit-identical to a single-process run
    exactly when this mapping matches — same keys, same record digests.
    The equality tests and the service's CI smoke compare stores this way.
    """
    return {scenario_key(e.scenario): entry_digest(e) for e in store.records()}


# --------------------------------------------------------------------------- #
# Query pushdown: the shared field/filter/plan model both backends speak.
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class QueryField:
    """One name filters/``order_by``/``group_by`` can address.

    Attributes:
        name: Public field name.
        kind: ``"axis"`` (a scenario field, an indexed column in the
            SQLite backend) or ``"metric"`` (a headline number extracted
            from the stored result payload).
        sql: SQL expression over the SQLite backend's ``records`` table
            computing the field's value.
        get: The same value computed from a :class:`StoreEntry` (what the
            JSONL backend — and the conformance suite — evaluates).
    """

    name: str
    kind: str
    sql: str
    get: Callable[[StoreEntry], Any]


def _axis_field(name: str) -> QueryField:
    return QueryField(name, "axis", name, lambda e, _n=name: getattr(e.scenario, _n))


def _result_metric(name: str) -> QueryField:
    return QueryField(
        name,
        "metric",
        f"json_extract(result, '$.{name}')",
        lambda e, _n=name: float(getattr(e.result, _n)),
    )


#: Scenario axes addressable by queries — each is an indexed column in
#: the SQLite backend.
AXIS_FIELDS = (
    "model",
    "task",
    "sequence_length",
    "batch_size",
    "scheme",
    "design",
    "buffer_bytes",
    "activation_buffer_fraction",
)

#: Every field a query can filter or order by, axis columns first.
QUERY_FIELDS: Dict[str, QueryField] = {name: _axis_field(name) for name in AXIS_FIELDS}
QUERY_FIELDS.update(
    {
        # The scheme the report's scheme column displays: the scenario's
        # override when set, else the result's design name.  Derived from
        # the result payload on the JSONL side, but materialised as an
        # indexed column by the SQLite backend so it still compiles to
        # SQL (kind "axis": filterable, groupable, orderable).
        "effective_scheme": QueryField(
            "effective_scheme",
            "axis",
            "effective_scheme",
            lambda e: e.scenario.scheme if e.scenario.scheme is not None
            else e.result.design_name,
        ),
        "compute_cycles": _result_metric("compute_cycles"),
        "memory_cycles": _result_metric("memory_cycles"),
        "total_cycles": _result_metric("total_cycles"),
        "traffic_bytes": _result_metric("traffic_bytes"),
        # Totals are sums of serialized components, added left-to-right in
        # the same order as the EnergyBreakdown/AreaBreakdown ``total``
        # properties, so SQL and Python agree bit-for-bit.
        "energy_joules": QueryField(
            "energy_joules",
            "metric",
            "(json_extract(result, '$.energy.dram')"
            " + json_extract(result, '$.energy.sram')"
            " + json_extract(result, '$.energy.compute'))",
            lambda e: e.result.energy.dram + e.result.energy.sram + e.result.energy.compute,
        ),
        "area_mm2": QueryField(
            "area_mm2",
            "metric",
            "(json_extract(result, '$.area.compute')"
            " + json_extract(result, '$.area.buffer'))",
            lambda e: e.result.area.compute + e.result.area.buffer,
        ),
    }
)

#: Metrics aggregated (min + mean) per group row of a grouped query.
GROUP_METRICS = ("total_cycles", "energy_joules")

#: Aggregate column names a grouped query's ``order_by`` may address.
GROUP_AGGREGATES = ("count", "with_fidelity", "with_measured") + tuple(
    f"{agg}_{metric}" for metric in GROUP_METRICS for agg in ("min", "mean")
)

#: Comparison operators filters understand (``=`` is accepted as ``==``).
FILTER_OPS = ("==", "!=", "<", "<=", ">", ">=")

Filter = Tuple[str, str, Any]


def parse_filter(text: str) -> Filter:
    """Parse a CLI-style ``field<op>value`` string into a filter triple.

    ``repro campaign report --where model=bert-base --where
    "total_cycles<=1e9"`` feeds through here: the operator is one of
    ``= == != < <= > >=``, and the value parses as ``None`` (``none`` /
    ``null``), an int, a float, or falls back to a string.
    """
    for op in ("<=", ">=", "!=", "==", "<", ">", "="):
        if op in text:
            field, raw = text.split(op, 1)
            field = field.strip()
            if not field:
                raise ValueError(f"filter {text!r} is missing a field name")
            return field, ("==" if op == "=" else op), _parse_filter_value(raw.strip())
    raise ValueError(
        f"filter {text!r} has no comparison operator "
        f"(write field<op>value, e.g. model=bert-base or total_cycles<=1e9)"
    )


def _parse_filter_value(raw: str) -> Any:
    if raw.lower() in ("none", "null"):
        return None
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def _suggest(name: Any, candidates: Iterable[str]) -> str:
    matches = difflib.get_close_matches(str(name), list(candidates), n=1, cutoff=0.6)
    return f" — did you mean {matches[0]!r}?" if matches else ""


@dataclass(frozen=True)
class _QueryPlan:
    """A validated query, executable both in Python and as SQL.

    Built (and fully validated — unknown fields raise ``ValueError`` with
    a did-you-mean suggestion before any I/O) by :meth:`build`; the JSONL
    backend runs it via :meth:`entries`/:meth:`groups` over its record
    stream, the SQLite backend compiles the same plan to one SQL
    statement.  Both produce identical rows by contract.
    """

    filters: Tuple[Tuple[QueryField, str, Any], ...]
    group_fields: Tuple[QueryField, ...]
    order_field: Optional[str]
    descending: bool
    limit: Optional[int]

    @classmethod
    def build(
        cls,
        filters: Iterable[Union[str, Filter]] = (),
        group_by: Optional[Union[str, Sequence[str]]] = None,
        order_by: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> "_QueryPlan":
        parsed: List[Tuple[QueryField, str, Any]] = []
        for item in filters or ():
            if isinstance(item, str):
                item = parse_filter(item)
            name, op, value = item
            field = QUERY_FIELDS.get(name)
            if field is None:
                raise ValueError(
                    f"unknown query field {name!r}{_suggest(name, QUERY_FIELDS)} "
                    f"(fields: {', '.join(QUERY_FIELDS)})"
                )
            op = "==" if op == "=" else op
            if op not in FILTER_OPS:
                raise ValueError(
                    f"unknown filter operator {op!r} (choose from {', '.join(FILTER_OPS)})"
                )
            if value is None and op not in ("==", "!="):
                raise ValueError(
                    f"filter {name!r} {op} None: ordering comparisons need a non-null value"
                )
            if field.kind == "metric" and value is not None and not isinstance(value, (int, float)):
                raise ValueError(
                    f"filter on metric {name!r} needs a numeric value, got {value!r}"
                )
            parsed.append((field, op, value))
        group_fields: List[QueryField] = []
        if group_by is not None:
            names = (group_by,) if isinstance(group_by, str) else tuple(group_by)
            for name in names:
                field = QUERY_FIELDS.get(name)
                if field is None or field.kind != "axis":
                    groupable = tuple(
                        f.name for f in QUERY_FIELDS.values() if f.kind == "axis"
                    )
                    raise ValueError(
                        f"group_by field {name!r} must be a scenario axis"
                        f"{_suggest(name, groupable)} (axes: {', '.join(groupable)})"
                    )
                group_fields.append(field)
        order_field: Optional[str] = None
        descending = False
        if order_by:
            # Three descending spellings: '-FIELD' (needs the --order-by=
            # equals form on the CLI, argparse eats the bare '-'), '~FIELD'
            # and 'FIELD:desc' (both safe in the space form).  'FIELD:asc'
            # spells ascending explicitly.
            order_field = str(order_by)
            if order_field[:1] in ("-", "~"):
                descending, order_field = True, order_field[1:]
            if order_field.endswith(":desc"):
                descending, order_field = True, order_field[: -len(":desc")]
            elif order_field.endswith(":asc"):
                descending, order_field = False, order_field[: -len(":asc")]
            if group_fields:
                valid = tuple(f.name for f in group_fields) + GROUP_AGGREGATES
                if order_field not in valid:
                    raise ValueError(
                        f"order_by {order_field!r} must be a group field or aggregate"
                        f"{_suggest(order_field, valid)} (choices: {', '.join(valid)})"
                    )
            elif order_field not in QUERY_FIELDS:
                raise ValueError(
                    f"unknown order_by field {order_field!r}"
                    f"{_suggest(order_field, QUERY_FIELDS)} "
                    f"(fields: {', '.join(QUERY_FIELDS)})"
                )
        if limit is not None:
            limit = int(limit)
            if limit <= 0:
                raise ValueError(f"limit must be positive, got {limit}")
        return cls(tuple(parsed), tuple(group_fields), order_field, descending, limit)

    # -- Python-side execution (JSONL backend, conformance oracle) -------

    @staticmethod
    def _sort_key(value: Any) -> Tuple[bool, Any]:
        # None sorts first ascending / last descending, matching SQLite's
        # NULL placement under ASC/DESC.
        return (value is not None, value)

    def matches(self, entry: StoreEntry) -> bool:
        for field, op, wanted in self.filters:
            value = field.get(entry)
            if wanted is None:
                ok = (value is None) if op == "==" else (value is not None)
            elif value is None:
                # SQL three-valued logic: NULL never satisfies a concrete
                # comparison (including ``!=``).
                ok = False
            elif op == "==":
                ok = value == wanted
            elif op == "!=":
                ok = value != wanted
            elif op == "<":
                ok = value < wanted
            elif op == "<=":
                ok = value <= wanted
            elif op == ">":
                ok = value > wanted
            else:
                ok = value >= wanted
            if not ok:
                return False
        return True

    def entries(self, records: Iterator[StoreEntry]) -> Iterator[StoreEntry]:
        """Filtered/ordered/limited entries; lazy unless ordering forces a sort."""
        matching: Iterator[StoreEntry] = (e for e in records if self.matches(e))
        if self.order_field is not None:
            field = QUERY_FIELDS[self.order_field]
            matching = iter(
                sorted(
                    matching,
                    key=lambda e: self._sort_key(field.get(e)),
                    reverse=self.descending,
                )
            )
        if self.limit is not None:
            matching = itertools.islice(matching, self.limit)
        return matching

    def groups(self, records: Iterator[StoreEntry]) -> List[Dict[str, Any]]:
        """Aggregate rows per distinct group key (see :data:`GROUP_AGGREGATES`)."""
        accum: Dict[Tuple[Any, ...], List[Any]] = {}
        for entry in records:
            if not self.matches(entry):
                continue
            key = tuple(field.get(entry) for field in self.group_fields)
            acc = accum.get(key)
            if acc is None:
                acc = accum[key] = [0, 0, 0] + [None, 0.0] * len(GROUP_METRICS)
            acc[0] += 1
            if entry.fidelity is not None:
                acc[1] += 1
            if entry.measured is not None:
                acc[2] += 1
            for i, metric in enumerate(GROUP_METRICS):
                value = QUERY_FIELDS[metric].get(entry)
                slot = 3 + 2 * i
                acc[slot] = value if acc[slot] is None else min(acc[slot], value)
                acc[slot + 1] += value
        rows: List[Dict[str, Any]] = []
        for key in sorted(accum, key=lambda k: tuple(self._sort_key(v) for v in k)):
            acc = accum[key]
            row: Dict[str, Any] = {
                field.name: value for field, value in zip(self.group_fields, key)
            }
            row["count"] = acc[0]
            row["with_fidelity"] = acc[1]
            row["with_measured"] = acc[2]
            for i, metric in enumerate(GROUP_METRICS):
                row[f"min_{metric}"] = acc[3 + 2 * i]
                row[f"mean_{metric}"] = acc[3 + 2 * i + 1] / acc[0]
            rows.append(row)
        if self.order_field is not None:
            rows.sort(
                key=lambda r: self._sort_key(r[self.order_field]), reverse=self.descending
            )
        if self.limit is not None:
            rows = rows[: self.limit]
        return rows


# --------------------------------------------------------------------------- #
# The backend protocol.
# --------------------------------------------------------------------------- #


@runtime_checkable
class StoreBackend(Protocol):
    """What every artifact-store backend must implement.

    The contract (conformance-tested for both shipped backends in
    ``tests/test_store_backends.py``; see the module docstring for the
    invariants in prose):

    * ``get``/``get_fidelity``/``get_measured`` resolve by
      :func:`scenario_key` and return ``None`` on a miss.
    * ``put`` persists one record, returning ``True`` iff something new
      was stored; re-offering a fully known record is a no-op, offering a
      missing part appends an upgrade carrying everything known.
    * ``keys``/``records`` iterate in first-put order; ``records`` is a
      lazy iterator (a prefix read must not deserialize everything).
    * ``query`` pushes filters / ``group_by`` / ``order_by`` / ``limit``
      into the backend and matches the Python reference semantics of
      :class:`_QueryPlan` exactly.
    * ``skipped`` counts records this code version cannot read (wrong
      ``schema_version``, unparseable payloads) instead of crashing.
    * ``clear`` deletes everything and returns how many records existed;
      ``refresh`` drops any in-memory state so another writer's appends
      become visible.
    """

    #: Registered backend name (``"jsonl"``, ``"sqlite"``, ...).
    backend_name: str
    #: Store directory.
    root: Path
    #: The backing file inside :attr:`root`.
    path: Path

    def get(self, scenario: Scenario) -> Optional[SimulationResult]: ...

    def get_fidelity(self, scenario: Scenario) -> Optional[FidelityResult]: ...

    def get_measured(self, scenario: Scenario) -> Optional[MeasuredStats]: ...

    def put(
        self,
        scenario: Scenario,
        result: SimulationResult,
        fidelity: Optional[FidelityResult] = None,
        measured: Optional[MeasuredStats] = None,
    ) -> bool: ...

    def put_many(self, entries: Iterable[StoreEntry]) -> int: ...

    def keys(self) -> List[str]: ...

    def records(self) -> Iterator[StoreEntry]: ...

    def query(
        self,
        filters: Iterable[Union[str, Filter]] = (),
        group_by: Optional[Union[str, Sequence[str]]] = None,
        order_by: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> Union[Iterator[StoreEntry], List[Dict[str, Any]]]: ...

    def clear(self) -> int: ...

    def refresh(self) -> None: ...

    def __len__(self) -> int: ...

    def __contains__(self, scenario: Scenario) -> bool: ...


# --------------------------------------------------------------------------- #
# JSONL backend (the default).
# --------------------------------------------------------------------------- #


class ArtifactStore:
    """Append-only JSONL store of scenario → result records (the default backend).

    Thread-safe; the JSONL log is loaded lazily on first access and kept
    as an in-memory index afterwards (:meth:`refresh` drops it so another
    process's appends become visible).  Layer it under a
    :class:`~repro.experiments.campaign.ResultCache` (``ResultCache(store=...)``)
    to make ``run_campaign`` incremental across processes.  For indexed
    server-side queries and concurrent shard writers, migrate to the
    SQLite backend (``repro store migrate``).
    """

    backend_name = "jsonl"
    FILENAME = RECORDS_FILENAME

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        self.path = self.root / self.FILENAME
        self._lock = threading.Lock()
        self._index: Optional[Dict[str, StoreEntry]] = None
        #: Lines skipped on load (corrupt, wrong schema version, unreadable).
        self.skipped = 0

    # -- loading ---------------------------------------------------------

    def _load_locked(self) -> Dict[str, StoreEntry]:
        if self._index is not None:
            return self._index
        index: Dict[str, StoreEntry] = {}
        self.skipped = 0
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        if record.get("schema_version") != SCHEMA_VERSION:
                            raise ValueError("schema version mismatch")
                        scenario = Scenario.from_dict(record["scenario"])
                        result = SimulationResult.from_dict(record["result"])
                        raw_fidelity = record.get("fidelity")
                        fidelity = (
                            None if raw_fidelity is None else FidelityResult.from_dict(raw_fidelity)
                        )
                        raw_measured = record.get("measured")
                        measured = (
                            None if raw_measured is None else MeasuredStats.from_dict(raw_measured)
                        )
                        key = record.get("key") or scenario_key(scenario)
                    except (ValueError, KeyError, TypeError, AttributeError):
                        self.skipped += 1
                        continue
                    index[key] = StoreEntry(scenario, result, fidelity, measured)
        self._index = index
        return index

    def refresh(self) -> None:
        """Drop the in-memory index; the next access reloads from disk.

        Call after another process appended to the log to make its
        records (and an up-to-date :attr:`skipped` count) visible here.
        """
        with self._lock:
            self._index = None

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._load_locked())

    def __contains__(self, scenario: Scenario) -> bool:
        with self._lock:
            return scenario_key(scenario) in self._load_locked()

    def get(self, scenario: Scenario) -> Optional[SimulationResult]:
        """The stored result for ``scenario``, or ``None``."""
        with self._lock:
            entry = self._load_locked().get(scenario_key(scenario))
            return entry.result if entry is not None else None

    def get_fidelity(self, scenario: Scenario) -> Optional[FidelityResult]:
        """The stored fidelity for ``scenario``, or ``None``."""
        with self._lock:
            entry = self._load_locked().get(scenario_key(scenario))
            return entry.fidelity if entry is not None else None

    def get_measured(self, scenario: Scenario) -> Optional[MeasuredStats]:
        """The stored measured stats for ``scenario``, or ``None``."""
        with self._lock:
            entry = self._load_locked().get(scenario_key(scenario))
            return entry.measured if entry is not None else None

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._load_locked())

    def records(self) -> Iterator[StoreEntry]:
        """All stored entries, in insertion order, as a lazy generator.

        Each :class:`StoreEntry` unpacks as ``(scenario, result,
        fidelity, measured)``; the optional parts are ``None`` for
        hardware-only records.  Only the (much smaller) key list is
        snapshotted up front — entries are looked up one at a time, so
        a prefix read never copies the index, and puts interleaved with
        iteration are safe (records put after the snapshot are not
        yielded; a concurrent :meth:`clear` ends the iteration).
        """
        with self._lock:
            keys = list(self._load_locked())
        for key in keys:
            index = self._index
            if index is None:  # cleared/refreshed mid-iteration
                return
            entry = index.get(key)
            if entry is not None:
                yield entry

    def query(
        self,
        filters: Iterable[Union[str, Filter]] = (),
        group_by: Optional[Union[str, Sequence[str]]] = None,
        order_by: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> Union[Iterator[StoreEntry], List[Dict[str, Any]]]:
        """Filtered (and optionally grouped) view of the store.

        Args:
            filters: ``(field, op, value)`` triples or CLI-style strings
                (see :func:`parse_filter`); fields are the scenario axes
                plus the headline result metrics (:data:`QUERY_FIELDS`).
            group_by: Axis name(s); switches the return value to a list
                of aggregate row dicts (group fields + ``count`` /
                ``with_fidelity`` / ``with_measured`` + min/mean of
                :data:`GROUP_METRICS`).
            order_by: Field to order entries by (or, grouped, a group
                field / aggregate name); prefix ``-`` for descending.
            limit: Keep only the first ``limit`` entries/rows.

        Returns:
            A lazy iterator of :class:`StoreEntry` (no ``group_by``) or a
            list of aggregate row dicts (with ``group_by``).
        """
        plan = _QueryPlan.build(filters, group_by, order_by, limit)
        if plan.group_fields:
            return plan.groups(self.records())
        return plan.entries(self.records())

    # -- mutation --------------------------------------------------------

    def put(
        self,
        scenario: Scenario,
        result: SimulationResult,
        fidelity: Optional[FidelityResult] = None,
        measured: Optional[MeasuredStats] = None,
    ) -> bool:
        """Persist one record; returns ``False`` if nothing new was stored.

        A record stored without fidelity and/or measured stats is
        *upgraded* when the missing part is provided: a fresh line is
        appended under the same key carrying every part already known plus
        the new one (the last line per key wins on load).  A record that
        already carries everything offered is never rewritten, and the
        no-op path skips serialization entirely (it is the hot path of
        fully-cached re-runs).
        """
        key = scenario_key(scenario)
        with self._lock:
            index = self._load_locked()
            existing = index.get(key)
            if existing is not None:
                adds_fidelity = fidelity is not None and existing.fidelity is None
                adds_measured = measured is not None and existing.measured is None
                if not adds_fidelity and not adds_measured:
                    return False
                # Carry the parts the stored record already has.
                fidelity = fidelity if fidelity is not None else existing.fidelity
                measured = measured if measured is not None else existing.measured
            record = {
                "schema_version": SCHEMA_VERSION,
                "key": key,
                "scenario": scenario.to_dict(),
                "result": result.to_dict(),
            }
            if fidelity is not None:
                record["fidelity"] = fidelity.to_dict()
            if measured is not None:
                record["measured"] = measured.to_dict()
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
            self.root.mkdir(parents=True, exist_ok=True)
            self._append_line(line)
            index[key] = StoreEntry(scenario, result, fidelity, measured)
            return True

    def _append_line(self, line: str) -> None:
        """Append one record line as a single ``O_APPEND`` write.

        Shared-writer hardening: with ``O_APPEND``, each ``os.write`` is
        one atomic append on local filesystems, so concurrent appenders
        from different processes (the campaign service's shard workers on
        a JSONL store) can interleave whole lines but never splice partial
        ones — the log stays parseable line-by-line.  Note what this does
        *not* give: another process's appends only become visible here
        after :meth:`refresh`, and two processes offered the same missing
        key may both append it (last line per key wins on load, and shard
        workers write disjoint keys anyway).  For heavy concurrent
        writing, the SQLite backend — the service's default — takes real
        transactions instead.
        """
        data = (line + "\n").encode("utf-8")
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)

    def put_many(self, entries: Iterable[StoreEntry]) -> int:
        """Persist many entries (in order); returns how many stored anything."""
        return sum(
            1
            for entry in entries
            if self.put(
                entry.scenario, entry.result, fidelity=entry.fidelity, measured=entry.measured
            )
        )

    def clear(self) -> int:
        """Delete every record (and the log file); returns how many existed.

        The in-memory index is *invalidated*, not replaced: the next
        access re-reads the log from disk, so records appended by another
        process after the clear — and an accurate :attr:`skipped` count —
        are picked up instead of reporting the pre-clear state.
        """
        with self._lock:
            count = len(self._load_locked())
            if self.path.exists():
                self.path.unlink()
            self._index = None
            self.skipped = 0
            return count


# --------------------------------------------------------------------------- #
# Backend registry, detection, and migration.
# --------------------------------------------------------------------------- #

#: Registered backend name → backend class (``repro.registry`` exposes a
#: live ``stores`` registry view over this mapping).
STORE_BACKENDS: Dict[str, Callable[[Union[str, os.PathLike]], StoreBackend]] = {}

#: The backend ``open_store`` falls back to for a fresh directory.
DEFAULT_STORE_BACKEND = "jsonl"


def register_store_backend(
    name: str,
    backend: Callable[[Union[str, os.PathLike]], StoreBackend],
    replace: bool = False,
) -> None:
    """Register a store backend class/factory under ``name``."""
    if name in STORE_BACKENDS and not replace:
        raise ValueError(f"store backend {name!r} is already registered")
    STORE_BACKENDS[name] = backend


def available_store_backends() -> Tuple[str, ...]:
    """Names of all registered store backends, sorted."""
    return tuple(sorted(STORE_BACKENDS))


def detect_store_backend(root: Union[str, os.PathLike]) -> Optional[str]:
    """Which backend's layout ``root`` holds, or ``None`` for a fresh dir.

    Checks every registered backend's ``FILENAME`` marker; a directory
    holding both layouts (e.g. mid-migration) resolves to ``sqlite``
    over ``jsonl`` — pass an explicit backend to ``open_store`` to force
    the other.
    """
    root = Path(root)
    preferred = [name for name in ("sqlite", "jsonl") if name in STORE_BACKENDS]
    others = [name for name in sorted(STORE_BACKENDS) if name not in preferred]
    for name in preferred + others:
        filename = getattr(STORE_BACKENDS[name], "FILENAME", None)
        if filename is not None and (root / filename).exists():
            return name
    return None


def open_store(
    root: Union[str, os.PathLike], backend: Optional[str] = None
) -> StoreBackend:
    """Open the store at ``root`` under the named (or detected) backend.

    With ``backend=None`` the directory's existing layout wins
    (:func:`detect_store_backend`); a fresh directory opens as
    :data:`DEFAULT_STORE_BACKEND`.  Unknown names raise ``ValueError``
    with a did-you-mean suggestion.
    """
    if backend is None:
        backend = detect_store_backend(root) or DEFAULT_STORE_BACKEND
    try:
        factory = STORE_BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown store backend {backend!r}{_suggest(backend, STORE_BACKENDS)} "
            f"(registered: {', '.join(available_store_backends())})"
        ) from None
    return factory(root)


def migrate_store(source: StoreBackend, dest: StoreBackend) -> int:
    """Copy every readable record of ``source`` into ``dest``.

    Entries stream in insertion order through ``dest.put_many``, so keys,
    record digests and iteration order are preserved exactly (locked by
    the migration tests); unreadable source records are skipped (counted
    in ``source.skipped``) and keys already present in ``dest`` merge
    under the normal upgrade semantics.  Returns how many records stored
    anything.
    """
    if Path(source.path) == Path(dest.path):
        raise ValueError(
            f"source and destination are the same store ({source.path}); "
            f"migrate into a different directory or backend"
        )
    return dest.put_many(source.records())


register_store_backend("jsonl", ArtifactStore)
