"""HTTP front of the campaign service: stdlib server, JSON API.

Routes (all under ``/api/v1``)::

    GET  /api/v1/health                      liveness + job counts
    GET  /api/v1/campaigns                   list job summaries
    POST /api/v1/campaigns                   submit {"spec": ..., "kind"?, "workers"?}
    GET  /api/v1/campaigns/{id}              structured status (shards, counters)
    GET  /api/v1/campaigns/{id}/records      completed records as NDJSON, grid order
    POST /api/v1/campaigns/{id}/cancel       stop after in-flight records
    POST /api/v1/campaigns/{id}/kill-worker  SIGKILL one shard's worker
                                             ({"shard": i}; fault-injection hook)

Built on :class:`http.server.ThreadingHTTPServer` — no third-party web
framework, matching the repo's no-new-dependencies rule.  Each request
runs on its own thread against the shared :class:`~repro.service.jobs.Coordinator`,
whose locking makes status/submit/cancel safe under concurrency.  Errors
are JSON ``{"error": ...}`` with 400 (bad payload / failed validation)
or 404 (unknown id) — never an HTML traceback page.

:func:`run_daemon` owns the graceful-shutdown contract: ``serve_forever``
runs on a background thread while the main thread waits for
SIGTERM/SIGINT, then stops accepting requests, drains the coordinator's
worker pools (in-flight shard writes flush — persist-before-yield means
every record a worker reported is already in the store) and exits 0.
"""

from __future__ import annotations

import errno
import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.service.jobs import Coordinator, ServiceError

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "make_server",
    "run_daemon",
]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8321

_API_PREFIX = "/api/v1"


class _Handler(BaseHTTPRequestHandler):
    """Routes one request against the bound coordinator."""

    # Injected by make_server() onto a per-server subclass.
    coordinator: Coordinator = None  # type: ignore[assignment]
    quiet: bool = True

    # -- plumbing --------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover - exercised only with --verbose
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_json(self) -> Optional[Dict[str, Any]]:
        """Parse the request body as a JSON object, or answer 400."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_error_json(400, f"request body is not valid JSON: {exc}")
            return None
        if not isinstance(payload, dict):
            self._send_error_json(400, "request body must be a JSON object")
            return None
        return payload

    def _route(self) -> Tuple[str, ...]:
        path = self.path.split("?", 1)[0].rstrip("/")
        if not path.startswith(_API_PREFIX):
            return ()
        return tuple(part for part in path[len(_API_PREFIX):].split("/") if part)

    # -- verbs -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parts = self._route()
        try:
            if parts == ("health",):
                jobs = self.coordinator.jobs()
                self._send_json(200, {
                    "status": "ok",
                    "jobs": len(jobs),
                    "active": sum(
                        1 for job in jobs if job["state"] in ("pending", "running")
                    ),
                    "store": str(self.coordinator.store_root),
                    "store_backend": self.coordinator.store_backend,
                })
            elif parts == ("campaigns",):
                self._send_json(200, {"campaigns": self.coordinator.jobs()})
            elif len(parts) == 2 and parts[0] == "campaigns":
                self._send_json(200, self.coordinator.status(parts[1]))
            elif len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "records":
                self._stream_records(parts[1])
            else:
                self._send_error_json(404, f"no such route: GET {self.path}")
        except ServiceError as exc:
            self._send_error_json(404, str(exc))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        parts = self._route()
        try:
            if parts == ("campaigns",):
                self._submit()
            elif len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "cancel":
                self._send_json(200, self.coordinator.cancel(parts[1]))
            elif (
                len(parts) == 3 and parts[0] == "campaigns"
                and parts[2] == "kill-worker"
            ):
                self._kill_worker(parts[1])
            else:
                self._send_error_json(404, f"no such route: POST {self.path}")
        except ServiceError as exc:
            self._send_error_json(404, str(exc))

    # -- handlers --------------------------------------------------------

    def _submit(self) -> None:
        payload = self._read_json()
        if payload is None:
            return
        spec_dict = payload.get("spec")
        if not isinstance(spec_dict, dict):
            self._send_error_json(
                400, "payload must be {'spec': {...}, 'kind'?: str, 'workers'?: int}"
            )
            return
        try:
            job_id = self.coordinator.submit(
                spec_dict,
                kind=payload.get("kind"),
                workers=payload.get("workers"),
            )
        except (ServiceError, ValueError, KeyError, TypeError) as exc:
            self._send_error_json(400, f"spec rejected: {exc}")
            return
        self._send_json(201, self.coordinator.status(job_id))

    def _stream_records(self, job_id: str) -> None:
        # records() is a generator: force the unknown-id check now, while
        # a 404 can still be sent (headers go out before the first line).
        self.coordinator.status(job_id)
        records = self.coordinator.records(job_id)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        for record in records:
            self.wfile.write(
                (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
            )

    def _kill_worker(self, job_id: str) -> None:
        payload = self._read_json()
        if payload is None:
            return
        shard = payload.get("shard", 0)
        if not isinstance(shard, int) or isinstance(shard, bool):
            self._send_error_json(400, f"shard must be an integer, got {shard!r}")
            return
        killed = self.coordinator.kill_worker(job_id, shard)
        self._send_json(200, {"id": job_id, "shard": shard, "killed": killed})


def make_server(
    host: str,
    port: int,
    coordinator: Coordinator,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """Bind the service; raise a one-line :class:`ServiceError` if taken.

    Pass ``port=0`` to bind an ephemeral port (tests); the chosen port is
    ``server.server_address[1]``.
    """
    handler = type(
        "BoundHandler", (_Handler,), {"coordinator": coordinator, "quiet": quiet}
    )
    try:
        server = ThreadingHTTPServer((host, port), handler)
    except OSError as exc:
        if exc.errno in (errno.EADDRINUSE, errno.EACCES):
            raise ServiceError(
                f"cannot bind {host}:{port} ({exc.strerror or exc}) — is another "
                f"'repro serve' already running? Stop it or pick a different --port."
            ) from None
        raise
    server.daemon_threads = True
    return server


def run_daemon(server: ThreadingHTTPServer, coordinator: Coordinator) -> None:
    """Serve until SIGTERM/SIGINT, then drain workers and return.

    ``serve_forever`` runs on a background thread; the main thread parks
    on an event flipped by the signal handler.  (Calling
    ``server.shutdown()`` from a handler running *on* the serve thread
    deadlocks — hence the split.)  Shutdown order: stop accepting
    requests, ask every worker to stop, wait for in-flight shard writes
    to flush, close the socket.  Must be called from the main thread
    (signal handlers can only be installed there).
    """
    stop = threading.Event()

    def _handle(signum: int, frame: Any) -> None:  # noqa: ARG001
        stop.set()

    previous = {
        sig: signal.signal(sig, _handle) for sig in (signal.SIGTERM, signal.SIGINT)
    }
    serve_thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    serve_thread.start()
    try:
        stop.wait()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.shutdown()
        serve_thread.join(5.0)
        coordinator.drain()
        server.server_close()
