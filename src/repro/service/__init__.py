"""Campaign service: HTTP daemon + sharded multi-worker job queue.

Turns the repo's streaming campaign engine into a long-running service:
``repro serve`` starts an HTTP daemon (:mod:`repro.service.daemon`, pure
stdlib) whose :class:`~repro.service.jobs.Coordinator` shards each
submitted :class:`~repro.experiments.spec.CampaignSpec` across worker
processes writing one shared artifact store.  Content-addressed,
persist-before-yield resume makes the workers disposable: kill any one
mid-shard and its replacement resumes from the store, with final keys +
record digests bit-identical to a single-process run.
:class:`~repro.service.client.ServiceClient` is the matching stdlib
client, and ``repro submit / status / results / cancel`` drive it from
the command line.
"""

from repro.service.client import ServiceClient, default_url
from repro.service.daemon import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    make_server,
    run_daemon,
)
from repro.service.jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    Coordinator,
    ServiceError,
)

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "Coordinator",
    "ServiceError",
    "ServiceClient",
    "default_url",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "make_server",
    "run_daemon",
]
