"""Stdlib client for the campaign service (``urllib``, no dependencies).

Mirrors the daemon's routes one method each::

    client = ServiceClient("http://127.0.0.1:8321")
    client.health()
    job_id = client.submit(spec)              # CampaignSpec | ServingSpec | dict
    client.status(job_id)
    client.wait(job_id, timeout=300)
    for record in client.results(job_id):     # NDJSON stream, grid order
        ...
    client.cancel(job_id)

Every HTTP failure — connection refused, 400 on a bad spec, 404 on an
unknown id — surfaces as :class:`~repro.service.jobs.ServiceError`
carrying the daemon's one-line message, so CLI callers can print it
without a traceback.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.service.jobs import TERMINAL_STATES, ServiceError

__all__ = ["ServiceClient", "default_url"]

_ENV_URL = "REPRO_SERVICE_URL"


def default_url() -> str:
    """Service URL: ``$REPRO_SERVICE_URL`` or the daemon's default port."""
    return os.environ.get(_ENV_URL, "http://127.0.0.1:8321")


def _spec_payload(spec: Any) -> Dict[str, Any]:
    """Accept a spec object (anything with ``to_dict``) or a plain dict."""
    if hasattr(spec, "to_dict"):
        return spec.to_dict()
    if isinstance(spec, dict):
        return spec
    raise ServiceError(
        f"spec must be a CampaignSpec, ServingSpec or dict, got {type(spec).__name__}"
    )


class ServiceClient:
    """Talks to one ``repro serve`` daemon over its JSON API."""

    def __init__(self, url: Optional[str] = None, timeout: float = 30.0) -> None:
        self.url = (url or default_url()).rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Any:
        url = f"{self.url}/api/v1{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            response = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            raise ServiceError(self._error_message(exc)) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach campaign service at {self.url}: {exc.reason} "
                f"(is 'repro serve' running?)"
            ) from None
        with response:
            return json.loads(response.read().decode("utf-8"))

    @staticmethod
    def _error_message(exc: "urllib.error.HTTPError") -> str:
        try:
            body = json.loads(exc.read().decode("utf-8"))
            return f"{exc.code}: {body['error']}"
        except Exception:  # noqa: BLE001 - non-JSON error body
            return f"{exc.code}: {exc.reason}"

    # -- API -------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def submit(
        self,
        spec: Any,
        kind: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> str:
        """Submit a spec; returns the campaign id (kind is auto-detected)."""
        payload: Dict[str, Any] = {"spec": _spec_payload(spec)}
        if kind is not None:
            payload["kind"] = kind
        if workers is not None:
            payload["workers"] = workers
        return self._request("POST", "/campaigns", payload)["id"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/campaigns")["campaigns"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/campaigns/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/campaigns/{job_id}/cancel", {})

    def kill_worker(self, job_id: str, shard: int = 0) -> bool:
        """Fault-injection hook: SIGKILL one shard's worker process."""
        response = self._request(
            "POST", f"/campaigns/{job_id}/kill-worker", {"shard": shard}
        )
        return bool(response["killed"])

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']!r} after {timeout:.0f}s"
                )
            time.sleep(poll)

    def results(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Stream the job's completed records (NDJSON lines, grid order)."""
        url = f"{self.url}/api/v1/campaigns/{job_id}/records"
        request = urllib.request.Request(
            url, headers={"Accept": "application/x-ndjson"}
        )
        try:
            response = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            raise ServiceError(self._error_message(exc)) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach campaign service at {self.url}: {exc.reason} "
                f"(is 'repro serve' running?)"
            ) from None
        with response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
