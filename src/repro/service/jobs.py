"""Campaign service coordinator: sharded multi-worker jobs over one store.

The service side of ``repro serve``: a :class:`Coordinator` accepts
:class:`~repro.experiments.spec.CampaignSpec` /
:class:`~repro.serving.spec.ServingSpec` payloads, splits a campaign's
axis grid into deterministic shards
(:func:`~repro.experiments.spec.shard_spec`) and fans the shards out to
**worker processes** that each drive the ordinary streaming engine
(:func:`~repro.experiments.spec.iter_campaign` /
:func:`~repro.serving.spec.iter_serving`) against one shared artifact
store.

Fault tolerance falls out of PR 5's persist-before-yield semantics plus
content-addressed resume: every record a worker reports as completed is
already in the store, and a worker (re)started on the same shard spec
skips persisted keys.  So the per-job supervisor thread simply restarts
any worker process that dies mid-shard — kill ``-9`` included — and the
final store (keys + record digests, see
:func:`~repro.experiments.store.store_digest`) is bit-identical to a
single-process run of the same spec, whatever the interleaving.

Workers are spawned (not forked): the daemon runs worker management from
threads, and forking a threaded process is deadlock-prone (and deprecated
from Python 3.12).  Worker entry points live at module level so they
pickle under the spawn context.

Job lifecycle states are described in :data:`JOB_STATES` and surfaced as
the ``job-states`` registry of :mod:`repro.registry`.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.experiments import (
    CampaignSpec,
    entry_digest,
    iter_campaign,
    open_store,
    scenario_key,
    shard_spec,
)
from repro.serving import ServingSpec, iter_serving

__all__ = [
    "JOB_STATES",
    "ServiceError",
    "Coordinator",
]

#: Every state a service job can be in, with what it means.  Surfaced as
#: the ``job-states`` registry (``repro registry list job-states``) so
#: clients and docs share one vocabulary.
JOB_STATES: Dict[str, str] = {
    "pending": "accepted and sharded; worker processes not yet started",
    "running": "worker processes are executing shards against the shared store",
    "completed": "every shard drained; all records persisted and streamable",
    "failed": "a shard errored or exhausted its restart budget; partial records remain",
    "cancelled": "stopped by request or daemon shutdown; persisted records remain resumable",
}

#: States a job never leaves.
TERMINAL_STATES = ("completed", "failed", "cancelled")


class ServiceError(RuntimeError):
    """A campaign-service operation failed (bind, submit, lookup, ...)."""


# --------------------------------------------------------------------------- #
# Worker entry points (module-level: they must pickle under spawn).
# --------------------------------------------------------------------------- #


def _worker_main(
    kind: str,
    spec_dict: Dict[str, Any],
    shard_index: int,
    queue: Any,
    stop_event: Any,
) -> None:
    """One worker process: drive a shard's stream, reporting over ``queue``.

    Each message is ``(tag, shard_index, payload)``.  A ``"progress"``
    message is sent only *after* the engine yielded the record — which is
    after the record was persisted — so everything the supervisor has seen
    progress for is already in the shared store.  The stop event is
    checked between records: cancellation loses at most the in-flight
    scenario, and everything already reported stays persisted.
    """
    try:
        if kind == "campaign":
            spec = CampaignSpec.from_dict(spec_dict)
            events = iter_campaign(spec)
            try:
                for _record, progress in events:
                    queue.put(("progress", shard_index, progress.to_dict()))
                    if stop_event.is_set():
                        queue.put(("stopped", shard_index, None))
                        return
            finally:
                events.close()
        else:
            spec = ServingSpec.from_dict(spec_dict)
            events = iter_serving(spec)
            try:
                for record, progress in events:
                    queue.put(("record", shard_index, record.to_row()))
                    queue.put(("progress", shard_index, progress.to_dict()))
                    if stop_event.is_set():
                        queue.put(("stopped", shard_index, None))
                        return
            finally:
                events.close()
        queue.put(("done", shard_index, None))
    except BaseException as exc:  # noqa: BLE001 - reported, not swallowed
        try:
            queue.put(("error", shard_index, f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - queue already torn down
            pass


# --------------------------------------------------------------------------- #
# Job bookkeeping.
# --------------------------------------------------------------------------- #


@dataclass
class _ShardState:
    """Supervisor-side view of one shard's worker."""

    index: int
    total: int
    state: str = "pending"  # pending | running | done | stopped | failed
    completed: int = 0
    restarts: int = 0
    pid: Optional[int] = None
    #: The last raw progress dict the worker reported (campaign and
    #: serving progress carry different counters; status passes it through).
    last_progress: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "state": self.state,
            "completed": self.completed,
            "total": self.total,
            "restarts": self.restarts,
            "pid": self.pid,
            "progress": self.last_progress,
        }


@dataclass
class _Job:
    """One submitted campaign/serving job and its runtime attachments."""

    id: str
    kind: str
    name: str
    spec_dict: Dict[str, Any]
    shard_dicts: List[Dict[str, Any]]
    shards: List[_ShardState]
    workers: int
    state: str = "pending"
    error: Optional[str] = None
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    #: Serving jobs stream their combo rows back over the queue (they are
    #: small and are not persisted as store records themselves).
    rows: List[Dict[str, Any]] = field(default_factory=list)
    # Runtime attachments (populated by the coordinator when it starts
    # the job; absent from status payloads).
    queue: Any = None
    stop_event: Any = None
    procs: Dict[int, Any] = field(default_factory=dict)


class Coordinator:
    """Owns the shared store and every job's worker pool + supervisor.

    One coordinator backs one daemon: all jobs append to one shared
    artifact store (SQLite by default — the backend proven under
    concurrent writers), so resubmitting an overlapping grid simulates
    only what no earlier job persisted.

    Args:
        store: Directory of the shared artifact store.
        store_backend: Store backend name (default ``"sqlite"``).
        default_workers: Worker processes per campaign job when a
            submission does not say (serving jobs always run one worker —
            a serving spec has no shardable axis grid).
        max_restarts: How many times one shard's worker may be replaced
            after dying before the shard (and job) is declared failed.
        grace_seconds: How long cancellation/shutdown waits for workers to
            drain the in-flight record before terminating them.
    """

    #: Hard ceiling on worker processes per job, whatever was requested.
    MAX_WORKERS = 32

    def __init__(
        self,
        store: Union[str, os.PathLike],
        store_backend: str = "sqlite",
        default_workers: int = 2,
        max_restarts: int = 3,
        grace_seconds: float = 10.0,
    ) -> None:
        self.store_root = Path(store)
        self.store_backend = store_backend
        self.default_workers = max(1, int(default_workers))
        self.max_restarts = int(max_restarts)
        self.grace_seconds = float(grace_seconds)
        # Spawned workers: the daemon spawns from supervisor threads, and
        # fork-with-threads is deadlock-prone (and deprecated on 3.12+).
        self._ctx = multiprocessing.get_context("spawn")
        self._jobs: Dict[str, _Job] = {}
        self._supervisors: Dict[str, threading.Thread] = {}
        self._lock = threading.Lock()
        self._counter = 0

    # -- submission ------------------------------------------------------

    @staticmethod
    def detect_kind(spec_dict: Dict[str, Any]) -> str:
        """``"serving"`` when the payload looks like a ServingSpec."""
        if "serving_spec_version" in spec_dict or "trace" in spec_dict:
            return "serving"
        return "campaign"

    def submit(
        self,
        spec_dict: Dict[str, Any],
        kind: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> str:
        """Validate, shard and start one job; returns its id.

        The submitted spec's execution policy is overridden to the
        service's contract: the coordinator's shared store and backend,
        ``resume=True`` (the substrate of worker replacement) and the
        serial executor *inside* each worker — parallelism comes from the
        worker processes, one per shard, not from nested pools.

        Raises:
            ServiceError: for an unknown ``kind`` or bad ``workers``.
            ValueError / RegistryError: from spec validation (unknown
                axis names, malformed grids) — nothing starts.
        """
        kind = kind or self.detect_kind(spec_dict)
        if kind not in ("campaign", "serving"):
            raise ServiceError(
                f"unknown job kind {kind!r} (choose 'campaign' or 'serving')"
            )
        if workers is not None and int(workers) < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")

        overrides = dict(
            store=str(self.store_root),
            store_backend=self.store_backend,
            resume=True,
            executor="serial",
            max_workers=None,
        )
        if kind == "campaign":
            spec = CampaignSpec.from_dict(spec_dict).with_execution(**overrides)
            spec.validate()
            num_workers = min(
                self.MAX_WORKERS, int(workers) if workers is not None else self.default_workers
            )
            shard_specs = shard_spec(spec, num_workers)
            shard_dicts = [s.to_dict() for s in shard_specs]
            totals = [len(s.scenarios()) for s in shard_specs]
        else:
            spec = ServingSpec.from_dict(spec_dict).with_execution(**overrides)
            spec.validate()
            num_workers = 1  # a serving spec has no shardable grid
            shard_dicts = [spec.to_dict()]
            totals = [len(spec.combos())]

        with self._lock:
            self._counter += 1
            job_id = f"{kind}-{self._counter:04d}"
            job = _Job(
                id=job_id,
                kind=kind,
                name=spec.name,
                spec_dict=spec.to_dict(),
                shard_dicts=shard_dicts,
                shards=[
                    _ShardState(index=i, total=total) for i, total in enumerate(totals)
                ],
                workers=num_workers,
            )
            self._jobs[job_id] = job
            supervisor = threading.Thread(
                target=self._supervise, args=(job,), name=f"supervise-{job_id}",
                daemon=True,
            )
            self._supervisors[job_id] = supervisor
        supervisor.start()
        return job_id

    # -- queries ---------------------------------------------------------

    def _get(self, job_id: str) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            known = ", ".join(sorted(self._jobs)) or "none"
            raise ServiceError(f"unknown campaign id {job_id!r} (known: {known})")
        return job

    def status(self, job_id: str) -> Dict[str, Any]:
        """Structured progress of one job (shards, counters, timestamps)."""
        job = self._get(job_id)
        with self._lock:
            shards = [shard.to_dict() for shard in job.shards]
            payload: Dict[str, Any] = {
                "id": job.id,
                "kind": job.kind,
                "name": job.name,
                "state": job.state,
                "error": job.error,
                "workers": job.workers,
                "store": str(self.store_root),
                "store_backend": self.store_backend,
                "created": job.created,
                "started": job.started,
                "finished": job.finished,
                "progress": {
                    "completed": sum(s.completed for s in job.shards),
                    "total": sum(s.total for s in job.shards),
                },
                "shards": shards,
            }
            restarts = sum(s.restarts for s in job.shards)
            payload["restarts"] = restarts
            return payload

    def jobs(self) -> List[Dict[str, Any]]:
        """One summary row per job, submission order."""
        with self._lock:
            job_ids = list(self._jobs)
        return [
            {
                key: status[key]
                for key in ("id", "kind", "name", "state", "workers", "restarts")
            }
            | {"progress": status["progress"]}
            for status in (self.status(job_id) for job_id in job_ids)
        ]

    def wait(self, job_id: str, timeout: float = 60.0, poll: float = 0.05) -> Dict[str, Any]:
        """Block until the job reaches a terminal state (or raise)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']!r} after {timeout:.0f}s"
                )
            time.sleep(poll)

    def records(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Stream the job's completed records as JSON-ready dicts.

        Campaign jobs stream from the shared store **in grid order** (the
        submitted spec's scenario order, not store insertion order), each
        row carrying the content key and record digest — so the stream of
        a multi-worker run compares line-for-line equal to a
        single-process run of the same spec.  Scenarios not yet persisted
        are simply absent, making the stream usable mid-run.  Serving
        jobs stream the combo rows their worker reported.
        """
        job = self._get(job_id)
        if job.kind == "serving":
            with self._lock:
                rows = list(job.rows)
            yield from rows
            return
        spec = CampaignSpec.from_dict(job.spec_dict)
        store = open_store(self.store_root, backend=self.store_backend)
        entries = {scenario_key(e.scenario): e for e in store.records()}
        for scenario in spec.scenarios():
            key = scenario_key(scenario)
            entry = entries.get(key)
            if entry is None:
                continue
            record: Dict[str, Any] = {
                "key": key,
                "digest": entry_digest(entry),
                "scenario": entry.scenario.to_dict(),
                "result": entry.result.to_dict(),
            }
            if entry.fidelity is not None:
                record["fidelity"] = entry.fidelity.to_dict()
            if entry.measured is not None:
                record["measured"] = entry.measured.to_dict()
            yield record

    # -- control ---------------------------------------------------------

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Ask the job's workers to stop after their in-flight record.

        Everything already persisted stays persisted: resubmitting the
        same spec later resumes from the store.  Cancelling a terminal
        job is a no-op.  Returns the (possibly still draining) status.
        """
        job = self._get(job_id)
        with self._lock:
            terminal = job.state in TERMINAL_STATES
            stop_event = job.stop_event
        if not terminal and stop_event is not None:
            stop_event.set()
        return self.status(job_id)

    def kill_worker(self, job_id: str, shard_index: int) -> bool:
        """SIGKILL one shard's worker process (fault-injection hook).

        The supervisor notices the death and replaces the worker, which
        resumes the shard from the shared store.  Returns ``False`` when
        the shard has no live worker to kill (already done, or between
        restarts) — callers loop on the status until a kill lands or the
        job completes.
        """
        job = self._get(job_id)
        with self._lock:
            if not 0 <= shard_index < len(job.shards):
                raise ServiceError(
                    f"job {job_id} has no shard {shard_index} "
                    f"(shards: 0..{len(job.shards) - 1})"
                )
            if job.shards[shard_index].state in ("done", "failed", "stopped"):
                return False
            proc = job.procs.get(shard_index)
            if proc is None or not proc.is_alive() or proc.pid is None:
                return False
            pid = proc.pid
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            return False
        return True

    def drain(self, timeout: Optional[float] = None) -> None:
        """Stop every non-terminal job and wait for its supervisor.

        The daemon's SIGTERM/SIGINT path: stop events flip first (workers
        flush their in-flight record — persist-before-yield means nothing
        reported is lost), then every supervisor joins, terminating
        stragglers after the grace period.
        """
        if timeout is None:
            timeout = self.grace_seconds + 5.0
        with self._lock:
            jobs = list(self._jobs.values())
            supervisors = dict(self._supervisors)
        for job in jobs:
            if job.state not in TERMINAL_STATES and job.stop_event is not None:
                job.stop_event.set()
        deadline = time.monotonic() + timeout
        for job_id, supervisor in supervisors.items():
            supervisor.join(max(0.0, deadline - time.monotonic()))

    # -- supervision -----------------------------------------------------

    def _spawn(self, job: _Job, shard_index: int) -> None:
        """Start (or restart) one shard's worker process."""
        proc = self._ctx.Process(
            target=_worker_main,
            args=(job.kind, job.shard_dicts[shard_index], shard_index,
                  job.queue, job.stop_event),
            name=f"{job.id}-shard{shard_index}",
            daemon=True,
        )
        proc.start()
        job.procs[shard_index] = proc
        shard = job.shards[shard_index]
        shard.pid = proc.pid
        if shard.state == "pending":
            shard.state = "running"

    def _pump(self, job: _Job, timeout: float = 0.0) -> None:
        """Drain every queued worker message into the job's bookkeeping."""
        first = True
        while True:
            try:
                tag, shard_index, payload = job.queue.get(
                    timeout=timeout if first else 0.0
                )
            except queue_module.Empty:
                return
            first = False
            with self._lock:
                shard = job.shards[shard_index]
                if tag == "progress":
                    shard.last_progress = payload
                    shard.completed = int(payload.get("completed", shard.completed))
                    if shard.state == "pending":
                        shard.state = "running"
                elif tag == "record":
                    job.rows.append(payload)
                elif tag == "done":
                    shard.state = "done"
                    shard.pid = None
                elif tag == "stopped":
                    shard.state = "stopped"
                    shard.pid = None
                elif tag == "error":
                    shard.state = "failed"
                    shard.pid = None
                    if job.error is None:
                        job.error = f"shard {shard_index}: {payload}"

    def _supervise(self, job: _Job) -> None:
        """Per-job supervisor: launch, pump, replace the dead, conclude."""
        job.queue = self._ctx.Queue()
        job.stop_event = self._ctx.Event()
        with self._lock:
            job.state = "running"
            job.started = time.time()
        for index in range(len(job.shards)):
            self._spawn(job, index)
        final = "failed"
        try:
            while True:
                self._pump(job, timeout=0.1)
                with self._lock:
                    states = [shard.state for shard in job.shards]
                    erred = job.error is not None
                if all(state == "done" for state in states):
                    final = "completed"
                    break
                if erred:
                    # One shard failed fatally: stop the others, keep what
                    # they persisted, and mark the job failed.
                    job.stop_event.set()
                    self._shutdown_workers(job)
                    final = "failed"
                    break
                if job.stop_event.is_set():
                    self._shutdown_workers(job)
                    with self._lock:
                        erred = job.error is not None
                    final = "failed" if erred else "cancelled"
                    break
                self._replace_dead_workers(job)
        except Exception as exc:  # noqa: BLE001 - supervisor must conclude
            with self._lock:
                if job.error is None:
                    job.error = f"supervisor: {type(exc).__name__}: {exc}"
        finally:
            for proc in list(job.procs.values()):
                if proc.is_alive():  # pragma: no cover - belt and braces
                    proc.terminate()
                proc.join(1.0)
            with self._lock:
                if all(shard.state == "done" for shard in job.shards):
                    final = "completed"
                job.state = final
                job.finished = time.time()
                for shard in job.shards:
                    shard.pid = None
            job.queue.close()

    def _replace_dead_workers(self, job: _Job) -> None:
        """Restart every worker that died mid-shard (kill, crash, OOM)."""
        for index, proc in list(job.procs.items()):
            if proc.is_alive():
                continue
            # The worker may have exited right after queueing its final
            # message; drain before judging the shard unfinished.
            self._pump(job)
            with self._lock:
                shard = job.shards[index]
                unfinished = shard.state in ("pending", "running")
                exhausted = shard.restarts >= self.max_restarts
                if unfinished and exhausted and job.error is None:
                    shard.state = "failed"
                    job.error = (
                        f"shard {index}: worker died {shard.restarts + 1} times "
                        f"(exit code {proc.exitcode}); restart budget exhausted"
                    )
                if unfinished and not exhausted:
                    shard.restarts += 1
            proc.join(0.1)
            if unfinished and not exhausted:
                # Replacement resumes from the shared store: persisted
                # keys are skipped, so the final store is bit-identical.
                self._spawn(job, index)
            else:
                job.procs.pop(index, None)

    def _shutdown_workers(self, job: _Job) -> None:
        """Grace period for workers to flush, then terminate stragglers."""
        deadline = time.monotonic() + self.grace_seconds
        while time.monotonic() < deadline:
            self._pump(job, timeout=0.05)
            if not any(proc.is_alive() for proc in job.procs.values()):
                break
        for proc in job.procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in job.procs.values():
            proc.join(1.0)
        self._pump(job)
