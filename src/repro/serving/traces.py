"""Seeded, reproducible request-arrival traces.

A :class:`TraceSpec` names a registered generator kind plus its
parameters and an explicit seed; :func:`generate_trace` expands it into a
sorted float64 array of arrival times (seconds from trace start).  Every
generator draws exclusively from ``numpy.random.default_rng(seed)``, so
the same spec produces a bit-identical trace in every process — the
foundation of the serving layer's serial/thread/process determinism.

Three kinds ship by default:

``poisson``
    Memoryless arrivals at a constant mean rate — the classic open-loop
    serving model.
``bursty``
    A two-state Markov-modulated Poisson process (MMPP-2): the rate
    alternates between a calm and a burst state with exponentially
    distributed dwell times.  Same mean request count, much heavier
    queueing tails.
``diurnal``
    A non-homogeneous Poisson process whose rate follows a sinusoidal
    day-curve, sampled by Lewis–Shedler thinning.  Models the
    peak/trough load cycle of a user-facing service.

New kinds register through :func:`register_trace` (or the ``traces``
registry in :mod:`repro.registry`) and become immediately usable from
``ServingSpec`` and ``repro serve-sim --trace``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Mapping, Tuple

import numpy as np

__all__ = [
    "TraceSpec",
    "TRACE_GENERATORS",
    "register_trace",
    "generate_trace",
]

#: name -> generator callable ``(spec: TraceSpec) -> np.ndarray`` of
#: sorted arrival times in seconds.  The ``traces`` registry in
#: :mod:`repro.registry` is a live view over this mapping.
TRACE_GENERATORS: Dict[str, Callable[["TraceSpec"], np.ndarray]] = {}


def register_trace(
    name: str, generator: Callable[["TraceSpec"], np.ndarray], replace: bool = False
) -> None:
    """Register an arrival-trace generator under ``name``."""
    if name in TRACE_GENERATORS and not replace:
        raise ValueError(f"trace kind {name!r} is already registered")
    TRACE_GENERATORS[name] = generator


@dataclass(frozen=True)
class TraceSpec:
    """One reproducible arrival trace, fully described as a frozen value.

    Attributes:
        kind: Registered generator name (``"poisson"``, ``"bursty"``,
            ``"diurnal"``, ...).
        rate_rps: Mean arrival rate in requests per second.
        num_requests: Trace length in requests.
        seed: PRNG seed; the *only* source of randomness, so equal specs
            generate bit-identical traces in any process.
        params: Generator-specific knobs as a sorted ``(name, value)``
            tuple (kept hashable); see each generator's docstring.
    """

    kind: str = "poisson"
    rate_rps: float = 100.0
    num_requests: int = 1000
    seed: int = 0
    params: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        # Accept a mapping (JSON object, kwargs dict) for params and
        # normalise to a sorted tuple so equal specs hash equally and
        # from_dict(to_dict()) round-trips to equality.
        raw = self.params
        if isinstance(raw, Mapping):
            items = raw.items()
        else:
            items = tuple(tuple(pair) for pair in raw)
        object.__setattr__(
            self,
            "params",
            tuple(sorted((str(name), float(value)) for name, value in items)),
        )

    def param(self, name: str, default: float) -> float:
        """The named generator parameter, or ``default``."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def params_dict(self) -> Dict[str, float]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "rate_rps": float(self.rate_rps),
            "num_requests": int(self.num_requests),
            "seed": int(self.seed),
            "params": self.params_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceSpec":
        """Rebuild from :meth:`to_dict` output, ignoring unknown keys."""
        names = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in dict(data).items() if key in names})

    @property
    def label(self) -> str:
        extras = "".join(f",{k}={v:g}" for k, v in self.params)
        return f"{self.kind}({self.rate_rps:g}rps,n={self.num_requests},seed={self.seed}{extras})"


def generate_trace(spec: TraceSpec) -> np.ndarray:
    """Expand ``spec`` into a sorted float64 array of arrival seconds.

    Deterministic: randomness comes only from
    ``numpy.random.default_rng(spec.seed)``, so serial / thread / process
    replays of the same spec see the same requests at the same instants.
    """
    try:
        generator = TRACE_GENERATORS[spec.kind]
    except KeyError:
        from repro.registry import TRACES  # deferred: registry imports this module

        raise TRACES._unknown(spec.kind) from None
    if spec.num_requests <= 0:
        raise ValueError(f"num_requests must be positive, got {spec.num_requests!r}")
    if not spec.rate_rps > 0:
        raise ValueError(f"rate_rps must be positive, got {spec.rate_rps!r}")
    arrivals = np.asarray(generator(spec), dtype=np.float64)
    if arrivals.shape != (spec.num_requests,):
        raise ValueError(
            f"trace generator {spec.kind!r} returned {arrivals.shape}, "
            f"expected ({spec.num_requests},)"
        )
    return arrivals


def poisson_trace(spec: TraceSpec) -> np.ndarray:
    """Homogeneous Poisson arrivals: exponential inter-arrival times."""
    rng = np.random.default_rng(spec.seed)
    gaps = rng.exponential(1.0 / spec.rate_rps, spec.num_requests)
    return np.cumsum(gaps)


def bursty_trace(spec: TraceSpec) -> np.ndarray:
    """Two-state MMPP: calm/burst rates with exponential dwell times.

    Params: ``burst_factor`` (burst-state rate multiplier, default 4),
    ``calm_factor`` (calm-state rate multiplier, default 0.5) and
    ``mean_dwell_s`` (mean state-dwell seconds, default 1).
    """
    rng = np.random.default_rng(spec.seed)
    rates = (
        spec.rate_rps * spec.param("calm_factor", 0.5),
        spec.rate_rps * spec.param("burst_factor", 4.0),
    )
    mean_dwell = spec.param("mean_dwell_s", 1.0)
    if min(rates) <= 0 or mean_dwell <= 0:
        raise ValueError("bursty trace needs positive rates and mean_dwell_s")
    arrivals = np.empty(spec.num_requests, dtype=np.float64)
    count = 0
    now = 0.0
    state = 0
    while count < spec.num_requests:
        dwell_end = now + rng.exponential(mean_dwell)
        rate = rates[state]
        t = now
        while count < spec.num_requests:
            t += rng.exponential(1.0 / rate)
            if t >= dwell_end:
                break
            arrivals[count] = t
            count += 1
        now = dwell_end
        state = 1 - state
    return arrivals


def diurnal_trace(spec: TraceSpec) -> np.ndarray:
    """Sinusoidal-rate arrivals via Lewis–Shedler thinning.

    The instantaneous rate is
    ``rate_rps * (1 + amplitude * sin(2*pi*t / period_s))``.
    Params: ``amplitude`` (0..1, default 0.8) and ``period_s`` (cycle
    length in seconds, default 60).
    """
    rng = np.random.default_rng(spec.seed)
    amplitude = spec.param("amplitude", 0.8)
    period = spec.param("period_s", 60.0)
    if not 0.0 <= amplitude <= 1.0:
        raise ValueError(f"diurnal amplitude must be in [0, 1], got {amplitude!r}")
    if period <= 0:
        raise ValueError(f"diurnal period_s must be positive, got {period!r}")
    rate_max = spec.rate_rps * (1.0 + amplitude)
    omega = 2.0 * math.pi / period
    arrivals = np.empty(spec.num_requests, dtype=np.float64)
    count = 0
    t = 0.0
    while count < spec.num_requests:
        t += rng.exponential(1.0 / rate_max)
        accept = rng.random()
        rate_t = spec.rate_rps * (1.0 + amplitude * math.sin(omega * t))
        if accept * rate_max <= rate_t:
            arrivals[count] = t
            count += 1
    return arrivals


register_trace("poisson", poisson_trace)
register_trace("bursty", bursty_trace)
register_trace("diurnal", diurnal_trace)
