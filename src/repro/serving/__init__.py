"""Serving-traffic simulation over the accelerator cycle/energy models.

The package answers the north-star question the per-GEMM simulator
cannot: how does a Mokey-class accelerator behave under *live traffic* —
tail latency, goodput, queue depth, utilisation and energy-per-request
when millions of requests arrive over time and batch size is an emergent
property of load under a batching policy, not a grid axis.

Layers (each independently usable):

- :mod:`repro.serving.traces` — seeded, reproducible arrival traces
  (``poisson`` / ``bursty`` / ``diurnal``).
- :mod:`repro.serving.policies` — dynamic batching policies
  (``timeout`` / ``max-batch`` / ``continuous``).
- :mod:`repro.serving.replay` — the deterministic event loop dispatching
  formed batches onto simulated accelerators, with every distinct
  ``(workload, batch, scheme, design)`` shape memoised through the
  campaign :class:`~repro.experiments.campaign.ResultCache` (and thus
  the pluggable store backends).
- :mod:`repro.serving.spec` — the declarative, JSON-round-trippable
  :class:`ServingSpec` with streaming, resumable, executor-fanned
  execution (``repro serve-sim`` on the CLI).
"""

from repro.serving.policies import POLICY_KINDS, PolicySpec, register_policy
from repro.serving.replay import (
    BatchCost,
    BatchCostModel,
    DecodeStreamsResult,
    ReplayResult,
    ServingMetrics,
    replay_decode_streams,
    replay_trace,
)
from repro.serving.spec import (
    ServingProgress,
    ServingRecord,
    ServingResult,
    ServingSpec,
    iter_serving,
    run_serving,
)
from repro.serving.traces import TRACE_GENERATORS, TraceSpec, generate_trace, register_trace

__all__ = [
    "TraceSpec",
    "TRACE_GENERATORS",
    "generate_trace",
    "register_trace",
    "PolicySpec",
    "POLICY_KINDS",
    "register_policy",
    "BatchCost",
    "BatchCostModel",
    "ServingMetrics",
    "ReplayResult",
    "replay_trace",
    "DecodeStreamsResult",
    "replay_decode_streams",
    "ServingSpec",
    "ServingRecord",
    "ServingProgress",
    "ServingResult",
    "iter_serving",
    "run_serving",
]
