"""Declarative, JSON-round-trippable serving simulations.

A :class:`ServingSpec` is the full description of one serving experiment
as a frozen value: the workload (model/task/sequence length), the scheme
× design combos to serve it on, the arrival trace
(:class:`~repro.serving.traces.TraceSpec`), the batching policy
(:class:`~repro.serving.policies.PolicySpec`), the accelerator count,
an optional latency SLO, and how to execute
(:class:`~repro.experiments.spec.ExecutionPolicy` — the same policy
campaigns use, including the pluggable store backends).

Batch size is *not* an axis here: it emerges from load under the policy.
Each distinct formed batch size becomes an ordinary campaign
:class:`~repro.experiments.scenario.Scenario` with ``batch_size=B``,
resolved through a :class:`~repro.experiments.campaign.ResultCache` over
the policy's store — so a serving campaign persists through the same
JSONL/SQLite backends as every other campaign, re-running a spec against
a warm store simulates nothing, and a killed run resumes without
re-simulating the batch shapes its completed combos already persisted.

The streaming entry point is :func:`iter_serving`::

    from repro.serving import PolicySpec, ServingSpec, TraceSpec, iter_serving

    spec = ServingSpec(
        schemes=("mokey-oc", "fp16"),
        designs=("mokey",),
        trace=TraceSpec(kind="poisson", rate_rps=200.0, num_requests=100_000, seed=7),
        policy=PolicySpec(kind="timeout", max_batch=16, timeout_ms=5.0),
    )
    for record, progress in iter_serving(spec):
        print(progress, record.metrics.p99_ms)

Determinism: the trace is generated once from the spec's seed, every
combo replays it with the same pure event loop, and fresh batch-shape
results are persisted by the parent (never by pool workers), so serial /
thread / process runs of one spec produce bit-identical metrics.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.experiments.campaign import EXECUTORS, ResultCache
from repro.experiments.scenario import KB, Scenario
from repro.experiments.spec import ExecutionPolicy, _policy_cache
from repro.experiments.store import open_store
from repro.serving.policies import PolicySpec
from repro.serving.replay import BatchCostModel, ReplayResult, ServingMetrics, replay_trace
from repro.serving.traces import TraceSpec, generate_trace

__all__ = [
    "ServingSpec",
    "ServingRecord",
    "ServingProgress",
    "ServingResult",
    "iter_serving",
    "run_serving",
]

#: Schema version of the serialized serving-spec form (see
#: :data:`repro.experiments.spec.SPEC_VERSION` for the convention).
SERVING_SPEC_VERSION = 1


@dataclass(frozen=True)
class ServingSpec:
    """One serving experiment, fully described as a frozen value.

    Attributes:
        name: Human label (progress output only).
        model, task, sequence_length: The served workload; ``None``
            sequence length uses the task default.
        schemes: Scheme overrides to compare (``None`` = each design's
            own scheme); crossed with :attr:`designs`.
        designs: Registered design names.
        buffer_bytes: On-chip buffer per accelerator.
        activation_buffer_fraction: Buffer fraction for activations.
        trace: The request-arrival trace (seeded, reproducible).
        policy: The dynamic batching policy.
        num_accelerators: Identical engines per combo, fed from one queue.
        slo_ms: Optional latency objective scoring goodput.
        execution: Fan-out / persistence policy (shared with campaigns).
    """

    name: str = "serving"
    model: str = "bert-base"
    task: str = "mnli"
    sequence_length: Optional[int] = None
    schemes: Tuple[Optional[str], ...] = (None,)
    designs: Tuple[str, ...] = ("mokey",)
    buffer_bytes: int = 512 * KB
    activation_buffer_fraction: float = 0.5
    trace: TraceSpec = field(default_factory=TraceSpec)
    policy: PolicySpec = field(default_factory=PolicySpec)
    num_accelerators: int = 1
    slo_ms: Optional[float] = None
    execution: ExecutionPolicy = field(default_factory=ExecutionPolicy)

    def __post_init__(self) -> None:
        object.__setattr__(self, "schemes", tuple(self.schemes))
        object.__setattr__(self, "designs", tuple(self.designs))

    # -- validation ------------------------------------------------------

    def validate(self) -> "ServingSpec":
        """Check every name against the unified registries, numerics too.

        Raises :class:`~repro.registry.RegistryError` for unknown model /
        task / scheme / design / trace / policy names (with the nearest
        match) and ``ValueError`` for malformed numbers — all before
        anything simulates.  Returns ``self`` so it chains.
        """
        from repro import registry  # deferred: registry imports this package

        registry.MODELS.get(self.model)
        registry.TASKS.get(self.task)
        for scheme in self.schemes:
            if scheme is not None:
                registry.SCHEMES.get(scheme)
        if not self.designs:
            raise ValueError("ServingSpec.designs must name at least one design")
        for design in self.designs:
            registry.DESIGNS.get(design)
        registry.TRACES.get(self.trace.kind)
        registry.POLICIES.get(self.policy.kind)
        seq = self.sequence_length
        if seq is not None and (not isinstance(seq, int) or seq <= 0):
            raise ValueError(f"sequence_length must be positive or None, got {seq!r}")
        if not isinstance(self.buffer_bytes, int) or self.buffer_bytes <= 0:
            raise ValueError(f"buffer_bytes must be a positive integer, got {self.buffer_bytes!r}")
        if self.trace.num_requests <= 0:
            raise ValueError(f"trace.num_requests must be positive, got {self.trace.num_requests!r}")
        if not self.trace.rate_rps > 0:
            raise ValueError(f"trace.rate_rps must be positive, got {self.trace.rate_rps!r}")
        if self.policy.max_batch < 1:
            raise ValueError(f"policy.max_batch must be >= 1, got {self.policy.max_batch!r}")
        if self.policy.timeout_ms < 0:
            raise ValueError(f"policy.timeout_ms must be >= 0, got {self.policy.timeout_ms!r}")
        if self.num_accelerators < 1:
            raise ValueError(f"num_accelerators must be >= 1, got {self.num_accelerators!r}")
        if self.slo_ms is not None and not self.slo_ms > 0:
            raise ValueError(f"slo_ms must be positive or None, got {self.slo_ms!r}")
        if self.execution.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.execution.executor!r} "
                f"(choose from {', '.join(EXECUTORS)})"
            )
        if self.execution.store_backend is not None:
            registry.STORES.get(self.execution.store_backend)
        return self

    def combos(self) -> List[Scenario]:
        """The scheme × design base scenarios (``batch_size`` is emergent).

        Each base scenario's ``batch_size`` is 1; the replay's cost model
        rewrites it per formed batch.
        """
        return [
            Scenario(
                model=self.model,
                task=self.task,
                sequence_length=self.sequence_length,
                batch_size=1,
                scheme=scheme,
                design=design,
                buffer_bytes=self.buffer_bytes,
                activation_buffer_fraction=self.activation_buffer_fraction,
            )
            for scheme in self.schemes
            for design in self.designs
        ]

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready nested mapping; inverse of :meth:`from_dict`."""
        return {
            "serving_spec_version": SERVING_SPEC_VERSION,
            "name": self.name,
            "model": self.model,
            "task": self.task,
            "sequence_length": self.sequence_length,
            "schemes": list(self.schemes),
            "designs": list(self.designs),
            "buffer_bytes": int(self.buffer_bytes),
            "activation_buffer_fraction": float(self.activation_buffer_fraction),
            "trace": self.trace.to_dict(),
            "policy": self.policy.to_dict(),
            "num_accelerators": int(self.num_accelerators),
            "slo_ms": self.slo_ms,
            "execution": self.execution.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServingSpec":
        """Rebuild a spec from :meth:`to_dict` output, ignoring unknown keys."""
        simple = {
            f.name for f in fields(cls)
            if f.name not in ("trace", "policy", "execution", "schemes", "designs")
        }
        kwargs: Dict[str, Any] = {
            key: value for key, value in dict(data).items() if key in simple
        }
        if "schemes" in data:
            kwargs["schemes"] = tuple(data["schemes"])
        if "designs" in data:
            kwargs["designs"] = tuple(data["designs"])
        kwargs["trace"] = TraceSpec.from_dict(data.get("trace") or {})
        kwargs["policy"] = PolicySpec.from_dict(data.get("policy") or {})
        kwargs["execution"] = ExecutionPolicy.from_dict(data.get("execution") or {})
        return cls(**kwargs)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ServingSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, os.PathLike]) -> None:
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "ServingSpec":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # -- derivation ------------------------------------------------------

    def with_execution(self, **changes: Any) -> "ServingSpec":
        """A copy with :class:`ExecutionPolicy` fields replaced."""
        return replace(self, execution=replace(self.execution, **changes))


@dataclass
class ServingRecord:
    """One scheme × design combo's measured serving behaviour.

    Attributes:
        base: The combo's base scenario (``batch_size`` there is the
            placeholder 1; actual batch sizes are in
            :attr:`batch_size_counts`).
        metrics: The replay's :class:`~repro.serving.replay.ServingMetrics`.
        batch_size_counts: Formed-batch histogram (size → count).
        simulated: Real simulator invocations this combo cost.
        from_store: Batch shapes served from the cache/store instead.
    """

    base: Scenario
    metrics: ServingMetrics
    batch_size_counts: Dict[int, int]
    simulated: int
    from_store: int

    @property
    def scheme_label(self) -> str:
        """The displayed scheme: the override, else the design's own."""
        return self.base.scheme if self.base.scheme is not None else self.base.design

    def to_row(self) -> Dict[str, Any]:
        """Flat dict for :func:`~repro.analysis.reporting.format_records`."""
        m = self.metrics
        return {
            "model": self.base.model,
            "task": self.base.task,
            "sequence_length": self.base.resolved_sequence_length,
            "scheme": self.scheme_label,
            "design": self.base.design,
            "requests": m.requests,
            "batches": m.batches,
            "mean_batch": round(m.mean_batch_size, 3),
            "p50_ms": m.p50_ms,
            "p95_ms": m.p95_ms,
            "p99_ms": m.p99_ms,
            "mean_ms": m.mean_ms,
            "throughput_rps": m.throughput_rps,
            "goodput_rps": m.goodput_rps,
            "energy_per_request_j": m.energy_per_request_j,
            "utilisation": m.utilisation,
            "max_queue_depth": m.max_queue_depth,
            "batch_shapes": m.distinct_batch_sizes,
            "simulated": self.simulated,
        }


@dataclass
class ServingProgress:
    """Running totals while :func:`iter_serving` streams combo records."""

    completed: int
    total: int
    requests: int
    simulated: int
    from_store: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping of the progress counters (service status)."""
        return {
            "completed": self.completed,
            "total": self.total,
            "requests": self.requests,
            "simulated": self.simulated,
            "from_store": self.from_store,
        }

    def __str__(self) -> str:
        return (
            f"[{self.completed}/{self.total}] combos, {self.requests} requests replayed, "
            f"{self.simulated} batch shapes simulated, {self.from_store} from store"
        )


@dataclass
class ServingResult:
    """Batch outcome of :func:`run_serving`."""

    records: List[ServingRecord]
    simulated: int
    from_store: int

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [record.to_row() for record in self.records]


def _replay_combo_task(
    args: Tuple[Scenario, np.ndarray, PolicySpec, int, Optional[float],
                Optional[str], Optional[str]],
) -> Tuple[ReplayResult, int, int, List[Tuple[Scenario, Any]]]:
    """Replay one combo; runs in the parent or a pool worker.

    Workers only ever *read* the store (``write_through=False``): fresh
    results come back to the parent, which persists them before yielding
    the combo's record.  That keeps JSONL stores (single-writer) safe
    under the process executor and makes all three executors produce the
    same store contents.
    """
    base, arrivals, policy, num_accelerators, slo_ms, store_path, store_backend = args
    cache = None
    if store_path is not None:
        cache = ResultCache(store=open_store(store_path, backend=store_backend))
    model = BatchCostModel(base, cache=cache, write_through=False)
    replay = replay_trace(
        arrivals, policy, model.cost, num_accelerators=num_accelerators, slo_ms=slo_ms
    )
    return replay, model.simulated, model.from_store, model.fresh


def iter_serving(
    spec: ServingSpec,
    cache: Optional[ResultCache] = None,
) -> Iterator[Tuple[ServingRecord, ServingProgress]]:
    """Stream one serving experiment: validate, trace, replay, yield.

    Yields ``(record, progress)`` per scheme × design combo, in spec
    order.  Each combo's freshly simulated batch shapes are persisted to
    the policy's store *before* the record yields, so a consumer that
    stops mid-run loses nothing already emitted and a re-run serves those
    shapes from the store (``simulated == 0``) instead of re-simulating.

    Args:
        spec: The experiment; validated before anything simulates.
        cache: Override the cache the execution policy would build (the
            policy's ``store``/``resume`` fields are then ignored).
    """
    spec.validate()
    write_store = None
    if cache is None:
        cache, write_store = _policy_cache(spec.execution)
    return _stream_serving(spec, cache, write_store)


def _stream_serving(
    spec: ServingSpec,
    cache: ResultCache,
    write_store: Optional[Any],
) -> Iterator[Tuple[ServingRecord, ServingProgress]]:
    arrivals = generate_trace(spec.trace)
    combos = spec.combos()
    policy_exec = spec.execution

    def parent_task(base: Scenario) -> Tuple[ReplayResult, int, int, List[Tuple[Scenario, Any]]]:
        model = BatchCostModel(base, cache=cache, write_through=False)
        replay = replay_trace(
            arrivals, spec.policy, model.cost,
            num_accelerators=spec.num_accelerators, slo_ms=spec.slo_ms,
        )
        return replay, model.simulated, model.from_store, model.fresh

    if policy_exec.executor == "serial":
        outcomes: Iterator[Any] = (parent_task(base) for base in combos)
        yield from _emit_serving(spec, combos, outcomes, cache, write_store)
    elif policy_exec.executor == "thread":
        with ThreadPoolExecutor(max_workers=policy_exec.max_workers) as pool:
            yield from _emit_serving(
                spec, combos, pool.map(parent_task, combos), cache, write_store
            )
    else:  # process
        backing = cache.backing_store
        store_path = getattr(backing, "root", None)
        store_args = [
            (base, arrivals, spec.policy, spec.num_accelerators, spec.slo_ms,
             None if store_path is None else str(store_path),
             policy_exec.store_backend)
            for base in combos
        ]
        with ProcessPoolExecutor(max_workers=policy_exec.max_workers) as pool:
            yield from _emit_serving(
                spec, combos, pool.map(_replay_combo_task, store_args), cache, write_store
            )


def _emit_serving(
    spec: ServingSpec,
    combos: Sequence[Scenario],
    outcomes: Iterator[Tuple[ReplayResult, int, int, List[Tuple[Scenario, Any]]]],
    cache: ResultCache,
    write_store: Optional[Any],
) -> Iterator[Tuple[ServingRecord, ServingProgress]]:
    """Persist each combo's fresh shapes, then yield its record."""
    progress = ServingProgress(
        completed=0, total=len(combos), requests=0, simulated=0, from_store=0
    )
    for base, (replay, simulated, from_store, fresh) in zip(combos, outcomes):
        for scenario, result in fresh:
            cache.store(scenario, result)
            if write_store is not None:
                write_store.put(scenario, result)
        record = ServingRecord(
            base=base,
            metrics=replay.metrics,
            batch_size_counts=replay.batch_size_counts,
            simulated=simulated,
            from_store=from_store,
        )
        progress.completed += 1
        progress.requests += replay.metrics.requests
        progress.simulated += simulated
        progress.from_store += from_store
        yield record, replace_progress(progress)


def replace_progress(progress: ServingProgress) -> ServingProgress:
    """A snapshot copy, so consumers can keep yielded progress values."""
    return ServingProgress(
        completed=progress.completed,
        total=progress.total,
        requests=progress.requests,
        simulated=progress.simulated,
        from_store=progress.from_store,
    )


def run_serving(
    spec: ServingSpec,
    cache: Optional[ResultCache] = None,
) -> ServingResult:
    """Drain :func:`iter_serving` into a batch :class:`ServingResult`."""
    records: List[ServingRecord] = []
    progress: Optional[ServingProgress] = None
    for record, progress in iter_serving(spec, cache=cache):
        records.append(record)
    return ServingResult(
        records=records,
        simulated=progress.simulated if progress else 0,
        from_store=progress.from_store if progress else 0,
    )
