"""Dynamic batching policies: when queued requests become a batch.

A :class:`PolicySpec` names a registered policy kind plus its knobs; the
replay loop in :mod:`repro.serving.replay` asks the policy *when* the
head of the queue should be released (:func:`release_time`), then forms
the largest batch available at that instant (FIFO, capped at
``max_batch``).  Batch size is therefore an emergent property of load
under the policy — not a grid axis.

Three kinds ship by default:

``continuous``
    Greedy/continuous batching: a batch is releasable the moment any
    request is queued; an idle accelerator takes whatever is waiting (up
    to ``max_batch``).  Minimises queueing delay, sacrifices batch
    efficiency under light load.
``max-batch``
    Release only when ``max_batch`` requests have accumulated (the
    remainder flushes once the trace ends).  Maximises batch efficiency,
    unbounded waiting under light load.
``timeout``
    Release when the batch fills *or* the oldest queued request has
    waited ``timeout_ms``, whichever comes first — the classic
    dynamic-batching compromise (TF-Serving / Triton style).

New kinds register through :func:`register_policy` (or the ``policies``
registry in :mod:`repro.registry`).  A policy is a pure function
``(spec, queue_head_s, fill_s, last_arrival_s) -> release_s`` — it sees
when the oldest request arrived, when the batch would fill, and when the
final trace arrival lands, and answers the earliest instant a batch may
be dispatched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Mapping

__all__ = [
    "PolicySpec",
    "POLICY_KINDS",
    "register_policy",
    "release_time",
]

#: name -> release-time rule ``(spec, queue_head_s, fill_s, last_arrival_s)
#: -> release_s``.  ``fill_s`` is ``math.inf`` when the batch can never
#: fill (trace exhausted).  The ``policies`` registry in
#: :mod:`repro.registry` is a live view over this mapping.
POLICY_KINDS: Dict[str, Callable[["PolicySpec", float, float, float], float]] = {}


def register_policy(
    name: str,
    rule: Callable[["PolicySpec", float, float, float], float],
    replace: bool = False,
) -> None:
    """Register a batching-policy release rule under ``name``."""
    if name in POLICY_KINDS and not replace:
        raise ValueError(f"policy kind {name!r} is already registered")
    POLICY_KINDS[name] = rule


@dataclass(frozen=True)
class PolicySpec:
    """One batching policy, fully described as a frozen value.

    Attributes:
        kind: Registered policy name (``"timeout"``, ``"max-batch"``,
            ``"continuous"``).
        max_batch: Hard cap on requests per formed batch.
        timeout_ms: Longest the oldest queued request may wait before a
            partial batch is released (``timeout`` policy only).
    """

    kind: str = "timeout"
    max_batch: int = 8
    timeout_ms: float = 10.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "max_batch": int(self.max_batch),
            "timeout_ms": float(self.timeout_ms),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicySpec":
        """Rebuild from :meth:`to_dict` output, ignoring unknown keys."""
        names = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in dict(data).items() if key in names})

    @property
    def label(self) -> str:
        if self.kind == "timeout":
            return f"timeout({self.timeout_ms:g}ms,b<={self.max_batch})"
        return f"{self.kind}(b<={self.max_batch})"


def release_time(
    spec: PolicySpec, queue_head_s: float, fill_s: float, last_arrival_s: float
) -> float:
    """Earliest instant the policy allows the current head batch out.

    Args:
        spec: The policy.
        queue_head_s: Arrival time of the oldest queued request.
        fill_s: Instant the batch reaches ``max_batch`` requests
            (``math.inf`` when the remaining trace cannot fill it).
        last_arrival_s: Arrival time of the final request in the trace
            (lets fill-based policies flush the tail).
    """
    try:
        rule = POLICY_KINDS[spec.kind]
    except KeyError:
        from repro.registry import POLICIES  # deferred: registry imports this module

        raise POLICIES._unknown(spec.kind) from None
    return rule(spec, queue_head_s, fill_s, last_arrival_s)


def continuous_policy(
    spec: PolicySpec, queue_head_s: float, fill_s: float, last_arrival_s: float
) -> float:
    """Greedy: releasable as soon as anything is queued."""
    return queue_head_s


def max_batch_policy(
    spec: PolicySpec, queue_head_s: float, fill_s: float, last_arrival_s: float
) -> float:
    """Wait for a full batch; flush the remainder at end of trace."""
    if math.isinf(fill_s):
        return max(queue_head_s, last_arrival_s)
    return fill_s


def timeout_policy(
    spec: PolicySpec, queue_head_s: float, fill_s: float, last_arrival_s: float
) -> float:
    """Full batch or oldest-waiter timeout, whichever comes first."""
    return min(fill_s, queue_head_s + spec.timeout_ms / 1000.0)


register_policy("continuous", continuous_policy)
register_policy("max-batch", max_batch_policy)
register_policy("timeout", timeout_policy)
