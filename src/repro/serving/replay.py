"""Trace replay: queueing, batching and dispatch over simulated accelerators.

The replay loop is an event-driven queueing simulation.  Requests arrive
at trace instants, wait in one FIFO queue, are coalesced into batches by
a :class:`~repro.serving.policies.PolicySpec`, and each batch occupies
the earliest-free accelerator for the batch's inference latency — taken
from the cycle model (``total_cycles / clock_hz``) of the existing
:class:`~repro.accelerator.simulator.AcceleratorSimulator`.

The expensive part — simulating one ``(workload, batch, scheme, design)``
shape — is memoised by :class:`BatchCostModel`: each distinct batch size
maps to an ordinary campaign :class:`~repro.experiments.scenario.Scenario`
with ``batch_size=B``, looked up through a
:class:`~repro.experiments.campaign.ResultCache` (and therefore through
any pluggable store backend) before anything simulates.  A million-request
trace touching 11 distinct batch sizes costs exactly 11 real simulations
on a cold store, and zero on a warm one.

Everything in this module is deterministic: the loop consumes a fixed
arrival array, ties in engine selection break by lowest index, and all
statistics derive from the same float64 sequences in the same order —
so serial, thread and process replays of one spec are bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Dict, List, Mapping, NamedTuple, Optional, Tuple

import numpy as np

from repro.experiments.campaign import ResultCache, run_scenario
from repro.experiments.scenario import Scenario
from repro.serving.policies import PolicySpec, release_time

__all__ = [
    "BatchCost",
    "BatchCostModel",
    "ServingMetrics",
    "ReplayResult",
    "replay_trace",
    "DecodeStreamsResult",
    "replay_decode_streams",
]


class BatchCost(NamedTuple):
    """Cost of running one batch through the accelerator once."""

    latency_s: float
    energy_j: float


class BatchCostModel:
    """Memoised per-batch-size latency/energy from the cycle model.

    Each batch size ``B`` becomes the ordinary campaign scenario
    ``replace(base, batch_size=B)``; the first request for ``B`` resolves
    through ``cache`` (in-memory → backing store) and simulates only on a
    full miss.  Fresh results are written through the cache when
    ``write_through`` (and always collected in :attr:`fresh` so a caller
    that must not write — e.g. a process-pool worker over a JSONL store —
    can hand them to the parent to persist).

    Attributes:
        simulated: Real simulator invocations (cold shapes).
        from_store: Shapes served by the cache/store without simulating.
        fresh: ``(scenario, result)`` pairs simulated by this model.
    """

    def __init__(
        self,
        base: Scenario,
        cache: Optional[ResultCache] = None,
        write_through: bool = True,
    ) -> None:
        self.base = base
        self._cache = cache
        self._write_through = write_through
        self._clock_hz = float(base.build_design().clock_hz)
        self._memo: Dict[int, BatchCost] = {}
        self.simulated = 0
        self.from_store = 0
        self.fresh: List[Tuple[Scenario, Any]] = []

    def scenario_for(self, batch_size: int) -> Scenario:
        return replace(self.base, batch_size=int(batch_size))

    def cost(self, batch_size: int) -> BatchCost:
        """Latency/energy for one batch of ``batch_size`` requests."""
        memoised = self._memo.get(batch_size)
        if memoised is not None:
            return memoised
        scenario = self.scenario_for(batch_size)
        result = None
        if self._cache is not None:
            result = self._cache.lookup(scenario)
            if result is not None:
                self.from_store += 1
        if result is None:
            result = run_scenario(scenario)
            self.simulated += 1
            self.fresh.append((scenario, result))
            if self._cache is not None and self._write_through:
                self._cache.store(scenario, result)
        cost = BatchCost(
            latency_s=float(result.total_cycles) / self._clock_hz,
            energy_j=float(result.energy.total),
        )
        self._memo[batch_size] = cost
        return cost


@dataclass(frozen=True)
class ServingMetrics:
    """What one trace replay measured, per scheme × design combo.

    Latencies are end-to-end (arrival → batch completion) in
    milliseconds; percentiles use the nearest-rank definition, so every
    reported value is an actual request's latency.

    Attributes:
        requests: Requests served (the trace length).
        batches: Batches formed by the policy.
        distinct_batch_sizes: Distinct formed batch sizes — the upper
            bound on real simulator invocations for the whole replay.
        mean_batch_size: ``requests / batches``.
        p50_ms, p95_ms, p99_ms, max_ms: Latency tail.
        mean_ms: Mean latency.
        throughput_rps: ``requests / span_s``.
        goodput_rps: Within-SLO completions per second (equals
            :attr:`throughput_rps` when no SLO is set).
        slo_ms: The SLO the replay was scored against, if any.
        slo_attainment: Fraction of requests within the SLO (1 when no
            SLO is set).
        energy_per_request_j: Accelerator energy divided by requests.
        total_energy_j: Total accelerator energy over the trace.
        utilisation: Busy-time fraction across all accelerators over the
            serving span.
        mean_queue_depth: Mean queued requests at batch-formation
            instants.
        max_queue_depth: Deepest the queue ever got.
        span_s: First arrival → last completion.
    """

    requests: int
    batches: int
    distinct_batch_sizes: int
    mean_batch_size: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    mean_ms: float
    throughput_rps: float
    goodput_rps: float
    slo_ms: Optional[float]
    slo_attainment: float
    energy_per_request_j: float
    total_energy_j: float
    utilisation: float
    mean_queue_depth: float
    max_queue_depth: int
    span_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServingMetrics":
        names = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in dict(data).items() if key in names})


@dataclass(frozen=True)
class ReplayResult:
    """A replay's metrics plus the cost-model bookkeeping behind them.

    Attributes:
        metrics: The measured serving behaviour.
        batch_size_counts: Formed-batch histogram (size → count).
    """

    metrics: ServingMetrics
    batch_size_counts: Dict[int, int]


def _percentile_ms(sorted_latencies_s: np.ndarray, q: float) -> float:
    """Nearest-rank percentile, in milliseconds."""
    n = len(sorted_latencies_s)
    rank = min(n - 1, max(0, math.ceil(q / 100.0 * n) - 1))
    return float(sorted_latencies_s[rank]) * 1000.0


def replay_trace(
    arrivals: np.ndarray,
    policy: PolicySpec,
    cost: Callable[[int], BatchCost],
    num_accelerators: int = 1,
    slo_ms: Optional[float] = None,
) -> ReplayResult:
    """Replay one arrival trace through the batching policy and engines.

    Args:
        arrivals: Sorted arrival seconds (see
            :func:`~repro.serving.traces.generate_trace`).
        policy: When queued requests become a batch.
        cost: ``batch_size -> BatchCost`` (typically
            ``BatchCostModel(...).cost``).
        num_accelerators: Identical engines fed from one queue; a batch
            goes to the earliest-free one (ties break by index).
        slo_ms: Latency objective scoring :attr:`ServingMetrics.goodput_rps`.

    Returns:
        The replay's :class:`ReplayResult`; purely deterministic in its
        inputs.
    """
    n = int(len(arrivals))
    if n == 0:
        raise ValueError("cannot replay an empty trace")
    if num_accelerators < 1:
        raise ValueError(f"num_accelerators must be >= 1, got {num_accelerators!r}")
    max_batch = int(policy.max_batch)
    if max_batch < 1:
        raise ValueError(f"max_batch must be >= 1, got {policy.max_batch!r}")

    free = [0.0] * num_accelerators
    busy = 0.0
    latencies = np.empty(n, dtype=np.float64)
    last_arrival = float(arrivals[-1])
    head = 0  # oldest queued request; the queue is arrivals[head:tail]
    tail = 0  # next arrival not yet queued
    batches = 0
    size_counts: Dict[int, int] = {}
    depth_sum = 0
    depth_max = 0
    energy_j = 0.0
    last_completion = 0.0

    while head < n:
        if head == tail:  # queue empty: admit the next arrival
            tail += 1
            continue
        # Instant the head batch reaches max_batch requests (inf when the
        # remaining trace cannot fill it).  The queue is a contiguous
        # arrival window, so this is just an index into the trace.
        fill_index = head + max_batch - 1
        fill_s = float(arrivals[fill_index]) if fill_index < n else math.inf
        release_s = release_time(policy, float(arrivals[head]), fill_s, last_arrival)
        dispatch_s = max(release_s, min(free))
        if tail < n and float(arrivals[tail]) <= dispatch_s:
            # Arrivals land before the batch goes out: admit them and
            # re-evaluate (the batch may now fill, moving release earlier).
            while tail < n and float(arrivals[tail]) <= dispatch_s:
                tail += 1
            continue
        depth = tail - head
        depth_sum += depth
        if depth > depth_max:
            depth_max = depth
        size = min(depth, max_batch)
        batch_cost = cost(size)
        engine = min(range(num_accelerators), key=free.__getitem__)
        completion = dispatch_s + batch_cost.latency_s
        free[engine] = completion
        busy += batch_cost.latency_s
        energy_j += batch_cost.energy_j
        if completion > last_completion:
            last_completion = completion
        latencies[head : head + size] = completion - arrivals[head : head + size]
        head += size
        batches += 1
        size_counts[size] = size_counts.get(size, 0) + 1

    span_s = max(last_completion - float(arrivals[0]), 0.0)
    sorted_lat = np.sort(latencies)
    mean_ms = float(np.sum(latencies)) / n * 1000.0
    throughput = n / span_s if span_s > 0 else math.inf
    if slo_ms is None:
        within = n
        attainment = 1.0
    else:
        within = int(np.count_nonzero(latencies * 1000.0 <= slo_ms))
        attainment = within / n
    goodput = within / span_s if span_s > 0 else math.inf
    utilisation = busy / (num_accelerators * span_s) if span_s > 0 else 1.0

    metrics = ServingMetrics(
        requests=n,
        batches=batches,
        distinct_batch_sizes=len(size_counts),
        mean_batch_size=n / batches,
        p50_ms=_percentile_ms(sorted_lat, 50.0),
        p95_ms=_percentile_ms(sorted_lat, 95.0),
        p99_ms=_percentile_ms(sorted_lat, 99.0),
        max_ms=float(sorted_lat[-1]) * 1000.0,
        mean_ms=mean_ms,
        throughput_rps=throughput,
        goodput_rps=goodput,
        slo_ms=None if slo_ms is None else float(slo_ms),
        slo_attainment=attainment,
        energy_per_request_j=energy_j / n,
        total_energy_j=energy_j,
        utilisation=min(utilisation, 1.0),
        mean_queue_depth=depth_sum / batches,
        max_queue_depth=depth_max,
        span_s=span_s,
    )
    return ReplayResult(
        metrics=metrics,
        batch_size_counts=dict(sorted(size_counts.items())),
    )


@dataclass(frozen=True)
class DecodeStreamsResult:
    """What one lockstep multi-stream software decode measured.

    Unlike :class:`ReplayResult` — which times *simulated* accelerators —
    this runs the real index-domain software pipeline: ``num_streams``
    concurrent requests share one model's quantized weights, weight
    planes, and plane cache, and every decode step batches the streams'
    independent GEMMs through ``index_domain_matmul_many``.

    Attributes:
        num_streams: Concurrent streams decoded in lockstep.
        prompt_length: Prompt tokens per stream at prefill.
        decode_tokens: Autoregressive steps executed per stream.
        tokens_per_second: Aggregate decode throughput across streams.
        per_stream_tokens_per_second: Decode throughput of one stream.
        prefill_seconds: Wall time of all prefill passes.
        decode_seconds: Wall time of the lockstep decode loop.
        output_rms_error: Worst per-stream RMS error vs the FP oracle.
        plane_cache: Plane-cache hit/miss counters for the run (mapping
            form of ``PlaneCacheStats``), or ``None`` when caching was
            disabled.
    """

    num_streams: int
    prompt_length: int
    decode_tokens: int
    tokens_per_second: float
    per_stream_tokens_per_second: float
    prefill_seconds: float
    decode_seconds: float
    output_rms_error: float
    plane_cache: Optional[Dict[str, Any]]

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def replay_decode_streams(
    model: Any = None,
    num_streams: int = 4,
    prompt_length: int = 16,
    decode_tokens: int = 8,
    num_layers: Optional[int] = None,
    quantizer: Any = None,
    engine: str = "vectorized",
    device: Optional[str] = None,
    seed: int = 0,
    plane_caching: bool = True,
) -> DecodeStreamsResult:
    """Decode ``num_streams`` concurrent requests through the real pipeline.

    A thin serving-facing wrapper over
    :class:`~repro.transformer.index_model.MultiStreamDecoder` (imported
    lazily so the serving package stays importable without the
    transformer stack): all streams share quantized weights, weight
    planes and the plane cache, and each decode step issues one batched
    GEMM call per GEMM family across streams.  Stream 0 reproduces a
    solo ``execute_decoder`` run with the same seed.
    """
    from repro.transformer.index_model import GPT_DECODER_CONFIG, MultiStreamDecoder

    decoder = MultiStreamDecoder(
        model=GPT_DECODER_CONFIG if model is None else model,
        num_streams=num_streams,
        num_layers=num_layers,
        quantizer=quantizer,
        engine=engine,
        device=device,
        seed=seed,
        plane_caching=plane_caching,
    )
    measurement = decoder.run(
        prompt_length=prompt_length, decode_tokens=decode_tokens
    )
    return DecodeStreamsResult(
        num_streams=measurement.num_streams,
        prompt_length=measurement.prompt_length,
        decode_tokens=measurement.decode_tokens,
        tokens_per_second=measurement.tokens_per_second,
        per_stream_tokens_per_second=measurement.per_stream_tokens_per_second,
        prefill_seconds=measurement.prefill_seconds,
        decode_seconds=measurement.decode_seconds,
        output_rms_error=measurement.output_rms_error,
        plane_cache=(
            None
            if measurement.plane_cache is None
            else measurement.plane_cache.to_dict()
        ),
    )
