"""Unified registry surface over every pluggable axis of the evaluation.

The evaluation exposes nine pluggable axes — quantization schemes,
accelerator designs, model-zoo configurations, evaluation tasks,
index-domain compute engines, artifact-store backends, arrival-trace
generators, batching policies and campaign-service job states — and each
historically exposed its own lookup idiom (``get_scheme``,
``build_design``/``DESIGN_FACTORIES``, ``MODEL_CONFIGS``,
``task_family``, ``ENGINE_BACKENDS``, ``STORE_BACKENDS``,
``TRACE_GENERATORS``, ``POLICY_KINDS``).  This module
puts one :class:`Registry` protocol in
front of all of them: ``names()`` / ``get()`` / ``describe()`` plus
entry-point-style registration, so spec validation, the CLI
(``repro registry list``) and error messages all speak the same language.

Each :class:`Registry` is a *live view* over the axis' backing mapping —
the same dict the legacy helpers read and write — so a scheme registered
through :func:`repro.schemes.register_scheme` is immediately visible
here, and a design registered through :meth:`Registry.register` is
immediately sweepable by every campaign.

Usage::

    from repro.registry import get_registry, registry_kinds

    designs = get_registry("designs")
    designs.names()                 # ('gobo', 'mokey', 'tensor-cores', ...)
    designs.get("mokey")            # the design factory
    designs.describe("mokey")       # one-line human description
    designs.get("mokeyy")           # RegistryError: ... did you mean 'mokey'?

    @get_registry("designs").entry("my-design")
    def my_design():
        return replace(mokey_design(), num_units=2048)
"""

from __future__ import annotations

import difflib
from typing import Any, Callable, Dict, Iterator, Mapping, MutableMapping, Optional, Tuple

__all__ = [
    "RegistryError",
    "Registry",
    "REGISTRIES",
    "registry_kinds",
    "get_registry",
    "nearest_match",
]


def nearest_match(name: str, candidates) -> Optional[str]:
    """The closest registered name to ``name``, or ``None`` if nothing is near."""
    matches = difflib.get_close_matches(str(name), list(candidates), n=1, cutoff=0.6)
    return matches[0] if matches else None


class RegistryError(ValueError):
    """An unknown name was looked up in (or clashed with) a registry.

    The message always names the registry and, when one is close enough,
    the nearest registered name — so a typo in a spec or CLI flag comes
    back as ``did you mean 'mokey'?`` instead of a bare KeyError.
    """

    def __init__(self, message: str, kind: str = "", name: str = "",
                 suggestion: Optional[str] = None) -> None:
        super().__init__(message)
        #: Which registry rejected the lookup (``"schemes"``, ``"designs"``, ...).
        self.kind = kind
        #: The name that was looked up.
        self.name = name
        #: The nearest registered name, if any.
        self.suggestion = suggestion


class Registry:
    """A uniform, live view over one pluggable axis.

    Args:
        kind: The axis name (``"schemes"``, ``"designs"``, ...); appears
            in every error message.
        entries: The backing mutable mapping of name → value.  The
            registry reads and writes *this* mapping, so legacy helpers
            layered over the same dict stay in sync automatically.
        describe_entry: Renders one entry as a one-line human description
            for ``repro registry list`` and docs.
        on_register: Optional validation hook run before a new entry is
            written (e.g. the scheme registry checks the instance's own
            ``name`` attribute matches).
        virtual_entries: Optional read-only extras resolvable alongside
            the backing mapping (e.g. the task *family* names next to the
            dataset tasks).  Lookups fall back to them; registration
            always writes to the live backing mapping.
    """

    def __init__(
        self,
        kind: str,
        entries: MutableMapping[str, Any],
        describe_entry: Optional[Callable[[str, Any], str]] = None,
        on_register: Optional[Callable[[str, Any], None]] = None,
        virtual_entries: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.kind = kind
        self._entries = entries
        self._virtual = dict(virtual_entries or {})
        self._describe_entry = describe_entry or (lambda name, value: repr(value))
        self._on_register = on_register

    # -- protocol --------------------------------------------------------

    def names(self) -> Tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(set(self._entries) | set(self._virtual)))

    def __contains__(self, name: str) -> bool:
        return name in self._entries or name in self._virtual

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self.names())

    def get(self, name: str) -> Any:
        """The registered value, or :class:`RegistryError` with a suggestion."""
        try:
            return self._entries[name]
        except KeyError:
            try:
                return self._virtual[name]
            except KeyError:
                raise self._unknown(name) from None

    def describe(self, name: Optional[str] = None) -> Any:
        """One-line description of ``name``, or a name → description mapping."""
        if name is None:
            return {n: self._describe_entry(n, self.get(n)) for n in self.names()}
        return self._describe_entry(name, self.get(name))

    def register(self, name: str, value: Any, replace: bool = False) -> Any:
        """Register ``value`` under ``name``; returns ``value``.

        Registration is visible to the legacy per-axis helpers
        immediately (same backing mapping).
        """
        if not name:
            raise RegistryError(
                f"cannot register an empty name in the {self.kind!r} registry",
                kind=self.kind, name=name,
            )
        if name in self and not replace:
            raise RegistryError(
                f"{name!r} is already registered in the {self.kind!r} registry "
                f"(pass replace=True to overwrite)",
                kind=self.kind, name=name,
            )
        if self._on_register is not None:
            self._on_register(name, value)
        self._entries[name] = value
        return value

    def entry(self, name: str, replace: bool = False) -> Callable[[Any], Any]:
        """Decorator form of :meth:`register`::

            @DESIGNS.entry("my-design")
            def my_design(): ...
        """
        def decorate(value: Any) -> Any:
            self.register(name, value, replace=replace)
            return value
        return decorate

    # -- errors ----------------------------------------------------------

    def _unknown(self, name: str) -> RegistryError:
        suggestion = nearest_match(name, self.names())
        hint = f" — did you mean {suggestion!r}?" if suggestion else ""
        known = ", ".join(self.names()) or "none"
        return RegistryError(
            f"unknown name {name!r} in the {self.kind!r} registry{hint} "
            f"(registered: {known})",
            kind=self.kind, name=name, suggestion=suggestion,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Registry {self.kind!r}: {len(self)} entries>"


# --------------------------------------------------------------------------- #
# The concrete registries.
#
# Importing the backing modules here is acyclic: none of them import this
# module at import time (schemes/scenario reach back only lazily, inside
# functions, for error suggestions).
# --------------------------------------------------------------------------- #
from repro.schemes import base as _schemes_base  # noqa: E402
from repro.experiments import scenario as _scenario  # noqa: E402
from repro.transformer.model_zoo import MODEL_CONFIGS as _MODEL_CONFIGS  # noqa: E402
from repro.transformer.tasks import (  # noqa: E402
    TASK_FAMILIES as _TASK_FAMILIES,
    TASK_METRICS as _TASK_METRICS,
)
from repro.accelerator.workloads import (  # noqa: E402
    TASK_SEQUENCE_LENGTHS as _TASK_SEQUENCE_LENGTHS,
)
from repro.core.index_compute import (  # noqa: E402
    ENGINE_BACKENDS as _ENGINE_BACKENDS,
    ENGINE_DESCRIPTIONS as _ENGINE_DESCRIPTIONS,
)
from repro.experiments.store import (  # noqa: E402
    STORE_BACKENDS as _STORE_BACKENDS,
)
from repro.serving.policies import POLICY_KINDS as _POLICY_KINDS  # noqa: E402
from repro.serving.traces import TRACE_GENERATORS as _TRACE_GENERATORS  # noqa: E402
from repro.service.jobs import JOB_STATES as _JOB_STATES  # noqa: E402


def _describe_scheme(name: str, scheme: Any) -> str:
    return scheme.describe()


def _check_scheme(name: str, scheme: Any) -> None:
    if getattr(scheme, "name", None) != name:
        raise RegistryError(
            f"scheme instance names itself {getattr(scheme, 'name', None)!r} "
            f"but is being registered as {name!r} in the 'schemes' registry",
            kind="schemes", name=name,
        )


def _describe_design(name: str, factory: Any) -> str:
    return factory().summary()


def _describe_model(name: str, config: Any) -> str:
    return config.summary()


def _describe_task(name: str, family: str) -> str:
    metric = _TASK_METRICS[family]
    if name == family:
        return f"task family (metric: {metric})"
    seq = _TASK_SEQUENCE_LENGTHS.get(name)
    default = f", default seq {seq}" if seq is not None else ""
    return f"dataset task — family {family!r} (metric: {metric}{default})"


def _check_task(name: str, family: str) -> None:
    if family not in _TASK_METRICS:
        raise RegistryError(
            f"task {name!r} must map to a family in "
            f"{sorted(_TASK_METRICS)}, got {family!r}",
            kind="tasks", name=name,
        )


SCHEMES = Registry(
    "schemes", _schemes_base._REGISTRY, _describe_scheme, on_register=_check_scheme
)
DESIGNS = Registry("designs", _scenario.DESIGN_FACTORIES, _describe_design)
MODELS = Registry("models", _MODEL_CONFIGS, _describe_model)
#: Live view over ``TASK_FAMILIES`` (dataset task → family), so a task
#: registered here is immediately resolvable by ``task_family`` — and one
#: added there is immediately validatable here.  The family names
#: themselves ride along as read-only virtual entries (the task helpers
#: accept them directly).
TASKS = Registry(
    "tasks",
    _TASK_FAMILIES,
    _describe_task,
    on_register=_check_task,
    virtual_entries={family: family for family in _TASK_METRICS},
)


def _describe_engine(name: str, cls: Any) -> str:
    # Static descriptions on purpose: describing the torch backend must
    # not import torch.  Unknown (user-registered) backends fall back to
    # the first docstring line.
    described = _ENGINE_DESCRIPTIONS.get(name)
    if described is None:
        doc = (cls.__doc__ or "index-domain engine backend").strip()
        described = doc.splitlines()[0]
    return described


#: Live view over ``ENGINE_BACKENDS``: the index-domain compute backends
#: every ``engine=`` switch (``index_domain_matmul``, the encoder/model
#: executors, measured campaigns) resolves through.
ENGINES = Registry("engines", _ENGINE_BACKENDS, _describe_engine)

def _describe_store(name: str, backend: Any) -> str:
    doc = (backend.__doc__ or "artifact-store backend").strip()
    return doc.splitlines()[0]


#: Live view over ``STORE_BACKENDS``: the artifact-store backends
#: ``open_store``/``--store-backend`` resolve through (JSONL default,
#: indexed WAL-mode SQLite for big grids and concurrent writers).
STORES = Registry("stores", _STORE_BACKENDS, _describe_store)

def _describe_by_docstring(fallback: str):
    def describe(name: str, value: Any) -> str:
        doc = (value.__doc__ or fallback).strip()
        return doc.splitlines()[0]
    return describe


#: Live view over ``TRACE_GENERATORS``: the seeded request-arrival trace
#: kinds ``ServingSpec.trace`` / ``repro serve-sim --trace`` resolve
#: through.
TRACES = Registry(
    "traces", _TRACE_GENERATORS, _describe_by_docstring("arrival-trace generator")
)

#: Live view over ``POLICY_KINDS``: the dynamic batching policies
#: ``ServingSpec.policy`` / ``repro serve-sim --policy`` resolve through.
POLICIES = Registry(
    "policies", _POLICY_KINDS, _describe_by_docstring("batching-policy release rule")
)

def _describe_job_state(name: str, description: Any) -> str:
    return str(description)


#: Live view over the campaign service's ``JOB_STATES``: every state a
#: ``repro serve`` job can report (``repro status`` / the HTTP API), with
#: the entry value *being* the description — so clients, tests and docs
#: share one vocabulary of the job lifecycle.
JOB_STATES = Registry("job-states", _JOB_STATES, _describe_job_state)

#: The registry of registries: every pluggable axis by kind.
REGISTRIES: Dict[str, Registry] = {
    "schemes": SCHEMES,
    "designs": DESIGNS,
    "models": MODELS,
    "tasks": TASKS,
    "engines": ENGINES,
    "stores": STORES,
    "traces": TRACES,
    "policies": POLICIES,
    "job-states": JOB_STATES,
}


def registry_kinds() -> Tuple[str, ...]:
    """All registry kinds, sorted."""
    return tuple(sorted(REGISTRIES))


def get_registry(kind: str) -> Registry:
    """The registry for one axis kind; suggests the nearest kind when unknown."""
    try:
        return REGISTRIES[kind]
    except KeyError:
        suggestion = nearest_match(kind, REGISTRIES)
        hint = f" — did you mean {suggestion!r}?" if suggestion else ""
        raise RegistryError(
            f"unknown registry kind {kind!r}{hint} "
            f"(kinds: {', '.join(registry_kinds())})",
            kind=kind, name=kind, suggestion=suggestion,
        ) from None
