"""TernaryBERT baseline: 2-bit (ternary) weights, 8-bit activations.

TernaryBERT (Zhang et al., 2020) combines knowledge distillation with
ternarisation of the weights: every weight tensor is mapped to
``{-w, 0, +w}`` with a per-tensor scale ``w``.  Activations are quantized
to 8 bits.  The full method requires distillation-aware training; applied
post-training (as here, using the TWN threshold rule) the accuracy drop is
larger, matching the qualitative ordering of Table IV where TernaryBERT
trades the most accuracy for the highest compression.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.baselines.base import BaselineQuantizer, BaselineResult, MethodProperties
from repro.baselines.q8bert import Q8BertQuantizer, UniformActivationHook
from repro.transformer.model import TransformerModel
from repro.transformer.tasks import SyntheticDataset

__all__ = ["TernaryBertQuantizer", "ternarize"]


def ternarize(values: np.ndarray) -> Tuple[np.ndarray, float, float]:
    """Ternary weight quantization with the TWN threshold rule.

    The threshold is ``0.7 * mean(|w|)`` and the scale is the mean magnitude
    of the values that survive the threshold.

    Returns:
        The reconstruction, the threshold and the scale.
    """
    flat = np.asarray(values, dtype=np.float64)
    threshold = 0.7 * float(np.abs(flat).mean())
    mask = np.abs(flat) > threshold
    scale = float(np.abs(flat[mask]).mean()) if mask.any() else 0.0
    reconstruction = np.where(mask, np.sign(flat) * scale, 0.0)
    return reconstruction.astype(np.float32), threshold, scale


class TernaryBertQuantizer(BaselineQuantizer):
    """2-bit ternary weights + 8-bit activations (TernaryBERT)."""

    weight_bits = 2
    activation_bits = 8
    scheme_name = "ternarybert"

    def __init__(self, calibration_samples: int = 8) -> None:
        self._activation_helper = Q8BertQuantizer(calibration_samples=calibration_samples)

    @property
    def properties(self) -> MethodProperties:
        return MethodProperties(
            name="TernaryBERT",
            weight_bits=self.weight_bits,
            activation_bits=self.activation_bits,
            integer_compute=False,
            post_training=False,
        )

    def quantize(
        self,
        model: TransformerModel,
        calibration: Optional[SyntheticDataset] = None,
    ) -> BaselineResult:
        def quantize_weight(name: str, values: np.ndarray):
            reconstruction, _, _ = ternarize(values)
            # 2 bits per value plus a 32-bit scale per tensor.
            return reconstruction, values.size * self.weight_bits + 32

        quantized_model, bits, original_bits = self._quantize_model_weights(
            model, quantize_weight
        )

        hook_factory: Optional[Callable] = None
        if calibration is not None:
            ranges = self._activation_helper._calibrate(quantized_model, calibration)
            act_bits = self.activation_bits

            def hook_factory() -> UniformActivationHook:
                return UniformActivationHook(ranges, act_bits)

        return BaselineResult(
            model=quantized_model,
            activation_hook_factory=hook_factory,
            properties=self.properties,
            weight_bits_total=bits,
            original_weight_bits_total=original_bits,
        )
