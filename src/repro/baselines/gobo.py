"""GOBO baseline: post-training 3-bit dictionary quantization of weights.

GOBO (Zadeh et al., MICRO 2020) is the closest prior work to Mokey: a
post-training, weights-only method that splits every weight tensor into a
"Gaussian" group quantized to a small dictionary (3-bit indexes into 8
centroids) and a tiny "Outlier" group kept at full FP32 precision.
Centroids are chosen with an iterative, k-means-like refinement per
tensor.  Activations remain floating-point, and computation stays in the
floating-point domain (centroids are FP values).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.baselines.base import BaselineQuantizer, BaselineResult, MethodProperties
from repro.transformer.model import TransformerModel
from repro.transformer.tasks import SyntheticDataset

__all__ = ["GoboQuantizer", "gobo_quantize_tensor"]


def _kmeans_1d(values: np.ndarray, num_centroids: int, iterations: int = 10) -> np.ndarray:
    """Iterative 1-D centroid refinement (GOBO's centroid selection)."""
    # Initialise centroids at evenly spaced quantiles, then run Lloyd updates.
    quantiles = np.linspace(0.0, 1.0, num_centroids + 2)[1:-1]
    centroids = np.quantile(values, quantiles)
    for _ in range(iterations):
        midpoints = (centroids[:-1] + centroids[1:]) / 2.0
        assignment = np.searchsorted(midpoints, values)
        new_centroids = centroids.copy()
        for c in range(num_centroids):
            members = values[assignment == c]
            if members.size:
                new_centroids[c] = members.mean()
        if np.allclose(new_centroids, centroids):
            break
        centroids = np.sort(new_centroids)
    return centroids


def gobo_quantize_tensor(
    values: np.ndarray,
    dictionary_bits: int = 3,
    outlier_sigma: float = 3.0,
) -> Tuple[np.ndarray, float, int]:
    """Quantize one tensor with the GOBO scheme.

    Args:
        values: Weight tensor.
        dictionary_bits: Bits per Gaussian-group index (3 in the paper).
        outlier_sigma: Values further than this many standard deviations
            from the mean form the outlier group and stay FP32.

    Returns:
        The dequantized reconstruction, the outlier fraction and the total
        number of storage bits (indexes + FP32 outliers + dictionary).
    """
    flat = np.asarray(values, dtype=np.float64).ravel()
    mean, std = flat.mean(), max(flat.std(), 1e-12)
    outlier_mask = np.abs(flat - mean) > outlier_sigma * std
    gaussian = flat[~outlier_mask]

    num_centroids = 2 ** dictionary_bits
    if gaussian.size >= num_centroids:
        centroids = _kmeans_1d(gaussian, num_centroids)
    else:
        centroids = np.sort(np.unique(gaussian)) if gaussian.size else np.zeros(1)

    midpoints = (centroids[:-1] + centroids[1:]) / 2.0 if centroids.size > 1 else np.empty(0)
    reconstruction = flat.copy()
    assignment = np.searchsorted(midpoints, gaussian)
    reconstruction[~outlier_mask] = centroids[assignment]
    # Outliers are stored exactly (FP32), so they reconstruct losslessly.

    outlier_count = int(outlier_mask.sum())
    bits = (
        (flat.size - outlier_count) * dictionary_bits  # Gaussian indexes
        + outlier_count * 32                            # FP32 outliers
        + outlier_count * 32                            # outlier position metadata
        + centroids.size * 32                           # the dictionary
    )
    outlier_fraction = outlier_count / flat.size if flat.size else 0.0
    return reconstruction.reshape(np.asarray(values).shape).astype(np.float32), outlier_fraction, bits


class GoboQuantizer(BaselineQuantizer):
    """Weights-only 3-bit dictionary quantization with FP32 outliers (GOBO)."""

    weight_bits = 3
    activation_bits = 32
    scheme_name = "gobo"

    def __init__(self, dictionary_bits: int = 3, outlier_sigma: float = 3.0) -> None:
        self.dictionary_bits = dictionary_bits
        self.outlier_sigma = outlier_sigma

    @property
    def properties(self) -> MethodProperties:
        return MethodProperties(
            name="GOBO",
            weight_bits=self.dictionary_bits,
            activation_bits=self.activation_bits,
            integer_compute=False,
            post_training=True,
        )

    def quantize(
        self,
        model: TransformerModel,
        calibration: Optional[SyntheticDataset] = None,
    ) -> BaselineResult:
        outlier_fractions = []

        def quantize_weight(name: str, values: np.ndarray):
            reconstruction, outlier_fraction, bits = gobo_quantize_tensor(
                values, self.dictionary_bits, self.outlier_sigma
            )
            outlier_fractions.append(outlier_fraction)
            return reconstruction, bits

        quantized_model, bits, original_bits = self._quantize_model_weights(
            model, quantize_weight
        )
        return BaselineResult(
            model=quantized_model,
            activation_hook_factory=None,
            properties=self.properties,
            weight_bits_total=bits,
            original_weight_bits_total=original_bits,
            extra={"mean_outlier_fraction": float(np.mean(outlier_fractions))},
        )
