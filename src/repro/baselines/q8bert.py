"""Q8BERT baseline: symmetric 8-bit weights and activations.

Q8BERT (Zafrir et al., 2019) quantizes weights and activations to 8-bit
fixed-point with symmetric linear quantization, but keeps some layers
(e.g. Softmax) in FP32 and relies on quantization-aware fine-tuning.  This
reproduction applies the same numeric scheme post-training: per-tensor
symmetric 8-bit quantization of weights, and activation fake-quantization
using calibration-derived clipping ranges.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.baselines.base import (
    BaselineQuantizer,
    BaselineResult,
    MethodProperties,
    uniform_symmetric_quantize,
)
from repro.transformer.model import TransformerModel
from repro.transformer.profiling import ActivationProfiler
from repro.transformer.tasks import SyntheticDataset

__all__ = ["Q8BertQuantizer", "UniformActivationHook"]


class UniformActivationHook:
    """Fake-quantizes activations with per-tensor symmetric uniform quantization."""

    def __init__(self, ranges: Dict[str, float], bits: int) -> None:
        self.ranges = ranges
        self.bits = bits

    def __call__(self, name: str, array: np.ndarray) -> np.ndarray:
        max_value = self.ranges.get(name)
        if max_value is None or name == "head.output":
            return array
        reconstruction, _ = uniform_symmetric_quantize(array, self.bits, max_value)
        return reconstruction.reshape(array.shape)


class Q8BertQuantizer(BaselineQuantizer):
    """8-bit symmetric quantization of weights and activations."""

    weight_bits = 8
    activation_bits = 8
    scheme_name = "q8bert"

    def __init__(self, calibration_samples: int = 8) -> None:
        self.calibration_samples = calibration_samples

    @property
    def properties(self) -> MethodProperties:
        return MethodProperties(
            name="Q8BERT",
            weight_bits=self.weight_bits,
            activation_bits=self.activation_bits,
            integer_compute=False,
            post_training=False,
        )

    def _calibrate(
        self, model: TransformerModel, calibration: SyntheticDataset
    ) -> Dict[str, float]:
        """Collect per-activation max-abs clipping ranges."""
        profiler = ActivationProfiler()
        profiler.profile(model, calibration, num_samples=self.calibration_samples)
        return {
            name: max(abs(stats.minimum), abs(stats.maximum))
            for name, stats in profiler.statistics.items()
        }

    def quantize(
        self,
        model: TransformerModel,
        calibration: Optional[SyntheticDataset] = None,
    ) -> BaselineResult:
        def quantize_weight(name: str, values: np.ndarray):
            reconstruction, _ = uniform_symmetric_quantize(values, self.weight_bits)
            # 8 bits per value plus a 32-bit scale per tensor.
            return reconstruction, values.size * self.weight_bits + 32

        quantized_model, bits, original_bits = self._quantize_model_weights(
            model, quantize_weight
        )

        hook_factory: Optional[Callable] = None
        if calibration is not None:
            ranges = self._calibrate(quantized_model, calibration)
            bits_per_act = self.activation_bits

            def hook_factory() -> UniformActivationHook:
                return UniformActivationHook(ranges, bits_per_act)

        return BaselineResult(
            model=quantized_model,
            activation_hook_factory=hook_factory,
            properties=self.properties,
            weight_bits_total=bits,
            original_weight_bits_total=original_bits,
        )
