"""Baseline quantization methods compared against Mokey in Table IV.

Every baseline implements the :class:`~repro.baselines.base.BaselineQuantizer`
interface so the Table IV benchmark can evaluate them uniformly: quantize a
model post-training (methods that normally rely on fine-tuning are applied
post-training as well, which the benchmark notes), run the synthetic task,
and account for the memory footprint.
"""

from repro.baselines.base import BaselineQuantizer, BaselineResult, MethodProperties
from repro.baselines.q8bert import Q8BertQuantizer
from repro.baselines.ibert import IBertQuantizer
from repro.baselines.qbert import QBertQuantizer
from repro.baselines.gobo import GoboQuantizer
from repro.baselines.ternarybert import TernaryBertQuantizer

ALL_BASELINES = (
    Q8BertQuantizer,
    IBertQuantizer,
    QBertQuantizer,
    GoboQuantizer,
    TernaryBertQuantizer,
)

__all__ = [
    "BaselineQuantizer",
    "BaselineResult",
    "MethodProperties",
    "Q8BertQuantizer",
    "IBertQuantizer",
    "QBertQuantizer",
    "GoboQuantizer",
    "TernaryBertQuantizer",
    "ALL_BASELINES",
]
