"""Common interface for baseline quantization methods (Table IV).

A baseline quantizer transforms an FP model into a fake-quantized twin
(weights replaced by their dequantized reconstructions) plus an optional
activation hook, and reports the properties Table IV tabulates: bit-widths,
whether computation stays in the integer domain, whether the method is
post-training, and the footprint compression it achieves.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.transformer.model import TransformerModel
from repro.transformer.tasks import SyntheticDataset

__all__ = ["MethodProperties", "BaselineResult", "BaselineQuantizer", "uniform_symmetric_quantize"]

ActivationHook = Callable[[str, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class MethodProperties:
    """Static properties of a quantization method (the Table IV columns).

    Attributes:
        name: Method name as printed in Table IV.
        weight_bits: Bits per parameter value.
        activation_bits: Bits per activation value (32 means unquantized).
        integer_compute: Whether inference arithmetic is fixed-point only.
        post_training: Whether the method needs no fine-tuning.
    """

    name: str
    weight_bits: float
    activation_bits: float
    integer_compute: bool
    post_training: bool


@dataclass
class BaselineResult:
    """Outcome of applying a baseline quantizer to a model.

    Attributes:
        model: The fake-quantized model (parameters replaced in place on a
            copy of the original).
        activation_hook_factory: Zero-argument callable returning a fresh
            activation hook for an evaluation run, or None when the method
            leaves activations unquantized.
        properties: The method's static properties.
        weight_bits_total: Total bits used to store the quantized parameters
            (including per-tensor metadata such as scales or dictionaries).
        original_weight_bits_total: Bits used by the FP32 parameters.
        extra: Free-form per-method details (e.g. outlier fractions).
    """

    model: TransformerModel
    activation_hook_factory: Optional[Callable[[], ActivationHook]]
    properties: MethodProperties
    weight_bits_total: int
    original_weight_bits_total: int
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def weight_compression_ratio(self) -> float:
        if self.weight_bits_total == 0:
            return 1.0
        return self.original_weight_bits_total / self.weight_bits_total


class BaselineQuantizer(abc.ABC):
    """Abstract baseline quantizer.

    Every concrete baseline also registers an accelerator-level
    quantization scheme (see :mod:`repro.schemes`) named
    :attr:`scheme_name`, so the campaign engine can sweep the method's
    cost model alongside its numerics.
    """

    #: Name of the method's registered scheme in :mod:`repro.schemes`.
    scheme_name: str = ""

    @property
    @abc.abstractmethod
    def properties(self) -> MethodProperties:
        """Static Table IV properties of the method."""

    def as_scheme(self):
        """The registered :class:`~repro.schemes.base.QuantizationScheme`."""
        if not self.scheme_name:
            raise ValueError(f"{type(self).__name__} does not declare a scheme_name")
        from repro.schemes import get_scheme

        return get_scheme(self.scheme_name)

    @abc.abstractmethod
    def quantize(
        self,
        model: TransformerModel,
        calibration: Optional[SyntheticDataset] = None,
    ) -> BaselineResult:
        """Quantize ``model`` (post-training) and return the result bundle."""

    # Convenience shared by several baselines -------------------------------- #
    @staticmethod
    def _quantize_model_weights(
        model: TransformerModel,
        quantize_fn: Callable[[str, np.ndarray], Tuple[np.ndarray, int]],
    ) -> Tuple[TransformerModel, int, int]:
        """Apply ``quantize_fn`` to every weight matrix of a model copy.

        ``quantize_fn(name, values)`` must return the dequantized
        reconstruction and the number of bits the quantized form occupies.

        Returns:
            The model copy, total quantized bits, total original FP32 bits.
        """
        quantized_model = model.copy()
        total_bits = 0
        original_bits = 0
        for name, values in model.weight_matrices().items():
            reconstruction, bits = quantize_fn(name, values)
            quantized_model.set_parameter(name, reconstruction.astype(np.float32))
            total_bits += bits
            original_bits += values.size * 32
        return quantized_model, total_bits, original_bits


def uniform_symmetric_quantize(
    values: np.ndarray, bits: int, max_value: Optional[float] = None
) -> Tuple[np.ndarray, float]:
    """Uniform symmetric (zero-centred) quantization.

    Args:
        values: Values to quantize.
        bits: Bit width (including the sign bit).
        max_value: Clipping range; defaults to ``max(|values|)``.

    Returns:
        The dequantized reconstruction and the scale used.
    """
    values = np.asarray(values, dtype=np.float64)
    if bits < 2:
        raise ValueError("uniform quantization requires at least 2 bits")
    if max_value is None:
        max_value = float(np.abs(values).max()) if values.size else 1.0
    max_value = max(max_value, 1e-12)
    levels = 2 ** (bits - 1) - 1
    scale = max_value / levels
    quantized = np.clip(np.round(values / scale), -levels - 1, levels)
    return (quantized * scale).astype(np.float32), scale
