"""I-BERT baseline: integer-only 8-bit quantization.

I-BERT (Kim et al., 2021) quantizes weights and activations to 8 bits and
replaces the non-linear operators (GELU, Softmax, LayerNorm) with integer
polynomial approximations so that inference never leaves the fixed-point
domain.  This reproduction applies the same numeric scheme post-training:
8-bit symmetric weights/activations plus the i-GELU second-order polynomial
approximation, whose approximation error is included in the evaluated
model (the paper's Table IV attributes a small accuracy drop to it).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.baselines.base import (
    BaselineQuantizer,
    BaselineResult,
    MethodProperties,
    uniform_symmetric_quantize,
)
from repro.baselines.q8bert import Q8BertQuantizer, UniformActivationHook
from repro.transformer.model import TransformerModel
from repro.transformer.tasks import SyntheticDataset

__all__ = ["IBertQuantizer", "i_gelu", "i_erf"]

# i-GELU / i-erf constants from the I-BERT paper: erf(x) is approximated by
# sign(x) * [a (clip(|x|, max=-b) + b)^2 + 1] with the constants below.
_IGELU_A = -0.2888
_IGELU_B = -1.769


def i_erf(x: np.ndarray) -> np.ndarray:
    """Second-order polynomial approximation of erf used by I-BERT."""
    x = np.asarray(x, dtype=np.float64)
    sign = np.sign(x)
    clipped = np.minimum(np.abs(x), -_IGELU_B)
    return sign * (_IGELU_A * (clipped + _IGELU_B) ** 2 + 1.0)


def i_gelu(x: np.ndarray) -> np.ndarray:
    """I-BERT's integer-friendly GELU approximation (i-GELU)."""
    x = np.asarray(x, dtype=np.float64)
    return (0.5 * x * (1.0 + i_erf(x / np.sqrt(2.0)))).astype(np.float32)


class IGeluActivationHook(UniformActivationHook):
    """Uniform 8-bit activation quantization plus i-GELU error injection.

    The transformer applies the exact GELU before the ``ffn.intermediate``
    hook fires; to model I-BERT's polynomial approximation the hook adds the
    (signed) difference ``i_gelu(x) - gelu(x)`` evaluated on the already
    activated tensor's pre-image approximation.  Because GELU is invertible
    only numerically, the hook instead applies the approximation error
    directly in the activated domain, which captures the magnitude of the
    polynomial's deviation without re-running the layer.
    """

    def __call__(self, name: str, array: np.ndarray) -> np.ndarray:
        quantized = super().__call__(name, array)
        if name.endswith("ffn.intermediate"):
            # The polynomial approximation deviates from exact GELU by at
            # most ~0.012 in the activated domain; inject that error signal.
            deviation = i_gelu(quantized) - _exact_gelu(quantized)
            quantized = quantized + deviation.astype(np.float32)
        return quantized


def _exact_gelu(x: np.ndarray) -> np.ndarray:
    from repro.transformer.functional import gelu

    return gelu(x)


class IBertQuantizer(BaselineQuantizer):
    """Integer-only 8-bit quantization (I-BERT)."""

    weight_bits = 8
    activation_bits = 8
    scheme_name = "ibert"

    def __init__(self, calibration_samples: int = 8) -> None:
        self._inner = Q8BertQuantizer(calibration_samples=calibration_samples)

    @property
    def properties(self) -> MethodProperties:
        return MethodProperties(
            name="I-BERT",
            weight_bits=self.weight_bits,
            activation_bits=self.activation_bits,
            integer_compute=True,
            post_training=False,
        )

    def quantize(
        self,
        model: TransformerModel,
        calibration: Optional[SyntheticDataset] = None,
    ) -> BaselineResult:
        base = self._inner.quantize(model, calibration)

        hook_factory: Optional[Callable] = None
        if base.activation_hook_factory is not None:
            ranges_hook = base.activation_hook_factory()

            def hook_factory() -> IGeluActivationHook:
                return IGeluActivationHook(ranges_hook.ranges, self.activation_bits)

        return BaselineResult(
            model=base.model,
            activation_hook_factory=hook_factory,
            properties=self.properties,
            weight_bits_total=base.weight_bits_total,
            original_weight_bits_total=base.original_weight_bits_total,
        )
