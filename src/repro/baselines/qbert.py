"""Q-BERT baseline: group-wise 4-bit dictionary weights, 8-bit activations.

Q-BERT (Shen et al., 2020) performs Hessian-guided mixed-precision,
group-wise quantization: the parameters of each layer are split into groups
(typically 128) and each group is quantized to its own small dictionary of
representative values, with activations at 8 bits.  The method relies on
fine-tuning; applied post-training (as here) it exhibits a larger accuracy
drop, which is the behaviour the Table IV comparison illustrates.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.baselines.base import (
    BaselineQuantizer,
    BaselineResult,
    MethodProperties,
    uniform_symmetric_quantize,
)
from repro.baselines.q8bert import Q8BertQuantizer, UniformActivationHook
from repro.transformer.model import TransformerModel
from repro.transformer.tasks import SyntheticDataset

__all__ = ["QBertQuantizer", "groupwise_quantize"]


def groupwise_quantize(
    values: np.ndarray, bits: int, num_groups: int = 128
) -> np.ndarray:
    """Group-wise symmetric quantization of a weight tensor.

    The flattened tensor is split into ``num_groups`` contiguous groups,
    each quantized with its own clipping range — the group-wise scheme
    Q-BERT uses (here with uniform levels standing in for the per-group
    dictionary, which has the same storage cost).
    """
    flat = np.asarray(values, dtype=np.float64).ravel()
    num_groups = max(1, min(num_groups, flat.size))
    boundaries = np.linspace(0, flat.size, num_groups + 1, dtype=np.int64)
    out = np.empty_like(flat)
    for g in range(num_groups):
        start, end = boundaries[g], boundaries[g + 1]
        if end > start:
            out[start:end], _ = uniform_symmetric_quantize(flat[start:end], bits)
    return out.reshape(np.asarray(values).shape).astype(np.float32)


class QBertQuantizer(BaselineQuantizer):
    """Group-wise 4-bit weights + 8-bit activations (Q-BERT)."""

    weight_bits = 4
    activation_bits = 8
    scheme_name = "qbert"

    def __init__(self, num_groups: int = 128, calibration_samples: int = 8) -> None:
        self.num_groups = num_groups
        self._activation_helper = Q8BertQuantizer(calibration_samples=calibration_samples)

    @property
    def properties(self) -> MethodProperties:
        return MethodProperties(
            name="Q-BERT",
            weight_bits=self.weight_bits,
            activation_bits=self.activation_bits,
            integer_compute=False,
            post_training=False,
        )

    def quantize(
        self,
        model: TransformerModel,
        calibration: Optional[SyntheticDataset] = None,
    ) -> BaselineResult:
        def quantize_weight(name: str, values: np.ndarray):
            reconstruction = groupwise_quantize(values, self.weight_bits, self.num_groups)
            # 4 bits per value + one 32-bit scale (or 16-entry dictionary
            # shared across the group) per group.
            groups = max(1, min(self.num_groups, values.size))
            bits = values.size * self.weight_bits + groups * 32
            return reconstruction, bits

        quantized_model, bits, original_bits = self._quantize_model_weights(
            model, quantize_weight
        )

        hook_factory: Optional[Callable] = None
        if calibration is not None:
            ranges = self._activation_helper._calibrate(quantized_model, calibration)
            act_bits = self.activation_bits

            def hook_factory() -> UniformActivationHook:
                return UniformActivationHook(ranges, act_bits)

        return BaselineResult(
            model=quantized_model,
            activation_hook_factory=hook_factory,
            properties=self.properties,
            weight_bits_total=bits,
            original_weight_bits_total=original_bits,
        )
