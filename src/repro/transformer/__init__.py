"""NumPy transformer inference substrate.

The paper evaluates Mokey on HuggingFace pre-trained FP16 transformer
checkpoints.  Those checkpoints (and the GPUs used to run them) are not
available in this environment, so this subpackage provides a forward-only
transformer implementation plus a synthetic model zoo whose weight and
activation *distributions* match what the paper relies on: bell-shaped
(Gaussian) cores with a small fraction of large-magnitude outliers.
"""

from repro.transformer.config import TransformerConfig
from repro.transformer.index_execution import (
    IndexDomainEncoderExecutor,
    LayerMeasurement,
    execute_encoder_layer,
)
from repro.transformer.index_model import (
    DecodeMeasurement,
    IndexDomainModelExecutor,
    IndexKVCache,
    ModelMeasurement,
    execute_decoder,
    execute_model,
)
from repro.transformer.model import TransformerModel
from repro.transformer.profiling import ActivationProfiler, TensorStatistics

__all__ = [
    "TransformerConfig",
    "TransformerModel",
    "ActivationProfiler",
    "TensorStatistics",
    "IndexDomainEncoderExecutor",
    "LayerMeasurement",
    "execute_encoder_layer",
    "IndexDomainModelExecutor",
    "ModelMeasurement",
    "execute_model",
    "IndexKVCache",
    "DecodeMeasurement",
    "execute_decoder",
]
