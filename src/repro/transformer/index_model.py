"""Full-model index-domain execution: encoder stacks and a KV-cache decoder.

:mod:`repro.transformer.index_execution` runs *one* encoder layer with
every GEMM in the index domain; this module scales that to whole models:

* :class:`IndexDomainModelExecutor` / :func:`execute_model` — an entire
  encoder stack (BERT-Base/Large depth) executes forward layer by layer,
  each layer's index-domain output feeding the next.  One shared
  :class:`~repro.transformer.index_execution.IndexDomainEncoderExecutor`
  carries the per-``(layer, gemm)`` weight cache, so every weight tensor
  is quantized exactly once per model, and shape-matched GEMMs inside a
  layer run as single batched BLAS calls.  The FP forward of the same
  blocks is the accuracy oracle at every depth.
* :class:`IndexKVCache` / :func:`execute_decoder` — a GPT-style decoder
  attention path.  The cache stores the *encoded* K/V rows: dictionaries
  are fit once at prefill and reused verbatim for every appended decode
  row, so the growing cache stays one valid
  :class:`~repro.core.quantizer.QuantizedTensor` per tensor and per-head
  slices share the dictionary (the index-domain engine requires both).
  Each decode step quantizes only the new query/probability rows and
  multiplies them against the cached encodings — the per-step work the
  accelerator would do.  A floating-point decoder with an FP KV cache,
  fed the identical synthetic inputs, is the correctness oracle.

Sequential layer dependencies mean a single forward can only batch
*independent* GEMMs into one BLAS call (per-head score/context products,
the Q/K/V projections over one shared input); the cross-layer wins come
from the weight cache and from :func:`repro.core.index_compute.
index_domain_matmul_many`, which callers with independent cross-layer
GEMM sets (multi-stream serving, replayed traces) can feed directly.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple, Union

import numpy as np

from repro.core.index_compute import (
    IndexComputeStats,
    PlaneCacheStats,
    PlaneSet,
    get_plane_cache,
    use_plane_cache,
)
from repro.core.quantizer import MokeyQuantizer, QuantizedTensor
from repro.core.tensor_dictionary import EncodedValues, TensorDictionary
from repro.transformer.config import TransformerConfig
from repro.transformer.encoder import EncoderBlock
from repro.transformer.functional import gelu, softmax
from repro.transformer.index_execution import (
    GemmMeasurement,
    IndexDomainEncoderExecutor,
    LayerMeasurement,
    _build_block,
    _resolve_config,
)

__all__ = [
    "GPT_DECODER_CONFIG",
    "ModelMeasurement",
    "DecodeMeasurement",
    "MultiStreamDecodeMeasurement",
    "IndexDomainModelExecutor",
    "IndexKVCache",
    "MultiStreamDecoder",
    "execute_model",
    "execute_decoder",
]

#: GPT-2-small-shaped decoder configuration for the KV-cache path.  Not
#: registered in the model zoo: the zoo enumerates the paper's Table I
#: encoder models and their goldens must stay unchanged.
GPT_DECODER_CONFIG = TransformerConfig(
    name="gpt2-small",
    num_layers=12,
    hidden_size=768,
    num_heads=12,
    intermediate_size=3072,
    vocab_size=50257,
    max_position_embeddings=1024,
)


@dataclass
class ModelMeasurement:
    """Measured index-domain execution of a whole encoder stack.

    Attributes:
        model: Configuration name the stack was built from.
        sequence_length: Tokens per input.
        batch_size: Inputs per pass.
        num_layers: Encoder layers executed.
        layers: Per-layer measurements, in depth order.  Each layer's
            ``output_rms_error`` is measured against the FP forward at
            the same depth, so quantization error *accumulated* across
            the stack is visible layer by layer.
        stats: Operation counts merged over every GEMM of every layer.
        quantize_seconds: Total operand fit/encode wall time.
        engine_seconds: Total index-domain compute wall time.
        total_seconds: End-to-end wall time of the model forward.
        output_rms_error: RMS error of the final hidden states against
            the FP forward, relative to the FP output RMS.
        weight_cache_hits: GEMMs served from the weight cache during
            this forward (0 on the first forward of a fresh executor,
            one per weight GEMM on every later forward).
        plane_cache: Plane-cache counter delta over this forward
            (``None`` when caching is disabled).
    """

    model: str
    sequence_length: int
    batch_size: int
    num_layers: int
    layers: List[LayerMeasurement]
    stats: IndexComputeStats
    quantize_seconds: float
    engine_seconds: float
    total_seconds: float
    output_rms_error: float
    weight_cache_hits: int
    plane_cache: Optional[PlaneCacheStats] = None

    @property
    def measured_macs(self) -> int:
        """Total operand pairs processed across the stack."""
        return self.stats.total_pairs

    @property
    def outlier_pair_fraction(self) -> float:
        return self.stats.outlier_pair_fraction


class IndexDomainModelExecutor:
    """Runs a whole synthetic encoder stack with index-domain GEMMs.

    Blocks are built once (deterministic in ``seed``) and the underlying
    layer executor is shared across forwards, so repeated calls — a
    campaign sweeping sequence lengths, a perf bench warming up — reuse
    every cached weight encoding.

    Args:
        model: Model-zoo name or an explicit :class:`TransformerConfig`.
        num_layers: Optional cap on the executed depth (``None`` runs
            the configured depth).
        quantizer: Shared tensor quantizer; generated if omitted.
        engine: Registered engine name (``"vectorized"``, ``"torch"``,
            ``"scalar"``).
        device: Optional device for backends that take one.
        seed: Seed for the per-layer block weights.
        cache_weights: Quantize each weight once per (layer, gemm) key
            (on by default at model scale).
        gemm_batching: Batch shape-matched GEMMs into single BLAS calls
            (on by default at model scale).
    """

    def __init__(
        self,
        model: Union[str, TransformerConfig] = "bert-base",
        num_layers: Optional[int] = None,
        quantizer: Optional[MokeyQuantizer] = None,
        engine: str = "vectorized",
        device: Optional[str] = None,
        seed: int = 0,
        cache_weights: bool = True,
        gemm_batching: bool = True,
    ) -> None:
        self.config = _resolve_config(model)
        depth = self.config.num_layers if num_layers is None else num_layers
        if depth < 1:
            raise ValueError(f"num_layers must be >= 1, got {depth}")
        self.num_layers = min(depth, self.config.num_layers)
        self.seed = seed
        # Spaced seeds: _build_block consumes seed and seed + 1 internally.
        self.blocks: List[EncoderBlock] = [
            _build_block(self.config, seed + 10 * layer)
            for layer in range(self.num_layers)
        ]
        self.executor = IndexDomainEncoderExecutor(
            quantizer=quantizer,
            engine=engine,
            device=device,
            cache_weights=cache_weights,
            gemm_batching=gemm_batching,
        )

    @property
    def quantizer(self) -> MokeyQuantizer:
        return self.executor.quantizer

    @property
    def weight_cache_hits(self) -> int:
        return self.executor.weight_cache_hits

    def forward(self, hidden_states: np.ndarray) -> ModelMeasurement:
        """Forward ``(batch, seq, hidden)`` states through the whole stack.

        Every GEMM of every layer runs in the index domain; each layer's
        index-domain output feeds the next layer.  The FP forward of the
        same blocks over the same input is evaluated alongside as the
        accuracy oracle at every depth.
        """
        batch, seq, _hidden = hidden_states.shape
        hits_before = self.executor.weight_cache_hits
        plane_cache = get_plane_cache()
        cache_before = None if plane_cache is None else plane_cache.stats()
        layers: List[LayerMeasurement] = []
        stats = IndexComputeStats()
        fp_states = hidden_states
        index_states = hidden_states
        started = time.perf_counter()
        fp_seconds = 0.0
        for layer, block in enumerate(self.blocks):
            layer_started = time.perf_counter()
            index_states, gemms = self.executor.run_block(
                block, index_states, layer_key=layer
            )
            layer_seconds = time.perf_counter() - layer_started

            # The FP oracle trace rides along (excluded from the timings).
            fp_started = time.perf_counter()
            fp_states = block(fp_states)
            fp_seconds += time.perf_counter() - fp_started

            fp_rms = float(np.sqrt(np.mean(np.square(fp_states)))) or 1.0
            rms_error = (
                float(np.sqrt(np.mean(np.square(index_states - fp_states)))) / fp_rms
            )
            layer_stats = IndexComputeStats()
            for gemm in gemms:
                layer_stats.merge(gemm.stats)
            stats.merge(layer_stats)
            layers.append(
                LayerMeasurement(
                    model=self.config.name,
                    sequence_length=seq,
                    batch_size=batch,
                    gemms=gemms,
                    stats=layer_stats,
                    quantize_seconds=sum(g.quantize_seconds for g in gemms),
                    engine_seconds=sum(g.engine_seconds for g in gemms),
                    total_seconds=layer_seconds,
                    output_rms_error=rms_error,
                )
            )
        total_seconds = time.perf_counter() - started - fp_seconds

        return ModelMeasurement(
            model=self.config.name,
            sequence_length=seq,
            batch_size=batch,
            num_layers=self.num_layers,
            layers=layers,
            stats=stats,
            quantize_seconds=sum(m.quantize_seconds for m in layers),
            engine_seconds=sum(m.engine_seconds for m in layers),
            total_seconds=total_seconds,
            output_rms_error=layers[-1].output_rms_error,
            weight_cache_hits=self.executor.weight_cache_hits - hits_before,
            plane_cache=(
                None
                if cache_before is None
                else get_plane_cache().stats().minus(cache_before)
            ),
        )


def execute_model(
    model: Union[str, TransformerConfig] = "bert-base",
    sequence_length: int = 128,
    batch_size: int = 1,
    num_layers: Optional[int] = None,
    quantizer: Optional[MokeyQuantizer] = None,
    engine: str = "vectorized",
    device: Optional[str] = None,
    seed: int = 0,
    cache_weights: bool = True,
    gemm_batching: bool = True,
    executor: Optional[IndexDomainModelExecutor] = None,
) -> ModelMeasurement:
    """Execute a whole encoder stack end-to-end in the index domain.

    Args:
        model: Model-zoo name (``"bert-base"``, ``"bert-large"``, ...)
            or an explicit :class:`TransformerConfig`.
        sequence_length: Tokens per input.
        batch_size: Inputs per pass.
        num_layers: Optional depth cap (tests and tiny benches).
        quantizer: Shared tensor quantizer; generated if omitted.
        engine: Registered engine name.
        device: Optional device for backends that take one.
        seed: Seed for the block weights and input activations.
        cache_weights / gemm_batching: See
            :class:`IndexDomainModelExecutor` (both on by default).
        executor: Reuse an existing model executor (and its weight
            cache); the other construction arguments are then ignored.
    """
    if sequence_length < 1:
        raise ValueError(f"sequence_length must be >= 1, got {sequence_length}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if executor is None:
        executor = IndexDomainModelExecutor(
            model=model,
            num_layers=num_layers,
            quantizer=quantizer,
            engine=engine,
            device=device,
            seed=seed,
            cache_weights=cache_weights,
            gemm_batching=gemm_batching,
        )
    rng = np.random.default_rng(executor.seed + 7919)
    hidden_states = rng.normal(
        0.0, 1.0, size=(batch_size, sequence_length, executor.config.hidden_size)
    ).astype(np.float32)
    return executor.forward(hidden_states)


# --------------------------------------------------------------------------- #
# GPT-style decoder attention with an index-domain KV cache
# --------------------------------------------------------------------------- #
def _slice_quantized(
    tensor: QuantizedTensor, columns: slice, transpose: bool = False
) -> QuantizedTensor:
    """Column slice of a 2-D quantized tensor, sharing its dictionary.

    The encoding is elementwise, so any slice (and its transpose) of the
    encoded fields is itself a valid encoding under the same dictionary —
    this is what lets every attention head read its ``head_dim`` columns
    of the cached K/V without re-quantizing.
    """
    def pick(array: np.ndarray) -> np.ndarray:
        matrix = array.reshape(tensor.shape)[:, columns]
        return matrix.T if transpose else matrix

    encoded = EncodedValues(
        is_outlier=pick(tensor.encoded.is_outlier),
        sign=pick(tensor.encoded.sign),
        gaussian_index=pick(tensor.encoded.gaussian_index),
        outlier_index=pick(tensor.encoded.outlier_index),
    )
    return QuantizedTensor(
        name=f"{tensor.name}[{columns.start}:{columns.stop}]",
        shape=encoded.is_outlier.shape,
        encoded=encoded,
        dictionary=tensor.dictionary,
    )


def _concat_quantized(old: QuantizedTensor, new: QuantizedTensor) -> QuantizedTensor:
    """Append ``new`` rows to ``old`` (same dictionary, same width)."""
    if old.dictionary is not new.dictionary:
        raise ValueError("can only concatenate encodings that share a dictionary")

    def join(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.concatenate([a.reshape(old.shape), b.reshape(new.shape)], axis=0)

    encoded = EncodedValues(
        is_outlier=join(old.encoded.is_outlier, new.encoded.is_outlier),
        sign=join(old.encoded.sign, new.encoded.sign),
        gaussian_index=join(old.encoded.gaussian_index, new.encoded.gaussian_index),
        outlier_index=join(old.encoded.outlier_index, new.encoded.outlier_index),
    )
    return QuantizedTensor(
        name=old.name,
        shape=(old.shape[0] + new.shape[0], old.shape[1]),
        encoded=encoded,
        dictionary=old.dictionary,
    )


class _PlaneSlab:
    """Incrementally grown indicator-plane rows for one cached K/V tensor.

    Plane building is elementwise, so appending one encoded row's plane
    slice to a grown buffer produces *bit-identical* arrays to rebuilding
    the planes from the full encoding — that is the whole correctness
    argument, and the property tests lock it.  Buffers double in capacity
    (amortised O(1) per appended row) and hold the symbol plane ``p``,
    the Gaussian indicator ``g``, the outlier mask and the decoded
    centroids for every cached row; per-head plane sets are contiguous
    column slices of these buffers.
    """

    def __init__(self, dictionary: TensorDictionary, width: int) -> None:
        fit = dictionary.golden.fit
        # Identical construction to IndexDomainEngine.__init__, so the
        # slab's planes are bitwise the engine's.
        self._half_bases = fit.a ** np.arange(fit.num_entries, dtype=np.float64)
        self._b = float(fit.b)
        self.fit_key = (float(fit.a), float(fit.b), int(fit.num_entries))
        self._dictionary = dictionary
        self._width = int(width)
        self._rows = 0
        capacity = 16
        self._p = np.empty((capacity, self._width), dtype=np.float64)
        self._g = np.empty((capacity, self._width), dtype=np.float64)
        self._out = np.empty((capacity, self._width), dtype=bool)
        self._dec = np.empty((capacity, self._width), dtype=np.float64)

    def _ensure(self, rows: int) -> None:
        capacity = self._p.shape[0]
        if rows <= capacity:
            return
        while capacity < rows:
            capacity *= 2
        for name in ("_p", "_g", "_out", "_dec"):
            old = getattr(self, name)
            grown = np.empty((capacity, self._width), dtype=old.dtype)
            grown[: self._rows] = old[: self._rows]
            setattr(self, name, grown)

    def extend(self, tensor: QuantizedTensor) -> None:
        """Append plane rows for ``tensor``'s rows beyond those already held."""
        total = int(tensor.shape[0])
        start = self._rows
        if total < start:
            raise ValueError(
                f"cached tensor shrank from {start} to {total} rows; plane "
                "slabs only grow"
            )
        if total == start:
            return
        self._ensure(total)
        enc = tensor.encoded
        rows = slice(start, total)

        def tail(array: np.ndarray) -> np.ndarray:
            return array.reshape(tensor.shape)[rows]

        out = tail(enc.is_outlier)
        g = (~out).astype(np.float64)
        self._out[rows] = out
        self._g[rows] = g
        self._p[rows] = (
            tail(enc.sign).astype(np.float64)
            * (self._half_bases[tail(enc.gaussian_index)] + self._b)
            * g
        )
        new = EncodedValues(
            is_outlier=np.ascontiguousarray(out),
            sign=np.ascontiguousarray(tail(enc.sign)),
            gaussian_index=np.ascontiguousarray(tail(enc.gaussian_index)),
            outlier_index=np.ascontiguousarray(tail(enc.outlier_index)),
        )
        self._dec[rows] = self._dictionary.decode(new, apply_fixed_point=False).reshape(
            total - start, self._width
        )
        self._rows = total

    def plane_set(self, columns: slice, transpose: bool = False) -> PlaneSet:
        """A weight-role :class:`PlaneSet` over ``columns`` of every row.

        Contiguous copies of the slab slices (transposed for the K side):
        the GEMM then consumes arrays byte-identical to the full-rebuild
        path's, so cached and uncached runs make the same BLAS calls.
        """
        rows = self._rows

        def pick(buffer: np.ndarray) -> np.ndarray:
            matrix = buffer[:rows, columns]
            return np.ascontiguousarray(matrix.T if transpose else matrix)

        return PlaneSet(
            p=pick(self._p),
            g=pick(self._g),
            out=pick(self._out),
            role="rhs",
            fit_key=self.fit_key,
            dec=pick(self._dec),
        )


class IndexKVCache:
    """Per-layer cache of *encoded* key/value rows for decoder attention.

    Dictionaries are fit once per layer at :meth:`prefill` and reused
    verbatim by every :meth:`append`, so the growing cache remains one
    valid :class:`QuantizedTensor` per tensor: the index-domain engine
    requires a single dictionary per operand, and per-head column slices
    (:func:`_slice_quantized`) inherit it for free.  Appending therefore
    encodes only the new rows — the per-token cache cost the hardware
    would pay.

    With ``incremental_planes`` (the default) the cache also maintains a
    :class:`_PlaneSlab` per tensor: each append builds the *new rows'*
    indicator-plane slices once, and :meth:`head_tensors` hands the
    engine per-head plane sets assembled from the slab — so a decode
    step never rebuilds planes over the whole cached history.  Bit
    identical to the rebuild path by construction (elementwise plane
    building commutes with slicing and concatenation).
    """

    def __init__(
        self, quantizer: MokeyQuantizer, incremental_planes: bool = True
    ) -> None:
        self.quantizer = quantizer
        self.incremental_planes = bool(incremental_planes)
        self._keys: Dict[Hashable, QuantizedTensor] = {}
        self._values: Dict[Hashable, QuantizedTensor] = {}
        self._slabs: Dict[Tuple[Hashable, str], _PlaneSlab] = {}

    def __contains__(self, layer: Hashable) -> bool:
        return layer in self._keys

    def cached_tokens(self, layer: Hashable) -> int:
        """Rows currently cached for ``layer`` (0 before prefill)."""
        tensor = self._keys.get(layer)
        return 0 if tensor is None else tensor.shape[0]

    def _extend_slabs(self, layer: Hashable) -> None:
        if not self.incremental_planes:
            return
        for kind, tensor in (
            ("key", self._keys[layer]),
            ("value", self._values[layer]),
        ):
            slab = self._slabs.get((layer, kind))
            if slab is None:
                slab = _PlaneSlab(tensor.dictionary, tensor.shape[1])
                self._slabs[(layer, kind)] = slab
            slab.extend(tensor)

    def prefill(self, layer: Hashable, keys: np.ndarray, values: np.ndarray) -> None:
        """Quantize the prompt's K/V rows, fitting the layer dictionaries."""
        if layer in self._keys:
            raise ValueError(f"layer {layer!r} is already prefilled")
        self._keys[layer] = self.quantizer.quantize(
            np.asarray(keys, dtype=np.float64), f"kv.{layer}.key"
        )
        self._values[layer] = self.quantizer.quantize(
            np.asarray(values, dtype=np.float64), f"kv.{layer}.value"
        )
        self._extend_slabs(layer)

    def append(self, layer: Hashable, keys: np.ndarray, values: np.ndarray) -> None:
        """Encode new K/V rows with the prefill dictionaries and append."""
        if layer not in self._keys:
            raise ValueError(f"layer {layer!r} must be prefilled before appending")
        key_tensor, value_tensor = self._keys[layer], self._values[layer]
        new_keys = self.quantizer.quantize(
            np.asarray(keys, dtype=np.float64),
            key_tensor.name,
            dictionary=key_tensor.dictionary,
        )
        new_values = self.quantizer.quantize(
            np.asarray(values, dtype=np.float64),
            value_tensor.name,
            dictionary=value_tensor.dictionary,
        )
        self._keys[layer] = _concat_quantized(key_tensor, new_keys)
        self._values[layer] = _concat_quantized(value_tensor, new_values)
        self._extend_slabs(layer)

    def tensors(self, layer: Hashable) -> Tuple[QuantizedTensor, QuantizedTensor]:
        """The cached ``(keys, values)`` quantized ``(tokens, hidden)`` tensors."""
        return self._keys[layer], self._values[layer]

    def head_tensors(
        self, layer: Hashable, columns: slice
    ) -> Tuple[QuantizedTensor, QuantizedTensor]:
        """One head's ``(keyᵀ, value)`` slices, planes attached when slabbed.

        The key slice arrives transposed (``(head_dim, tokens)``), ready
        to be the score GEMM's right operand; the value slice is
        ``(tokens, head_dim)`` for the context GEMM.  When incremental
        planes are on, both carry their slab-assembled plane sets, which
        the engine picks up instead of rebuilding.
        """
        key_slice = _slice_quantized(self._keys[layer], columns, transpose=True)
        value_slice = _slice_quantized(self._values[layer], columns)
        if self.incremental_planes:
            key_slice._plane_sets = {
                "rhs": self._slabs[(layer, "key")].plane_set(columns, transpose=True)
            }
            value_slice._plane_sets = {
                "rhs": self._slabs[(layer, "value")].plane_set(columns)
            }
        return key_slice, value_slice


@dataclass
class DecodeMeasurement:
    """Measured index-domain decoder run (prefill + autoregressive steps).

    Attributes:
        model: Configuration name the decoder was built from.
        prompt_length: Prompt tokens processed at prefill.
        decode_tokens: Autoregressive steps executed.
        num_layers: Decoder layers executed.
        gemms: Per-GEMM measurements merged over prefill and all steps.
        stats: Operation counts merged over every GEMM.
        prefill_seconds: Wall time of the prompt pass (index path only).
        decode_seconds: Wall time of all decode steps (index path only).
        tokens_per_second: Decode throughput (``decode_tokens`` over
            ``decode_seconds``).
        output_rms_error: RMS error of the index-domain hidden states
            (prefill plus every decoded position, final layer) against
            the FP decoder with an FP KV cache, relative to the FP RMS.
        cached_tokens: K/V rows held per layer after the run.
        outputs: Final-layer index-domain hidden states, prefill rows
            first then one row per decode step — what the bit-identity
            property tests compare across cached/uncached runs.
        plane_cache: Plane-cache counter delta over the run (``None``
            when caching was disabled).
    """

    model: str
    prompt_length: int
    decode_tokens: int
    num_layers: int
    gemms: List[GemmMeasurement] = field(default_factory=list)
    stats: IndexComputeStats = field(default_factory=IndexComputeStats)
    prefill_seconds: float = 0.0
    decode_seconds: float = 0.0
    tokens_per_second: float = 0.0
    output_rms_error: float = 0.0
    cached_tokens: int = 0
    outputs: Optional[np.ndarray] = None
    plane_cache: Optional[PlaneCacheStats] = None

    @property
    def measured_macs(self) -> int:
        return self.stats.total_pairs

    @property
    def outlier_pair_fraction(self) -> float:
        return self.stats.outlier_pair_fraction


def _decoder_layer_index(
    executor: IndexDomainEncoderExecutor,
    measurements: Dict[str, GemmMeasurement],
    cache: IndexKVCache,
    layer: Hashable,
    block: EncoderBlock,
    hidden2d: np.ndarray,
    causal: bool,
    weight_key: Optional[Hashable] = None,
) -> np.ndarray:
    """One decoder layer over ``(tokens, hidden)`` rows, KV from the cache.

    ``causal=True`` is the prefill pass (all prompt rows at once, upper
    triangle masked); ``causal=False`` is a decode step (one new row
    attending to the whole cache).  ``weight_key`` identifies this block
    in the executor's weight cache (defaults to ``layer``; multi-stream
    callers pass the bare layer index so streams share weight encodings
    while keeping per-stream KV keys).
    """
    attn = block.attention
    tokens, hidden = hidden2d.shape
    heads, head_dim = attn.num_heads, attn.head_dim
    if weight_key is None:
        weight_key = layer

    q, k, v = executor._projection_group(
        measurements,
        [
            ("attention.query", attn.query),
            ("attention.key", attn.key),
            ("attention.value", attn.value),
        ],
        hidden2d,
        weight_key,
    )
    if layer in cache:
        cache.append(layer, k, v)
    else:
        cache.prefill(layer, k, v)
    total = cache.cached_tokens(layer)

    head_slices = [slice(h * head_dim, (h + 1) * head_dim) for h in range(heads)]
    head_kv = [cache.head_tensors(layer, s) for s in head_slices]
    score_rows = executor._gemm_many_encoded(
        measurements,
        "attention.scores",
        [(q[:, s], head_kv[h][0]) for h, s in enumerate(head_slices)],
    )
    scores = np.stack(score_rows) / np.sqrt(head_dim)  # (heads, tokens, total)
    if causal:
        # Row i of the prefill may attend to cached positions 0..i only.
        mask = np.triu(np.ones((tokens, total), dtype=bool), k=total - tokens + 1)
        scores = np.where(mask[None, :, :], -1e9, scores)
    probs = softmax(scores, axis=-1)

    context_rows = executor._gemm_many_encoded(
        measurements,
        "attention.context",
        [(probs[h], head_kv[h][1]) for h in range(heads)],
    )
    merged = np.concatenate(context_rows, axis=1)  # (tokens, hidden)

    attn_out = executor._projection(
        measurements, "attention.output", merged, attn.output, weight_key
    )
    hidden2d = block.attention_norm(
        (hidden2d + attn_out).astype(np.float32)[None, :, :]
    )[0]

    inter = gelu(
        executor._projection(
            measurements, "ffn.intermediate", hidden2d, block.ffn.intermediate, weight_key
        )
    )
    ffn_out = executor._projection(
        measurements, "ffn.output", inter, block.ffn.output, weight_key
    )
    return block.output_norm((hidden2d + ffn_out).astype(np.float32)[None, :, :])[0]


def _decoder_layer_fp(
    block: EncoderBlock,
    fp_cache: Dict[Hashable, Tuple[np.ndarray, np.ndarray]],
    layer: Hashable,
    hidden2d: np.ndarray,
    causal: bool,
) -> np.ndarray:
    """The FP oracle: identical dataflow with float matmuls and an FP cache."""
    attn = block.attention
    tokens, hidden = hidden2d.shape
    heads, head_dim = attn.num_heads, attn.head_dim

    q = hidden2d @ attn.query.weight + attn.query.bias
    k = hidden2d @ attn.key.weight + attn.key.bias
    v = hidden2d @ attn.value.weight + attn.value.bias
    if layer in fp_cache:
        old_k, old_v = fp_cache[layer]
        fp_cache[layer] = (np.concatenate([old_k, k]), np.concatenate([old_v, v]))
    else:
        fp_cache[layer] = (k, v)
    all_k, all_v = fp_cache[layer]
    total = all_k.shape[0]

    contexts = []
    for h in range(heads):
        cols = slice(h * head_dim, (h + 1) * head_dim)
        scores = (q[:, cols] @ all_k[:, cols].T) / np.sqrt(head_dim)
        if causal:
            mask = np.triu(np.ones((tokens, total), dtype=bool), k=total - tokens + 1)
            scores = np.where(mask, -1e9, scores)
        contexts.append(softmax(scores, axis=-1) @ all_v[:, cols])
    merged = np.concatenate(contexts, axis=1)

    attn_out = merged @ attn.output.weight + attn.output.bias
    hidden2d = block.attention_norm((hidden2d + attn_out).astype(np.float32)[None])[0]
    inter = gelu(hidden2d @ block.ffn.intermediate.weight + block.ffn.intermediate.bias)
    ffn_out = inter @ block.ffn.output.weight + block.ffn.output.bias
    return block.output_norm((hidden2d + ffn_out).astype(np.float32)[None])[0]


def execute_decoder(
    model: Union[str, TransformerConfig] = GPT_DECODER_CONFIG,
    prompt_length: int = 16,
    decode_tokens: int = 8,
    num_layers: Optional[int] = None,
    quantizer: Optional[MokeyQuantizer] = None,
    engine: str = "vectorized",
    device: Optional[str] = None,
    seed: int = 0,
    gemm_batching: bool = True,
    plane_caching: bool = True,
) -> DecodeMeasurement:
    """Run a GPT-style decoder with an index-domain KV cache.

    Prefill processes the whole synthetic prompt causally (every GEMM in
    the index domain, K/V dictionaries fit once per layer), then each of
    ``decode_tokens`` autoregressive steps quantizes one new input row
    per layer, appends its K/V rows to the encoded cache and attends
    against the full cache.  Both paths — index-domain and the FP oracle
    with an FP KV cache — consume identical synthetic inputs, so
    ``output_rms_error`` isolates the quantization error of the cached
    attention path.

    Args:
        model: Decoder configuration (defaults to a GPT-2-small shape)
            or a model-zoo name.
        prompt_length: Prompt tokens processed at prefill.
        decode_tokens: Autoregressive steps to execute.
        num_layers: Optional depth cap (tests and tiny benches).
        quantizer: Shared tensor quantizer; generated if omitted.
        engine: Registered engine name.
        device: Optional device for backends that take one.
        seed: Seed for the block weights and the synthetic inputs.
        gemm_batching: Batch per-head GEMMs into single BLAS calls.
        plane_caching: Keep weight planes in the process plane cache and
            grow KV plane slabs incrementally (the hot path).  ``False``
            runs the uncached oracle — bit-identical outputs and stats,
            rebuilt planes every step.
    """
    config = _resolve_config(model)
    if prompt_length < 1:
        raise ValueError(f"prompt_length must be >= 1, got {prompt_length}")
    if decode_tokens < 0:
        raise ValueError(f"decode_tokens must be >= 0, got {decode_tokens}")
    depth = config.num_layers if num_layers is None else num_layers
    depth = min(depth, config.num_layers)
    if depth < 1:
        raise ValueError(f"num_layers must be >= 1, got {depth}")

    blocks = [_build_block(config, seed + 10 * layer) for layer in range(depth)]
    executor = IndexDomainEncoderExecutor(
        quantizer=quantizer,
        engine=engine,
        device=device,
        cache_weights=True,
        gemm_batching=gemm_batching,
    )
    cache = IndexKVCache(executor.quantizer, incremental_planes=plane_caching)
    fp_cache: Dict[Hashable, Tuple[np.ndarray, np.ndarray]] = {}
    measurements: Dict[str, GemmMeasurement] = {}
    rng = np.random.default_rng(seed + 7919)

    index_outputs: List[np.ndarray] = []
    fp_outputs: List[np.ndarray] = []

    scope = contextlib.nullcontext() if plane_caching else use_plane_cache(None)
    with scope:
        plane_cache = get_plane_cache()
        cache_before = None if plane_cache is None else plane_cache.stats()

        # --- Prefill: the whole prompt, causally masked ----------------- #
        prompt = rng.normal(0.0, 1.0, size=(prompt_length, config.hidden_size)).astype(
            np.float32
        )
        started = time.perf_counter()
        states = prompt
        for layer, block in enumerate(blocks):
            states = _decoder_layer_index(
                executor, measurements, cache, layer, block, states, causal=True
            )
        prefill_seconds = time.perf_counter() - started
        index_outputs.append(states)

        fp_states = prompt
        for layer, block in enumerate(blocks):
            fp_states = _decoder_layer_fp(block, fp_cache, layer, fp_states, causal=True)
        fp_outputs.append(fp_states)

        # --- Decode: one synthetic input row per step ------------------- #
        decode_started = time.perf_counter()
        fp_pending: List[np.ndarray] = []
        for _step in range(decode_tokens):
            row = rng.normal(0.0, 1.0, size=(1, config.hidden_size)).astype(np.float32)
            states = row
            for layer, block in enumerate(blocks):
                states = _decoder_layer_index(
                    executor, measurements, cache, layer, block, states, causal=False
                )
            index_outputs.append(states)
            fp_pending.append(row)
        decode_seconds = time.perf_counter() - decode_started
        cache_delta = (
            None
            if cache_before is None
            else get_plane_cache().stats().minus(cache_before)
        )

    for row in fp_pending:
        fp_states = row
        for layer, block in enumerate(blocks):
            fp_states = _decoder_layer_fp(block, fp_cache, layer, fp_states, causal=False)
        fp_outputs.append(fp_states)

    index_all = np.concatenate(index_outputs, axis=0)
    fp_all = np.concatenate(fp_outputs, axis=0)
    fp_rms = float(np.sqrt(np.mean(np.square(fp_all)))) or 1.0
    rms_error = float(np.sqrt(np.mean(np.square(index_all - fp_all)))) / fp_rms

    gemms = list(measurements.values())
    stats = IndexComputeStats()
    for gemm in gemms:
        stats.merge(gemm.stats)
    return DecodeMeasurement(
        model=config.name,
        prompt_length=prompt_length,
        decode_tokens=decode_tokens,
        num_layers=depth,
        gemms=gemms,
        stats=stats,
        prefill_seconds=prefill_seconds,
        decode_seconds=decode_seconds,
        tokens_per_second=(decode_tokens / decode_seconds) if decode_seconds else 0.0,
        output_rms_error=rms_error,
        cached_tokens=cache.cached_tokens(0),
        outputs=index_all,
        plane_cache=cache_delta,
    )


# --------------------------------------------------------------------------- #
# Multi-stream lockstep decoding (independent GEMMs batched across streams)
# --------------------------------------------------------------------------- #
@dataclass
class MultiStreamDecodeMeasurement:
    """Measured lockstep decode of several concurrent serving streams.

    Attributes:
        model: Configuration name the decoder was built from.
        num_streams: Concurrent streams decoded in lockstep.
        prompt_length: Prompt tokens per stream at prefill.
        decode_tokens: Autoregressive steps executed per stream.
        num_layers: Decoder layers executed.
        gemms: Per-GEMM measurements merged over prefill and all steps.
        stats: Operation counts merged over every GEMM.
        prefill_seconds: Wall time of all prefill passes.
        decode_seconds: Wall time of the lockstep decode loop.
        tokens_per_second: Aggregate decode throughput
            (``num_streams * decode_tokens / decode_seconds``).
        per_stream_tokens_per_second: Decode throughput of one stream.
        output_rms_error: Worst per-stream RMS error against each
            stream's FP oracle.
        outputs: Per-stream final-layer hidden states (prefill rows
            first, then one row per step).
        plane_cache: Plane-cache counter delta over the run.
    """

    model: str
    num_streams: int
    prompt_length: int
    decode_tokens: int
    num_layers: int
    gemms: List[GemmMeasurement] = field(default_factory=list)
    stats: IndexComputeStats = field(default_factory=IndexComputeStats)
    prefill_seconds: float = 0.0
    decode_seconds: float = 0.0
    tokens_per_second: float = 0.0
    per_stream_tokens_per_second: float = 0.0
    output_rms_error: float = 0.0
    outputs: Optional[List[np.ndarray]] = None
    plane_cache: Optional[PlaneCacheStats] = None


class MultiStreamDecoder:
    """Decodes several independent streams through one shared model.

    All streams share the blocks, the executor (weight encodings and
    weight planes are quantized/built once, keyed by layer index alone)
    and one :class:`IndexKVCache` keyed ``(stream, layer)``.  Decode
    steps run in *lockstep*: at each step every stream contributes one
    input row, and each GEMM family is issued as one
    ``index_domain_matmul_many`` call across streams — the projections
    share their weight tensor, so S streams collapse to one
    row-concatenated BLAS call; the per-head score/context GEMMs batch
    as ``S x heads`` same-shape products.

    Stream ``s`` consumes the inputs ``default_rng(seed + 7919 +
    104729 * s)`` would feed a solo decoder, so stream 0 reproduces
    :func:`execute_decoder` with the same seed (values agree to
    floating-point round-off; GEMM grouping differs).
    """

    def __init__(
        self,
        model: Union[str, TransformerConfig] = GPT_DECODER_CONFIG,
        num_streams: int = 4,
        num_layers: Optional[int] = None,
        quantizer: Optional[MokeyQuantizer] = None,
        engine: str = "vectorized",
        device: Optional[str] = None,
        seed: int = 0,
        gemm_batching: bool = True,
        plane_caching: bool = True,
    ) -> None:
        if num_streams < 1:
            raise ValueError(f"num_streams must be >= 1, got {num_streams}")
        self.config = _resolve_config(model)
        depth = self.config.num_layers if num_layers is None else num_layers
        depth = min(depth, self.config.num_layers)
        if depth < 1:
            raise ValueError(f"num_layers must be >= 1, got {depth}")
        self.num_layers = depth
        self.num_streams = int(num_streams)
        self.seed = seed
        self.plane_caching = bool(plane_caching)
        self.blocks = [
            _build_block(self.config, seed + 10 * layer) for layer in range(depth)
        ]
        self.executor = IndexDomainEncoderExecutor(
            quantizer=quantizer,
            engine=engine,
            device=device,
            cache_weights=True,
            gemm_batching=gemm_batching,
        )
        self.cache = IndexKVCache(
            self.executor.quantizer, incremental_planes=plane_caching
        )

    def _decode_step(
        self,
        measurements: Dict[str, GemmMeasurement],
        layer: int,
        block: EncoderBlock,
        rows: List[np.ndarray],
    ) -> List[np.ndarray]:
        """One decode step of one layer for every stream, GEMMs batched."""
        executor, cache = self.executor, self.cache
        attn = block.attention
        heads, head_dim = attn.num_heads, attn.head_dim
        streams = range(self.num_streams)

        projected: Dict[str, List[np.ndarray]] = {}
        for name, linear in (
            ("attention.query", attn.query),
            ("attention.key", attn.key),
            ("attention.value", attn.value),
        ):
            wq, w_seconds = executor._quantize_weight(name, linear.weight, layer)
            outs = executor._gemm_many_encoded(
                measurements, name, [(rows[s], wq) for s in streams]
            )
            measurements[name].quantize_seconds += w_seconds
            projected[name] = [out + linear.bias for out in outs]
        qs = projected["attention.query"]

        for s in streams:
            cache.append((s, layer), projected["attention.key"][s],
                         projected["attention.value"][s])

        head_slices = [slice(h * head_dim, (h + 1) * head_dim) for h in range(heads)]
        head_kv = [
            [cache.head_tensors((s, layer), sl) for sl in head_slices] for s in streams
        ]
        score_rows = executor._gemm_many_encoded(
            measurements,
            "attention.scores",
            [
                (qs[s][:, sl], head_kv[s][h][0])
                for s in streams
                for h, sl in enumerate(head_slices)
            ],
        )
        probs: List[np.ndarray] = []
        for s in streams:
            scores = np.stack(score_rows[s * heads : (s + 1) * heads]) / np.sqrt(
                head_dim
            )
            probs.append(softmax(scores, axis=-1))

        context_rows = executor._gemm_many_encoded(
            measurements,
            "attention.context",
            [(probs[s][h], head_kv[s][h][1]) for s in streams for h in range(heads)],
        )
        merged = [
            np.concatenate(context_rows[s * heads : (s + 1) * heads], axis=1)
            for s in streams
        ]

        def shared_projection(
            name: str, linear, inputs: List[np.ndarray]
        ) -> List[np.ndarray]:
            wq, w_seconds = executor._quantize_weight(name, linear.weight, layer)
            outs = executor._gemm_many_encoded(
                measurements, name, [(inputs[s], wq) for s in streams]
            )
            measurements[name].quantize_seconds += w_seconds
            return [out + linear.bias for out in outs]

        attn_out = shared_projection("attention.output", attn.output, merged)
        hidden = [
            block.attention_norm((rows[s] + attn_out[s]).astype(np.float32)[None])[0]
            for s in streams
        ]
        inter = [
            gelu(values)
            for values in shared_projection(
                "ffn.intermediate", block.ffn.intermediate, hidden
            )
        ]
        ffn_out = shared_projection("ffn.output", block.ffn.output, inter)
        return [
            block.output_norm((hidden[s] + ffn_out[s]).astype(np.float32)[None])[0]
            for s in streams
        ]

    def run(
        self, prompt_length: int = 16, decode_tokens: int = 8
    ) -> MultiStreamDecodeMeasurement:
        """Prefill every stream, then decode all of them in lockstep."""
        if prompt_length < 1:
            raise ValueError(f"prompt_length must be >= 1, got {prompt_length}")
        if decode_tokens < 0:
            raise ValueError(f"decode_tokens must be >= 0, got {decode_tokens}")
        executor, cache = self.executor, self.cache
        measurements: Dict[str, GemmMeasurement] = {}
        rngs = [
            np.random.default_rng(self.seed + 7919 + 104729 * s)
            for s in range(self.num_streams)
        ]
        streams = range(self.num_streams)

        scope = (
            contextlib.nullcontext() if self.plane_caching else use_plane_cache(None)
        )
        with scope:
            plane_cache = get_plane_cache()
            cache_before = None if plane_cache is None else plane_cache.stats()

            prompts = [
                rngs[s]
                .normal(0.0, 1.0, size=(prompt_length, self.config.hidden_size))
                .astype(np.float32)
                for s in streams
            ]
            started = time.perf_counter()
            index_outputs: List[List[np.ndarray]] = [[] for _ in streams]
            for s in streams:
                states = prompts[s]
                for layer, block in enumerate(self.blocks):
                    states = _decoder_layer_index(
                        executor,
                        measurements,
                        cache,
                        (s, layer),
                        block,
                        states,
                        causal=True,
                        weight_key=layer,
                    )
                index_outputs[s].append(states)
            prefill_seconds = time.perf_counter() - started

            decode_started = time.perf_counter()
            step_rows: List[List[np.ndarray]] = [[] for _ in streams]
            for _step in range(decode_tokens):
                rows = [
                    rngs[s]
                    .normal(0.0, 1.0, size=(1, self.config.hidden_size))
                    .astype(np.float32)
                    for s in streams
                ]
                for s in streams:
                    step_rows[s].append(rows[s])
                for layer, block in enumerate(self.blocks):
                    rows = self._decode_step(measurements, layer, block, rows)
                for s in streams:
                    index_outputs[s].append(rows[s])
            decode_seconds = time.perf_counter() - decode_started
            cache_delta = (
                None
                if cache_before is None
                else get_plane_cache().stats().minus(cache_before)
            )

        # FP oracle per stream, identical inputs.
        worst_rms = 0.0
        outputs: List[np.ndarray] = []
        for s in streams:
            fp_cache: Dict[Hashable, Tuple[np.ndarray, np.ndarray]] = {}
            fp_outputs = []
            fp_states = prompts[s]
            for layer, block in enumerate(self.blocks):
                fp_states = _decoder_layer_fp(
                    block, fp_cache, layer, fp_states, causal=True
                )
            fp_outputs.append(fp_states)
            for row in step_rows[s]:
                fp_states = row
                for layer, block in enumerate(self.blocks):
                    fp_states = _decoder_layer_fp(
                        block, fp_cache, layer, fp_states, causal=False
                    )
                fp_outputs.append(fp_states)
            index_all = np.concatenate(index_outputs[s], axis=0)
            fp_all = np.concatenate(fp_outputs, axis=0)
            fp_rms = float(np.sqrt(np.mean(np.square(fp_all)))) or 1.0
            rms = float(np.sqrt(np.mean(np.square(index_all - fp_all)))) / fp_rms
            worst_rms = max(worst_rms, rms)
            outputs.append(index_all)

        gemms = list(measurements.values())
        stats = IndexComputeStats()
        for gemm in gemms:
            stats.merge(gemm.stats)
        total_decoded = self.num_streams * decode_tokens
        return MultiStreamDecodeMeasurement(
            model=self.config.name,
            num_streams=self.num_streams,
            prompt_length=prompt_length,
            decode_tokens=decode_tokens,
            num_layers=self.num_layers,
            gemms=gemms,
            stats=stats,
            prefill_seconds=prefill_seconds,
            decode_seconds=decode_seconds,
            tokens_per_second=(
                total_decoded / decode_seconds if decode_seconds else 0.0
            ),
            per_stream_tokens_per_second=(
                decode_tokens / decode_seconds if decode_seconds else 0.0
            ),
            output_rms_error=worst_rms,
            outputs=outputs,
            plane_cache=cache_delta,
        )
