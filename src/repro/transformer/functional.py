"""Elementwise and normalisation primitives used by the transformer.

All functions are pure NumPy, forward-only, and operate on ``float32`` /
``float64`` arrays.  They are also reused by the I-BERT baseline, which
replaces them with integer polynomial approximations, so the exact
reference behaviour matters.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gelu", "erf", "softmax", "layer_norm", "tanh_gelu", "relu"]

# Coefficients of the Abramowitz & Stegun rational approximation of erf,
# accurate to ~1.5e-7 which is far below FP16 resolution.
_ERF_A1 = 0.254829592
_ERF_A2 = -0.284496736
_ERF_A3 = 1.421413741
_ERF_A4 = -1.453152027
_ERF_A5 = 1.061405429
_ERF_P = 0.3275911


def erf(x: np.ndarray) -> np.ndarray:
    """Elementwise error function via a rational polynomial approximation."""
    x = np.asarray(x)
    sign = np.sign(x)
    ax = np.abs(x)
    t = 1.0 / (1.0 + _ERF_P * ax)
    poly = ((((_ERF_A5 * t + _ERF_A4) * t) + _ERF_A3) * t + _ERF_A2) * t + _ERF_A1
    y = 1.0 - poly * t * np.exp(-ax * ax)
    return sign * y


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian Error Linear Unit, the activation used by BERT-family FFNs."""
    x = np.asarray(x)
    return 0.5 * x * (1.0 + erf(x / np.sqrt(2.0)))


def tanh_gelu(x: np.ndarray) -> np.ndarray:
    """The tanh approximation of GELU (used by some checkpoints)."""
    x = np.asarray(x)
    c = np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x ** 3)))


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(np.asarray(x), 0.0)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return (exp / np.sum(exp, axis=axis, keepdims=True)).astype(np.float32)


def layer_norm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-12,
) -> np.ndarray:
    """Layer normalisation over the last dimension.

    Args:
        x: Input of shape ``(..., hidden)``.
        gamma: Scale vector of shape ``(hidden,)``.
        beta: Shift vector of shape ``(hidden,)``.
        eps: Stabilising epsilon added to the variance.
    """
    x = np.asarray(x, dtype=np.float32)
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normalised = (x - mean) / np.sqrt(var + eps)
    return normalised * gamma + beta
