"""Named tensor bookkeeping used by profiling and quantization.

Mokey quantizes *per tensor*: each weight matrix and each activation tensor
gets its own scaled dictionary.  To make that explicit, the transformer
exposes its parameters and intermediate activations through a small named
registry so the quantizer and the profiler can address them uniformly
(e.g. ``"encoder.3.attention.query.weight"`` or
``"encoder.3.ffn.intermediate"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np


@dataclass
class NamedTensor:
    """A tensor together with its hierarchical name and role.

    Attributes:
        name: Dotted path identifying the tensor within the model.
        array: The tensor values.
        role: Either ``"weight"`` (statically known parameter),
            ``"bias"`` or ``"activation"`` (runtime computed).
    """

    name: str
    array: np.ndarray
    role: str = "weight"

    def __post_init__(self) -> None:
        if self.role not in {"weight", "bias", "activation", "embedding"}:
            raise ValueError(f"unknown tensor role: {self.role!r}")

    @property
    def size(self) -> int:
        """Number of scalar values in the tensor."""
        return int(self.array.size)


class TensorRegistry:
    """Ordered mapping of tensor names to :class:`NamedTensor` entries."""

    def __init__(self) -> None:
        self._entries: Dict[str, NamedTensor] = {}

    def register(self, name: str, array: np.ndarray, role: str = "weight") -> NamedTensor:
        """Register a tensor; re-registering a name overwrites its array."""
        entry = NamedTensor(name=name, array=array, role=role)
        self._entries[name] = entry
        return entry

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __getitem__(self, name: str) -> NamedTensor:
        return self._entries[name]

    def __iter__(self) -> Iterator[NamedTensor]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> List[str]:
        """All registered names in registration order."""
        return list(self._entries.keys())

    def by_role(self, role: str) -> List[NamedTensor]:
        """All entries with a given role, in registration order."""
        return [entry for entry in self._entries.values() if entry.role == role]

    def total_values(self, role: Optional[str] = None) -> int:
        """Total number of scalar values, optionally restricted to a role."""
        entries = self.by_role(role) if role else list(self._entries.values())
        return sum(entry.size for entry in entries)


# Type of the callback the model invokes for every intermediate activation:
# ``hook(name, array)``.
ActivationHook = Callable[[str, np.ndarray], None]


class ActivationRecorder:
    """Collects intermediate activations emitted by a model forward pass.

    The recorder can optionally subsample large activations to bound memory
    use, which matches the paper's observation that a handful of profiling
    samples suffices to estimate per-tensor statistics.
    """

    def __init__(self, max_values_per_tensor: Optional[int] = None, seed: int = 0) -> None:
        self._max_values = max_values_per_tensor
        self._rng = np.random.default_rng(seed)
        self.records: Dict[str, List[np.ndarray]] = {}

    def __call__(self, name: str, array: np.ndarray) -> None:
        flat = np.asarray(array, dtype=np.float32).ravel()
        if self._max_values is not None and flat.size > self._max_values:
            idx = self._rng.choice(flat.size, size=self._max_values, replace=False)
            flat = flat[idx]
        self.records.setdefault(name, []).append(flat)

    def concatenated(self) -> Dict[str, np.ndarray]:
        """Return all recorded samples concatenated per tensor name."""
        return {name: np.concatenate(chunks) for name, chunks in self.records.items()}

    def names(self) -> List[str]:
        """Names of all activations seen so far."""
        return list(self.records.keys())
