"""Synthetic evaluation tasks and task-performance metrics.

The paper evaluates task performance on MNLI (matched accuracy), STS-B
(Spearman correlation) and SQuAD v1 (token F1).  The datasets themselves
are not available offline, so this module builds *self-labelled* synthetic
tasks: inputs are random token sequences and the labels are the outputs of
the FP32 reference model.  By construction the FP model scores 100%, and a
quantized model's score measures its fidelity to the FP model — which is
exactly the quantity the paper's "Err" columns track (degradation relative
to the FP baseline).  See DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.transformer.model import TransformerModel

__all__ = [
    "SyntheticDataset",
    "generate_inputs",
    "label_with_model",
    "accuracy",
    "spearman_correlation",
    "span_f1",
    "evaluate",
    "TASK_METRICS",
    "TASK_FAMILIES",
    "task_family",
]

TASK_METRICS: Dict[str, str] = {
    "classification": "accuracy",
    "regression": "spearman",
    "qa": "f1",
}

#: The paper's evaluation datasets mapped to their synthetic task family.
TASK_FAMILIES: Dict[str, str] = {
    "mnli": "classification",
    "stsb": "regression",
    "squad": "qa",
}


def task_family(task: str) -> str:
    """The task family for a dataset name (``"mnli"``) or family name itself."""
    if task in TASK_METRICS:
        return task
    try:
        return TASK_FAMILIES[task]
    except KeyError:
        known = ", ".join(sorted(set(TASK_FAMILIES) | set(TASK_METRICS)))
        raise ValueError(f"unknown task {task!r} (known tasks: {known})") from None


@dataclass
class SyntheticDataset:
    """A batch of synthetic inputs with reference labels.

    Attributes:
        token_ids: ``(num_samples, seq)`` integer token ids.
        segment_ids: ``(num_samples, seq)`` segment ids (0/1).
        attention_mask: ``(num_samples, seq)`` mask of 1s and 0s.
        labels: Task-dependent reference labels produced by
            :func:`label_with_model` — class ids for classification,
            float scores for regression, ``(start, end)`` index pairs for QA.
        task: Task family this dataset belongs to.
    """

    token_ids: np.ndarray
    segment_ids: np.ndarray
    attention_mask: np.ndarray
    labels: Optional[np.ndarray]
    task: str

    @property
    def num_samples(self) -> int:
        return self.token_ids.shape[0]

    @property
    def sequence_length(self) -> int:
        return self.token_ids.shape[1]

    def subset(self, indices: np.ndarray) -> "SyntheticDataset":
        """Return a view of the dataset restricted to ``indices``."""
        labels = None if self.labels is None else self.labels[indices]
        return SyntheticDataset(
            token_ids=self.token_ids[indices],
            segment_ids=self.segment_ids[indices],
            attention_mask=self.attention_mask[indices],
            labels=labels,
            task=self.task,
        )


def generate_inputs(
    vocab_size: int,
    sequence_length: int,
    num_samples: int,
    task: str = "classification",
    pad_fraction: float = 0.1,
    seed: int = 0,
) -> SyntheticDataset:
    """Generate random token sequences with realistic padding and segments.

    Args:
        vocab_size: Vocabulary size of the target model.
        sequence_length: Tokens per sample.
        num_samples: Number of samples.
        task: Task family; sentence-pair tasks get a second segment.
        pad_fraction: Average fraction of trailing pad tokens per sample.
        seed: Random seed.
    """
    if task not in TASK_METRICS:
        raise ValueError(f"unknown task {task!r}")
    rng = np.random.default_rng(seed)
    token_ids = rng.integers(1, vocab_size, size=(num_samples, sequence_length))

    attention_mask = np.ones((num_samples, sequence_length), dtype=np.int64)
    segment_ids = np.zeros((num_samples, sequence_length), dtype=np.int64)
    for row in range(num_samples):
        pad = int(rng.integers(0, max(1, int(pad_fraction * sequence_length) + 1)))
        if pad:
            attention_mask[row, sequence_length - pad:] = 0
            token_ids[row, sequence_length - pad:] = 0
        # Sentence-pair structure: second segment starts at a random boundary.
        boundary = int(rng.integers(sequence_length // 4, 3 * sequence_length // 4))
        segment_ids[row, boundary:] = 1

    return SyntheticDataset(
        token_ids=token_ids.astype(np.int64),
        segment_ids=segment_ids,
        attention_mask=attention_mask,
        labels=None,
        task=task,
    )


def label_with_model(
    model: TransformerModel, dataset: SyntheticDataset, batch_size: int = 8
) -> SyntheticDataset:
    """Attach reference labels produced by ``model`` to ``dataset``."""
    outputs = _predict(model, dataset, batch_size=batch_size)
    if dataset.task == "classification":
        labels = np.argmax(outputs, axis=-1)
    elif dataset.task == "regression":
        labels = outputs
    else:  # qa
        labels = _span_predictions(outputs, dataset.attention_mask)
    return SyntheticDataset(
        token_ids=dataset.token_ids,
        segment_ids=dataset.segment_ids,
        attention_mask=dataset.attention_mask,
        labels=labels,
        task=dataset.task,
    )


def _predict(
    model: TransformerModel, dataset: SyntheticDataset, batch_size: int = 8, hook=None
) -> np.ndarray:
    """Run the model over the dataset in batches and stack the outputs."""
    chunks = []
    for start in range(0, dataset.num_samples, batch_size):
        end = start + batch_size
        chunks.append(
            model(
                dataset.token_ids[start:end],
                segment_ids=dataset.segment_ids[start:end],
                attention_mask=dataset.attention_mask[start:end],
                hook=hook,
            )
        )
    return np.concatenate(chunks, axis=0)


def _span_predictions(qa_logits: np.ndarray, attention_mask: np.ndarray) -> np.ndarray:
    """Convert ``(batch, seq, 2)`` QA logits into ``(batch, 2)`` span indexes."""
    masked = np.where(attention_mask[..., None] > 0, qa_logits, -1e9)
    start = np.argmax(masked[..., 0], axis=-1)
    end_candidates = masked[..., 1].copy()
    # The end index must not precede the start index.
    for row, s in enumerate(start):
        end_candidates[row, :s] = -1e9
    end = np.argmax(end_candidates, axis=-1)
    return np.stack([start, end], axis=-1)


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact matches, in percent."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("prediction/label shape mismatch")
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of an empty set")
    return float(np.mean(predictions == labels) * 100.0)


def spearman_correlation(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Spearman rank correlation scaled to [-100, 100] like GLUE reports."""
    predictions = np.asarray(predictions, dtype=np.float64).ravel()
    targets = np.asarray(targets, dtype=np.float64).ravel()
    if predictions.shape != targets.shape:
        raise ValueError("prediction/target shape mismatch")
    if predictions.size < 2:
        raise ValueError("need at least two samples for a correlation")

    def _ranks(x: np.ndarray) -> np.ndarray:
        order = np.argsort(x, kind="mergesort")
        ranks = np.empty_like(order, dtype=np.float64)
        ranks[order] = np.arange(len(x), dtype=np.float64)
        # average ties
        sorted_x = x[order]
        i = 0
        while i < len(x):
            j = i
            while j + 1 < len(x) and sorted_x[j + 1] == sorted_x[i]:
                j += 1
            if j > i:
                ranks[order[i:j + 1]] = np.mean(np.arange(i, j + 1, dtype=np.float64))
            i = j + 1
        return ranks

    rp, rt = _ranks(predictions), _ranks(targets)
    rp_c = rp - rp.mean()
    rt_c = rt - rt.mean()
    denom = np.sqrt((rp_c ** 2).sum() * (rt_c ** 2).sum())
    if denom == 0:
        return 100.0 if np.allclose(predictions, targets) else 0.0
    return float((rp_c @ rt_c) / denom * 100.0)


def span_f1(predicted_spans: np.ndarray, reference_spans: np.ndarray) -> float:
    """Mean token-overlap F1 between predicted and reference spans, in percent."""
    predicted_spans = np.asarray(predicted_spans)
    reference_spans = np.asarray(reference_spans)
    if predicted_spans.shape != reference_spans.shape:
        raise ValueError("span shape mismatch")
    scores = []
    for (ps, pe), (rs, re) in zip(predicted_spans, reference_spans):
        pred_tokens = set(range(int(ps), int(pe) + 1))
        ref_tokens = set(range(int(rs), int(re) + 1))
        overlap = len(pred_tokens & ref_tokens)
        if overlap == 0:
            scores.append(0.0)
            continue
        precision = overlap / len(pred_tokens)
        recall = overlap / len(ref_tokens)
        scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(scores) * 100.0)


def evaluate(
    model: TransformerModel,
    dataset: SyntheticDataset,
    batch_size: int = 8,
    hook=None,
) -> float:
    """Score ``model`` on a labelled dataset with the task's standard metric."""
    if dataset.labels is None:
        raise ValueError("dataset has no labels; call label_with_model first")
    outputs = _predict(model, dataset, batch_size=batch_size, hook=hook)
    if dataset.task == "classification":
        return accuracy(np.argmax(outputs, axis=-1), dataset.labels)
    if dataset.task == "regression":
        return spearman_correlation(outputs, dataset.labels)
    predictions = _span_predictions(outputs, dataset.attention_mask)
    return span_f1(predictions, dataset.labels)
