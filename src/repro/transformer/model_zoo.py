"""Model zoo: the paper's model configurations and synthetic instantiation.

Two distinct uses are served:

1. **Analytical experiments** (footprints, accelerator workloads) use the
   *full-size* configurations returned by :func:`bert_base`, :func:`bert_large`,
   :func:`roberta_large` and :func:`deberta_xl`.  No weights are materialised
   for these — only the shapes matter.
2. **Functional experiments** (fidelity of quantized inference, profiling
   stability) instantiate NumPy weights.  Because the full models hold
   110M-750M parameters, the functional path defaults to architecture-
   preserving scaled-down models built by :func:`build_simulation_model`;
   the scaling is documented in DESIGN.md and EXPERIMENTS.md.

Synthetic weights are drawn from the distribution family the paper relies
on: a narrow Gaussian core containing ~98.5% of the values plus a small
fraction of large-magnitude outliers, per tensor.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.transformer.attention import MultiHeadSelfAttention
from repro.transformer.config import TransformerConfig
from repro.transformer.embeddings import TransformerEmbeddings
from repro.transformer.encoder import EncoderBlock, EncoderStack
from repro.transformer.layers import Embedding, FeedForward, LayerNorm, Linear
from repro.transformer.model import TransformerModel

__all__ = [
    "bert_base",
    "bert_large",
    "roberta_large",
    "deberta_xl",
    "MODEL_CONFIGS",
    "PAPER_MODELS",
    "gaussian_with_outliers",
    "build_model",
    "build_simulation_model",
]

# Fraction of weight values drawn from the heavy tail. Matches the ~1.2-1.6%
# weight-outlier fractions reported in Table I of the paper.
DEFAULT_WEIGHT_OUTLIER_FRACTION = 0.015
# How much wider the outlier tail is compared to the Gaussian core.
DEFAULT_OUTLIER_SPREAD = 8.0


def bert_base() -> TransformerConfig:
    """BERT-Base: 12 encoders, hidden 768, ~110M parameters."""
    return TransformerConfig(
        name="bert-base",
        num_layers=12,
        hidden_size=768,
        num_heads=12,
        intermediate_size=3072,
    )


def bert_large() -> TransformerConfig:
    """BERT-Large: 24 encoders, hidden 1024, ~340M parameters."""
    return TransformerConfig(
        name="bert-large",
        num_layers=24,
        hidden_size=1024,
        num_heads=16,
        intermediate_size=4096,
    )


def roberta_large() -> TransformerConfig:
    """RoBERTa-Large: same shape as BERT-Large, larger vocabulary."""
    return TransformerConfig(
        name="roberta-large",
        num_layers=24,
        hidden_size=1024,
        num_heads=16,
        intermediate_size=4096,
        vocab_size=50265,
    )


def deberta_xl() -> TransformerConfig:
    """DeBERTa-XL: 48 encoders, hidden 1024, disentangled attention, ~750M."""
    return TransformerConfig(
        name="deberta-xl",
        num_layers=48,
        hidden_size=1024,
        num_heads=16,
        intermediate_size=4096,
        vocab_size=128100,
        disentangled_attention=True,
    )


MODEL_CONFIGS: Dict[str, TransformerConfig] = {
    "bert-base": bert_base(),
    "bert-large": bert_large(),
    "roberta-large": roberta_large(),
    "deberta-xl": deberta_xl(),
}

# The (model, task, sequence length, metric) combinations of Table I.
PAPER_MODELS = (
    ("bert-base", "mnli", 128, "classification"),
    ("bert-large", "mnli", 128, "classification"),
    ("bert-large", "stsb", 128, "regression"),
    ("bert-large", "squad", 384, "qa"),
    ("roberta-large", "mnli", 128, "classification"),
    ("roberta-large", "stsb", 128, "regression"),
    ("roberta-large", "squad", 384, "qa"),
    ("deberta-xl", "mnli", 128, "classification"),
)


def gaussian_with_outliers(
    shape,
    std: float,
    outlier_fraction: float = DEFAULT_WEIGHT_OUTLIER_FRACTION,
    outlier_spread: float = DEFAULT_OUTLIER_SPREAD,
    mean: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sample a tensor from a Gaussian core plus a heavy outlier tail.

    Args:
        shape: Output array shape.
        std: Standard deviation of the Gaussian core.
        outlier_fraction: Fraction of values replaced by tail samples.
        outlier_spread: Tail samples are uniform in magnitude between
            ``3*std`` and ``outlier_spread*std``.
        mean: Mean of the distribution.
        rng: Random generator; a default one is created if omitted.
    """
    rng = rng or np.random.default_rng(0)
    values = rng.normal(loc=mean, scale=std, size=shape).astype(np.float32)
    flat = values.ravel()
    n_outliers = int(round(outlier_fraction * flat.size))
    if n_outliers > 0:
        idx = rng.choice(flat.size, size=n_outliers, replace=False)
        magnitudes = rng.uniform(3.0 * std, outlier_spread * std, size=n_outliers)
        signs = rng.choice([-1.0, 1.0], size=n_outliers)
        flat[idx] = mean + signs * magnitudes
    return flat.reshape(shape).astype(np.float32)


def _linear(
    rng: np.random.Generator,
    in_features: int,
    out_features: int,
    std: float = 0.02,
    outlier_fraction: float = DEFAULT_WEIGHT_OUTLIER_FRACTION,
) -> Linear:
    weight = gaussian_with_outliers(
        (in_features, out_features), std=std, outlier_fraction=outlier_fraction, rng=rng
    )
    bias = rng.normal(0.0, 0.01, size=out_features).astype(np.float32)
    return Linear(weight, bias)


def _layer_norm(rng: np.random.Generator, hidden: int, eps: float) -> LayerNorm:
    gamma = rng.normal(1.0, 0.05, size=hidden).astype(np.float32)
    beta = rng.normal(0.0, 0.05, size=hidden).astype(np.float32)
    return LayerNorm(gamma, beta, eps=eps)


def build_model(
    config: TransformerConfig,
    task: str = "classification",
    num_classes: int = 3,
    seed: int = 0,
    weight_outlier_fraction: float = DEFAULT_WEIGHT_OUTLIER_FRACTION,
) -> TransformerModel:
    """Instantiate a model with synthetic, realistically distributed weights.

    Args:
        config: Architecture to build.
        task: ``"classification"``, ``"regression"`` or ``"qa"``.
        num_classes: Output width of the classification head.
        seed: Seed for the weight generator (deterministic builds).
        weight_outlier_fraction: Fraction of heavy-tail weight values.
    """
    rng = np.random.default_rng(seed)
    h = config.hidden_size
    eps = config.layer_norm_eps

    embeddings = TransformerEmbeddings(
        token=Embedding(
            gaussian_with_outliers(
                (config.vocab_size, h), std=0.02,
                outlier_fraction=weight_outlier_fraction, rng=rng,
            )
        ),
        position=Embedding(
            gaussian_with_outliers(
                (config.max_position_embeddings, h), std=0.02,
                outlier_fraction=weight_outlier_fraction, rng=rng,
            )
        ),
        segment=Embedding(
            gaussian_with_outliers(
                (config.type_vocab_size, h), std=0.02,
                outlier_fraction=weight_outlier_fraction, rng=rng,
            )
        ),
        norm=_layer_norm(rng, h, eps),
    )

    blocks = []
    for _ in range(config.num_layers):
        if config.disentangled_attention:
            relative_key = _linear(rng, h, h, outlier_fraction=weight_outlier_fraction)
            relative_query = _linear(rng, h, h, outlier_fraction=weight_outlier_fraction)
            relative_embedding = gaussian_with_outliers(
                (2 * min(64, config.max_position_embeddings), h),
                std=0.02,
                outlier_fraction=weight_outlier_fraction,
                rng=rng,
            )
        else:
            relative_key = relative_query = relative_embedding = None
        attention = MultiHeadSelfAttention(
            query=_linear(rng, h, h, outlier_fraction=weight_outlier_fraction),
            key=_linear(rng, h, h, outlier_fraction=weight_outlier_fraction),
            value=_linear(rng, h, h, outlier_fraction=weight_outlier_fraction),
            output=_linear(rng, h, h, outlier_fraction=weight_outlier_fraction),
            num_heads=config.num_heads,
            relative_key=relative_key,
            relative_query=relative_query,
            relative_embedding=relative_embedding,
        )
        ffn = FeedForward(
            intermediate=_linear(
                rng, h, config.intermediate_size, outlier_fraction=weight_outlier_fraction
            ),
            output=_linear(
                rng, config.intermediate_size, h, outlier_fraction=weight_outlier_fraction
            ),
        )
        blocks.append(
            EncoderBlock(
                attention=attention,
                attention_norm=_layer_norm(rng, h, eps),
                ffn=ffn,
                output_norm=_layer_norm(rng, h, eps),
            )
        )

    pooler = _linear(rng, h, h, outlier_fraction=weight_outlier_fraction)
    if task == "qa":
        head = _linear(rng, h, 2, outlier_fraction=0.0)
    elif task == "regression":
        head = _linear(rng, h, 1, outlier_fraction=0.0)
    else:
        head = _linear(rng, h, num_classes, outlier_fraction=0.0)

    return TransformerModel(
        config=config,
        embeddings=embeddings,
        encoder=EncoderStack(blocks),
        pooler=pooler,
        head=head,
        task=task,
    )


def build_simulation_model(
    model_name: str,
    task: str = "classification",
    scale: int = 8,
    max_layers: Optional[int] = 4,
    seed: int = 0,
) -> TransformerModel:
    """Build a scaled-down functional twin of one of the paper's models.

    The returned model preserves the architecture family (relative hidden /
    intermediate ratio, attention structure, disentangled attention for
    DeBERTa) but shrinks the width by ``scale`` and optionally truncates the
    depth so that NumPy inference and quantization finish quickly.

    Args:
        model_name: One of ``MODEL_CONFIGS`` keys.
        task: Task head to attach.
        scale: Width divisor applied to hidden/intermediate/vocab sizes.
        max_layers: Optional cap on the number of encoder layers
            (``None`` keeps the original depth).
        seed: Weight generator seed.
    """
    if model_name not in MODEL_CONFIGS:
        raise KeyError(f"unknown model {model_name!r}; known: {sorted(MODEL_CONFIGS)}")
    config = MODEL_CONFIGS[model_name].scaled(scale)
    if max_layers is not None and config.num_layers > max_layers:
        config = TransformerConfig(
            name=config.name,
            num_layers=max_layers,
            hidden_size=config.hidden_size,
            num_heads=config.num_heads,
            intermediate_size=config.intermediate_size,
            vocab_size=config.vocab_size,
            max_position_embeddings=config.max_position_embeddings,
            type_vocab_size=config.type_vocab_size,
            layer_norm_eps=config.layer_norm_eps,
            disentangled_attention=config.disentangled_attention,
            dtype=config.dtype,
        )
    head_task = "classification" if task == "mnli" else task
    if task == "stsb":
        head_task = "regression"
    elif task == "squad":
        head_task = "qa"
    return build_model(config, task=head_task, seed=seed)
