"""End-to-end encoder-only transformer model with task heads.

The model supports the three task families the paper evaluates on:

* ``"classification"`` — sequence classification (MNLI-like, 3 classes),
* ``"regression"`` — sentence-pair similarity (STS-B-like, scalar output),
* ``"qa"`` — extractive question answering (SQuAD-like, start/end logits).
"""

from __future__ import annotations

import copy as _copy
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.transformer.config import TransformerConfig
from repro.transformer.embeddings import TransformerEmbeddings
from repro.transformer.encoder import EncoderStack
from repro.transformer.layers import ActivationTransform, Linear, Module

TASK_HEADS = ("classification", "regression", "qa")


class TransformerModel(Module):
    """A forward-only transformer with a task head.

    Attributes:
        config: Architecture configuration.
        embeddings: Input embedding block.
        encoder: Stack of encoder blocks.
        pooler: Dense projection applied to the [CLS] position.
        head: Task head projection.
        task: One of ``classification``, ``regression`` or ``qa``.
    """

    def __init__(
        self,
        config: TransformerConfig,
        embeddings: TransformerEmbeddings,
        encoder: EncoderStack,
        pooler: Linear,
        head: Linear,
        task: str = "classification",
    ) -> None:
        if task not in TASK_HEADS:
            raise ValueError(f"task must be one of {TASK_HEADS}, got {task!r}")
        self.config = config
        self.embeddings = embeddings
        self.encoder = encoder
        self.pooler = pooler
        self.head = head
        self.task = task

    # ------------------------------------------------------------------ #
    # Forward passes
    # ------------------------------------------------------------------ #
    def encode(
        self,
        token_ids: np.ndarray,
        segment_ids: Optional[np.ndarray] = None,
        attention_mask: Optional[np.ndarray] = None,
        hook: Optional[ActivationTransform] = None,
    ) -> np.ndarray:
        """Run embeddings + encoder stack, returning the final hidden states."""
        hidden = self.embeddings(token_ids, segment_ids=segment_ids, hook=hook)
        return self.encoder(hidden, attention_mask=attention_mask, hook=hook)

    def __call__(
        self,
        token_ids: np.ndarray,
        segment_ids: Optional[np.ndarray] = None,
        attention_mask: Optional[np.ndarray] = None,
        hook: Optional[ActivationTransform] = None,
    ) -> np.ndarray:
        """Run the full model and return the task-head output.

        Returns:
            ``(batch, num_classes)`` logits for classification,
            ``(batch,)`` scores for regression, or
            ``(batch, seq, 2)`` start/end logits for QA.
        """
        hidden = self.encode(
            token_ids,
            segment_ids=segment_ids,
            attention_mask=attention_mask,
            hook=hook,
        )
        if self.task == "qa":
            logits = self.head(hidden)
            if hook is not None:
                logits = hook("head.output", logits)
            return logits

        cls = hidden[:, 0, :]
        pooled = np.tanh(self.pooler(cls))
        if hook is not None:
            pooled = hook("pooler.output", pooled)
        logits = self.head(pooled)
        if hook is not None:
            logits = hook("head.output", logits)
        if self.task == "regression":
            return logits[:, 0]
        return logits

    # ------------------------------------------------------------------ #
    # Parameter access
    # ------------------------------------------------------------------ #
    def named_parameters(self) -> Iterator[Tuple[str, np.ndarray]]:
        for name, value in self.embeddings.named_parameters():
            yield f"embeddings.{name}", value
        for name, value in self.encoder.named_parameters():
            yield name, value
        for name, value in self.pooler.named_parameters():
            yield f"pooler.{name}", value
        for name, value in self.head.named_parameters():
            yield f"head.{name}", value

    def set_parameter(self, name: str, value: np.ndarray) -> None:
        if name.startswith("embeddings."):
            self.embeddings.set_parameter(name[len("embeddings."):], value)
        elif name.startswith("encoder."):
            self.encoder.set_parameter(name, value)
        elif name.startswith("pooler."):
            self.pooler.set_parameter(name[len("pooler."):], value)
        elif name.startswith("head."):
            self.head.set_parameter(name[len("head."):], value)
        else:
            raise KeyError(name)

    def parameter_dict(self) -> Dict[str, np.ndarray]:
        """All parameters as a name->array dictionary."""
        return dict(self.named_parameters())

    def num_parameters(self) -> int:
        """Total number of scalar parameters actually instantiated."""
        return sum(value.size for _, value in self.named_parameters())

    def weight_matrices(self) -> Dict[str, np.ndarray]:
        """The 2-D weight matrices Mokey quantizes (excludes biases/norms).

        Embedding tables are included because the paper quantizes
        "parameters (weights, embeddings)".
        """
        selected: Dict[str, np.ndarray] = {}
        for name, value in self.named_parameters():
            if value.ndim < 2:
                continue
            if name.endswith((".gamma", ".beta", ".bias")):
                continue
            selected[name] = value
        return selected

    def copy(self) -> "TransformerModel":
        """Deep copy of the model (used to build quantized twins)."""
        return _copy.deepcopy(self)
