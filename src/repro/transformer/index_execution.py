"""Index-domain execution of encoder layers at model scale.

The analytical accelerator models count operations from GEMM *shapes*
plus assumed outlier rates; this module runs the counting datapath for
real: one full-width encoder block (BERT-Base hidden 768 up to
DeBERTa-XL hidden 1024, sequence lengths 128-512) executes forward with
**every GEMM computed by the index-domain engine** on freshly quantized
operands — the Q/K/V/output projections, the per-head attention score and
context products (both operands activations, like the hardware's
activation-by-activation GEMMs), the FFN pair, and DeBERTa's relative
projections.  Everything between GEMMs (bias, softmax, GELU, residuals,
LayerNorm) runs in floating point, mirroring the accelerator's
post-processing units.

The outcome is a :class:`LayerMeasurement`: per-GEMM *measured*
:class:`~repro.core.index_compute.IndexComputeStats` (Gaussian vs outlier
pair counts from the actual encodings, not the scheme's assumed
fractions), wall-clock timings of the quantize and compute phases, and
the output error against the FP forward of the same block.  The campaign
engine joins these measured counts to scenario records
(``run_campaign(..., with_measured=True)``) next to the analytic counts
the schemes report.

Only the vectorized engine makes this tractable — the scalar reference
engine would need hours per layer-scale GEMM — but the scalar engine
remains selectable for equivalence tests on scaled-down configurations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.index_compute import (
    IndexComputeStats,
    IndexDomainEngine,
    VectorizedIndexDomainEngine,
)
from repro.core.quantizer import MokeyQuantizer
from repro.transformer.config import TransformerConfig
from repro.transformer.encoder import EncoderBlock
from repro.transformer.functional import gelu, softmax
from repro.transformer.layers import Linear
from repro.transformer.model_zoo import MODEL_CONFIGS

__all__ = [
    "GemmMeasurement",
    "LayerMeasurement",
    "IndexDomainEncoderExecutor",
    "execute_encoder_layer",
]

ENGINES = ("vectorized", "scalar")


@dataclass
class GemmMeasurement:
    """Measured outcome of all instances of one named layer GEMM.

    Attributes:
        name: Workload GEMM label (``attention.query``, ``ffn.output``, ...),
            matching :func:`repro.accelerator.workloads.encoder_gemms`.
        m, k, n: Shape of one instance.
        count: Instances executed (heads x batch for the attention
            score/context GEMMs, 1 otherwise).
        stats: Measured operation counts summed over all instances.
        quantize_seconds: Wall time spent fitting/encoding the operands.
        engine_seconds: Wall time spent in the index-domain engine.
    """

    name: str
    m: int
    k: int
    n: int
    count: int = 0
    stats: IndexComputeStats = field(default_factory=IndexComputeStats)
    quantize_seconds: float = 0.0
    engine_seconds: float = 0.0


@dataclass
class LayerMeasurement:
    """Measured index-domain execution of one encoder layer.

    Attributes:
        model: Configuration name the block was built from.
        sequence_length: Tokens per input.
        batch_size: Inputs per pass.
        gemms: Per-GEMM measurements, in execution order.
        stats: Operation counts merged over every GEMM instance.
        quantize_seconds: Total operand fit/encode wall time.
        engine_seconds: Total index-domain compute wall time.
        total_seconds: End-to-end wall time of the layer forward.
        output_rms_error: RMS error of the index-domain layer output
            against the FP forward, relative to the FP output RMS.
    """

    model: str
    sequence_length: int
    batch_size: int
    gemms: List[GemmMeasurement]
    stats: IndexComputeStats
    quantize_seconds: float
    engine_seconds: float
    total_seconds: float
    output_rms_error: float

    @property
    def measured_macs(self) -> int:
        """Total operand pairs processed (equals the layer's MAC count)."""
        return self.stats.total_pairs

    @property
    def outlier_pair_fraction(self) -> float:
        return self.stats.outlier_pair_fraction


class IndexDomainEncoderExecutor:
    """Runs :class:`EncoderBlock` forwards with index-domain GEMMs.

    Args:
        quantizer: Tensor-level Mokey quantizer (owns the Golden
            Dictionary); a default one is generated if omitted.
        engine: ``"vectorized"`` (default) or ``"scalar"`` (reference;
            only tractable on scaled-down configurations).
    """

    def __init__(
        self,
        quantizer: Optional[MokeyQuantizer] = None,
        engine: str = "vectorized",
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r} (choose from {ENGINES})")
        self.quantizer = quantizer or MokeyQuantizer()
        self.engine = engine

    # ------------------------------------------------------------------ #
    # One GEMM through the index domain
    # ------------------------------------------------------------------ #
    def _gemm(
        self,
        measurements: Dict[str, GemmMeasurement],
        name: str,
        x: np.ndarray,
        w: np.ndarray,
    ) -> np.ndarray:
        """Quantize both operands, multiply in the index domain, record."""
        started = time.perf_counter()
        xq = self.quantizer.quantize(np.asarray(x, dtype=np.float64), f"{name}.in")
        wq = self.quantizer.quantize(np.asarray(w, dtype=np.float64), f"{name}.weight")
        quantized = time.perf_counter()

        if self.engine == "vectorized":
            engine = VectorizedIndexDomainEngine(xq.dictionary, wq.dictionary)
            out = engine.matmul(xq, wq)
            values, stats = out.values, out.stats
        else:
            engine = IndexDomainEngine(xq.dictionary, wq.dictionary)
            values, stats = engine.matmul(xq, wq)
        finished = time.perf_counter()

        record = measurements.get(name)
        if record is None:
            m, k = x.shape
            record = GemmMeasurement(name=name, m=m, k=k, n=w.shape[1])
            measurements[name] = record
        record.count += 1
        record.stats.merge(stats)
        record.quantize_seconds += quantized - started
        record.engine_seconds += finished - quantized
        return values

    def _projection(
        self,
        measurements: Dict[str, GemmMeasurement],
        name: str,
        x2d: np.ndarray,
        linear: Linear,
    ) -> np.ndarray:
        """``x2d @ linear.weight`` in the index domain, bias added in FP."""
        return self._gemm(measurements, name, x2d, linear.weight) + linear.bias

    # ------------------------------------------------------------------ #
    # Block forward
    # ------------------------------------------------------------------ #
    def run_block(
        self,
        block: EncoderBlock,
        hidden_states: np.ndarray,
    ) -> "tuple[np.ndarray, List[GemmMeasurement]]":
        """Forward ``hidden_states`` through ``block``, all GEMMs indexed.

        Args:
            block: The encoder block to execute.
            hidden_states: ``(batch, seq, hidden)`` input activations.

        Returns:
            The ``(batch, seq, hidden)`` block output and the per-GEMM
            measurements in execution order.
        """
        attn = block.attention
        batch, seq, hidden = hidden_states.shape
        heads, head_dim = attn.num_heads, attn.head_dim
        measurements: Dict[str, GemmMeasurement] = {}
        flat = hidden_states.reshape(batch * seq, hidden)

        q = self._projection(measurements, "attention.query", flat, attn.query)
        k = self._projection(measurements, "attention.key", flat, attn.key)
        v = self._projection(measurements, "attention.value", flat, attn.value)
        qh = attn._split_heads(q.reshape(batch, seq, hidden))
        kh = attn._split_heads(k.reshape(batch, seq, hidden))
        vh = attn._split_heads(v.reshape(batch, seq, hidden))

        scores = np.empty((batch, heads, seq, seq), dtype=np.float64)
        for b in range(batch):
            for h in range(heads):
                scores[b, h] = self._gemm(
                    measurements, "attention.scores", qh[b, h], kh[b, h].T
                )
        scores /= np.sqrt(head_dim)

        if attn.disentangled:
            # The two relative projections are ordinary weight GEMMs; the
            # content/position contractions against the shared embedding
            # table run in FP like the paper's analytic GEMM set assumes.
            rel_q = self._projection(
                measurements, "attention.relative_query", flat, attn.relative_query
            ).reshape(batch, seq, hidden)
            rel_k = self._projection(
                measurements, "attention.relative_key", flat, attn.relative_key
            ).reshape(batch, seq, hidden)
            table = attn.relative_embedding
            max_dist = table.shape[0] // 2
            positions = np.arange(seq)
            distance = np.clip(
                positions[None, :] - positions[:, None], -max_dist, max_dist - 1
            )
            rel = table[distance + max_dist].reshape(seq, seq, heads, head_dim)
            c2p = np.einsum("bhid,ijhd->bhij", attn._split_heads(rel_q), rel)
            p2c = np.einsum("bhjd,ijhd->bhij", attn._split_heads(rel_k), rel)
            scores += (c2p + p2c) / np.sqrt(3.0 * head_dim)

        probs = softmax(scores, axis=-1)

        context = np.empty((batch, heads, seq, head_dim), dtype=np.float64)
        for b in range(batch):
            for h in range(heads):
                context[b, h] = self._gemm(
                    measurements, "attention.context", probs[b, h], vh[b, h]
                )
        merged = attn._merge_heads(context).reshape(batch * seq, hidden)

        attn_out = self._projection(measurements, "attention.output", merged, attn.output)
        hidden_states = block.attention_norm(
            hidden_states + attn_out.reshape(batch, seq, hidden).astype(np.float32)
        )

        flat2 = hidden_states.reshape(batch * seq, hidden)
        inter = gelu(
            self._projection(
                measurements, "ffn.intermediate", flat2, block.ffn.intermediate
            )
        )
        ffn_out = self._projection(measurements, "ffn.output", inter, block.ffn.output)
        output = block.output_norm(
            hidden_states + ffn_out.reshape(batch, seq, hidden).astype(np.float32)
        )
        return output, list(measurements.values())


def _resolve_config(model: Union[str, TransformerConfig]) -> TransformerConfig:
    if isinstance(model, TransformerConfig):
        return model
    if model not in MODEL_CONFIGS:
        raise KeyError(f"unknown model {model!r}; known: {sorted(MODEL_CONFIGS)}")
    return MODEL_CONFIGS[model]


def _build_block(config: TransformerConfig, seed: int) -> EncoderBlock:
    """One synthetic encoder block at full configured width."""
    from repro.transformer.model_zoo import _layer_norm, _linear

    rng = np.random.default_rng(seed)
    h = config.hidden_size
    if config.disentangled_attention:
        relative_key = _linear(rng, h, h)
        relative_query = _linear(rng, h, h)
        relative_embedding = np.random.default_rng(seed + 1).normal(
            0.0, 0.02, size=(2 * min(64, config.max_position_embeddings), h)
        ).astype(np.float32)
    else:
        relative_key = relative_query = relative_embedding = None
    from repro.transformer.attention import MultiHeadSelfAttention
    from repro.transformer.layers import FeedForward

    attention = MultiHeadSelfAttention(
        query=_linear(rng, h, h),
        key=_linear(rng, h, h),
        value=_linear(rng, h, h),
        output=_linear(rng, h, h),
        num_heads=config.num_heads,
        relative_key=relative_key,
        relative_query=relative_query,
        relative_embedding=relative_embedding,
    )
    ffn = FeedForward(
        intermediate=_linear(rng, h, config.intermediate_size),
        output=_linear(rng, config.intermediate_size, h),
    )
    return EncoderBlock(
        attention=attention,
        attention_norm=_layer_norm(rng, h, config.layer_norm_eps),
        ffn=ffn,
        output_norm=_layer_norm(rng, h, config.layer_norm_eps),
    )


def execute_encoder_layer(
    model: Union[str, TransformerConfig] = "bert-base",
    sequence_length: int = 128,
    batch_size: int = 1,
    quantizer: Optional[MokeyQuantizer] = None,
    engine: str = "vectorized",
    seed: int = 0,
) -> LayerMeasurement:
    """Execute one encoder layer end-to-end in the index domain.

    Builds a synthetic full-width encoder block (deterministic in
    ``seed``), feeds it normalised synthetic hidden states, runs every
    GEMM through the index-domain engine and returns the measured
    operation counts, timings and output error against the FP forward of
    the same block.

    Args:
        model: Model-zoo name (full-size configuration) or an explicit
            :class:`TransformerConfig` (e.g. a scaled one for tests).
        sequence_length: Tokens per input (the paper sweeps 128-512).
        batch_size: Inputs per pass.
        quantizer: Shared tensor quantizer; generated if omitted.
        engine: ``"vectorized"`` (default) or ``"scalar"`` (reference).
        seed: Seed for the block weights and input activations.
    """
    config = _resolve_config(model)
    if sequence_length < 1:
        raise ValueError(f"sequence_length must be >= 1, got {sequence_length}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    block = _build_block(config, seed)
    rng = np.random.default_rng(seed + 2)
    hidden_states = rng.normal(
        0.0, 1.0, size=(batch_size, sequence_length, config.hidden_size)
    ).astype(np.float32)

    executor = IndexDomainEncoderExecutor(quantizer=quantizer, engine=engine)
    started = time.perf_counter()
    output, gemms = executor.run_block(block, hidden_states)
    total_seconds = time.perf_counter() - started

    fp_output = block(hidden_states)
    fp_rms = float(np.sqrt(np.mean(np.square(fp_output)))) or 1.0
    rms_error = float(np.sqrt(np.mean(np.square(output - fp_output)))) / fp_rms

    stats = IndexComputeStats()
    for gemm in gemms:
        stats.merge(gemm.stats)
    return LayerMeasurement(
        model=config.name,
        sequence_length=sequence_length,
        batch_size=batch_size,
        gemms=gemms,
        stats=stats,
        quantize_seconds=sum(g.quantize_seconds for g in gemms),
        engine_seconds=sum(g.engine_seconds for g in gemms),
        total_seconds=total_seconds,
        output_rms_error=rms_error,
    )
