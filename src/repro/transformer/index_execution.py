"""Index-domain execution of encoder layers at model scale.

The analytical accelerator models count operations from GEMM *shapes*
plus assumed outlier rates; this module runs the counting datapath for
real: one full-width encoder block (BERT-Base hidden 768 up to
DeBERTa-XL hidden 1024, sequence lengths 128-512) executes forward with
**every GEMM computed by the index-domain engine** on freshly quantized
operands — the Q/K/V/output projections, the per-head attention score and
context products (both operands activations, like the hardware's
activation-by-activation GEMMs), the FFN pair, and DeBERTa's relative
projections.  Everything between GEMMs (bias, softmax, GELU, residuals,
LayerNorm) runs in floating point, mirroring the accelerator's
post-processing units.

The outcome is a :class:`LayerMeasurement`: per-GEMM *measured*
:class:`~repro.core.index_compute.IndexComputeStats` (Gaussian vs outlier
pair counts from the actual encodings, not the scheme's assumed
fractions), wall-clock timings of the quantize and compute phases, and
the output error against the FP forward of the same block.  The campaign
engine joins these measured counts to scenario records
(``run_campaign(..., with_measured=True)``) next to the analytic counts
the schemes report.

Only the vectorized engine makes this tractable — the scalar reference
engine would need hours per layer-scale GEMM — but the scalar engine
remains selectable for equivalence tests on scaled-down configurations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.index_compute import (
    IndexComputeStats,
    IndexMatmulResult,
    PlaneCacheStats,
    get_plane_cache,
    index_domain_matmul_many,
    make_engine,
    resolve_engine,
)
from repro.core.quantizer import MokeyQuantizer, QuantizedTensor
from repro.transformer.config import TransformerConfig
from repro.transformer.encoder import EncoderBlock
from repro.transformer.functional import gelu, softmax
from repro.transformer.layers import Linear
from repro.transformer.model_zoo import MODEL_CONFIGS

__all__ = [
    "GemmMeasurement",
    "LayerMeasurement",
    "IndexDomainEncoderExecutor",
    "execute_encoder_layer",
]


@dataclass
class GemmMeasurement:
    """Measured outcome of all instances of one named layer GEMM.

    Attributes:
        name: Workload GEMM label (``attention.query``, ``ffn.output``, ...),
            matching :func:`repro.accelerator.workloads.encoder_gemms`.
        m, k, n: Shape of one instance.
        count: Instances executed (heads x batch for the attention
            score/context GEMMs, 1 otherwise).
        stats: Measured operation counts summed over all instances.
        quantize_seconds: Wall time spent fitting/encoding the operands.
        engine_seconds: Wall time spent in the index-domain engine.
    """

    name: str
    m: int
    k: int
    n: int
    count: int = 0
    stats: IndexComputeStats = field(default_factory=IndexComputeStats)
    quantize_seconds: float = 0.0
    engine_seconds: float = 0.0


@dataclass
class LayerMeasurement:
    """Measured index-domain execution of one encoder layer.

    Attributes:
        model: Configuration name the block was built from.
        sequence_length: Tokens per input.
        batch_size: Inputs per pass.
        gemms: Per-GEMM measurements, in execution order.
        stats: Operation counts merged over every GEMM instance.
        quantize_seconds: Total operand fit/encode wall time.
        engine_seconds: Total index-domain compute wall time.
        total_seconds: End-to-end wall time of the layer forward.
        output_rms_error: RMS error of the index-domain layer output
            against the FP forward, relative to the FP output RMS.
        plane_cache: Plane-cache counter delta over this measurement
            (``None`` when the caller did not capture one).
    """

    model: str
    sequence_length: int
    batch_size: int
    gemms: List[GemmMeasurement]
    stats: IndexComputeStats
    quantize_seconds: float
    engine_seconds: float
    total_seconds: float
    output_rms_error: float
    plane_cache: Optional[PlaneCacheStats] = None

    @property
    def measured_macs(self) -> int:
        """Total operand pairs processed (equals the layer's MAC count)."""
        return self.stats.total_pairs

    @property
    def outlier_pair_fraction(self) -> float:
        return self.stats.outlier_pair_fraction


class IndexDomainEncoderExecutor:
    """Runs :class:`EncoderBlock` forwards with index-domain GEMMs.

    Args:
        quantizer: Tensor-level Mokey quantizer (owns the Golden
            Dictionary); a default one is generated if omitted.
        engine: Registered engine name — ``"vectorized"`` (default; the
            NumPy oracle), ``"torch"`` (optional einsum backend) or
            ``"scalar"`` (reference; only tractable on scaled-down
            configurations).  Unknown names raise a registry error with a
            did-you-mean suggestion.
        device: Optional device for backends that take one (the torch
            engine).
        cache_weights: Quantize each weight tensor once per ``(layer,
            gemm)`` key and reuse the encoding on every later forward.
            Weight quantization dominates a cold layer forward (~2x the
            engine time at BERT-Base width), so campaigns and decoders
            that revisit layers pay it only once.  Exact: dictionary
            fitting is deterministic in the tensor values.
        gemm_batching: Evaluate shape-matched independent GEMMs (the
            per-head attention score/context products, the Q/K/V
            projections sharing one quantized input) with single batched
            BLAS calls via :func:`index_domain_matmul_many` instead of
            one engine call each.  Statistics are identical to the
            per-GEMM path; values agree to floating-point round-off.
    """

    def __init__(
        self,
        quantizer: Optional[MokeyQuantizer] = None,
        engine: str = "vectorized",
        device: Optional[str] = None,
        cache_weights: bool = False,
        gemm_batching: bool = False,
    ) -> None:
        self.engine_cls = resolve_engine(engine)
        ensure = getattr(self.engine_cls, "ensure_available", None)
        if ensure is not None:
            ensure()
        self.quantizer = quantizer or MokeyQuantizer()
        self.engine = engine
        self.device = device
        self.cache_weights = cache_weights
        self.gemm_batching = gemm_batching
        self._weight_cache: Dict[Tuple[Hashable, str], QuantizedTensor] = {}
        #: GEMMs served from the weight cache (monotonic across forwards).
        self.weight_cache_hits = 0

    # ------------------------------------------------------------------ #
    # Operand quantization (with the per-(layer, gemm) weight cache)
    # ------------------------------------------------------------------ #
    def _quantize_activation(self, name: str, x: np.ndarray) -> QuantizedTensor:
        return self.quantizer.quantize(np.asarray(x, dtype=np.float64), name)

    def _quantize_weight(
        self, name: str, w: np.ndarray, layer_key: Optional[Hashable]
    ) -> Tuple[QuantizedTensor, float]:
        """Quantized weight and the seconds actually spent quantizing.

        Cache hits cost ~0 s, which is the point: a model executor or
        decoder revisiting a layer reuses the encoding.
        """
        cache_key = (layer_key, name)
        if self.cache_weights and layer_key is not None:
            cached = self._weight_cache.get(cache_key)
            if cached is not None:
                self.weight_cache_hits += 1
                return cached, 0.0
        started = time.perf_counter()
        wq = self.quantizer.quantize(np.asarray(w, dtype=np.float64), f"{name}.weight")
        elapsed = time.perf_counter() - started
        if self.cache_weights and layer_key is not None:
            self._weight_cache[cache_key] = wq
        return wq, elapsed

    def _run_engine(
        self, xq: QuantizedTensor, wq: QuantizedTensor
    ) -> Tuple[np.ndarray, IndexComputeStats]:
        resolved = make_engine(
            self.engine_cls, xq.dictionary, wq.dictionary, device=self.device
        )
        out = resolved.matmul(xq, wq)
        if isinstance(out, IndexMatmulResult):
            return out.values, out.stats
        return out

    def _record(
        self,
        measurements: Dict[str, GemmMeasurement],
        name: str,
        shape: Tuple[int, int, int],
    ) -> GemmMeasurement:
        record = measurements.get(name)
        if record is None:
            m, k, n = shape
            record = GemmMeasurement(name=name, m=m, k=k, n=n)
            measurements[name] = record
        return record

    # ------------------------------------------------------------------ #
    # One GEMM through the index domain
    # ------------------------------------------------------------------ #
    def _gemm(
        self,
        measurements: Dict[str, GemmMeasurement],
        name: str,
        x: np.ndarray,
        w: np.ndarray,
        layer_key: Optional[Hashable] = None,
    ) -> np.ndarray:
        """Quantize both operands, multiply in the index domain, record."""
        started = time.perf_counter()
        xq = self._quantize_activation(f"{name}.in", x)
        x_seconds = time.perf_counter() - started
        wq, w_seconds = self._quantize_weight(name, w, layer_key)

        engine_started = time.perf_counter()
        values, stats = self._run_engine(xq, wq)
        engine_seconds = time.perf_counter() - engine_started

        record = self._record(measurements, name, (x.shape[0], x.shape[1], w.shape[1]))
        record.count += 1
        record.stats.merge(stats)
        record.quantize_seconds += x_seconds + w_seconds
        record.engine_seconds += engine_seconds
        return values

    # ------------------------------------------------------------------ #
    # Batched GEMM groups (single BLAS calls where shapes agree)
    # ------------------------------------------------------------------ #
    def _projection_group(
        self,
        measurements: Dict[str, GemmMeasurement],
        specs: Sequence[Tuple[str, Linear]],
        x2d: np.ndarray,
        layer_key: Optional[Hashable],
    ) -> List[np.ndarray]:
        """Shape-matched projections of one input, batched when enabled.

        All projections in ``specs`` consume the same activation matrix,
        so the batched path quantizes it once and evaluates the group
        with one batched engine call.  The per-GEMM path quantizes the
        same values under each projection's label — dictionary fitting is
        deterministic in the values, so both paths produce identical
        encodings and therefore identical statistics.
        """
        if not self.gemm_batching or len(specs) == 1:
            return [
                self._gemm(measurements, name, x2d, linear.weight, layer_key)
                + linear.bias
                for name, linear in specs
            ]
        started = time.perf_counter()
        xq = self._quantize_activation(f"{specs[0][0]}.in", x2d)
        x_seconds = time.perf_counter() - started
        quantized = []
        for name, linear in specs:
            wq, w_seconds = self._quantize_weight(name, linear.weight, layer_key)
            quantized.append((wq, w_seconds))

        engine_started = time.perf_counter()
        results = index_domain_matmul_many(
            [(xq, wq) for wq, _ in quantized],
            engine=self.engine_cls,
            device=self.device,
        )
        engine_share = (time.perf_counter() - engine_started) / len(specs)

        outputs = []
        x_share = x_seconds / len(specs)
        for (name, linear), (wq, w_seconds), result in zip(specs, quantized, results):
            record = self._record(
                measurements, name, (x2d.shape[0], x2d.shape[1], linear.weight.shape[1])
            )
            record.count += 1
            record.stats.merge(result.stats)
            record.quantize_seconds += x_share + w_seconds
            record.engine_seconds += engine_share
            outputs.append(result.values + linear.bias)
        return outputs

    def _gemm_many(
        self,
        measurements: Dict[str, GemmMeasurement],
        name: str,
        pairs: Sequence[Tuple[np.ndarray, np.ndarray]],
    ) -> List[np.ndarray]:
        """All instances of one activation-by-activation GEMM (per head x
        batch), evaluated with a single batched engine call when enabled."""
        if not self.gemm_batching:
            return [self._gemm(measurements, name, x, w) for x, w in pairs]
        started = time.perf_counter()
        quantized = [
            (
                self._quantize_activation(f"{name}.in", x),
                self._quantize_activation(f"{name}.weight", w),
            )
            for x, w in pairs
        ]
        quantize_seconds = time.perf_counter() - started

        engine_started = time.perf_counter()
        results = index_domain_matmul_many(
            quantized, engine=self.engine_cls, device=self.device
        )
        engine_seconds = time.perf_counter() - engine_started

        x0, w0 = pairs[0]
        record = self._record(measurements, name, (x0.shape[0], x0.shape[1], w0.shape[1]))
        record.count += len(pairs)
        for result in results:
            record.stats.merge(result.stats)
        record.quantize_seconds += quantize_seconds
        record.engine_seconds += engine_seconds
        return [result.values for result in results]

    def _gemm_many_encoded(
        self,
        measurements: Dict[str, GemmMeasurement],
        name: str,
        pairs: Sequence[Tuple[np.ndarray, QuantizedTensor]],
    ) -> List[np.ndarray]:
        """Instances of one GEMM whose right operands are already encoded.

        The decoder's KV-cache path lands here: the cached K/V rows were
        quantized at prefill (or appended with the prefill dictionary),
        so only the activation side is quantized per call.  Shape-matched
        instances share one batched engine call when batching is enabled.
        """
        started = time.perf_counter()
        quantized = [
            (self._quantize_activation(f"{name}.in", x), wq) for x, wq in pairs
        ]
        quantize_seconds = time.perf_counter() - started

        engine_started = time.perf_counter()
        if self.gemm_batching and len(quantized) > 1:
            results = index_domain_matmul_many(
                quantized, engine=self.engine_cls, device=self.device
            )
        else:
            results = []
            for xq, wq in quantized:
                values, stats = self._run_engine(xq, wq)
                results.append(IndexMatmulResult(values=values, stats=stats))
        engine_seconds = time.perf_counter() - engine_started

        x0, w0 = pairs[0]
        record = self._record(measurements, name, (x0.shape[0], x0.shape[1], w0.shape[1]))
        record.count += len(pairs)
        for result in results:
            record.stats.merge(result.stats)
        record.quantize_seconds += quantize_seconds
        record.engine_seconds += engine_seconds
        return [result.values for result in results]

    def _projection(
        self,
        measurements: Dict[str, GemmMeasurement],
        name: str,
        x2d: np.ndarray,
        linear: Linear,
        layer_key: Optional[Hashable] = None,
    ) -> np.ndarray:
        """``x2d @ linear.weight`` in the index domain, bias added in FP."""
        return self._gemm(measurements, name, x2d, linear.weight, layer_key) + linear.bias

    # ------------------------------------------------------------------ #
    # Block forward
    # ------------------------------------------------------------------ #
    def run_block(
        self,
        block: EncoderBlock,
        hidden_states: np.ndarray,
        layer_key: Optional[Hashable] = None,
    ) -> "tuple[np.ndarray, List[GemmMeasurement]]":
        """Forward ``hidden_states`` through ``block``, all GEMMs indexed.

        Args:
            block: The encoder block to execute.
            hidden_states: ``(batch, seq, hidden)`` input activations.
            layer_key: Key identifying this block in the weight cache
                (e.g. the layer index); ``None`` disables caching for
                this forward.

        Returns:
            The ``(batch, seq, hidden)`` block output and the per-GEMM
            measurements in execution order.
        """
        attn = block.attention
        batch, seq, hidden = hidden_states.shape
        heads, head_dim = attn.num_heads, attn.head_dim
        measurements: Dict[str, GemmMeasurement] = {}
        flat = hidden_states.reshape(batch * seq, hidden)

        q, k, v = self._projection_group(
            measurements,
            [
                ("attention.query", attn.query),
                ("attention.key", attn.key),
                ("attention.value", attn.value),
            ],
            flat,
            layer_key,
        )
        qh = attn._split_heads(q.reshape(batch, seq, hidden))
        kh = attn._split_heads(k.reshape(batch, seq, hidden))
        vh = attn._split_heads(v.reshape(batch, seq, hidden))

        score_values = self._gemm_many(
            measurements,
            "attention.scores",
            [
                (qh[b, h], kh[b, h].T)
                for b in range(batch)
                for h in range(heads)
            ],
        )
        scores = np.stack(score_values).reshape(batch, heads, seq, seq)
        scores /= np.sqrt(head_dim)

        if attn.disentangled:
            # The two relative projections are ordinary weight GEMMs; the
            # content/position contractions against the shared embedding
            # table run in FP like the paper's analytic GEMM set assumes.
            rel_q_flat, rel_k_flat = self._projection_group(
                measurements,
                [
                    ("attention.relative_query", attn.relative_query),
                    ("attention.relative_key", attn.relative_key),
                ],
                flat,
                layer_key,
            )
            rel_q = rel_q_flat.reshape(batch, seq, hidden)
            rel_k = rel_k_flat.reshape(batch, seq, hidden)
            table = attn.relative_embedding
            max_dist = table.shape[0] // 2
            positions = np.arange(seq)
            distance = np.clip(
                positions[None, :] - positions[:, None], -max_dist, max_dist - 1
            )
            rel = table[distance + max_dist].reshape(seq, seq, heads, head_dim)
            c2p = np.einsum("bhid,ijhd->bhij", attn._split_heads(rel_q), rel)
            p2c = np.einsum("bhjd,ijhd->bhij", attn._split_heads(rel_k), rel)
            scores += (c2p + p2c) / np.sqrt(3.0 * head_dim)

        probs = softmax(scores, axis=-1)

        context_values = self._gemm_many(
            measurements,
            "attention.context",
            [
                (probs[b, h], vh[b, h])
                for b in range(batch)
                for h in range(heads)
            ],
        )
        context = np.stack(context_values).reshape(batch, heads, seq, head_dim)
        merged = attn._merge_heads(context).reshape(batch * seq, hidden)

        attn_out = self._projection(
            measurements, "attention.output", merged, attn.output, layer_key
        )
        hidden_states = block.attention_norm(
            hidden_states + attn_out.reshape(batch, seq, hidden).astype(np.float32)
        )

        flat2 = hidden_states.reshape(batch * seq, hidden)
        inter = gelu(
            self._projection(
                measurements, "ffn.intermediate", flat2, block.ffn.intermediate, layer_key
            )
        )
        ffn_out = self._projection(
            measurements, "ffn.output", inter, block.ffn.output, layer_key
        )
        output = block.output_norm(
            hidden_states + ffn_out.reshape(batch, seq, hidden).astype(np.float32)
        )
        return output, list(measurements.values())


def _resolve_config(model: Union[str, TransformerConfig]) -> TransformerConfig:
    if isinstance(model, TransformerConfig):
        return model
    if model not in MODEL_CONFIGS:
        raise KeyError(f"unknown model {model!r}; known: {sorted(MODEL_CONFIGS)}")
    return MODEL_CONFIGS[model]


def _build_block(config: TransformerConfig, seed: int) -> EncoderBlock:
    """One synthetic encoder block at full configured width."""
    from repro.transformer.model_zoo import _layer_norm, _linear

    rng = np.random.default_rng(seed)
    h = config.hidden_size
    if config.disentangled_attention:
        relative_key = _linear(rng, h, h)
        relative_query = _linear(rng, h, h)
        relative_embedding = np.random.default_rng(seed + 1).normal(
            0.0, 0.02, size=(2 * min(64, config.max_position_embeddings), h)
        ).astype(np.float32)
    else:
        relative_key = relative_query = relative_embedding = None
    from repro.transformer.attention import MultiHeadSelfAttention
    from repro.transformer.layers import FeedForward

    attention = MultiHeadSelfAttention(
        query=_linear(rng, h, h),
        key=_linear(rng, h, h),
        value=_linear(rng, h, h),
        output=_linear(rng, h, h),
        num_heads=config.num_heads,
        relative_key=relative_key,
        relative_query=relative_query,
        relative_embedding=relative_embedding,
    )
    ffn = FeedForward(
        intermediate=_linear(rng, h, config.intermediate_size),
        output=_linear(rng, config.intermediate_size, h),
    )
    return EncoderBlock(
        attention=attention,
        attention_norm=_layer_norm(rng, h, config.layer_norm_eps),
        ffn=ffn,
        output_norm=_layer_norm(rng, h, config.layer_norm_eps),
    )


def execute_encoder_layer(
    model: Union[str, TransformerConfig] = "bert-base",
    sequence_length: int = 128,
    batch_size: int = 1,
    quantizer: Optional[MokeyQuantizer] = None,
    engine: str = "vectorized",
    seed: int = 0,
    device: Optional[str] = None,
    cache_weights: bool = False,
    gemm_batching: bool = False,
    executor: Optional[IndexDomainEncoderExecutor] = None,
) -> LayerMeasurement:
    """Execute one encoder layer end-to-end in the index domain.

    Builds a synthetic full-width encoder block (deterministic in
    ``seed``), feeds it normalised synthetic hidden states, runs every
    GEMM through the index-domain engine and returns the measured
    operation counts, timings and output error against the FP forward of
    the same block.

    Args:
        model: Model-zoo name (full-size configuration) or an explicit
            :class:`TransformerConfig` (e.g. a scaled one for tests).
        sequence_length: Tokens per input (the paper sweeps 128-512).
        batch_size: Inputs per pass.
        quantizer: Shared tensor quantizer; generated if omitted.
        engine: Registered engine name (``"vectorized"``, ``"torch"``,
            ``"scalar"``).
        seed: Seed for the block weights and input activations.
        device: Optional device for backends that take one.
        cache_weights: Reuse weight encodings across forwards (see
            :class:`IndexDomainEncoderExecutor`).
        gemm_batching: Single batched BLAS calls for shape-matched GEMMs.
        executor: Reuse an existing executor (and its weight cache)
            instead of constructing one; the other engine options are
            then ignored.
    """
    config = _resolve_config(model)
    if sequence_length < 1:
        raise ValueError(f"sequence_length must be >= 1, got {sequence_length}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    block = _build_block(config, seed)
    rng = np.random.default_rng(seed + 2)
    hidden_states = rng.normal(
        0.0, 1.0, size=(batch_size, sequence_length, config.hidden_size)
    ).astype(np.float32)

    if executor is None:
        executor = IndexDomainEncoderExecutor(
            quantizer=quantizer,
            engine=engine,
            device=device,
            cache_weights=cache_weights,
            gemm_batching=gemm_batching,
        )
    plane_cache = get_plane_cache()
    cache_before = None if plane_cache is None else plane_cache.stats()
    started = time.perf_counter()
    output, gemms = executor.run_block(block, hidden_states, layer_key=seed)
    total_seconds = time.perf_counter() - started
    cache_delta = (
        None if cache_before is None else get_plane_cache().stats().minus(cache_before)
    )

    fp_output = block(hidden_states)
    fp_rms = float(np.sqrt(np.mean(np.square(fp_output)))) or 1.0
    rms_error = float(np.sqrt(np.mean(np.square(output - fp_output)))) / fp_rms

    stats = IndexComputeStats()
    for gemm in gemms:
        stats.merge(gemm.stats)
    return LayerMeasurement(
        model=config.name,
        sequence_length=sequence_length,
        batch_size=batch_size,
        gemms=gemms,
        stats=stats,
        quantize_seconds=sum(g.quantize_seconds for g in gemms),
        engine_seconds=sum(g.engine_seconds for g in gemms),
        total_seconds=total_seconds,
        output_rms_error=rms_error,
        plane_cache=cache_delta,
    )
