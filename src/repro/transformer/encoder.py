"""Encoder block and encoder stack."""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.transformer.attention import MultiHeadSelfAttention
from repro.transformer.layers import ActivationTransform, FeedForward, LayerNorm, Module


class EncoderBlock(Module):
    """One transformer encoder block.

    Structure (post-LayerNorm, BERT-style)::

        x -> self-attention -> +residual -> LayerNorm
          -> feed-forward    -> +residual -> LayerNorm
    """

    def __init__(
        self,
        attention: MultiHeadSelfAttention,
        attention_norm: LayerNorm,
        ffn: FeedForward,
        output_norm: LayerNorm,
    ) -> None:
        self.attention = attention
        self.attention_norm = attention_norm
        self.ffn = ffn
        self.output_norm = output_norm

    def __call__(
        self,
        hidden_states: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        hook: Optional[ActivationTransform] = None,
        prefix: str = "encoder.0",
    ) -> np.ndarray:
        attn_out = self.attention(
            hidden_states,
            attention_mask=attention_mask,
            hook=hook,
            prefix=f"{prefix}.attention",
        )
        hidden_states = self.attention_norm(hidden_states + attn_out)
        if hook is not None:
            hidden_states = hook(f"{prefix}.attention_norm", hidden_states)

        ffn_out = self.ffn(hidden_states, hook=hook, prefix=f"{prefix}.ffn")
        hidden_states = self.output_norm(hidden_states + ffn_out)
        if hook is not None:
            hidden_states = hook(f"{prefix}.output_norm", hidden_states)
        return hidden_states

    def named_parameters(self) -> Iterator[Tuple[str, np.ndarray]]:
        for name, value in self.attention.named_parameters():
            yield f"attention.{name}", value
        for name, value in self.attention_norm.named_parameters():
            yield f"attention_norm.{name}", value
        for name, value in self.ffn.named_parameters():
            yield f"ffn.{name}", value
        for name, value in self.output_norm.named_parameters():
            yield f"output_norm.{name}", value

    def set_parameter(self, name: str, value: np.ndarray) -> None:
        submodule, _, local = name.partition(".")
        mapping = {
            "attention": self.attention,
            "attention_norm": self.attention_norm,
            "ffn": self.ffn,
            "output_norm": self.output_norm,
        }
        if submodule not in mapping:
            raise KeyError(name)
        mapping[submodule].set_parameter(local, value)


class EncoderStack(Module):
    """A sequence of encoder blocks applied one after another."""

    def __init__(self, blocks: List[EncoderBlock]) -> None:
        if not blocks:
            raise ValueError("encoder stack requires at least one block")
        self.blocks = blocks

    def __len__(self) -> int:
        return len(self.blocks)

    def __call__(
        self,
        hidden_states: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        hook: Optional[ActivationTransform] = None,
    ) -> np.ndarray:
        for index, block in enumerate(self.blocks):
            hidden_states = block(
                hidden_states,
                attention_mask=attention_mask,
                hook=hook,
                prefix=f"encoder.{index}",
            )
        return hidden_states

    def named_parameters(self) -> Iterator[Tuple[str, np.ndarray]]:
        for index, block in enumerate(self.blocks):
            for name, value in block.named_parameters():
                yield f"encoder.{index}.{name}", value

    def set_parameter(self, name: str, value: np.ndarray) -> None:
        parts = name.split(".", 2)
        if len(parts) != 3 or parts[0] != "encoder":
            raise KeyError(name)
        index = int(parts[1])
        self.blocks[index].set_parameter(parts[2], value)
