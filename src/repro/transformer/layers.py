"""Forward-only neural network layers backed by NumPy.

The layers deliberately mirror the structure of the BERT reference
implementation (separate query/key/value projections, post-attention and
post-FFN LayerNorms with residual connections) because Mokey's evaluation
reasons about individual GEMMs of those exact shapes.

Every layer exposes its parameters through ``named_parameters`` and emits
its output activation through an optional hook, which is how the profiler
(Section II, Step 2 of the paper) samples activation tensors, and how the
model quantizer injects fake-quantization of activations.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.transformer.functional import gelu, layer_norm

ActivationTransform = Callable[[str, np.ndarray], np.ndarray]


class Module:
    """Minimal module base class: named parameters plus a forward call."""

    def named_parameters(self) -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(name, array)`` pairs for every parameter of the module."""
        raise NotImplementedError

    def set_parameter(self, name: str, value: np.ndarray) -> None:
        """Replace a parameter identified by its local name."""
        raise NotImplementedError


class Linear(Module):
    """Affine projection ``y = x @ W + b``.

    Attributes:
        weight: Array of shape ``(in_features, out_features)``.
        bias: Array of shape ``(out_features,)``.
    """

    def __init__(self, weight: np.ndarray, bias: Optional[np.ndarray] = None) -> None:
        self.weight = np.asarray(weight, dtype=np.float32)
        if self.weight.ndim != 2:
            raise ValueError("Linear weight must be 2-D")
        if bias is None:
            bias = np.zeros(self.weight.shape[1], dtype=np.float32)
        self.bias = np.asarray(bias, dtype=np.float32)
        if self.bias.shape != (self.weight.shape[1],):
            raise ValueError("bias shape does not match weight out_features")

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x @ self.weight + self.bias

    def named_parameters(self) -> Iterator[Tuple[str, np.ndarray]]:
        yield "weight", self.weight
        yield "bias", self.bias

    def set_parameter(self, name: str, value: np.ndarray) -> None:
        if name == "weight":
            if value.shape != self.weight.shape:
                raise ValueError("weight shape mismatch")
            self.weight = np.asarray(value, dtype=np.float32)
        elif name == "bias":
            if value.shape != self.bias.shape:
                raise ValueError("bias shape mismatch")
            self.bias = np.asarray(value, dtype=np.float32)
        else:
            raise KeyError(name)

    def macs(self, rows: int) -> int:
        """Multiply-accumulate count when applied to ``rows`` input rows."""
        return rows * self.in_features * self.out_features


class LayerNorm(Module):
    """Layer normalisation with learned scale and shift."""

    def __init__(self, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-12) -> None:
        self.gamma = np.asarray(gamma, dtype=np.float32)
        self.beta = np.asarray(beta, dtype=np.float32)
        if self.gamma.shape != self.beta.shape:
            raise ValueError("gamma and beta must have the same shape")
        self.eps = eps

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return layer_norm(x, self.gamma, self.beta, self.eps)

    def named_parameters(self) -> Iterator[Tuple[str, np.ndarray]]:
        yield "gamma", self.gamma
        yield "beta", self.beta

    def set_parameter(self, name: str, value: np.ndarray) -> None:
        if name == "gamma":
            self.gamma = np.asarray(value, dtype=np.float32)
        elif name == "beta":
            self.beta = np.asarray(value, dtype=np.float32)
        else:
            raise KeyError(name)


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, table: np.ndarray) -> None:
        self.table = np.asarray(table, dtype=np.float32)
        if self.table.ndim != 2:
            raise ValueError("embedding table must be 2-D")

    @property
    def num_embeddings(self) -> int:
        return self.table.shape[0]

    @property
    def embedding_dim(self) -> int:
        return self.table.shape[1]

    def __call__(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError("embedding id out of range")
        return self.table[ids]

    def named_parameters(self) -> Iterator[Tuple[str, np.ndarray]]:
        yield "table", self.table

    def set_parameter(self, name: str, value: np.ndarray) -> None:
        if name != "table":
            raise KeyError(name)
        self.table = np.asarray(value, dtype=np.float32)


class FeedForward(Module):
    """The position-wise feed-forward block: Linear -> GELU -> Linear."""

    def __init__(self, intermediate: Linear, output: Linear) -> None:
        self.intermediate = intermediate
        self.output = output

    def __call__(
        self,
        x: np.ndarray,
        hook: Optional[ActivationTransform] = None,
        prefix: str = "ffn",
    ) -> np.ndarray:
        hidden = gelu(self.intermediate(x))
        if hook is not None:
            hidden = hook(f"{prefix}.intermediate", hidden)
        out = self.output(hidden)
        if hook is not None:
            out = hook(f"{prefix}.output", out)
        return out

    def named_parameters(self) -> Iterator[Tuple[str, np.ndarray]]:
        for name, value in self.intermediate.named_parameters():
            yield f"intermediate.{name}", value
        for name, value in self.output.named_parameters():
            yield f"output.{name}", value

    def set_parameter(self, name: str, value: np.ndarray) -> None:
        submodule, _, local = name.partition(".")
        if submodule == "intermediate":
            self.intermediate.set_parameter(local, value)
        elif submodule == "output":
            self.output.set_parameter(local, value)
        else:
            raise KeyError(name)
